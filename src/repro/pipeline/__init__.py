"""Pipelined whole-model execution: stream batches through a program chain.

A compiled model ships as an
:class:`~repro.artifact.bundle.ArtifactBundle` — N member programs plus
their dataflow manifest.  :class:`PipelineExecutor` owns one execution
engine per stage and streams batches through the chain so stage ``k`` of
batch ``i`` overlaps stage ``k+1`` of batch ``i-1``, the software
pipelining discipline logic-NN hardware deployments rely on.  Per-batch
outputs AND statistics are bit-identical to running the stages serially
(:meth:`PipelineExecutor.run_serial`).

:class:`PipelinePool` adapts the executor to the
:class:`~repro.serve.pool.WorkerPool` surface so the serving layer
(:class:`~repro.serve.server.InferenceServer`, fabric nodes, the
``repro serve`` CLI) serves whole models unchanged.
"""

from .executor import (
    PipelineExecutor,
    PipelinePool,
    Scoreboard,
    SerialChainRunner,
    StageStats,
)

__all__ = [
    "PipelineExecutor",
    "PipelinePool",
    "Scoreboard",
    "SerialChainRunner",
    "StageStats",
]
