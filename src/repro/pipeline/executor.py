"""The inter-stage overlap executor over a multi-program bundle.

Design (the R10K discipline, applied across programs instead of across
instructions):

* **one engine per stage** — any registry engine (fused/native/delta/
  trace/cycle), each owned by its own stage worker thread, so a stage's
  preallocated workspaces are never shared across threads;
* **bounded inter-stage queues** — each stage feeds the next through a
  ``queue.Queue(maxsize=depth)``; a fast producer blocks instead of
  ballooning memory, and the backpressure propagates to ``submit()``;
* **a scoreboard** — every in-flight batch has a per-stage completion
  bitmask, asserted to progress in stage order and retired when the
  final stage completes, the way the R10K issue queue tracks
  instructions through the pipeline;
* **load-time wiring** — the manifest's PO→PI name maps are resolved
  ONCE at construction into positional index tables (stage ``k``
  publishes its outputs as a list in PO order; stage ``k+1`` gathers
  operands by integer index), so the steady state does no per-batch
  name resolution;
* **bit-identity** — outputs and aggregated statistics of a pipelined
  batch equal the serial per-stage reference exactly (statistics sum
  across stages; ``peak_buffer_words`` takes the max — the same
  reduction :meth:`PipelineExecutor.run_serial` applies).
"""

from __future__ import annotations

import queue
import threading
import time
from collections import deque
from concurrent.futures import Future
from dataclasses import dataclass, field
from typing import Deque, Dict, List, Optional, Sequence, Tuple

import numpy as np

from ..lpu.simulator import SimulationResult

__all__ = [
    "PipelineExecutor",
    "PipelinePool",
    "Scoreboard",
    "SerialChainRunner",
    "StageStats",
]

_WORD = np.uint64
#: end-of-stream sentinel flowing through the stage queues.
_STOP = object()
#: default bound of each inter-stage queue, in batches.
DEFAULT_DEPTH = 4


def _percentile(samples: Sequence[float], pct: float) -> float:
    if not samples:
        return 0.0
    ordered = sorted(samples)
    index = int(round((pct / 100.0) * (len(ordered) - 1)))
    return float(ordered[index])


@dataclass
class StageStats:
    """One stage's occupancy and queue-depth counters."""

    name: str
    engine: str
    batches: int = 0
    words: int = 0
    busy_seconds: float = 0.0
    #: input-queue depth observed by each arriving batch (bounded window
    #: backing the reported percentiles, like the scheduler's waits).
    depth_samples: Deque[int] = field(
        default_factory=lambda: deque(maxlen=4096)
    )
    max_depth: int = 0

    def record_depth(self, depth: int) -> None:
        self.depth_samples.append(int(depth))
        if depth > self.max_depth:
            self.max_depth = int(depth)

    def as_dict(self, wall_seconds: float) -> Dict[str, object]:
        busy_fraction = (
            self.busy_seconds / wall_seconds if wall_seconds > 0 else 0.0
        )
        samples = list(self.depth_samples)
        return {
            "stage": self.name,
            "engine": self.engine,
            "batches": self.batches,
            "words": self.words,
            "busy_seconds": self.busy_seconds,
            "busy_fraction": busy_fraction,
            "queue_depth_p50": _percentile(samples, 50.0),
            "queue_depth_p99": _percentile(samples, 99.0),
            "queue_depth_max": self.max_depth,
        }


class Scoreboard:
    """(batch, stage) completion tracking for every in-flight batch.

    Batches enter at submit, mark each stage as it completes, and retire
    when the final stage finishes.  Stage order is asserted: stage ``k``
    of a batch cannot complete before its stage ``k-1`` — the invariant
    the bounded FIFO queues guarantee by construction, checked here the
    way an issue queue checks operand readiness.
    """

    def __init__(self, num_stages: int) -> None:
        self.num_stages = num_stages
        self._lock = threading.Lock()
        self._inflight: Dict[int, int] = {}
        self.submitted = 0
        self.retired = 0
        self.max_inflight = 0

    def enter(self, seq: int) -> None:
        with self._lock:
            self._inflight[seq] = 0
            self.submitted += 1
            if len(self._inflight) > self.max_inflight:
                self.max_inflight = len(self._inflight)

    def mark(self, seq: int, stage: int) -> None:
        with self._lock:
            state = self._inflight[seq]
            if stage > 0 and not (state >> (stage - 1)) & 1:
                raise AssertionError(
                    f"batch {seq} completed stage {stage} before "
                    f"stage {stage - 1}"
                )
            self._inflight[seq] = state | (1 << stage)
            if stage == self.num_stages - 1:
                del self._inflight[seq]
                self.retired += 1

    @property
    def in_flight(self) -> int:
        with self._lock:
            return len(self._inflight)

    def as_dict(self) -> Dict[str, object]:
        with self._lock:
            return {
                "stages": self.num_stages,
                "submitted": self.submitted,
                "retired": self.retired,
                "in_flight": len(self._inflight),
                "max_inflight": self.max_inflight,
            }


@dataclass
class _Batch:
    """One batch flowing down the stage chain."""

    seq: int
    #: request-fed signals, by name (resolved per stage via the
    #: precomputed external-name tuples).
    externals: Dict[str, np.ndarray]
    future: "Future[SimulationResult]"
    words: int
    #: previous stage's outputs in its PO order (gathered by index).
    carry: Optional[List[np.ndarray]] = None
    #: running statistics reduction across completed stages.
    macro_cycles: int = 0
    clock_cycles: int = 0
    compute_instructions: int = 0
    switch_routes: int = 0
    peak_buffer_words: int = 0
    buffer_writes: int = 0
    failed: bool = False


@dataclass(frozen=True)
class _ChainPlan:
    """Load-time wiring: the manifest's name maps resolved once into
    positional tables, so the steady state does no per-batch name
    resolution."""

    #: stage k's PO names, in graph output order (the carry layout).
    po_order: Tuple[Tuple[str, ...], ...]
    #: stage k's request-fed PI names.
    ext_names: Tuple[Tuple[str, ...], ...]
    #: stage k's wired PI names (sorted, matching the manifest).
    wired_pis: Tuple[Tuple[str, ...], ...]
    #: for each wired PI of stage k, the integer index into stage
    #: k-1's positional carry list.
    wired_index: Tuple[Tuple[int, ...], ...]

    @classmethod
    def from_bundle(cls, bundle) -> "_ChainPlan":
        po_order = tuple(
            tuple(name for name, _ in member.graph.outputs)
            for member in bundle.members
        )
        ext_names = []
        wired_pis = []
        wired_index = []
        for k, link in enumerate(bundle.links):
            ext_names.append(tuple(link.external))
            wired_pis.append(tuple(pi for pi, _ in link.wiring))
            if k == 0:
                wired_index.append(())
            else:
                index = {
                    name: i for i, name in enumerate(po_order[k - 1])
                }
                wired_index.append(
                    tuple(index[po] for _, po in link.wiring)
                )
        return cls(
            po_order=po_order,
            ext_names=tuple(ext_names),
            wired_pis=tuple(wired_pis),
            wired_index=tuple(wired_index),
        )

    def stage_stimulus(
        self,
        k: int,
        externals: Dict[str, np.ndarray],
        carry: Optional[List[np.ndarray]],
    ) -> Dict[str, np.ndarray]:
        stimulus = {name: externals[name] for name in self.ext_names[k]}
        if k > 0:
            assert carry is not None
            for pi, src in zip(self.wired_pis[k], self.wired_index[k]):
                stimulus[pi] = carry[src]
        return stimulus


def _accumulate(batch: _Batch, result: SimulationResult) -> None:
    batch.macro_cycles += result.macro_cycles
    batch.clock_cycles += result.clock_cycles
    batch.compute_instructions += result.compute_instructions_executed
    batch.switch_routes += result.switch_routes
    batch.peak_buffer_words = max(
        batch.peak_buffer_words, result.peak_buffer_words
    )
    batch.buffer_writes += result.buffer_writes


class PipelineExecutor:
    """Stream batches through a bundle's program chain with overlap.

    Args:
        bundle: the :class:`~repro.artifact.bundle.ArtifactBundle`.
        engine: registry engine every stage runs (serving default when
            omitted); one instance per stage, each on its own thread.
        engine_options: engine constructor keywords, applied per stage.
        depth: bound of every inter-stage queue, in batches — the
            backpressure knob (1 = lockstep, larger = more slack).
    """

    def __init__(
        self,
        bundle,
        *,
        engine: Optional[str] = None,
        engine_options: Optional[Dict[str, object]] = None,
        depth: int = DEFAULT_DEPTH,
    ) -> None:
        from ..engine.session import DEFAULT_ENGINE, Session

        if depth < 1:
            raise ValueError("depth must be >= 1")
        self.bundle = bundle
        self.engine_name = engine if engine is not None else DEFAULT_ENGINE
        self.engine_options = (
            dict(engine_options) if engine_options else None
        )
        self.depth = depth
        self.num_stages = bundle.num_stages
        self.external_inputs = frozenset(bundle.external_inputs)

        # One session (one engine) per stage, each private to its thread.
        self._sessions = [
            Session(
                member,
                engine=self.engine_name,
                engine_options=self.engine_options,
            )
            for member in bundle.members
        ]
        #: lazily built serial reference runner (run_serial).
        self._serial_sessions: Optional["SerialChainRunner"] = None

        # Load-time wiring: resolve the manifest's name maps into
        # positional tables once, so no per-batch name lookups happen.
        self._plan = _ChainPlan.from_bundle(bundle)

        self.scoreboard = Scoreboard(self.num_stages)
        self._stage_stats = [
            StageStats(name=link.name, engine=self.engine_name)
            for link in bundle.links
        ]
        self._queues: List["queue.Queue"] = [
            queue.Queue(maxsize=depth) for _ in range(self.num_stages)
        ]
        self._pending_words = 0
        self._pending_lock = threading.Lock()
        self._seq = 0
        self._seq_lock = threading.Lock()
        self._started = time.perf_counter()
        self._closed = False
        self._threads = [
            threading.Thread(
                target=self._worker,
                args=(k,),
                name=f"repro-pipeline-stage-{k}",
                daemon=True,
            )
            for k in range(self.num_stages)
        ]
        for thread in self._threads:
            thread.start()

    # ------------------------------------------------------------------
    # Submission
    # ------------------------------------------------------------------
    def submit(
        self, inputs: Dict[str, np.ndarray]
    ) -> "Future[SimulationResult]":
        """Enqueue one batch; blocks when the first stage's queue is
        full (backpressure).  The Future resolves to the whole-model
        result: final-stage outputs plus statistics aggregated across
        all stages."""
        if self._closed:
            raise RuntimeError("pipeline executor is closed")
        missing = self.external_inputs - inputs.keys()
        if missing:
            raise KeyError(
                f"missing value for primary inputs {sorted(missing)}"
            )
        extra = inputs.keys() - self.external_inputs
        if extra:
            raise KeyError(f"unknown primary inputs {sorted(extra)}")
        externals = {
            name: (
                value
                if type(value) is np.ndarray and value.dtype == _WORD
                else np.asarray(value, dtype=_WORD)
            )
            for name, value in inputs.items()
        }
        words = 0
        for value in externals.values():
            words = int(np.asarray(value).size)
            break
        with self._seq_lock:
            seq = self._seq
            self._seq += 1
        batch = _Batch(
            seq=seq, externals=externals, future=Future(), words=words
        )
        self.scoreboard.enter(seq)
        with self._pending_lock:
            self._pending_words += words
        self._enqueue(0, batch)
        return batch.future

    def run(self, inputs: Dict[str, np.ndarray]) -> SimulationResult:
        """Synchronous single-batch execution through the chain."""
        return self.submit(inputs).result()

    def map(
        self, requests: Sequence[Dict[str, np.ndarray]]
    ) -> List[SimulationResult]:
        """Stream many batches with inter-stage overlap; results return
        in request order."""
        futures = [self.submit(request) for request in requests]
        return [future.result() for future in futures]

    # ------------------------------------------------------------------
    # Serial reference
    # ------------------------------------------------------------------
    def run_serial(
        self, inputs: Dict[str, np.ndarray]
    ) -> SimulationResult:
        """The bit-identity reference: the same chain, one serial
        per-stage :meth:`~repro.engine.session.Session.run` sequence on
        the calling thread (separate engine instances from the pipeline
        stages), with the identical statistics reduction."""
        if self._serial_sessions is None:
            self._serial_sessions = SerialChainRunner(
                self.bundle,
                engine=self.engine_name,
                engine_options=self.engine_options,
            )
        return self._serial_sessions.run(inputs)

    # ------------------------------------------------------------------
    # Statistics
    # ------------------------------------------------------------------
    def stats(self) -> Dict[str, object]:
        """Per-stage occupancy/queue-depth counters plus the scoreboard."""
        wall = time.perf_counter() - self._started
        return {
            "engine": self.engine_name,
            "depth": self.depth,
            "wall_seconds": wall,
            "stages": [
                stage.as_dict(wall) for stage in self._stage_stats
            ],
            "scoreboard": self.scoreboard.as_dict(),
        }

    def reset_stats(self) -> None:
        """Zero the occupancy window (call after warm-up so steady-state
        busy fractions are not diluted by boot time)."""
        for stage in self._stage_stats:
            stage.batches = 0
            stage.words = 0
            stage.busy_seconds = 0.0
            stage.depth_samples.clear()
            stage.max_depth = 0
        self._started = time.perf_counter()

    @property
    def pending_words(self) -> int:
        with self._pending_lock:
            return self._pending_words

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    def close(self) -> None:
        """Drain in-flight batches, then stop the stage threads."""
        if self._closed:
            return
        self._closed = True
        self._queues[0].put(_STOP)
        for thread in self._threads:
            thread.join()

    def __enter__(self) -> "PipelineExecutor":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    # ------------------------------------------------------------------
    # Internals
    # ------------------------------------------------------------------
    def _enqueue(self, k: int, batch: _Batch) -> None:
        self._stage_stats[k].record_depth(self._queues[k].qsize())
        self._queues[k].put(batch)

    def _finalize(
        self, batch: _Batch, last: SimulationResult
    ) -> SimulationResult:
        return SimulationResult(
            outputs=dict(last.outputs),
            macro_cycles=batch.macro_cycles,
            clock_cycles=batch.clock_cycles,
            compute_instructions_executed=batch.compute_instructions,
            switch_routes=batch.switch_routes,
            peak_buffer_words=batch.peak_buffer_words,
            buffer_writes=batch.buffer_writes,
        )

    def _worker(self, k: int) -> None:
        session = self._sessions[k]
        stats = self._stage_stats[k]
        in_q = self._queues[k]
        out_q = self._queues[k + 1] if k + 1 < self.num_stages else None
        last_stage = out_q is None
        while True:
            batch = in_q.get()
            if batch is _STOP:
                if out_q is not None:
                    out_q.put(_STOP)
                return
            if batch.failed:
                # A failed batch still flows to retirement so ordering,
                # the scoreboard, and the shutdown drain stay intact.
                self.scoreboard.mark(batch.seq, k)
                if last_stage:
                    self._retire(batch)
                else:
                    self._enqueue(k + 1, batch)
                continue
            start = time.perf_counter()
            result = None
            try:
                stimulus = self._plan.stage_stimulus(
                    k, batch.externals, batch.carry
                )
                result = session.run(stimulus)
                _accumulate(batch, result)
                if not last_stage:
                    batch.carry = [
                        result.outputs[name]
                        for name in self._plan.po_order[k]
                    ]
            except Exception as exc:  # noqa: BLE001 - fan out per batch
                batch.failed = True
                batch.future.set_exception(exc)
            finally:
                elapsed = time.perf_counter() - start
                stats.batches += 1
                stats.words += batch.words
                stats.busy_seconds += elapsed
            self.scoreboard.mark(batch.seq, k)
            if last_stage:
                self._retire(batch, result if not batch.failed else None)
            else:
                self._enqueue(k + 1, batch)

    def _retire(
        self, batch: _Batch, last: Optional[SimulationResult] = None
    ) -> None:
        with self._pending_lock:
            self._pending_words -= batch.words
        if last is not None:
            batch.future.set_result(self._finalize(batch, last))

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"PipelineExecutor(bundle={self.bundle.name!r}, "
            f"stages={self.num_stages}, engine={self.engine_name!r}, "
            f"depth={self.depth})"
        )


class SerialChainRunner:
    """Serial per-stage execution of a bundle on the calling thread:
    one :class:`~repro.engine.session.Session` per stage, run in stage
    order per batch, statistics reduced exactly as the pipelined path
    reduces them.  This is both the bit-identity reference the executor
    is asserted against and the naive whole-model baseline the serving
    layer is benchmarked over."""

    def __init__(
        self,
        bundle,
        *,
        engine: Optional[str] = None,
        engine_options: Optional[Dict[str, object]] = None,
    ) -> None:
        from ..engine.session import DEFAULT_ENGINE, Session

        self.bundle = bundle
        self.engine_name = engine if engine is not None else DEFAULT_ENGINE
        self._plan = _ChainPlan.from_bundle(bundle)
        self._sessions = [
            Session(
                member,
                engine=self.engine_name,
                engine_options=dict(engine_options) if engine_options
                else None,
            )
            for member in bundle.members
        ]

    def run(self, inputs: Dict[str, np.ndarray]) -> SimulationResult:
        batch = _Batch(
            seq=-1, externals=dict(inputs), future=Future(), words=0
        )
        carry: Optional[List[np.ndarray]] = None
        result: Optional[SimulationResult] = None
        for k, session in enumerate(self._sessions):
            stimulus = self._plan.stage_stimulus(k, batch.externals, carry)
            result = session.run(stimulus)
            _accumulate(batch, result)
            carry = [
                result.outputs[name] for name in self._plan.po_order[k]
            ]
        assert result is not None
        return SimulationResult(
            outputs=dict(result.outputs),
            macro_cycles=batch.macro_cycles,
            clock_cycles=batch.clock_cycles,
            compute_instructions_executed=batch.compute_instructions,
            switch_routes=batch.switch_routes,
            peak_buffer_words=batch.peak_buffer_words,
            buffer_writes=batch.buffer_writes,
        )

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"SerialChainRunner(bundle={self.bundle.name!r}, "
            f"engine={self.engine_name!r})"
        )


class PipelinePool:
    """The executor behind the :class:`~repro.serve.pool.WorkerPool`
    surface, so :class:`~repro.serve.server.InferenceServer` (and with
    it every fabric node and ``repro serve``) serves a whole-model
    bundle through the unchanged scheduler → pool path.  "Workers" here
    are the pipeline stages — one engine each, chained — rather than N
    replicas of one program."""

    def __init__(
        self,
        bundle,
        *,
        engine: Optional[str] = None,
        engine_options: Optional[Dict[str, object]] = None,
        depth: int = DEFAULT_DEPTH,
    ) -> None:
        self.executor = PipelineExecutor(
            bundle,
            engine=engine,
            engine_options=engine_options,
            depth=depth,
        )

    @property
    def num_workers(self) -> int:
        return self.executor.num_stages

    def submit(
        self, inputs: Dict[str, np.ndarray]
    ) -> "Future[SimulationResult]":
        return self.executor.submit(inputs)

    def stats(self) -> Dict[str, object]:
        report = self.executor.stats()
        scoreboard = report["scoreboard"]
        return {
            "backend": "pipeline",
            "placement": "chain",
            "num_workers": self.num_workers,
            "dispatched": scoreboard["submitted"],
            "pending_words": self.executor.pending_words,
            "shared_table_bytes": None,
            "engine": report["engine"],
            "depth": report["depth"],
            "stages": report["stages"],
            "scoreboard": scoreboard,
        }

    def close(self) -> None:
        self.executor.close()

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"PipelinePool({self.executor!r})"
