"""XNOR/binary accelerator baseline (FINN, Table II column "XNOR").

The paper's XNOR baseline is FINN [16] "improve[d] ... by packing
operations".  A binarized layer computes ``popcount(xnor(w, x))`` per
neuron; FINN instantiates matrix-vector units whose throughput is bound by
how many XNOR+popcount bit-operations fit in the LUT budget per cycle.

Model: the fabric sustains ``simd * pe`` XNOR-popcount bit-ops per matrix
unit per cycle; the whole device offers ``binary_ops_per_cycle`` aggregated
over layers (folded execution, one layer at a time, as FINN's dataflow
pipeline does when the model does not fit unfolded).  A binarized MAC is
one XNOR + its share of the popcount tree, costed as ``ops_per_mac``
LUT-ops.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..models.layers import ModelWorkload


@dataclass(frozen=True)
class XNORModel:
    """Analytical performance model of a FINN-style binary accelerator."""

    #: XNOR+popcount bit-operations the fabric completes per clock cycle.
    binary_ops_per_cycle: float = 131072.0  # 128K ops/cycle on a VU9P
    frequency_hz: float = 250e6
    #: LUT-ops charged per binary MAC (XNOR + popcount share).
    ops_per_mac: float = 2.5
    utilization: float = 0.7

    def binary_ops(self, model: ModelWorkload) -> float:
        """Total binary ops per inference (binarized MACs)."""
        return model.total_macs * self.ops_per_mac

    def latency_seconds(self, model: ModelWorkload) -> float:
        sustained = (
            self.binary_ops_per_cycle * self.frequency_hz * self.utilization
        )
        return self.binary_ops(model) / sustained

    def fps(self, model: ModelWorkload) -> float:
        return 1.0 / self.latency_seconds(model)
