"""LogicNets and related fixed-pipeline baselines (Table III).

LogicNets [17] hardens every neuron into LUT-level random logic and
pipelines the whole network: after pipeline fill it produces one result per
clock cycle (initiation interval 1), at the cost of being completely
unchangeable post-synthesis.  The paper is explicit about the trade-off:
"they cannot use the same hardware for the other models ... the former
realization is ideal for building a highly efficient, yet unchangeable,
inference engine whereas the latter [the LPU] is desirable for ... building
inference engines that can be updated after they are deployed in the
field."

The paper compares against *reported* numbers (Section VI-B: "we use the
implementation and the associated performance reported in LogicNets [17],
Google and CERN's optimized implementation [8], and [1]").  We do the same:
:data:`PAPER_REPORTED_FPS` carries Table III's baseline columns verbatim,
and :class:`LogicNetsModel` provides the analytical II=1 model for
configurations without a published number.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional

from ..models.layers import ModelWorkload

#: Table III baseline columns, frames per second (None = not reported).
PAPER_REPORTED_FPS: Dict[str, Dict[str, Optional[float]]] = {
    "NID": {
        "LogicNets": 95.24e6,
        "Google+CERN": None,
        "FINN-MVU": 49.58e6,
        "LPU (paper)": 8.39e6,
    },
    "JSC-M": {
        "LogicNets": 2995.00e6,
        "Google+CERN": None,
        "FINN-MVU": None,
        "LPU (paper)": 0.69e6,
    },
    "JSC-L": {
        "LogicNets": 76.92e6,
        "Google+CERN": 76.92e6,
        "FINN-MVU": None,
        "LPU (paper)": 0.21e6,
    },
}

#: Table II LPU/baseline columns (FPS), for the experiment reports.
PAPER_TABLE2_FPS: Dict[str, Dict[str, float]] = {
    "VGG16": {"MAC": 0.12e3, "NullaDSP": 0.33e3, "XNOR": 0.83e3,
              "LPU (paper)": 103.99e3},
    "LENET5": {"MAC": 0.48e3, "NullaDSP": 4.12e3, "XNOR": 3.31e3,
               "LPU (paper)": 1035.60e3},
    "MLPMixer-S/4": {"MAC": 4.17e3, "XNOR": 50.00e3,
                     "LPU (paper)": 179.23e3},
    "MLPMixer-B/4": {"MAC": 0.88e3, "XNOR": 16.67e3,
                     "LPU (paper)": 102.01e3},
}


@dataclass(frozen=True)
class LogicNetsModel:
    """Analytical model of a fully-unrolled pipelined logic network.

    One result per clock at ``frequency_hz`` once the pipeline is full
    (II = 1); ``parallel_instances`` copies fit until the LUT budget is
    exhausted (tiny models replicate — this is how LogicNets' JSC-M exceeds
    the clock rate in samples/s).
    """

    frequency_hz: float = 384e6
    lut_budget: float = 1_182_000 * 0.7  # usable VU9P LUTs
    luts_per_neuron_per_fanin: float = 2.2

    def luts_required(self, model: ModelWorkload) -> float:
        """LUT cost of hardening the whole network as random logic."""
        return sum(
            self.luts_per_neuron_per_fanin * l.fan_in * l.num_neurons
            for l in model.layers
        )

    def parallel_instances(self, model: ModelWorkload) -> int:
        return max(1, int(self.lut_budget // max(1.0, self.luts_required(model))))

    def fps(self, model: ModelWorkload) -> float:
        """II = 1 per instance, times replicated instances."""
        return self.frequency_hz * self.parallel_instances(model)

    def reprogrammable(self) -> bool:
        """The honest caveat Table III's discussion hinges on."""
        return False
