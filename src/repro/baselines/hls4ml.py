"""Google+CERN hls4ml baseline (Coelho et al. [8], Table III).

"Automatic heterogeneous quantization of deep neural networks for
low-latency inference on the edge for particle detectors" — an hls4ml flow
with per-layer quantization (QKeras), producing a fully-pipelined dataflow
design with a small initiation interval.

The paper cites its reported JSC-L number (76.92 MFPS, matching LogicNets'
clock-rate-bound figure).  The analytical model below covers unreported
points: a dataflow pipeline at ``frequency_hz`` with initiation interval
``initiation_interval`` (II > 1 when reuse factors fold the multipliers).
"""

from __future__ import annotations

from dataclasses import dataclass

from ..models.layers import ModelWorkload


@dataclass(frozen=True)
class HLS4MLModel:
    """Analytical model of an hls4ml fully-pipelined quantized network."""

    frequency_hz: float = 200e6
    initiation_interval: int = 1
    #: DSP budget bounding how small the II can be for a given model.
    dsp_budget: int = 6840
    quant_bits: float = 6.0

    def required_multipliers(self, model: ModelWorkload) -> float:
        """Multipliers needed for a fully-unrolled II=1 design."""
        # One multiplier per weight, applied once per inference position.
        return float(model.total_params)

    def achievable_ii(self, model: ModelWorkload) -> int:
        """Smallest II the DSP budget allows (reuse factor rounding)."""
        need = self.required_multipliers(model)
        return max(
            self.initiation_interval, int((need + self.dsp_budget - 1) // self.dsp_budget)
        )

    def fps(self, model: ModelWorkload) -> float:
        return self.frequency_hz / self.achievable_ii(model)

    def latency_seconds(self, model: ModelWorkload) -> float:
        # Dataflow latency ~ layers x II plus pipeline depth; II dominates
        # the throughput figure the tables report.
        depth = len(model.layers) * 8
        return (depth + self.achievable_ii(model)) / self.frequency_hz
