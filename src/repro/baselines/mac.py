"""MAC-array accelerator baseline (Table II, column "MAC").

The paper's MAC baseline is "the open-source implementation of [14]
(AutoSA/FlexCNN-style end-to-end FPGA accelerator) with some improvements
proposed in [12]", i.e. a DSP-array systolic design.  We model it with the
standard two-bound roofline every such accelerator obeys:

* compute bound: ``2 * MACs / (2 * num_dsps * f_mac)`` — each DSP48
  performs one multiply-accumulate per cycle (2 ops),
* memory bound: weights and activations stream from off-chip DDR
  (Section VI-B: "there is no cost associated with off-chip memories
  [for the LPU] while this is not the case for MAC-based ... implementation").

The default constants are a VU9P-class deployment: 4096 of the 6840 DSPs
usable at 250 MHz, 16 GB/s effective DDR bandwidth, 8-bit weights and
activations, utilization 70%.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..models.layers import ModelWorkload


@dataclass(frozen=True)
class MACArrayModel:
    """Analytical performance model of a DSP-based MAC accelerator."""

    num_dsps: int = 4096
    frequency_hz: float = 250e6
    dram_bandwidth_bytes: float = 16e9
    weight_bits: int = 8
    activation_bits: int = 8
    utilization: float = 0.7

    def compute_seconds(self, model: ModelWorkload) -> float:
        """Time spent in the MAC array per inference."""
        macs_per_second = self.num_dsps * self.frequency_hz * self.utilization
        return model.total_macs / macs_per_second

    def memory_seconds(self, model: ModelWorkload) -> float:
        """Time streaming weights + activations from DRAM per inference."""
        weight_bytes = model.total_params * self.weight_bits / 8
        # Activations: every layer's output feature map travels once.
        activation_values = sum(
            l.num_neurons * l.positions for l in model.layers
        )
        activation_bytes = activation_values * self.activation_bits / 8
        return (weight_bytes + activation_bytes) / self.dram_bandwidth_bytes

    def latency_seconds(self, model: ModelWorkload) -> float:
        """Per-inference latency: the binding roofline term."""
        return max(self.compute_seconds(model), self.memory_seconds(model))

    def fps(self, model: ModelWorkload) -> float:
        return 1.0 / self.latency_seconds(model)

    def bound(self, model: ModelWorkload) -> str:
        """Which roofline term binds ("compute" or "memory")."""
        if self.compute_seconds(model) >= self.memory_seconds(model):
            return "compute"
        return "memory"
