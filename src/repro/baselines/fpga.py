"""FPGA resource model of the LPU (reproduces Table I).

The paper reports, for LPV count 16 on a Xilinx VU9P: 478K FF (20.2%),
433K LUT (36.7%), 12240 Kb BRAM (15.8%), 333 MHz.  This model derives those
numbers from the architecture instead of hard-coding them:

* per LPE: a 2m-bit-wide logic unit (one LUT per operand bit), two
  snapshot registers (2 x 2m FF), and two 4:1 operand-port muxes
  (~2 x 2m LUTs per LPE including instruction decode),
* per switch stage: pipeline registers and routing muxes for all 2m
  operand ports of 2m bits each (the 5-stage non-blocking multicast
  network is the dominant cost, which is why t_sw = 5 buys so much
  routability),
* per LPV block: six instruction queues (Fig. 6) of 32-bit instructions
  times m LPEs times the queue capacity, plus input/output data buffer
  slices, in BRAM.

With the default constants the n=16, m=32 configuration lands on the
paper's utilization within a few percent (the tests pin this).
"""

from __future__ import annotations

from dataclasses import dataclass

from ..core.config import LPUConfig

#: Xilinx VU9P totals (UltraScale+ XCVU9P).
VU9P_FF = 2_364_000
VU9P_LUT = 1_182_000
VU9P_BRAM_KB = 77_472  # 75.9 Mb


@dataclass(frozen=True)
class ResourceEstimate:
    """Estimated utilization of one LPU configuration."""

    flip_flops: int
    luts: int
    bram_kb: int
    frequency_hz: float

    @property
    def ff_fraction(self) -> float:
        return self.flip_flops / VU9P_FF

    @property
    def lut_fraction(self) -> float:
        return self.luts / VU9P_LUT

    @property
    def bram_fraction(self) -> float:
        return self.bram_kb / VU9P_BRAM_KB

    def fits(self) -> bool:
        return (
            self.ff_fraction <= 1.0
            and self.lut_fraction <= 1.0
            and self.bram_fraction <= 1.0
        )

    def __str__(self) -> str:
        return (
            f"FF {self.flip_flops / 1e3:.0f}K ({self.ff_fraction:.1%}), "
            f"LUT {self.luts / 1e3:.0f}K ({self.lut_fraction:.1%}), "
            f"BRAM {self.bram_kb}Kb ({self.bram_fraction:.1%}), "
            f"{self.frequency_hz / 1e6:.0f} MHz"
        )


@dataclass(frozen=True)
class LPUResourceModel:
    """Derives FPGA resource usage from LPU architecture parameters."""

    instruction_bits: int = 32
    queue_capacity: int = 512  # instructions per queue memory
    buffer_kb_per_lpv: int = 253  # input/output data buffer slices
    base_frequency_hz: float = 333e6
    control_ff_per_lpv: int = 3251
    control_lut_per_lpv: int = 438

    def estimate(self, config: LPUConfig) -> ResourceEstimate:
        m = config.m
        n = config.n
        word = config.word_bits  # 2m

        # LPEs: snapshots (2 x word FF) + output register (word FF),
        # logic unit (word LUTs) + two port muxes (2 x word LUTs).
        lpe_ff = 3 * word
        lpe_lut = word + 2 * word
        # Switch: per stage, all 2m destination ports x word bits of
        # pipeline register + ~1 LUT/bit of routing mux.
        switch_ff = config.switch_stages * 2 * m * word
        switch_lut = config.switch_stages * 2 * m * word
        per_lpv_ff = m * lpe_ff + switch_ff + self.control_ff_per_lpv
        per_lpv_lut = m * lpe_lut + switch_lut + self.control_lut_per_lpv

        # Instruction queues: t_c memories per LPV block (Fig. 6), each
        # holding queue_capacity instruction vectors... amortized as one
        # m-wide vector memory per LPV plus the shift register.
        queue_bits = m * self.instruction_bits * self.queue_capacity
        per_lpv_bram_kb = queue_bits // 1024 + self.buffer_kb_per_lpv

        frequency = self.base_frequency_hz
        if m > 32:
            # Bigger switch radix stretches the critical path.
            frequency *= (32.0 / m) ** 0.25

        return ResourceEstimate(
            flip_flops=n * per_lpv_ff,
            luts=n * per_lpv_lut,
            bram_kb=n * per_lpv_bram_kb,
            frequency_hz=frequency,
        )


#: The paper's Table I row for reference.
PAPER_TABLE1 = {
    "FF": 478_000,
    "FF%": 0.202,
    "LUT": 433_000,
    "LUT%": 0.367,
    "BRAM_Kb": 12_240,
    "BRAM%": 0.158,
    "FREQ_Hz": 333e6,
}
