"""Baseline accelerator performance models and the FPGA resource model.

The Table II/III comparisons follow the paper's own method: baseline
columns are the published numbers the paper cites (carried verbatim in
:mod:`repro.baselines.logicnets`), while the analytical models here supply
the formulas behind them and cover unreported configurations.
"""

from .fpga import (
    LPUResourceModel,
    PAPER_TABLE1,
    ResourceEstimate,
    VU9P_BRAM_KB,
    VU9P_FF,
    VU9P_LUT,
)
from .hls4ml import HLS4MLModel
from .logicnets import (
    LogicNetsModel,
    PAPER_REPORTED_FPS,
    PAPER_TABLE2_FPS,
)
from .mac import MACArrayModel
from .nulladsp import NullaDSPModel
from .xnor import XNORModel

__all__ = [
    "LPUResourceModel",
    "PAPER_TABLE1",
    "ResourceEstimate",
    "VU9P_BRAM_KB",
    "VU9P_FF",
    "VU9P_LUT",
    "HLS4MLModel",
    "LogicNetsModel",
    "PAPER_REPORTED_FPS",
    "PAPER_TABLE2_FPS",
    "MACArrayModel",
    "NullaDSPModel",
    "XNORModel",
]
