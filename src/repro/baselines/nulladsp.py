"""NullaDSP baseline (Shahsavani et al. [12], Table II column "NullaDSP").

NullaDSP maps NullaNet-generated FFCL onto the FPGA's DSP48 blocks: each
DSP's 48-bit ALU executes bitwise logic on 48 packed samples per cycle, and
the FFCL's gates are scheduled onto the DSP array level by level, with
intermediate values spilled through the register file / BRAM (the paper:
"this is not the case for MAC-based and NullaDSP implementation" regarding
off-chip traffic — NullaDSP pays data-movement overhead between levels).

Model: the FFCL gate count of a model is derived from the same per-neuron
logic statistics the LPU workload uses (gates-per-neuron as a function of
fan-in), so both sides of the comparison share one workload definition.
Throughput per cycle is ``num_dsps * 48`` gate-evaluations on packed
samples, derated by a scheduling efficiency factor that accounts for level
serialization and operand movement.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict

from ..models.layers import ModelWorkload
from ..models.workloads import neuron_graph


@dataclass(frozen=True)
class NullaDSPModel:
    """Analytical performance model of DSP-mapped FFCL execution."""

    num_dsps: int = 4096
    frequency_hz: float = 300e6
    packed_lanes: int = 48  # DSP48 ALU width
    #: fraction of peak gate-throughput actually sustained (level
    #: serialization, operand routing through BRAM).
    scheduling_efficiency: float = 0.08

    def gates_per_neuron(self, fan_in: int, seed: int = 0) -> int:
        """Gate count of one neuron's FFCL (shared with the LPU workload)."""
        return neuron_graph(fan_in, seed).num_gates

    def model_gate_evals(self, model: ModelWorkload) -> float:
        """Total gate evaluations per inference (all neurons, all
        positions)."""
        total = 0.0
        cache: Dict[int, int] = {}
        for layer in model.layers:
            if layer.fan_in not in cache:
                cache[layer.fan_in] = self.gates_per_neuron(layer.fan_in)
            total += cache[layer.fan_in] * layer.num_neurons * layer.positions
        return total

    def cycles_per_pass(self, model: ModelWorkload) -> float:
        """Cycles to evaluate the whole model once on ``packed_lanes``
        packed samples."""
        sustained = self.num_dsps * self.scheduling_efficiency
        return self.model_gate_evals(model) / sustained

    def latency_seconds(self, model: ModelWorkload) -> float:
        return self.cycles_per_pass(model) / self.frequency_hz

    def fps(self, model: ModelWorkload) -> float:
        """Throughput with samples packed into the 48 DSP ALU lanes."""
        return self.packed_lanes / self.latency_seconds(model)
