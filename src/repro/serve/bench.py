"""The serve-bench driver: serving layer vs. naive per-request execution.

One measurement procedure shared by the ``repro serve-bench`` CLI and
``benchmarks/bench_serve_throughput.py``:

1. compile (through the program cache) and pre-generate ``requests``
   random stimuli of ``array_size`` words each,
2. **naive baseline** — one compile-once :class:`~repro.engine.session.
   Session`, one engine run per request, sequentially (what every caller
   had to hand-roll before the serving layer existed),
3. **served** — an :class:`~repro.serve.server.InferenceServer` under
   ``clients`` concurrent open-loop client threads, each submitting its
   share of the requests and gathering the results,
4. verify every served output is bit-identical to its naive counterpart,
5. report requests/second for both, the speedup, and the scheduler /
   pool / cache statistics.
"""

from __future__ import annotations

import time
from concurrent.futures import ThreadPoolExecutor
from typing import Dict, List, Optional, Union

import numpy as np

from ..artifact.format import ExecutableArtifact
from ..core.codegen import Program
from ..core.config import LPUConfig
from ..engine.base import SAMPLES_PER_WORD
from ..engine.session import Session
from ..lpu.functional import random_stimulus
from ..netlist.graph import LogicGraph
from .config import ServeConfig, resolve_serving
from .server import InferenceServer

__all__ = ["run_serve_bench"]

#: the bench's historical serving defaults (tighter batching deadline,
#: two workers) — applied when no explicit ``serving=`` is given.
_BENCH_DEFAULTS = {"num_workers": 2, "max_wait_ms": 1.0}


def run_serve_bench(
    source: Union[LogicGraph, Program, "ExecutableArtifact"],
    config: Optional[LPUConfig] = None,
    *,
    serving: Optional[ServeConfig] = None,
    requests: int = 256,
    array_size: int = 2,
    clients: int = 8,
    seed: int = 0,
    verify: bool = True,
    **kwargs,
) -> Dict[str, object]:
    """Measure served vs. naive throughput; returns a JSON-able report."""
    if requests < 1:
        raise ValueError("requests must be >= 1")
    if clients < 1:
        raise ValueError("clients must be >= 1")
    from ..artifact.bundle import ArtifactBundle

    serving, compile_options = resolve_serving(
        serving, kwargs, defaults=_BENCH_DEFAULTS
    )
    engine = serving.engine
    cache = serving.resolve_cache()
    # Pin the resolved cache and merged compile options so the server
    # below resolves through the same entry (a guaranteed cache hit).
    serving = serving.replace(
        cache=cache, compile_options=dict(compile_options)
    )
    is_bundle = isinstance(source, ArtifactBundle)
    if is_bundle:
        # A bundle arrives fully compiled: nothing to resolve through
        # the cache, and the whole-model cost is the summed per-stage
        # schedule makespan.
        graph = source.reference_graph()
        macro_cycles_per_run = sum(
            member.program.schedule.makespan for member in source.members
        )
    else:
        entry = cache.get_or_compile(
            source, config, engine=engine, **compile_options
        )
        program = entry.program
        graph = program.graph
        macro_cycles_per_run = program.schedule.makespan
    stimuli = [
        random_stimulus(graph, array_size=array_size, seed=seed + i)
        for i in range(requests)
    ]

    # Naive baseline: compile-once, one engine run per request — for a
    # bundle, the stages run serially with no inter-stage overlap.
    if is_bundle:
        from ..pipeline import SerialChainRunner

        runner = SerialChainRunner(
            source, engine=engine,
            engine_options=dict(serving.engine_options) or None,
        )
        naive_run = runner.run
    else:
        session = Session(
            program, engine=engine,
            engine_options=dict(serving.engine_options) or None,
        )
        naive_run = session.run
    naive_run(stimuli[0])  # warm-up
    start = time.perf_counter()
    naive_results = [naive_run(stim) for stim in stimuli]
    naive_seconds = time.perf_counter() - start

    # Served: concurrent open-loop clients over one InferenceServer.
    # The original source goes back through the cache (a guaranteed hit)
    # so artifact-backed entries keep their bytes for spawn workers.
    server = InferenceServer(source, config, serving=serving)
    try:
        server.infer(stimuli[0])  # warm-up

        def client(indices: List[int]) -> List:
            futures = [(i, server.submit(stimuli[i])) for i in indices]
            return [(i, future.result()) for i, future in futures]

        shards = [list(range(c, requests, clients)) for c in range(clients)]
        shards = [shard for shard in shards if shard]
        start = time.perf_counter()
        with ThreadPoolExecutor(len(shards)) as executor:
            gathered = list(executor.map(client, shards))
        served_seconds = time.perf_counter() - start
        stats = server.stats()
    finally:
        server.close()

    served_results: Dict[int, object] = {
        i: result for shard in gathered for i, result in shard
    }
    bit_identical = True
    if verify:
        for i, naive in enumerate(naive_results):
            served = served_results[i]
            for name, word in naive.outputs.items():
                if not np.array_equal(served.outputs[name], word):
                    bit_identical = False
            if naive.macro_cycles != served.macro_cycles:
                bit_identical = False

    naive_rps = requests / naive_seconds if naive_seconds > 0 else None
    served_rps = requests / served_seconds if served_seconds > 0 else None
    pool_stats = stats["pool"]
    # Per-stage pipeline occupancy (busy fraction, queue-depth
    # percentiles) surfaces alongside the scheduler wait histograms
    # whenever the pool is the pipeline adapter.
    pipeline = (
        {
            "depth": pool_stats["depth"],
            "stages": pool_stats["stages"],
            "scoreboard": pool_stats["scoreboard"],
        }
        if pool_stats.get("backend") == "pipeline"
        else None
    )
    return {
        "graph": graph.name,
        "engine": engine,
        "requests": requests,
        "array_size": array_size,
        "samples_per_request": SAMPLES_PER_WORD * array_size,
        "clients": clients,
        "num_workers": serving.num_workers,
        "max_batch_size": serving.max_batch_size,
        "max_wait_ms": serving.max_wait_ms,
        "placement": serving.placement,
        "backend": serving.backend,
        "macro_cycles_per_run": macro_cycles_per_run,
        "naive": {
            "seconds": naive_seconds,
            "requests_per_second": naive_rps,
        },
        "served": {
            "seconds": served_seconds,
            "requests_per_second": served_rps,
        },
        "speedup": (
            naive_seconds / served_seconds if served_seconds > 0 else None
        ),
        "bit_identical": bit_identical if verify else None,
        "scheduler": stats["scheduler"],
        "pool": pool_stats,
        "pipeline": pipeline,
        "cache": stats["cache"],
    }
