"""Sharding batches across parallel engine workers.

A :class:`WorkerPool` owns N engine instances over ONE compiled program and
places incoming batches on them with a configurable policy:

* ``"round_robin"`` — cycle through the workers,
* ``"least_loaded"`` — place on the worker with the fewest outstanding
  operand words.

Workers are **thread-backed** by default: trace execution is numpy-bound,
so worker threads overlap the vector kernels while sharing one lowered
:class:`~repro.core.trace.TraceProgram` (see the lowering cache in
:mod:`repro.core.trace` — lowering is paid once, not once per worker).
Two **process-backed** modes sidestep the interpreter lock entirely at
the cost of pickling batches across the process boundary:

* ``backend="fork"`` — the program reaches the children through fork
  inheritance (POSIX fork platforms only),
* ``backend="spawn"`` — start-method independent: each child receives
  the serialized :class:`~repro.artifact.format.ExecutableArtifact`
  bytes and boots its engine from them, so no compiled Python object
  ever crosses the process boundary.

``backend="process"`` resolves to whichever of the two the platform's
multiprocessing start methods support (fork where available, else the
artifact-based spawn path) instead of silently assuming fork.

As with any spawn-based ``multiprocessing`` use, a script creating a
spawn pool at import time must guard it with ``if __name__ ==
"__main__":`` — spawn children re-import the main module.
"""

from __future__ import annotations

import multiprocessing
import queue
import threading
from concurrent.futures import Future, ProcessPoolExecutor
from typing import Dict, List, Optional, Union

import numpy as np

from ..artifact.format import ExecutableArtifact
from ..core.codegen import Program
from ..engine.base import engine_uses_trace
from ..engine.session import DEFAULT_ENGINE, Session
from ..lpu.simulator import SimulationResult

__all__ = ["BACKENDS", "PLACEMENTS", "WorkerPool"]

PLACEMENTS = ("round_robin", "least_loaded")
BACKENDS = ("thread", "process", "fork", "spawn")

_STOP = object()


class _ThreadWorker:
    """One worker thread owning one engine-bound session."""

    def __init__(
        self,
        index: int,
        program: Program,
        engine: str,
        engine_options: Optional[Dict[str, object]] = None,
    ) -> None:
        self.index = index
        self.session = Session(
            program, engine=engine, engine_options=engine_options
        )
        self._queue: "queue.SimpleQueue" = queue.SimpleQueue()
        self._thread = threading.Thread(
            target=self._loop, name=f"repro-worker-{index}", daemon=True
        )
        self._thread.start()

    def submit(
        self, inputs: Dict[str, np.ndarray]
    ) -> "Future[SimulationResult]":
        future: "Future[SimulationResult]" = Future()
        self._queue.put((inputs, future))
        return future

    def submit_call(self, fn) -> "Future":
        """Run ``fn(session)`` on the worker thread, in queue order with
        submitted batches (the streaming layer's stateful entry point)."""
        future: "Future" = Future()
        self._queue.put((fn, future))
        return future

    def close(self) -> None:
        self._queue.put(_STOP)
        self._thread.join()

    def _loop(self) -> None:
        while True:
            item = self._queue.get()
            if item is _STOP:
                return
            task, future = item
            if not future.set_running_or_notify_cancel():
                continue
            try:
                if callable(task):
                    future.set_result(task(self.session))
                else:
                    future.set_result(self.session.run(task))
            except Exception as exc:  # noqa: BLE001 - delivered via future
                future.set_exception(exc)


# -- process backends ---------------------------------------------------
# Fork mode: the program reaches the child through fork inheritance
# (initargs are not pickled under the fork start method); only batches and
# results cross the process boundary.  Spawn mode: the child receives the
# serialized artifact bytes and rebuilds its session from them — no
# compiled Python object crosses the boundary, so it works under every
# start method.
_PROC_SESSION: Optional[Session] = None
#: the attached shared-table arena, pinned for the process lifetime so
#: the segment mapping outlives every run (spawn workers only).
_PROC_ARENA = None


def _proc_initializer(
    program: Program, engine: str, engine_options=None
) -> None:
    global _PROC_SESSION
    _PROC_SESSION = Session(
        program, engine=engine, engine_options=engine_options
    )


def _spawn_initializer(
    artifact_bytes: bytes,
    engine: str,
    arena_handle=None,
    engine_options=None,
) -> None:
    global _PROC_SESSION, _PROC_ARENA
    artifact = ExecutableArtifact.from_bytes(artifact_bytes)
    if arena_handle is not None and artifact.fused is not None:
        # Attach the parent's shared index tables and swap our private
        # decoded copies for zero-copy views *before* the engine boots,
        # so kernel generation and workspaces bind the shared tables.
        from ..engine.arena import SharedTableArena

        _PROC_ARENA = SharedTableArena.attach(arena_handle)
        _PROC_ARENA.rebind(artifact.fused_program())
    _PROC_SESSION = artifact.session(
        engine=engine, engine_options=engine_options
    )


def _proc_run(inputs: Dict[str, np.ndarray]) -> SimulationResult:
    assert _PROC_SESSION is not None, "worker process not initialized"
    return _PROC_SESSION.run(inputs)


class _ProcessWorker:
    """One worker backed by a single-process executor (its own queue, so
    pool-level placement stays in charge of sharding)."""

    def __init__(
        self,
        index: int,
        program: Program,
        engine: str,
        engine_options: Optional[Dict[str, object]] = None,
    ) -> None:
        self.index = index
        context = multiprocessing.get_context("fork")
        self._executor = ProcessPoolExecutor(
            max_workers=1,
            mp_context=context,
            initializer=_proc_initializer,
            initargs=(program, engine, engine_options),
        )

    def submit(
        self, inputs: Dict[str, np.ndarray]
    ) -> "Future[SimulationResult]":
        return self._executor.submit(_proc_run, inputs)

    def close(self) -> None:
        self._executor.shutdown(wait=True)


class _SpawnWorker:
    """One spawn-started worker booting from shipped artifact bytes."""

    def __init__(
        self,
        index: int,
        artifact_bytes: bytes,
        engine: str,
        arena_handle=None,
        engine_options: Optional[Dict[str, object]] = None,
    ) -> None:
        self.index = index
        context = multiprocessing.get_context("spawn")
        self._executor = ProcessPoolExecutor(
            max_workers=1,
            mp_context=context,
            initializer=_spawn_initializer,
            initargs=(artifact_bytes, engine, arena_handle, engine_options),
        )

    def submit(
        self, inputs: Dict[str, np.ndarray]
    ) -> "Future[SimulationResult]":
        return self._executor.submit(_proc_run, inputs)

    def close(self) -> None:
        self._executor.shutdown(wait=True)


class WorkerPool:
    """N engine workers over one program, with batch placement.

    Args:
        program: the compiled program every worker executes.
        num_workers: engine instances (threads or processes).
        engine: registered engine name each worker runs.
        engine_options: engine constructor keywords forwarded to every
            worker's session (see :func:`repro.engine.create_engine`);
            must be picklable for the process backends.
        placement: ``"round_robin"`` or ``"least_loaded"``.
        backend: ``"thread"`` (default), ``"fork"`` (process workers via
            fork inheritance, POSIX only), ``"spawn"`` (process workers
            booted from serialized artifact bytes, start-method
            independent), or ``"process"`` (fork where the platform
            supports it, otherwise the spawn path).
        artifact: optional pre-serialized executable for the spawn
            backend (one is packaged from ``program`` when omitted).
        share_tables: publish the fused program's constant index tables
            in a :class:`~repro.engine.arena.SharedTableArena` so spawn
            workers attach zero-copy views instead of each holding a
            private decoded copy.  Spawn-only: thread workers share the
            tables natively and fork workers inherit them copy-on-write,
            so the flag is a no-op there.
    """

    def __init__(
        self,
        program: Program,
        *,
        num_workers: int = 2,
        engine: str = DEFAULT_ENGINE,
        engine_options: Optional[Dict[str, object]] = None,
        placement: str = "round_robin",
        backend: str = "thread",
        artifact: Optional[ExecutableArtifact] = None,
        share_tables: bool = False,
    ) -> None:
        if num_workers < 1:
            raise ValueError("num_workers must be >= 1")
        if placement not in PLACEMENTS:
            raise ValueError(
                f"unknown placement {placement!r}; available: {PLACEMENTS}"
            )
        if backend not in BACKENDS:
            raise ValueError(
                f"unknown backend {backend!r}; available: {BACKENDS}"
            )
        start_methods = multiprocessing.get_all_start_methods()
        if backend == "process":
            # Resolve the generic request instead of assuming fork: on
            # platforms without it (Windows; macOS defaults away from it)
            # the artifact-based spawn path serves transparently.
            backend = "fork" if "fork" in start_methods else "spawn"
        if backend == "fork" and "fork" not in start_methods:
            raise RuntimeError(
                "the fork worker backend needs the 'fork' start method, "
                f"which this platform does not provide ({start_methods}); "
                "use backend='spawn' (artifact-shipping) or "
                "backend='thread' instead"
            )
        self.program = program
        self.engine = engine
        self.engine_options = (
            dict(engine_options) if engine_options else None
        )
        engine_options = self.engine_options
        self.placement = placement
        self.backend = backend
        self.artifact = artifact
        self._arena = None
        workers: List[Union[_ThreadWorker, _ProcessWorker, _SpawnWorker]]
        if backend == "spawn":
            if artifact is None:
                self.artifact = artifact = ExecutableArtifact.from_program(
                    program, lower=engine_uses_trace(engine)
                )
            elif artifact.program is not program:
                raise ValueError(
                    "the supplied artifact packages a different program "
                    "than this pool executes"
                )
            artifact_bytes = artifact.to_bytes()
            arena_handle = None
            if share_tables and artifact.fused is not None:
                from ..engine.arena import SharedTableArena

                self._arena = SharedTableArena.publish(artifact.fused)
                arena_handle = self._arena.handle()
            workers = [
                _SpawnWorker(
                    i, artifact_bytes, engine, arena_handle,
                    engine_options,
                )
                for i in range(num_workers)
            ]
        elif backend == "fork":
            workers = [
                _ProcessWorker(i, program, engine, engine_options)
                for i in range(num_workers)
            ]
        else:
            workers = [
                _ThreadWorker(i, program, engine, engine_options)
                for i in range(num_workers)
            ]
        self._workers = workers
        self._lock = threading.Lock()
        self._next = 0
        self._pending_words = [0] * num_workers
        self._dispatched = [0] * num_workers
        self._closed = False

    # ------------------------------------------------------------------
    @property
    def num_workers(self) -> int:
        return len(self._workers)

    def submit(
        self, inputs: Dict[str, np.ndarray]
    ) -> "Future[SimulationResult]":
        """Place one batch on a worker; resolves to the batch's result."""
        words = 0
        for value in inputs.values():
            words = int(np.asarray(value).size)
            break
        with self._lock:
            if self._closed:
                raise RuntimeError("worker pool is closed")
            if self.placement == "round_robin":
                index = self._next
                self._next = (self._next + 1) % len(self._workers)
            else:  # least_loaded
                index = min(
                    range(len(self._workers)),
                    key=lambda i: (self._pending_words[i], i),
                )
            self._pending_words[index] += words
            self._dispatched[index] += 1
            # Enqueue while still holding the lock: a close() racing in
            # after the closed-check would stop the worker and strand
            # this request's future unresolved forever.
            future = self._workers[index].submit(inputs)

        def _done(_future, index=index, words=words):
            with self._lock:
                self._pending_words[index] -= words

        future.add_done_callback(_done)
        return future

    def run(self, inputs: Dict[str, np.ndarray]) -> SimulationResult:
        """Synchronous convenience wrapper around :meth:`submit`."""
        return self.submit(inputs).result()

    def submit_call(self, index: int, fn) -> "Future":
        """Run ``fn(session)`` on worker ``index`` (thread backend only).

        The callable executes on the worker's own thread, FIFO-ordered
        with that worker's batches — the hook sticky streaming sessions
        (:class:`repro.serve.stream.StreamSession`) use to drive per-state
        engine calls without cross-thread workspace sharing.  Process
        backends would have to pickle the callable and the engine state;
        they raise instead.
        """
        if self.backend != "thread":
            raise RuntimeError(
                "submit_call needs the thread worker backend; "
                f"this pool runs backend={self.backend!r}"
            )
        with self._lock:
            if self._closed:
                raise RuntimeError("worker pool is closed")
            self._dispatched[index] += 1
            # Enqueue under the lock for the same close()-race reason
            # as submit().
            return self._workers[index].submit_call(fn)

    def stats(self) -> Dict[str, object]:
        with self._lock:
            return {
                "backend": self.backend,
                "placement": self.placement,
                "num_workers": len(self._workers),
                "dispatched": list(self._dispatched),
                "pending_words": list(self._pending_words),
                "shared_table_bytes": (
                    self._arena.size if self._arena is not None else 0
                ),
            }

    def close(self) -> None:
        with self._lock:
            if self._closed:
                return
            self._closed = True
        for worker in self._workers:
            worker.close()
        if self._arena is not None:
            # Workers have exited (their mappings are gone); the owner
            # now detaches and unlinks the segment.
            self._arena.close()
            self._arena = None

    def __enter__(self) -> "WorkerPool":
        return self

    def __exit__(self, *exc) -> None:
        self.close()
