"""Sharding batches across parallel engine workers, under supervision.

A :class:`WorkerPool` owns N engine instances over ONE compiled program and
places incoming batches on them with a configurable policy:

* ``"round_robin"`` — cycle through the workers,
* ``"least_loaded"`` — place on the worker with the fewest outstanding
  operand words.

Workers are **thread-backed** by default: trace execution is numpy-bound,
so worker threads overlap the vector kernels while sharing one lowered
:class:`~repro.core.trace.TraceProgram` (see the lowering cache in
:mod:`repro.core.trace` — lowering is paid once, not once per worker).
Two **process-backed** modes sidestep the interpreter lock entirely at
the cost of pickling batches across the process boundary:

* ``backend="fork"`` — the program reaches the children through fork
  inheritance (POSIX fork platforms only),
* ``backend="spawn"`` — start-method independent: each child receives
  the serialized :class:`~repro.artifact.format.ExecutableArtifact`
  bytes and boots its engine from them, so no compiled Python object
  ever crosses the process boundary.

``backend="process"`` resolves to whichever of the two the platform's
multiprocessing start methods support (fork where available, else the
artifact-based spawn path) instead of silently assuming fork.

**Supervision.**  A crashed worker process (OOM kill, segfault in a
native kernel, operator ``kill -9``) used to leave its single-process
executor permanently broken: every batch already in flight failed, and
every future batch placed on that slot failed too.  The pool now
supervises its workers: a death signature on a batch future
(``BrokenProcessPool`` / broken pipe / :class:`~repro.serve.faults.
WorkerCrashed`) triggers a restart of that worker — rehydrated from the
same program / artifact bytes / shared-table arena handle it originally
booted from — and the dead worker's in-flight batches are re-placed on
the fresh instance.  Re-execution is safe because inference is pure and
bit-deterministic: a re-placed batch produces the same words the lost
one would have.  Restart counts surface in :meth:`WorkerPool.stats`;
each batch is retried at most ``max_batch_retries`` times so a
deterministically-crashing workload still fails loudly instead of
respawning forever.

As with any spawn-based ``multiprocessing`` use, a script creating a
spawn pool at import time must guard it with ``if __name__ ==
"__main__":`` — spawn children re-import the main module.
"""

from __future__ import annotations

import multiprocessing
import os
import queue
import threading
from concurrent.futures import Future, ProcessPoolExecutor
from concurrent.futures.process import BrokenProcessPool
from typing import Dict, List, Optional, Union

import numpy as np

from ..artifact.format import ExecutableArtifact
from ..core.codegen import Program
from ..engine.base import engine_uses_trace
from ..engine.session import DEFAULT_ENGINE, Session
from ..lpu.simulator import SimulationResult
from .faults import FaultInjector, WorkerCrashed

__all__ = ["BACKENDS", "PLACEMENTS", "WORKER_DEATH_EXCEPTIONS", "WorkerPool"]

PLACEMENTS = ("round_robin", "least_loaded")
BACKENDS = ("thread", "process", "fork", "spawn")

#: exception types on a batch future that mean "the worker died", not
#: "the batch was bad" — the supervisor restarts the worker and
#: re-places the batch instead of failing the caller.
WORKER_DEATH_EXCEPTIONS = (
    BrokenProcessPool,
    BrokenPipeError,
    EOFError,
    ConnectionResetError,
    WorkerCrashed,
)

_STOP = object()


class _ThreadWorker:
    """One worker thread owning one engine-bound session."""

    def __init__(
        self,
        index: int,
        program: Program,
        engine: str,
        engine_options: Optional[Dict[str, object]] = None,
    ) -> None:
        self.index = index
        self.session = Session(
            program, engine=engine, engine_options=engine_options
        )
        self._poisoned = False
        self._queue: "queue.SimpleQueue" = queue.SimpleQueue()
        self._thread = threading.Thread(
            target=self._loop, name=f"repro-worker-{index}", daemon=True
        )
        self._thread.start()

    def submit(
        self, inputs: Dict[str, np.ndarray]
    ) -> "Future[SimulationResult]":
        future: "Future[SimulationResult]" = Future()
        self._queue.put((inputs, future))
        return future

    def submit_call(self, fn) -> "Future":
        """Run ``fn(session)`` on the worker thread, in queue order with
        submitted batches (the streaming layer's stateful entry point)."""
        future: "Future" = Future()
        self._queue.put((fn, future))
        return future

    def kill(self) -> None:
        """Simulate a crash: the next task dies with
        :class:`WorkerCrashed` (threads cannot die for real, so fault
        injection poisons them instead — the supervisor path is
        identical either way)."""
        self._poisoned = True

    def close(self) -> None:
        self._queue.put(_STOP)
        self._thread.join()

    def _loop(self) -> None:
        while True:
            item = self._queue.get()
            if item is _STOP:
                return
            task, future = item
            if not future.set_running_or_notify_cancel():
                continue
            if self._poisoned:
                future.set_exception(
                    WorkerCrashed(
                        f"worker {self.index} crashed (injected)"
                    )
                )
                continue
            try:
                if callable(task):
                    future.set_result(task(self.session))
                else:
                    future.set_result(self.session.run(task))
            except Exception as exc:  # noqa: BLE001 - delivered via future
                future.set_exception(exc)


# -- process backends ---------------------------------------------------
# Fork mode: the program reaches the child through fork inheritance
# (initargs are not pickled under the fork start method); only batches and
# results cross the process boundary.  Spawn mode: the child receives the
# serialized artifact bytes and rebuilds its session from them — no
# compiled Python object crosses the boundary, so it works under every
# start method.
_PROC_SESSION: Optional[Session] = None
#: the attached shared-table arena, pinned for the process lifetime so
#: the segment mapping outlives every run (spawn workers only).
_PROC_ARENA = None


def _proc_initializer(
    program: Program, engine: str, engine_options=None
) -> None:
    global _PROC_SESSION
    _PROC_SESSION = Session(
        program, engine=engine, engine_options=engine_options
    )


def _spawn_initializer(
    artifact_bytes: bytes,
    engine: str,
    arena_handle=None,
    engine_options=None,
) -> None:
    global _PROC_SESSION, _PROC_ARENA
    artifact = ExecutableArtifact.from_bytes(artifact_bytes)
    if arena_handle is not None and artifact.fused is not None:
        # Attach the parent's shared index tables and swap our private
        # decoded copies for zero-copy views *before* the engine boots,
        # so kernel generation and workspaces bind the shared tables.
        from ..engine.arena import SharedTableArena

        _PROC_ARENA = SharedTableArena.attach(arena_handle)
        _PROC_ARENA.rebind(artifact.fused_program())
    _PROC_SESSION = artifact.session(
        engine=engine, engine_options=engine_options
    )


def _proc_run(inputs: Dict[str, np.ndarray]) -> SimulationResult:
    assert _PROC_SESSION is not None, "worker process not initialized"
    return _PROC_SESSION.run(inputs)


def _proc_die() -> None:  # pragma: no cover - runs in the child
    """Injected crash for a process worker with no live child yet."""
    os._exit(1)


class _ProcessWorkerBase:
    """Shared kill/close mechanics of the single-process executors."""

    index: int
    _executor: ProcessPoolExecutor

    def submit(
        self, inputs: Dict[str, np.ndarray]
    ) -> "Future[SimulationResult]":
        return self._executor.submit(_proc_run, inputs)

    def kill(self) -> None:
        """Kill the worker's child process (SIGKILL — the real thing,
        not an exception): in-flight batches fail with
        ``BrokenProcessPool`` and the supervisor takes over."""
        processes = dict(
            getattr(self._executor, "_processes", None) or {}
        )
        if processes:
            for process in processes.values():
                process.kill()
        else:
            # No child spawned yet (lazy start): force one to boot and
            # die so the executor still breaks deterministically.
            self._executor.submit(_proc_die)

    def close(self) -> None:
        self._executor.shutdown(wait=True)


class _ProcessWorker(_ProcessWorkerBase):
    """One worker backed by a single-process executor (its own queue, so
    pool-level placement stays in charge of sharding)."""

    def __init__(
        self,
        index: int,
        program: Program,
        engine: str,
        engine_options: Optional[Dict[str, object]] = None,
    ) -> None:
        self.index = index
        context = multiprocessing.get_context("fork")
        self._executor = ProcessPoolExecutor(
            max_workers=1,
            mp_context=context,
            initializer=_proc_initializer,
            initargs=(program, engine, engine_options),
        )


class _SpawnWorker(_ProcessWorkerBase):
    """One spawn-started worker booting from shipped artifact bytes."""

    def __init__(
        self,
        index: int,
        artifact_bytes: bytes,
        engine: str,
        arena_handle=None,
        engine_options: Optional[Dict[str, object]] = None,
    ) -> None:
        self.index = index
        context = multiprocessing.get_context("spawn")
        self._executor = ProcessPoolExecutor(
            max_workers=1,
            mp_context=context,
            initializer=_spawn_initializer,
            initargs=(artifact_bytes, engine, arena_handle, engine_options),
        )


class WorkerPool:
    """N supervised engine workers over one program, with batch placement.

    Args:
        program: the compiled program every worker executes.
        num_workers: engine instances (threads or processes).
        engine: registered engine name each worker runs.
        engine_options: engine constructor keywords forwarded to every
            worker's session (see :func:`repro.engine.create_engine`);
            must be picklable for the process backends.
        placement: ``"round_robin"`` or ``"least_loaded"``.
        backend: ``"thread"`` (default), ``"fork"`` (process workers via
            fork inheritance, POSIX only), ``"spawn"`` (process workers
            booted from serialized artifact bytes, start-method
            independent), or ``"process"`` (fork where the platform
            supports it, otherwise the spawn path).
        artifact: optional pre-serialized executable for the spawn
            backend (one is packaged from ``program`` when omitted).
        share_tables: publish the fused program's constant index tables
            in a :class:`~repro.engine.arena.SharedTableArena` so spawn
            workers attach zero-copy views instead of each holding a
            private decoded copy.  Spawn-only: thread workers share the
            tables natively and fork workers inherit them copy-on-write,
            so the flag is a no-op there.
        max_batch_retries: times one batch is re-placed after a worker
            death before its failure reaches the caller (bounds the
            respawn loop when the *batch itself* crashes the worker).
        injector: optional :class:`~repro.serve.faults.FaultInjector`
            consulted once per dispatch (``pool.dispatch`` site) — a
            scheduled ``crash_worker`` event kills the targeted worker
            right after placement, exercising the supervisor
            deterministically.
    """

    def __init__(
        self,
        program: Program,
        *,
        num_workers: int = 2,
        engine: str = DEFAULT_ENGINE,
        engine_options: Optional[Dict[str, object]] = None,
        placement: str = "round_robin",
        backend: str = "thread",
        artifact: Optional[ExecutableArtifact] = None,
        share_tables: bool = False,
        max_batch_retries: int = 2,
        injector: Optional[FaultInjector] = None,
    ) -> None:
        if num_workers < 1:
            raise ValueError("num_workers must be >= 1")
        if max_batch_retries < 0:
            raise ValueError("max_batch_retries must be >= 0")
        if placement not in PLACEMENTS:
            raise ValueError(
                f"unknown placement {placement!r}; available: {PLACEMENTS}"
            )
        if backend not in BACKENDS:
            raise ValueError(
                f"unknown backend {backend!r}; available: {BACKENDS}"
            )
        start_methods = multiprocessing.get_all_start_methods()
        if backend == "process":
            # Resolve the generic request instead of assuming fork: on
            # platforms without it (Windows; macOS defaults away from it)
            # the artifact-based spawn path serves transparently.
            backend = "fork" if "fork" in start_methods else "spawn"
        if backend == "fork" and "fork" not in start_methods:
            raise RuntimeError(
                "the fork worker backend needs the 'fork' start method, "
                f"which this platform does not provide ({start_methods}); "
                "use backend='spawn' (artifact-shipping) or "
                "backend='thread' instead"
            )
        self.program = program
        self.engine = engine
        self.engine_options = (
            dict(engine_options) if engine_options else None
        )
        self.placement = placement
        self.backend = backend
        self.artifact = artifact
        self.max_batch_retries = max_batch_retries
        self._injector = injector
        self._arena = None
        self._arena_handle = None
        if backend == "spawn":
            if artifact is None:
                self.artifact = artifact = ExecutableArtifact.from_program(
                    program, lower=engine_uses_trace(engine)
                )
            elif artifact.program is not program:
                raise ValueError(
                    "the supplied artifact packages a different program "
                    "than this pool executes"
                )
            self._artifact_bytes = artifact.to_bytes()
            if share_tables and artifact.fused is not None:
                from ..engine.arena import SharedTableArena

                self._arena = SharedTableArena.publish(artifact.fused)
                self._arena_handle = self._arena.handle()
        workers: List[
            Union[_ThreadWorker, _ProcessWorker, _SpawnWorker]
        ] = [self._make_worker(i) for i in range(num_workers)]
        self._workers = workers
        # Reentrant: a done-callback fires synchronously (in the
        # submitting thread, lock held) when the inner future already
        # resolved — the supervisor path must be able to re-enter.
        self._lock = threading.RLock()
        self._next = 0
        self._pending_words = [0] * num_workers
        self._dispatched = [0] * num_workers
        #: how many times each worker slot was restarted after a death.
        self._restarts = [0] * num_workers
        #: per-slot generation, bumped on every restart — the guard that
        #: makes concurrent death callbacks restart a worker only once.
        self._generations = [0] * num_workers
        self._replaced_batches = 0
        self._closed = False

    def _make_worker(self, index: int):
        """Build (or rebuild) the worker for slot ``index`` from the
        pool's pristine boot ingredients — the rehydration step of a
        supervised restart."""
        if self.backend == "spawn":
            return _SpawnWorker(
                index,
                self._artifact_bytes,
                self.engine,
                self._arena_handle,
                self.engine_options,
            )
        if self.backend == "fork":
            return _ProcessWorker(
                index, self.program, self.engine, self.engine_options
            )
        return _ThreadWorker(
            index, self.program, self.engine, self.engine_options
        )

    # ------------------------------------------------------------------
    @property
    def num_workers(self) -> int:
        return len(self._workers)

    def submit(
        self, inputs: Dict[str, np.ndarray]
    ) -> "Future[SimulationResult]":
        """Place one batch on a worker; resolves to the batch's result.

        The returned future is the pool's own: if the placed worker dies
        mid-batch, the supervisor restarts it and re-places the batch
        (up to ``max_batch_retries`` times) before any failure reaches
        this future.
        """
        words = 0
        for value in inputs.values():
            words = int(np.asarray(value).size)
            break
        outer: "Future[SimulationResult]" = Future()
        with self._lock:
            if self._closed:
                raise RuntimeError("worker pool is closed")
            if self.placement == "round_robin":
                index = self._next
                self._next = (self._next + 1) % len(self._workers)
            else:  # least_loaded
                index = min(
                    range(len(self._workers)),
                    key=lambda i: (self._pending_words[i], i),
                )
            self._submit_locked(
                index, inputs, words, outer, self.max_batch_retries
            )
        if self._injector is not None:
            victim = self._injector.pool_crash_target()
            if victim is not None:
                self.kill_worker(victim % len(self._workers))
        return outer

    def _submit_locked(
        self,
        index: int,
        inputs: Dict[str, np.ndarray],
        words: int,
        outer: "Future[SimulationResult]",
        retries: int,
    ) -> None:
        """Place one batch on worker ``index`` (lock held) and chain its
        outcome — or its supervised re-placement — into ``outer``."""
        self._dispatched[index] += 1
        generation = self._generations[index]
        try:
            # Enqueue while still holding the lock: a close() racing in
            # after the closed-check would stop the worker and strand
            # this request's future unresolved forever.
            inner = self._workers[index].submit(inputs)
        except WORKER_DEATH_EXCEPTIONS as exc:
            # A dead process executor rejects new work synchronously:
            # same death, earlier signature.  Restart and retry inline.
            self._replace_worker_locked(index, generation)
            if retries <= 0:
                outer.set_exception(exc)
                return
            self._replaced_batches += 1
            self._submit_locked(index, inputs, words, outer, retries - 1)
            return
        self._pending_words[index] += words
        inner.add_done_callback(
            lambda done: self._on_batch_done(
                index, generation, inputs, words, outer, retries, done
            )
        )

    def _replace_worker_locked(self, index: int, generation: int) -> None:
        """Restart worker ``index`` if it still runs ``generation`` —
        concurrent casualties of one death rebuild the worker once."""
        if self._generations[index] != generation:
            return
        old_worker = self._workers[index]
        self._workers[index] = self._make_worker(index)
        self._generations[index] += 1
        self._restarts[index] += 1
        # Reap the broken worker best-effort: its child is already gone,
        # shutdown only joins management threads.  (A poisoned thread
        # worker reaches its own close() from its queue; joining the
        # current thread raises and is swallowed.)
        try:
            old_worker.close()
        except Exception:  # pragma: no cover - best effort
            pass

    def _on_batch_done(
        self,
        index: int,
        generation: int,
        inputs: Dict[str, np.ndarray],
        words: int,
        outer: "Future[SimulationResult]",
        retries: int,
        inner: "Future[SimulationResult]",
    ) -> None:
        with self._lock:
            self._pending_words[index] -= words
        exc = inner.exception()
        if exc is None:
            outer.set_result(inner.result())
            return
        if not isinstance(exc, WORKER_DEATH_EXCEPTIONS) or retries <= 0:
            outer.set_exception(exc)
            return
        # The worker died under this batch.  Restart it (once per
        # generation — concurrent casualties of the same death skip the
        # rebuild) and re-place the batch on the fresh instance:
        # inference is pure, so re-execution is bit-identical.
        with self._lock:
            if self._closed:
                outer.set_exception(exc)
                return
            self._replace_worker_locked(index, generation)
            self._replaced_batches += 1
            self._submit_locked(index, inputs, words, outer, retries - 1)

    def kill_worker(self, index: int) -> None:
        """Kill worker ``index`` (process: SIGKILL the child; thread:
        poison the next task).  The supervisor restarts it as soon as a
        batch observes the death — the operator-visible effect is a
        ``restarts`` tick in :meth:`stats`, not an outage."""
        with self._lock:
            worker = self._workers[index]
        worker.kill()

    def run(self, inputs: Dict[str, np.ndarray]) -> SimulationResult:
        """Synchronous convenience wrapper around :meth:`submit`."""
        return self.submit(inputs).result()

    def submit_call(self, index: int, fn) -> "Future":
        """Run ``fn(session)`` on worker ``index`` (thread backend only).

        The callable executes on the worker's own thread, FIFO-ordered
        with that worker's batches — the hook sticky streaming sessions
        (:class:`repro.serve.stream.StreamSession`) use to drive per-state
        engine calls without cross-thread workspace sharing.  Process
        backends would have to pickle the callable and the engine state;
        they raise instead.  Stateful calls are NOT supervised: engine
        state is not re-derivable from the inputs, so a death surfaces
        to the caller instead of being silently re-run.
        """
        if self.backend != "thread":
            raise RuntimeError(
                "submit_call needs the thread worker backend; "
                f"this pool runs backend={self.backend!r}"
            )
        with self._lock:
            if self._closed:
                raise RuntimeError("worker pool is closed")
            self._dispatched[index] += 1
            # Enqueue under the lock for the same close()-race reason
            # as submit().
            return self._workers[index].submit_call(fn)

    def stats(self) -> Dict[str, object]:
        with self._lock:
            return {
                "backend": self.backend,
                "placement": self.placement,
                "num_workers": len(self._workers),
                "dispatched": list(self._dispatched),
                "pending_words": list(self._pending_words),
                "restarts": list(self._restarts),
                "total_restarts": sum(self._restarts),
                "replaced_batches": self._replaced_batches,
                "shared_table_bytes": (
                    self._arena.size if self._arena is not None else 0
                ),
            }

    def close(self) -> None:
        with self._lock:
            if self._closed:
                return
            self._closed = True
        for worker in self._workers:
            worker.close()
        if self._arena is not None:
            # Workers have exited (their mappings are gone); the owner
            # now detaches and unlinks the segment.
            self._arena.close()
            self._arena = None

    def __enter__(self) -> "WorkerPool":
        return self

    def __exit__(self, *exc) -> None:
        self.close()
