"""The program cache: memoized compilation + lowering for serving.

Serving the same workload from many entry points (CLI invocations in one
process, repeated server construction, benchmark sweeps) must not pay
compile + lowering more than once.  :class:`ProgramCache` memoizes
:class:`~repro.core.codegen.Program` objects — and, for the trace engine,
their lowered :class:`~repro.core.trace.TraceProgram` tables — keyed by
*(workload fingerprint, engine, config, compile options)* with LRU
eviction and hit/miss statistics.

The workload key is a content fingerprint of the logic graph
(:func:`graph_fingerprint`), so two structurally-identical graph objects
share one cache entry regardless of object identity.  The key also
carries the *compile-pipeline identity*
(:func:`repro.compiler.pipeline_id`): two pipelines over the same graph
(e.g. ``paper`` vs ``no-merge``, or a custom pass list) never collide on
one entry.  Below the program level, every cache owns a
:class:`repro.compiler.PassCache`, so compilations that miss here still
reuse every pipeline-prefix pass they share with earlier compiles.
"""

from __future__ import annotations

import threading
from collections import OrderedDict
from dataclasses import dataclass, field
from typing import Dict, Optional, Tuple, Union

from ..artifact.format import ExecutableArtifact
from ..artifact.store import StoreBackend, store_key
from ..compiler.cache import PassCache, graph_fingerprint
from ..compiler.pipelines import pipeline_from_options, pipeline_id
from ..core.codegen import Program
from ..core.compiler import CompileResult, compile_ffcl
from ..core.config import LPUConfig, PAPER_CONFIG
from ..core.trace import TraceProgram, lower_program
from ..engine.base import engine_uses_trace
from ..engine.session import DEFAULT_ENGINE
from ..netlist.graph import LogicGraph

__all__ = [
    "CacheEntry",
    "CacheKey",
    "CacheStats",
    "ProgramCache",
    "default_program_cache",
    "disk_key",
    "graph_fingerprint",
]

#: pipeline-identity marker for already-compiled Program sources (their
#: pipeline is baked into the program object itself).
_PRECOMPILED = "<precompiled>"


@dataclass(frozen=True)
class CacheKey:
    """Identity of one memoized compilation."""

    workload: str  # graph content fingerprint
    engine: str
    config: LPUConfig
    options: Tuple[Tuple[str, object], ...]  # sorted compile kwargs
    pipeline: str = _PRECOMPILED  # compile-pipeline identity


@dataclass
class CacheStats:
    """Lookup counters of one :class:`ProgramCache`."""

    hits: int = 0
    misses: int = 0
    evictions: int = 0
    #: memory misses resolved from the artifact disk tier (no compile).
    disk_hits: int = 0
    #: memory misses that also missed (or had no) disk tier.
    disk_misses: int = 0
    #: artifacts written to the disk tier after a compile.
    disk_stores: int = 0

    @property
    def lookups(self) -> int:
        return self.hits + self.misses

    @property
    def hit_rate(self) -> float:
        return self.hits / self.lookups if self.lookups else 0.0

    def as_dict(self) -> Dict[str, float]:
        return {
            "hits": self.hits,
            "misses": self.misses,
            "evictions": self.evictions,
            "disk_hits": self.disk_hits,
            "disk_misses": self.disk_misses,
            "disk_stores": self.disk_stores,
            "hit_rate": self.hit_rate,
        }


@dataclass
class CacheEntry:
    """One memoized workload: the program plus its lowering artifacts."""

    key: CacheKey
    program: Program
    trace: Optional[TraceProgram] = None
    compile_result: Optional[CompileResult] = None
    #: serializable executable (present when the entry came from — or was
    #: written to — the disk tier, or when the source was an artifact);
    #: the spawn worker backend ships these bytes across processes.
    artifact: Optional[ExecutableArtifact] = None
    uses: int = field(default=0)


def disk_key(key: CacheKey) -> str:
    """Content-addressed disk-tier key of one cache identity.

    Engine-independent on purpose: a stored artifact carries both the
    program and the lowered trace tables, so the cycle and trace engines
    share one blob per (workload, config, options, pipeline).
    """
    return store_key(key.workload, key.config, key.options, key.pipeline)


class ProgramCache:
    """LRU cache of compiled programs and lowered trace tables.

    Args:
        capacity: maximum retained entries; least-recently-used entries
            are evicted beyond it.
        pass_cache: pass-level result cache used by miss compilations (a
            private :class:`repro.compiler.PassCache` when omitted, sized
            to roughly one pipeline's worth of passes per program entry),
            so different pipelines/options over one graph share their
            common pass prefix even though they occupy separate program
            entries.  An injected cache is treated as shared: ``clear()``
            leaves it alone.
        store: optional :class:`~repro.artifact.store.StoreBackend`
            blob-store tier — a :class:`~repro.artifact.store.
            DirectoryBackend` directory, an in-process
            :class:`~repro.artifact.backends.MemoryStoreBackend`, or a
            remote :class:`~repro.artifact.backends.HTTPStoreBackend`
            shared by a fleet.  Memory misses for graph sources fall
            through to the store (loading a serialized executable instead
            of compiling — zero compile passes), and compile misses write
            their artifact back, so a *new process* pointed at a warm
            store resolves its workloads without compiling anything.
            When the cache owns its pass cache, the store also becomes
            the pass cache's disk tier.
    """

    def __init__(
        self,
        capacity: int = 8,
        pass_cache: Optional[PassCache] = None,
        store: Optional[StoreBackend] = None,
    ) -> None:
        if capacity < 1:
            raise ValueError("cache capacity must be >= 1")
        self.capacity = capacity
        self.store = store
        self.stats = CacheStats()
        self._owns_pass_cache = pass_cache is None
        self.pass_cache = (
            pass_cache
            if pass_cache is not None
            else PassCache(capacity=capacity * 16, store=store)
        )
        self._entries: "OrderedDict[CacheKey, CacheEntry]" = OrderedDict()
        self._lock = threading.RLock()

    # ------------------------------------------------------------------
    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)

    def keys(self):
        with self._lock:
            return list(self._entries)

    def clear(self) -> None:
        with self._lock:
            self._entries.clear()
            self.stats = CacheStats()
            if self._owns_pass_cache:
                self.pass_cache.clear()

    # ------------------------------------------------------------------
    @staticmethod
    def _split_key_options(
        compile_kwargs: Dict[str, object]
    ) -> Tuple[Tuple[Tuple[str, object], ...], str]:
        """(hashable option tuple, pipeline identity) of compile kwargs.

        The raw ``pipeline`` spec (possibly an unhashable list) is
        normalized into the canonical pipeline-id string; when absent, the
        identity is derived from the kwargs exactly as ``compile_ffcl``
        derives its pass list, so option-equivalent calls share one entry.
        ``codegen_workers`` never enters the key: the compiled program is
        bit-identical for every worker count.
        """
        if "pass_cache" in compile_kwargs:
            raise ValueError(
                "configure the pass cache on the ProgramCache itself, "
                "not through compile kwargs"
            )
        options = dict(compile_kwargs)
        spec = options.pop("pipeline", None)
        options.pop("codegen_workers", None)
        if spec is None:
            spec = pipeline_from_options(
                optimize=bool(options.get("optimize", True)),
                merge=bool(options.get("merge", True)),
                generate_code=bool(options.get("generate_code", True)),
            )
        # These three only shape the pass list (and which working-graph
        # copy ingest seeds), which the pipeline id fully captures — e.g.
        # ``merge=False`` and ``pipeline="no-merge"`` are one workload.
        for absorbed in ("merge", "optimize", "generate_code"):
            options.pop(absorbed, None)
        return tuple(sorted(options.items())), pipeline_id(spec)

    def make_key(
        self,
        source: Union[LogicGraph, Program, ExecutableArtifact],
        config: Optional[LPUConfig] = None,
        *,
        engine: str = DEFAULT_ENGINE,
        **compile_kwargs,
    ) -> CacheKey:
        if isinstance(source, ExecutableArtifact):
            source = source.program
        if isinstance(source, Program):
            # An already-compiled program is its own identity: the same
            # graph+config compiled with different options (merge, policy)
            # yields different programs, which must never share an entry.
            # The entry keeps the program alive, so its id cannot be
            # reused while the key is live.
            options = tuple(sorted(compile_kwargs.items()))
            options += (("__program_id__", id(source)),)
            return CacheKey(
                workload=graph_fingerprint(source.graph),
                engine=engine,
                config=source.config,
                options=options,
                pipeline=_PRECOMPILED,
            )
        cfg = config if config is not None else PAPER_CONFIG
        options, pipeline = self._split_key_options(compile_kwargs)
        return CacheKey(
            workload=graph_fingerprint(source),
            engine=engine,
            config=cfg,
            options=options,
            pipeline=pipeline,
        )

    def get_or_compile(
        self,
        source: Union[LogicGraph, Program, ExecutableArtifact],
        config: Optional[LPUConfig] = None,
        *,
        engine: str = DEFAULT_ENGINE,
        **compile_kwargs,
    ) -> CacheEntry:
        """Return the cached entry for ``source``, compiling on a miss.

        ``source`` may be a :class:`LogicGraph` (compiled with ``config``
        and ``compile_kwargs`` on a miss), an already-compiled
        :class:`Program` (memoizes its lowering artifacts only), or a
        deserialized :class:`ExecutableArtifact` (never compiles; reuses
        the artifact's embedded lowering).  Graph-source misses fall
        through to the artifact disk tier before compiling, and compiles
        write their artifact back to it.
        """
        key = self.make_key(source, config, engine=engine, **compile_kwargs)
        with self._lock:
            entry = self._entries.get(key)
            if entry is not None:
                self.stats.hits += 1
                entry.uses += 1
                self._entries.move_to_end(key)
                return entry
            self.stats.misses += 1
        # Compile and lower OUTSIDE the lock: a seconds-long compilation
        # must not block hits for unrelated cached workloads.  Concurrent
        # misses on the same key may compile twice; the first insert wins.
        compile_result: Optional[CompileResult] = None
        artifact: Optional[ExecutableArtifact] = None
        program: Optional[Program] = None
        if isinstance(source, ExecutableArtifact):
            artifact = source
            program = source.program
        elif isinstance(source, Program):
            program = source
        elif self.store is not None:
            artifact = self.store.get(disk_key(key))
            if artifact is not None:
                with self._lock:
                    self.stats.disk_hits += 1
                program = artifact.program
            else:
                with self._lock:
                    self.stats.disk_misses += 1
        if program is None:
            compile_result = compile_ffcl(
                source, key.config, pass_cache=self.pass_cache, **compile_kwargs
            )
            program = compile_result.program
            if program is None:  # pragma: no cover - compile_ffcl guards
                raise ValueError("compilation produced no program")
        if engine_uses_trace(engine):
            # Artifact-borne lowerings were adopted into the process-wide
            # cache on deserialization, so this never re-lowers them (the
            # fused engine's renamed tables live in the analogous
            # process-wide fusion cache, keyed by this shared lowering).
            trace = lower_program(program)
        else:
            trace = artifact.trace if artifact is not None else None
        if (
            self.store is not None
            and artifact is None
            and compile_result is not None
        ):
            # Persist the fresh compile so future processes skip it.  The
            # blob always embeds the trace tables — the engine-independent
            # disk key promises that a stored executable boots either
            # engine with zero compilation AND zero lowering, so a
            # cycle-engine compile lowers here (cheap, once, offline)
            # rather than leaving every future trace cold start to pay it.
            artifact = ExecutableArtifact.from_compile(
                compile_result, trace=trace, lower=True
            )
            self.store.put(disk_key(key), artifact)
            with self._lock:
                self.stats.disk_stores += 1
        entry = CacheEntry(
            key=key,
            program=program,
            trace=trace,
            compile_result=compile_result,
            artifact=artifact,
            uses=1,
        )
        with self._lock:
            racing = self._entries.get(key)
            if racing is not None:
                racing.uses += 1
                self._entries.move_to_end(key)
                return racing
            self._entries[key] = entry
            while len(self._entries) > self.capacity:
                self._entries.popitem(last=False)
                self.stats.evictions += 1
            return entry


_DEFAULT_CACHE: Optional[ProgramCache] = None
_DEFAULT_CACHE_LOCK = threading.Lock()


def default_program_cache() -> ProgramCache:
    """The process-wide cache servers fall back to when given none."""
    global _DEFAULT_CACHE
    with _DEFAULT_CACHE_LOCK:
        if _DEFAULT_CACHE is None:
            _DEFAULT_CACHE = ProgramCache()
        return _DEFAULT_CACHE
