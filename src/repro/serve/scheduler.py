"""Dynamic micro-batching of individual inference requests.

A :class:`BatchScheduler` accepts single requests (:meth:`~BatchScheduler.
submit` returns a :class:`concurrent.futures.Future`), coalesces them into
micro-batches under a *max-batch-size / max-wait* policy, and dispatches
each batch as ONE engine run.  Because every element of a stimulus array is
an independent packed 64-sample word, coalescing is exact: requests are
flattened, concatenated along the word axis, executed together, and the
output words are split back per request — bit-identical to running each
request alone, while paying the engine's per-run overhead once per batch
instead of once per request.

Policy invariants (property-tested in ``tests/test_serve.py``):

* a batch never exceeds ``max_batch_size`` requests,
* a request never waits longer than ``max_wait_ms`` for its batch to fill —
  a partial batch is dispatched at the deadline,
* per-request results (outputs AND statistics) are bit-identical to a
  direct :meth:`~repro.engine.session.Session.run` of that request,
* a request submitted with a **deadline** is shed with a typed
  :class:`DeadlineExceeded` — never batched with live requests, never
  silently hung — as soon as the scheduler observes the expiry (at
  most one scheduler wake-up past the deadline).
"""

from __future__ import annotations

import threading
import time
from collections import deque
from concurrent.futures import Future
from dataclasses import dataclass, field
from typing import Callable, Deque, Dict, FrozenSet, List, Optional, Tuple, Union

import numpy as np

from ..lpu.simulator import SimulationResult

__all__ = [
    "BatchScheduler",
    "DeadlineExceeded",
    "SchedulerStats",
    "WAIT_BUCKETS_MS",
]


class DeadlineExceeded(RuntimeError):
    """A request's deadline passed before it could be dispatched.

    The typed shed signal: callers (and the fabric front-end, which
    maps it to HTTP 504) can distinguish "the system chose not to run
    this in time" from an execution failure.  Carries the partial-wait
    evidence: how long the request sat in the queue against what
    budget.
    """

    def __init__(self, deadline_ms: float, waited_ms: float) -> None:
        super().__init__(
            f"request deadline of {deadline_ms:g}ms exceeded after "
            f"waiting {waited_ms:.3f}ms in the scheduler queue"
        )
        self.deadline_ms = deadline_ms
        self.waited_ms = waited_ms

#: A dispatch target: takes coalesced inputs, returns the batch result
#: either synchronously or as a Future (e.g. from a WorkerPool).
DispatchFn = Callable[
    [Dict[str, np.ndarray]], Union[SimulationResult, "Future[SimulationResult]"]
]


#: upper bucket bounds (milliseconds) of the per-request wait histogram;
#: the final ``inf`` bucket catches deadline-busting stragglers.
WAIT_BUCKETS_MS = (
    0.05, 0.1, 0.25, 0.5, 1.0, 2.5, 5.0, 10.0, 25.0, 50.0, 100.0,
    float("inf"),
)


@dataclass
class SchedulerStats:
    """Counters describing how requests were coalesced and how long each
    request waited in the queue before its batch dispatched."""

    requests: int = 0
    batches: int = 0
    max_batch: int = 0
    #: requests shed with :class:`DeadlineExceeded` before dispatch.
    expired: int = 0
    total_wait_s: float = 0.0
    max_wait_s: float = 0.0
    #: (requests, words, head-of-line wait seconds) of recent batches.
    recent: Deque[Tuple[int, int, float]] = field(
        default_factory=lambda: deque(maxlen=1024)
    )
    #: per-request wait histogram over :data:`WAIT_BUCKETS_MS` (exact,
    #: never evicted — unlike the bounded percentile window below).
    wait_buckets: List[int] = field(
        default_factory=lambda: [0] * len(WAIT_BUCKETS_MS)
    )
    wait_count: int = 0
    wait_total_ms: float = 0.0
    #: recent per-request waits (ms) backing the reported percentiles.
    recent_waits_ms: Deque[float] = field(
        default_factory=lambda: deque(maxlen=4096)
    )

    @property
    def mean_batch(self) -> float:
        return self.requests / self.batches if self.batches else 0.0

    @property
    def mean_wait_ms(self) -> float:
        return self.wait_total_ms / self.wait_count if self.wait_count \
            else 0.0

    def record_waits(self, waits_s: List[float]) -> None:
        """Fold one dispatched batch's per-request queue waits in."""
        for wait_s in waits_s:
            ms = wait_s * 1e3
            self.wait_count += 1
            self.wait_total_ms += ms
            self.recent_waits_ms.append(ms)
            for i, bound in enumerate(WAIT_BUCKETS_MS):
                if ms <= bound:
                    self.wait_buckets[i] += 1
                    break

    def wait_percentile_ms(self, pct: float) -> float:
        """A percentile of the recent per-request wait window."""
        if not self.recent_waits_ms:
            return 0.0
        return float(np.percentile(list(self.recent_waits_ms), pct))

    def as_dict(self) -> Dict[str, object]:
        histogram = {
            ("inf" if bound == float("inf") else f"{bound:g}"): count
            for bound, count in zip(WAIT_BUCKETS_MS, self.wait_buckets)
        }
        return {
            "requests": self.requests,
            "expired": self.expired,
            "batches": self.batches,
            "mean_batch": self.mean_batch,
            "max_batch": self.max_batch,
            "max_wait_ms": self.max_wait_s * 1e3,
            "mean_wait_ms": self.mean_wait_ms,
            "wait_p50_ms": self.wait_percentile_ms(50.0),
            "wait_p99_ms": self.wait_percentile_ms(99.0),
            "wait_histogram_ms": histogram,
        }


_WORD = np.uint64


@dataclass
class _Request:
    """One submitted inference request, validated for coalescing."""

    inputs: Dict[str, np.ndarray]  # PI name -> uint64 words (any shape)
    shape: Tuple[int, ...]  # original batch shape, restored on output
    words: int
    future: "Future[SimulationResult]"
    enqueued: float
    #: absolute monotonic deadline; None = wait forever (the default).
    deadline: Optional[float] = None
    deadline_ms: Optional[float] = None


class BatchScheduler:
    """Coalesce inference requests into dispatched micro-batches.

    Args:
        dispatch: callable executing one coalesced batch — typically
            ``session.run`` or :meth:`WorkerPool.submit
            <repro.serve.pool.WorkerPool.submit>`.  May return the
            :class:`SimulationResult` directly or a Future of it.
        max_batch_size: maximum requests coalesced into one dispatch.
        max_wait_ms: maximum time the head-of-line request waits for its
            batch to fill before a partial batch is dispatched.
        pi_names: when given, every request is validated against this
            primary-input set at submit time (fail fast, not at dispatch).
    """

    def __init__(
        self,
        dispatch: DispatchFn,
        *,
        max_batch_size: int = 32,
        max_wait_ms: float = 2.0,
        pi_names: Optional[FrozenSet[str]] = None,
    ) -> None:
        if max_batch_size < 1:
            raise ValueError("max_batch_size must be >= 1")
        if max_wait_ms < 0:
            raise ValueError("max_wait_ms must be >= 0")
        self._dispatch_fn = dispatch
        self.max_batch_size = max_batch_size
        self.max_wait_s = max_wait_ms / 1e3
        self.pi_names = frozenset(pi_names) if pi_names is not None else None
        self.stats = SchedulerStats()
        self._queue: Deque[_Request] = deque()
        self._cond = threading.Condition()
        self._closed = False
        self._thread = threading.Thread(
            target=self._loop, name="repro-batch-scheduler", daemon=True
        )
        self._thread.start()

    # ------------------------------------------------------------------
    def submit(
        self,
        inputs: Dict[str, np.ndarray],
        *,
        deadline_ms: Optional[float] = None,
    ) -> "Future[SimulationResult]":
        """Enqueue one request; the Future resolves to its own result.

        A ``deadline_ms`` budget starts now: if the request is still
        queued when it runs out, it is shed with
        :class:`DeadlineExceeded` instead of being dispatched —
        expired requests never ride in a batch with live ones.
        """
        if deadline_ms is not None and deadline_ms <= 0:
            raise ValueError("deadline_ms must be > 0 when given")
        validated: Dict[str, np.ndarray] = {}
        shape: Optional[Tuple[int, ...]] = None
        if self.pi_names is not None:
            missing = self.pi_names - inputs.keys()
            if missing:
                raise KeyError(
                    f"missing value for primary inputs {sorted(missing)}"
                )
            extra = inputs.keys() - self.pi_names
            if extra:
                # An unknown key would poison every request coalesced
                # into this one's batch: fail fast, at the submitter.
                raise KeyError(
                    f"unknown primary inputs {sorted(extra)}"
                )
        for name, value in inputs.items():
            # Hot path: stimuli are usually uint64 ndarrays already — the
            # flattening itself happens inside the coalescing concatenate
            # (C-level), never per request in Python.
            if type(value) is not np.ndarray or value.dtype != _WORD:
                value = np.asarray(value, dtype=_WORD)
            if shape is None:
                shape = value.shape
            elif value.shape != shape:
                raise ValueError("all PI arrays must share one shape")
            validated[name] = value
        if shape is None:
            raise ValueError("a request needs at least one input array")
        words = 1
        for dim in shape:
            words *= dim
        enqueued = time.monotonic()
        request = _Request(
            inputs=validated,
            shape=shape,
            words=words,
            future=Future(),
            enqueued=enqueued,
            deadline=(
                enqueued + deadline_ms / 1e3
                if deadline_ms is not None
                else None
            ),
            deadline_ms=deadline_ms,
        )
        with self._cond:
            if self._closed:
                raise RuntimeError("scheduler is closed")
            self._queue.append(request)
            self._cond.notify_all()
        return request.future

    def close(self, *, drain: bool = True) -> None:
        """Stop accepting requests; by default drain what is queued."""
        with self._cond:
            if self._closed:
                return
            self._closed = True
            if not drain:
                pending = list(self._queue)
                self._queue.clear()
            self._cond.notify_all()
        if not drain:
            for request in pending:
                request.future.cancel()
        self._thread.join()

    def __enter__(self) -> "BatchScheduler":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    # ------------------------------------------------------------------
    def _loop(self) -> None:
        while True:
            batch = self._collect()
            if not batch:
                return  # closed and drained
            self._dispatch(batch)

    def _expired(self, request: _Request, now: float) -> bool:
        return request.deadline is not None and now >= request.deadline

    def _shed(self, request: _Request, now: float) -> None:
        """Fail one expired request with the typed shed signal."""
        self.stats.expired += 1
        if request.future.set_running_or_notify_cancel():
            request.future.set_exception(
                DeadlineExceeded(
                    request.deadline_ms or 0.0,
                    (now - request.enqueued) * 1e3,
                )
            )

    def _shed_members(self, batch: List[_Request], now: float) -> None:
        """Remove (and fail) batch members whose deadline passed while
        the batch was filling — they never dispatch with the live ones."""
        expired = [r for r in batch if self._expired(r, now)]
        if expired:
            batch[:] = [r for r in batch if not self._expired(r, now)]
            for request in expired:
                self._shed(request, now)

    def _collect(self) -> List[_Request]:
        """Block until a batch is ready under the size/deadline policy,
        shedding expired requests the moment the scheduler observes
        them (never more than one wake-up past their deadline)."""
        with self._cond:
            while True:
                while not self._queue:
                    if self._closed:
                        return []
                    self._cond.wait()
                now = time.monotonic()
                batch: List[_Request] = []
                while self._queue and not batch:
                    head = self._queue.popleft()
                    if self._expired(head, now):
                        self._shed(head, now)
                    else:
                        batch.append(head)
                if not batch:
                    continue  # the whole head run was expired; re-wait
                fill_deadline = batch[0].enqueued + self.max_wait_s
                while len(batch) < self.max_batch_size:
                    now = time.monotonic()
                    if self._queue:
                        request = self._queue.popleft()
                        if self._expired(request, now):
                            self._shed(request, now)
                        else:
                            batch.append(request)
                        continue
                    self._shed_members(batch, now)
                    if not batch:
                        break
                    if self._closed or now >= fill_deadline:
                        break
                    # Wake at whichever comes first: the batch-fill
                    # deadline or the earliest member request deadline
                    # (so an expiring member is shed on time instead of
                    # waiting out the fill).
                    wake = fill_deadline
                    for request in batch:
                        if (
                            request.deadline is not None
                            and request.deadline < wake
                        ):
                            wake = request.deadline
                    remaining = wake - now
                    if remaining > 0:
                        self._cond.wait(timeout=remaining)
                if batch:
                    self._shed_members(batch, time.monotonic())
                if batch:
                    return batch
                # every member expired while filling; collect afresh

    def _dispatch(self, batch: List[_Request]) -> None:
        live = [r for r in batch if r.future.set_running_or_notify_cancel()]
        # Last line of defense for the shed-before-dispatch invariant:
        # anything that expired between collection and here fails typed
        # instead of riding with the live requests.
        now = time.monotonic()
        expired = [r for r in live if self._expired(r, now)]
        if expired:
            live = [r for r in live if not self._expired(r, now)]
            for request in expired:
                self.stats.expired += 1
                request.future.set_exception(
                    DeadlineExceeded(
                        request.deadline_ms or 0.0,
                        (now - request.enqueued) * 1e3,
                    )
                )
        if not live:
            return
        # Without a pi_names contract, requests with a different input-key
        # set than the batch head cannot be coalesced with it; fail those
        # requests alone instead of poisoning the whole batch.
        head_names = live[0].inputs.keys()
        mismatched = [r for r in live if r.inputs.keys() != head_names]
        if mismatched:
            live = [r for r in live if r.inputs.keys() == head_names]
            for request in mismatched:
                request.future.set_exception(
                    KeyError(
                        "request input names do not match its batch; "
                        "construct the scheduler with pi_names to "
                        "validate at submit time"
                    )
                )
        now = time.monotonic()
        waited = now - live[0].enqueued
        words = sum(r.words for r in live)
        self.stats.requests += len(live)
        self.stats.batches += 1
        self.stats.max_batch = max(self.stats.max_batch, len(live))
        self.stats.total_wait_s += waited
        self.stats.max_wait_s = max(self.stats.max_wait_s, waited)
        self.stats.recent.append((len(live), words, waited))
        self.stats.record_waits([now - r.enqueued for r in live])
        try:
            if len(live) == 1:
                single = live[0]
                coalesced = {
                    name: value.reshape(-1)
                    for name, value in single.inputs.items()
                }
            else:
                # axis=None concatenates the *flattened* arrays — the
                # per-request raveling happens in C, not per PI in Python.
                coalesced = {
                    name: np.concatenate(
                        [r.inputs[name] for r in live], axis=None
                    )
                    for name in live[0].inputs
                }
            outcome = self._dispatch_fn(coalesced)
        except Exception as exc:  # noqa: BLE001 - fan the failure out
            for request in live:
                request.future.set_exception(exc)
            return
        if isinstance(outcome, Future):
            outcome.add_done_callback(
                lambda done: self._scatter_future(live, done)
            )
        else:
            self._scatter(live, outcome)

    def _scatter_future(
        self, live: List[_Request], done: "Future[SimulationResult]"
    ) -> None:
        exc = done.exception()
        if exc is not None:
            for request in live:
                request.future.set_exception(exc)
            return
        self._scatter(live, done.result())

    def _scatter(
        self, live: List[_Request], result: SimulationResult
    ) -> None:
        """Split one batch result back into per-request results.

        Statistics are per-run properties of the program alone, so each
        request reports the same statistics a direct run would.
        """
        offset = 0
        for request in live:
            # Slices are views into the batch's output arrays: zero-copy,
            # at the (bounded) cost of keeping the batch outputs alive
            # while any of its requests' results are.
            outputs = {
                name: words[offset:offset + request.words].reshape(
                    request.shape
                )
                for name, words in result.outputs.items()
            }
            offset += request.words
            request.future.set_result(
                SimulationResult(
                    outputs=outputs,
                    macro_cycles=result.macro_cycles,
                    clock_cycles=result.clock_cycles,
                    compute_instructions_executed=(
                        result.compute_instructions_executed
                    ),
                    switch_routes=result.switch_routes,
                    peak_buffer_words=result.peak_buffer_words,
                    buffer_writes=result.buffer_writes,
                )
            )
