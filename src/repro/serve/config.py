"""One serving configuration surface: :class:`ServeConfig`.

Before this module every serving entry point grew its own copy of the
same keyword sprawl — ``engine=``, ``num_workers=``, ``max_batch_size=``,
``max_wait_ms=``, ``placement=``, ``backend=``, ``cache=`` repeated
across :class:`~repro.serve.server.InferenceServer`, :func:`serve`,
:func:`naive_serve`, :func:`run_serve_bench`, and
:class:`~repro.serve.stream.StreamingServer`, drifting defaults and all.
:class:`ServeConfig` consolidates the lot into one frozen dataclass that
every entry point accepts as ``serving=``, and that the fabric node
(:mod:`repro.serve.fabric`) ships across config files and process
boundaries via :meth:`ServeConfig.describe`.

The old keywords keep working through :func:`resolve_serving`, the
deprecation shim every entry point routes its ``**kwargs`` through: the
legacy keys are folded into a :class:`ServeConfig` (warning once per
process), everything left over is a compile option.  Mixing an explicit
``serving=`` with legacy keywords is an error — one source of truth per
call.
"""

from __future__ import annotations

import dataclasses
import warnings
from dataclasses import dataclass, field
from typing import Dict, Mapping, Optional, Tuple

from ..engine.session import DEFAULT_ENGINE

__all__ = ["LEGACY_SERVE_KEYS", "ServeConfig", "resolve_serving"]


@dataclass(frozen=True)
class ServeConfig:
    """Everything the serving layer needs to know, in one place.

    Args:
        engine: execution engine every worker runs (``"fused"`` default).
        engine_options: engine-specific constructor keywords every
            worker session forwards to
            :func:`repro.engine.create_engine` (the native engine's
            ``backend=``/``threads=``/``min_shard_words=``, the fused
            engine's ``rowwise_min_words=``, ...).
        num_workers: parallel engine instances in the worker pool.
        max_batch_size: requests coalesced into one engine run.
        max_wait_ms: micro-batching deadline for a non-full batch.
        default_deadline_ms: request deadline applied when a caller
            does not send its own: a request still queued when its
            budget runs out is shed with a typed
            :class:`~repro.serve.scheduler.DeadlineExceeded` (HTTP 504
            over the fabric) instead of waiting forever on a wedged
            worker.  ``None`` (default) keeps requests deadline-free.
        placement: worker placement, ``"round_robin"`` / ``"least_loaded"``.
        backend: worker backend, ``"thread"`` / ``"process"`` / ``"fork"``
            / ``"spawn"`` (see :class:`~repro.serve.pool.WorkerPool`).
        share_tables: publish the fused index tables in a shared-memory
            arena so process-backed workers attach instead of each
            decoding a private copy (see :mod:`repro.engine.arena`).
        pipeline_depth: bound of each inter-stage queue, in batches,
            when the served source is a multi-program
            :class:`~repro.artifact.bundle.ArtifactBundle` (the
            :class:`~repro.pipeline.PipelineExecutor` backpressure
            knob; ignored for single-program sources).
        injector: optional :class:`~repro.serve.faults.FaultInjector`
            threaded into the worker pool (and, when serving through a
            :class:`~repro.serve.fabric.FabricNode`, the front-end and
            store) so every injected failure mode in a chaos test or
            bench is reproducible from one seeded plan.
        cache: program cache to resolve compilations through (the
            process-wide default cache when omitted).
        store: artifact store backend wired as the cache's disk tier
            when a cache is built here (ignored when ``cache`` is given:
            a pre-built cache carries its own store).
        compile_options: options forwarded to
            :func:`repro.core.compile_ffcl` when compiling from a graph.
    """

    engine: str = DEFAULT_ENGINE
    engine_options: Mapping[str, object] = field(default_factory=dict)
    num_workers: int = 1
    max_batch_size: int = 32
    max_wait_ms: float = 2.0
    default_deadline_ms: Optional[float] = None
    placement: str = "round_robin"
    backend: str = "thread"
    share_tables: bool = False
    pipeline_depth: int = 4
    injector: Optional[object] = field(default=None, compare=False)
    cache: Optional[object] = field(default=None, compare=False)
    store: Optional[object] = field(default=None, compare=False)
    compile_options: Mapping[str, object] = field(default_factory=dict)

    def __post_init__(self) -> None:
        from .pool import BACKENDS, PLACEMENTS

        if self.num_workers < 1:
            raise ValueError("num_workers must be >= 1")
        if self.max_batch_size < 1:
            raise ValueError("max_batch_size must be >= 1")
        if self.max_wait_ms < 0:
            raise ValueError("max_wait_ms must be >= 0")
        if (
            self.default_deadline_ms is not None
            and self.default_deadline_ms <= 0
        ):
            raise ValueError("default_deadline_ms must be > 0 when set")
        if self.pipeline_depth < 1:
            raise ValueError("pipeline_depth must be >= 1")
        if self.backend not in BACKENDS:
            raise ValueError(
                f"unknown backend {self.backend!r} (one of {BACKENDS})"
            )
        if self.placement not in PLACEMENTS:
            raise ValueError(
                f"unknown placement {self.placement!r} "
                f"(one of {PLACEMENTS})"
            )

    def replace(self, **overrides) -> "ServeConfig":
        """A copy with ``overrides`` applied (the tuning idiom)."""
        return dataclasses.replace(self, **overrides)

    def resolve_cache(self):
        """The program cache this config serves through: the explicit
        ``cache``, a fresh cache over ``store``, or the process default."""
        from .cache import ProgramCache, default_program_cache

        if self.cache is not None:
            return self.cache
        if self.store is not None:
            return ProgramCache(store=self.store)
        return default_program_cache()

    def describe(self) -> Dict[str, object]:
        """JSON-able snapshot (objects reduced to their reprs)."""
        return {
            "engine": self.engine,
            "engine_options": dict(self.engine_options),
            "num_workers": self.num_workers,
            "max_batch_size": self.max_batch_size,
            "max_wait_ms": self.max_wait_ms,
            "default_deadline_ms": self.default_deadline_ms,
            "placement": self.placement,
            "backend": self.backend,
            "share_tables": self.share_tables,
            "pipeline_depth": self.pipeline_depth,
            "injector": (
                repr(self.injector) if self.injector is not None else None
            ),
            "cache": repr(self.cache) if self.cache is not None else None,
            "store": repr(self.store) if self.store is not None else None,
            "compile_options": dict(self.compile_options),
        }


#: the pre-ServeConfig keyword surface the shim keeps alive.
LEGACY_SERVE_KEYS: Tuple[str, ...] = (
    "engine",
    "engine_options",
    "num_workers",
    "max_batch_size",
    "max_wait_ms",
    "placement",
    "backend",
    "share_tables",
    "cache",
    "store",
)

_warned_legacy = False


def _warn_legacy(keys) -> None:
    global _warned_legacy
    if _warned_legacy:
        return
    _warned_legacy = True
    warnings.warn(
        "passing serving options as keywords ("
        + ", ".join(sorted(keys))
        + "=...) is deprecated; bundle them in a ServeConfig and pass "
        "serving=ServeConfig(...) instead",
        DeprecationWarning,
        stacklevel=4,
    )


def resolve_serving(
    serving: Optional[ServeConfig],
    kwargs: Dict[str, object],
    *,
    defaults: Optional[Dict[str, object]] = None,
) -> Tuple[ServeConfig, Dict[str, object]]:
    """The deprecation shim: split a serving entry point's ``**kwargs``.

    Legacy serving keywords (``engine=``, ``num_workers=``, ...) are
    folded into a :class:`ServeConfig` — warning once per process —
    and whatever remains is returned as the compile-option dict (merged
    over ``serving.compile_options``).  An explicit ``serving=`` config
    passes through untouched; combining it with legacy keywords raises,
    so a call never has two sources of truth.
    """
    legacy = {
        key: kwargs.pop(key) for key in LEGACY_SERVE_KEYS if key in kwargs
    }
    if serving is not None:
        if legacy:
            raise ValueError(
                "pass serving options either as serving=ServeConfig(...) "
                "or as legacy keywords, not both: "
                + ", ".join(sorted(legacy))
            )
        config = serving
    else:
        base = dict(defaults) if defaults else {}
        base.update(legacy)
        if legacy:
            _warn_legacy(legacy)
        config = ServeConfig(**base)
    compile_options = dict(config.compile_options)
    compile_options.update(kwargs)
    return config, compile_options
