"""The serving facade: cache + micro-batching + worker sharding.

:class:`InferenceServer` is the one-stop entry point for serving a logic
workload: it resolves the compiled program through a
:class:`~repro.serve.cache.ProgramCache`, shards execution across a
:class:`~repro.serve.pool.WorkerPool`, and coalesces concurrent requests
with a :class:`~repro.serve.scheduler.BatchScheduler`.  Every request's
result is bit-identical to a direct
:meth:`~repro.engine.session.Session.run` of that request.

The :func:`serve` function is the synchronous fire-and-forget form::

    from repro.serve import ServeConfig, serve
    results = serve(
        graph, requests,
        serving=ServeConfig(num_workers=4, max_batch_size=16),
    )

All serving knobs live in one :class:`~repro.serve.config.ServeConfig`
passed as ``serving=``; the pre-config keyword spelling
(``num_workers=4, max_batch_size=16`` directly) still works through a
deprecation shim that warns once per process.
"""

from __future__ import annotations

from concurrent.futures import Future
from typing import Dict, Iterable, List, Optional, Union

import numpy as np

from ..core.codegen import Program
from ..core.config import LPUConfig
from ..engine.session import Session
from ..lpu.simulator import SimulationResult
from ..netlist.graph import LogicGraph
from .config import ServeConfig, resolve_serving
from .pool import WorkerPool
from .scheduler import BatchScheduler

__all__ = ["InferenceServer", "naive_serve", "serve"]


class InferenceServer:
    """Serve one compiled workload to many concurrent callers.

    Args:
        source: a :class:`LogicGraph` to compile, a compiled
            :class:`Program`, a deserialized
            :class:`~repro.artifact.format.ExecutableArtifact` (the
            ahead-of-time path: no compile, no lowering), or a
            multi-program :class:`~repro.artifact.bundle.ArtifactBundle`
            (whole-model serving: one
            :class:`~repro.pipeline.PipelineExecutor` stage per member
            program instead of a replica worker pool).
        config: LPU parameters when compiling from a graph.
        serving: the :class:`~repro.serve.config.ServeConfig` bundling
            every serving knob (engine, workers, batching, placement,
            backend, cache/store wiring).
        **kwargs: compile options forwarded to
            :func:`repro.core.compile_ffcl` — plus, through the
            deprecation shim, the legacy serving keywords
            (``engine=``, ``num_workers=``, ...), which warn once and
            must not be mixed with an explicit ``serving=``.
    """

    def __init__(
        self,
        source: Union[LogicGraph, Program],
        config: Optional[LPUConfig] = None,
        *,
        serving: Optional[ServeConfig] = None,
        **kwargs,
    ) -> None:
        from ..artifact.bundle import ArtifactBundle

        serving, compile_options = resolve_serving(serving, kwargs)
        self.serving = serving
        self.cache = serving.resolve_cache()
        self.engine_name = serving.engine
        if isinstance(source, ArtifactBundle):
            # A bundle arrives fully compiled: nothing to resolve
            # through the program cache — the chain executes behind a
            # pool-shaped adapter, one engine per stage.
            from ..pipeline import PipelinePool

            self.bundle = source
            self.program = None
            self.pool = PipelinePool(
                source,
                engine=serving.engine,
                engine_options=dict(serving.engine_options) or None,
                depth=serving.pipeline_depth,
            )
            pi_names = frozenset(source.external_inputs)
        else:
            self.bundle = None
            entry = self.cache.get_or_compile(
                source, config, engine=serving.engine, **compile_options
            )
            self.program = entry.program
            self.pool = WorkerPool(
                self.program,
                num_workers=serving.num_workers,
                engine=serving.engine,
                engine_options=dict(serving.engine_options) or None,
                placement=serving.placement,
                backend=serving.backend,
                # Spawn workers ship these bytes instead of re-packaging.
                artifact=entry.artifact,
                share_tables=serving.share_tables,
                injector=serving.injector,
            )
            graph = self.program.graph
            pi_names = frozenset(
                graph.input_name(nid) for nid in graph.inputs
            )
        self.scheduler = BatchScheduler(
            self.pool.submit,
            max_batch_size=serving.max_batch_size,
            max_wait_ms=serving.max_wait_ms,
            pi_names=pi_names,
        )
        self._closed = False

    # ------------------------------------------------------------------
    @property
    def graph(self) -> LogicGraph:
        if self.bundle is not None:
            return self.bundle.reference_graph()
        return self.program.graph

    def effective_deadline_ms(
        self, deadline_ms: Optional[float] = None
    ) -> Optional[float]:
        """The deadline a request runs under: its own override, else
        the config's ``default_deadline_ms``, else none."""
        if deadline_ms is not None:
            return deadline_ms
        return self.serving.default_deadline_ms

    def submit(
        self,
        inputs: Dict[str, np.ndarray],
        *,
        deadline_ms: Optional[float] = None,
    ) -> "Future[SimulationResult]":
        """Enqueue one request; the Future resolves to its result.

        ``deadline_ms`` overrides the config's ``default_deadline_ms``
        for this request; a request still queued when its budget runs
        out resolves to :class:`~repro.serve.scheduler.DeadlineExceeded`.
        """
        return self.scheduler.submit(
            inputs, deadline_ms=self.effective_deadline_ms(deadline_ms)
        )

    def infer(
        self,
        inputs: Dict[str, np.ndarray],
        *,
        deadline_ms: Optional[float] = None,
    ) -> SimulationResult:
        """Synchronous single-request inference (blocks for the result).

        With a deadline (per-request or config default) the *wait* is
        bounded too: a result that has not materialized by the deadline
        raises :class:`~repro.serve.scheduler.DeadlineExceeded` instead
        of blocking the caller on a wedged worker forever.
        """
        import concurrent.futures
        import time as _time

        from .scheduler import DeadlineExceeded

        effective = self.effective_deadline_ms(deadline_ms)
        started = _time.monotonic()
        future = self.submit(inputs, deadline_ms=effective)
        if effective is None:
            return future.result()
        try:
            return future.result(timeout=effective / 1e3)
        except concurrent.futures.TimeoutError:
            raise DeadlineExceeded(
                effective, (_time.monotonic() - started) * 1e3
            ) from None

    def map(
        self, requests: Iterable[Dict[str, np.ndarray]]
    ) -> List[SimulationResult]:
        """Run many requests, returning results in request order."""
        futures = [self.submit(request) for request in requests]
        return [future.result() for future in futures]

    def stats(self) -> Dict[str, object]:
        """Cache, scheduler, and pool statistics in one report."""
        return {
            "cache": self.cache.stats.as_dict(),
            "scheduler": self.scheduler.stats.as_dict(),
            "pool": self.pool.stats(),
        }

    def close(self) -> None:
        """Drain queued requests, then stop scheduler and workers."""
        if self._closed:
            return
        self._closed = True
        self.scheduler.close()
        self.pool.close()

    def __enter__(self) -> "InferenceServer":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"InferenceServer(graph={self.graph.name!r}, "
            f"engine={self.engine_name!r}, "
            f"workers={self.pool.num_workers})"
        )


def serve(
    source: Union[LogicGraph, Program],
    requests: Iterable[Dict[str, np.ndarray]],
    config: Optional[LPUConfig] = None,
    **server_kwargs,
) -> List[SimulationResult]:
    """Serve ``requests`` through a transient :class:`InferenceServer`.

    Results are returned in request order, each bit-identical to a direct
    :meth:`Session.run <repro.engine.session.Session.run>` of that request.
    Keyword arguments are forwarded to :class:`InferenceServer`
    (``serving=ServeConfig(...)`` plus compile options).
    """
    with InferenceServer(source, config, **server_kwargs) as server:
        return server.map(requests)


def naive_serve(
    source: Union[LogicGraph, Program],
    requests: Iterable[Dict[str, np.ndarray]],
    config: Optional[LPUConfig] = None,
    *,
    serving: Optional[ServeConfig] = None,
    **kwargs,
) -> List[SimulationResult]:
    """The baseline the serving layer is benchmarked against: one
    compile-once session, one engine run per request, no coalescing.
    Only ``serving.engine`` and the compile options apply here — there
    is no pool, no batching, no cache.  A multi-program
    :class:`~repro.artifact.bundle.ArtifactBundle` runs its stages
    serially through a :class:`~repro.pipeline.SerialChainRunner` — the
    no-overlap baseline the pipeline executor is measured against."""
    from ..artifact.bundle import ArtifactBundle

    serving, compile_options = resolve_serving(serving, kwargs)
    if isinstance(source, ArtifactBundle):
        from ..pipeline import SerialChainRunner

        runner = SerialChainRunner(
            source,
            engine=serving.engine,
            engine_options=dict(serving.engine_options) or None,
        )
        return [runner.run(request) for request in requests]
    session = Session(
        source, config, engine=serving.engine,
        engine_options=dict(serving.engine_options) or None,
        **compile_options,
    )
    return [session.run(request) for request in requests]
