"""The serving facade: cache + micro-batching + worker sharding.

:class:`InferenceServer` is the one-stop entry point for serving a logic
workload: it resolves the compiled program through a
:class:`~repro.serve.cache.ProgramCache`, shards execution across a
:class:`~repro.serve.pool.WorkerPool`, and coalesces concurrent requests
with a :class:`~repro.serve.scheduler.BatchScheduler`.  Every request's
result is bit-identical to a direct
:meth:`~repro.engine.session.Session.run` of that request.

The :func:`serve` function is the synchronous fire-and-forget form::

    from repro.serve import serve
    results = serve(graph, requests, num_workers=4, max_batch_size=16)
"""

from __future__ import annotations

from concurrent.futures import Future
from typing import Dict, Iterable, List, Optional, Union

import numpy as np

from ..core.codegen import Program
from ..core.config import LPUConfig
from ..engine.session import DEFAULT_ENGINE, Session
from ..lpu.simulator import SimulationResult
from ..netlist.graph import LogicGraph
from .cache import ProgramCache, default_program_cache
from .pool import WorkerPool
from .scheduler import BatchScheduler

__all__ = ["InferenceServer", "naive_serve", "serve"]


class InferenceServer:
    """Serve one compiled workload to many concurrent callers.

    Args:
        source: a :class:`LogicGraph` to compile, a compiled
            :class:`Program`, or a deserialized
            :class:`~repro.artifact.format.ExecutableArtifact` (the
            ahead-of-time path: no compile, no lowering).
        config: LPU parameters when compiling from a graph.
        engine: execution engine every worker runs (``"fused"`` default).
        num_workers: parallel engine instances in the worker pool.
        max_batch_size: requests coalesced into one engine run.
        max_wait_ms: micro-batching deadline for a non-full batch.
        placement: worker placement, ``"round_robin"`` / ``"least_loaded"``.
        backend: worker backend, ``"thread"`` / ``"process"`` / ``"fork"``
            / ``"spawn"`` (see :class:`~repro.serve.pool.WorkerPool`).
        cache: program cache to resolve compilations through (the
            process-wide default cache when omitted).
        **compile_kwargs: forwarded to :func:`repro.core.compile_ffcl`.
    """

    def __init__(
        self,
        source: Union[LogicGraph, Program],
        config: Optional[LPUConfig] = None,
        *,
        engine: str = DEFAULT_ENGINE,
        num_workers: int = 1,
        max_batch_size: int = 32,
        max_wait_ms: float = 2.0,
        placement: str = "round_robin",
        backend: str = "thread",
        cache: Optional[ProgramCache] = None,
        **compile_kwargs,
    ) -> None:
        self.cache = cache if cache is not None else default_program_cache()
        entry = self.cache.get_or_compile(
            source, config, engine=engine, **compile_kwargs
        )
        self.program = entry.program
        self.engine_name = engine
        self.pool = WorkerPool(
            self.program,
            num_workers=num_workers,
            engine=engine,
            placement=placement,
            backend=backend,
            # Spawn workers ship these bytes instead of re-packaging.
            artifact=entry.artifact,
        )
        graph = self.program.graph
        self.scheduler = BatchScheduler(
            self.pool.submit,
            max_batch_size=max_batch_size,
            max_wait_ms=max_wait_ms,
            pi_names=frozenset(
                graph.input_name(nid) for nid in graph.inputs
            ),
        )
        self._closed = False

    # ------------------------------------------------------------------
    @property
    def graph(self) -> LogicGraph:
        return self.program.graph

    def submit(
        self, inputs: Dict[str, np.ndarray]
    ) -> "Future[SimulationResult]":
        """Enqueue one request; the Future resolves to its result."""
        return self.scheduler.submit(inputs)

    def infer(self, inputs: Dict[str, np.ndarray]) -> SimulationResult:
        """Synchronous single-request inference (blocks for the result)."""
        return self.submit(inputs).result()

    def map(
        self, requests: Iterable[Dict[str, np.ndarray]]
    ) -> List[SimulationResult]:
        """Run many requests, returning results in request order."""
        futures = [self.submit(request) for request in requests]
        return [future.result() for future in futures]

    def stats(self) -> Dict[str, object]:
        """Cache, scheduler, and pool statistics in one report."""
        return {
            "cache": self.cache.stats.as_dict(),
            "scheduler": self.scheduler.stats.as_dict(),
            "pool": self.pool.stats(),
        }

    def close(self) -> None:
        """Drain queued requests, then stop scheduler and workers."""
        if self._closed:
            return
        self._closed = True
        self.scheduler.close()
        self.pool.close()

    def __enter__(self) -> "InferenceServer":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"InferenceServer(graph={self.graph.name!r}, "
            f"engine={self.engine_name!r}, "
            f"workers={self.pool.num_workers})"
        )


def serve(
    source: Union[LogicGraph, Program],
    requests: Iterable[Dict[str, np.ndarray]],
    config: Optional[LPUConfig] = None,
    **server_kwargs,
) -> List[SimulationResult]:
    """Serve ``requests`` through a transient :class:`InferenceServer`.

    Results are returned in request order, each bit-identical to a direct
    :meth:`Session.run <repro.engine.session.Session.run>` of that request.
    Keyword arguments are forwarded to :class:`InferenceServer`.
    """
    with InferenceServer(source, config, **server_kwargs) as server:
        return server.map(requests)


def naive_serve(
    source: Union[LogicGraph, Program],
    requests: Iterable[Dict[str, np.ndarray]],
    config: Optional[LPUConfig] = None,
    *,
    engine: str = DEFAULT_ENGINE,
    **compile_kwargs,
) -> List[SimulationResult]:
    """The baseline the serving layer is benchmarked against: one
    compile-once session, one engine run per request, no coalescing."""
    session = Session(source, config, engine=engine, **compile_kwargs)
    return [session.run(request) for request in requests]
