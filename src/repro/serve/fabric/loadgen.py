"""The fabric load generator: saturation throughput and tail latency.

One measurement procedure behind the ``repro load-bench`` CLI and
``benchmarks/bench_serve_fabric.py``:

1. boot a :class:`~repro.serve.fabric.node.FabricNode` over the
   workload (or aim at an already-running node via ``url=``) and
   pre-generate deterministic stimuli,
2. drive it with ``clients`` concurrent :class:`FabricClient` lanes —
   **closed-loop** (every client fires its next request the moment the
   previous answer lands: the saturation measurement) or **open-loop**
   (requests scheduled at a fixed offered rate regardless of responses:
   the tail-latency-under-load measurement, immune to coordinated
   omission),
3. measure per-request latency client-side, report p50/p99 and
   saturation requests/second, plus every admission rejection and
   retry,
4. optionally run the single-process in-process ``serve()`` baseline on
   the same stimuli and report the fabric-over-single-process speedup,
5. optionally verify every fabric result bit-identical — outputs AND
   statistics — to a direct :meth:`~repro.engine.session.Session.run`.
"""

from __future__ import annotations

import os
import time
from concurrent.futures import ThreadPoolExecutor
from typing import Dict, List, Optional, Union

import numpy as np

from ...core.codegen import Program
from ...core.config import LPUConfig
from ...engine.base import SAMPLES_PER_WORD
from ...lpu.functional import random_stimulus
from ...netlist.graph import LogicGraph
from ..config import ServeConfig
from .client import FabricClient, FabricRejected
from .node import FabricConfig, FabricNode

__all__ = ["run_load_bench"]

#: bounded retry budget per request when admission keeps rejecting.
_MAX_RETRIES = 1000


def _stats_key(result):
    return (
        result.macro_cycles,
        result.clock_cycles,
        result.compute_instructions_executed,
        result.switch_routes,
        result.peak_buffer_words,
        result.buffer_writes,
    )


def _drive_client(
    url: str,
    lane: int,
    indices: List[int],
    stimuli,
    wire: str,
    schedule: Optional[List[float]],
    epoch: float,
):
    """One load lane: its own connection, its own admission identity."""
    latencies: List[float] = []
    results = []
    rejections = 0
    with FabricClient(url, client_id=f"lane-{lane}", wire=wire) as client:
        for position, index in enumerate(indices):
            if schedule is not None:
                # Open loop: fire at the scheduled offered time and
                # measure from it, so server-side queueing is charged
                # to latency instead of silently slowing the offer.
                target = epoch + schedule[position]
                delay = target - time.perf_counter()
                if delay > 0:
                    time.sleep(delay)
                started = target
            else:
                started = time.perf_counter()
            for _ in range(_MAX_RETRIES):
                try:
                    result = client.infer(stimuli[index])
                    break
                except FabricRejected as rejected:
                    rejections += 1
                    time.sleep(max(rejected.retry_after, 0.001))
            else:
                raise RuntimeError(
                    f"request {index} never admitted after "
                    f"{_MAX_RETRIES} retries"
                )
            latencies.append((time.perf_counter() - started) * 1e3)
            results.append((index, result))
    return results, latencies, rejections


def run_load_bench(
    source: Union[LogicGraph, Program, object],
    config: Optional[LPUConfig] = None,
    *,
    serving: Optional[ServeConfig] = None,
    fabric: Optional[FabricConfig] = None,
    url: Optional[str] = None,
    requests: int = 256,
    clients: int = 4,
    array_size: int = 1,
    seed: int = 0,
    mode: str = "closed",
    target_rps: Optional[float] = None,
    wire: str = "binary",
    baseline: bool = True,
    verify: bool = True,
) -> Dict[str, object]:
    """Measure a fabric node under load; returns a JSON-able report.

    ``mode="closed"`` measures saturation throughput; ``mode="open"``
    offers ``target_rps`` requests/second (required in that mode) and
    measures latency from each request's *scheduled* time.  With
    ``url=`` the load aims at an already-running node and no node is
    booted here.
    """
    if mode not in ("closed", "open"):
        raise ValueError("mode must be 'closed' or 'open'")
    if mode == "open" and (target_rps is None or target_rps <= 0):
        raise ValueError("open-loop load needs target_rps > 0")
    if requests < 1 or clients < 1:
        raise ValueError("requests and clients must be >= 1")
    serving = serving if serving is not None else ServeConfig()
    graph = (
        source if isinstance(source, LogicGraph) else source.graph
    )
    stimuli = [
        random_stimulus(graph, array_size=array_size, seed=seed + i)
        for i in range(requests)
    ]

    node: Optional[FabricNode] = None
    try:
        if url is None:
            node = FabricNode(
                source, config, serving=serving, fabric=fabric
            ).start()
            url = node.url

        shards = [
            list(range(lane, requests, clients))
            for lane in range(clients)
        ]
        shards = [shard for shard in shards if shard]
        schedules: List[Optional[List[float]]] = [None] * len(shards)
        if mode == "open":
            per_lane_interval = len(shards) / float(target_rps)
            schedules = [
                [
                    (lane + position * len(shards))
                    / float(target_rps)
                    for position in range(len(shard))
                ]
                for lane, shard in enumerate(shards)
            ]
            del per_lane_interval

        # Warm-up outside the measurement: connection dial, kernel gen.
        with FabricClient(url, client_id="warmup", wire=wire) as probe:
            probe.infer(stimuli[0])

        epoch = time.perf_counter()
        with ThreadPoolExecutor(len(shards)) as executor:
            gathered = list(
                executor.map(
                    lambda item: _drive_client(
                        url, item[0], item[1], stimuli, wire,
                        schedules[item[0]], epoch,
                    ),
                    enumerate(shards),
                )
            )
        wall = time.perf_counter() - epoch

        node_stats = None
        if node is not None:
            node_stats = node.stats()
    finally:
        if node is not None:
            node.stop()

    results: Dict[int, object] = {}
    latencies: List[float] = []
    rejections = 0
    for lane_results, lane_latencies, lane_rejections in gathered:
        for index, result in lane_results:
            results[index] = result
        latencies.extend(lane_latencies)
        rejections += lane_rejections
    fabric_rps = requests / wall if wall > 0 else None

    bit_identical: Optional[bool] = None
    baseline_report: Optional[Dict[str, object]] = None
    if verify or baseline:
        from ..server import naive_serve, serve

        reference = naive_serve(
            source, stimuli, config,
            serving=ServeConfig(
                engine=serving.engine,
                compile_options=dict(serving.compile_options),
            ),
        )
        if verify:
            bit_identical = True
            for index, expected in enumerate(reference):
                got = results[index]
                for name, words in expected.outputs.items():
                    if not np.array_equal(got.outputs[name], words):
                        bit_identical = False
                if _stats_key(expected) != _stats_key(got):
                    bit_identical = False
        if baseline:
            single = ServeConfig(
                engine=serving.engine,
                num_workers=1,
                max_batch_size=serving.max_batch_size,
                max_wait_ms=serving.max_wait_ms,
                compile_options=dict(serving.compile_options),
            )
            start = time.perf_counter()
            serve(source, stimuli, config, serving=single)
            single_wall = time.perf_counter() - start
            baseline_report = {
                "seconds": single_wall,
                "requests_per_second": (
                    requests / single_wall if single_wall > 0 else None
                ),
            }

    latency_array = np.asarray(latencies, dtype=np.float64)
    report: Dict[str, object] = {
        "graph": graph.name,
        "engine": serving.engine,
        "mode": mode,
        "wire": wire,
        "requests": requests,
        "clients": clients,
        "array_size": array_size,
        "samples_per_request": SAMPLES_PER_WORD * array_size,
        "num_workers": serving.num_workers,
        "backend": serving.backend,
        "cpu_count": os.cpu_count(),
        "target_rps": target_rps,
        "fabric": {
            "seconds": wall,
            "requests_per_second": fabric_rps,
            "latency_p50_ms": float(np.percentile(latency_array, 50)),
            "latency_p99_ms": float(np.percentile(latency_array, 99)),
            "latency_mean_ms": float(latency_array.mean()),
            "rejections": rejections,
        },
        "baseline_single_process": baseline_report,
        "speedup_vs_single_process": (
            fabric_rps / baseline_report["requests_per_second"]
            if baseline_report
            and baseline_report["requests_per_second"]
            else None
        ),
        "bit_identical": bit_identical,
        "node": node_stats,
    }
    return report
