"""Admission control for the fabric front-end.

Two independent gates run in front of the batch scheduler:

* a **node-wide in-flight cap** — the fabric never holds more than
  ``max_inflight`` requests between admission and response, so a burst
  saturates the worker pool instead of growing an unbounded queue
  (shed load early, keep tail latency honest),
* **per-client token buckets** — each client identity refills at
  ``client_rate`` requests/second up to a ``client_burst`` reserve, so
  one greedy client cannot starve the others: everyone's sustained
  admission rate converges to their own bucket's rate, regardless of
  how aggressively the neighbors submit.

Both gates are *non-blocking*: a request is admitted or rejected on the
spot (HTTP 503 for a saturated node, 429 with a ``Retry-After`` hint
for a throttled client) — the polite form of backpressure for an open
fabric.  The clock is injectable, so fairness is property-testable with
a deterministic virtual time source.
"""

from __future__ import annotations

import threading
import time
from dataclasses import dataclass
from typing import Callable, Dict, Optional

__all__ = ["AdmissionController", "AdmissionStats", "Decision", "TokenBucket"]


class TokenBucket:
    """The classic token bucket, on an injectable clock.

    ``rate`` tokens/second accrue continuously up to ``burst``; one
    token admits one request.  Not thread-safe by itself — the
    controller serializes access.
    """

    def __init__(
        self,
        rate: float,
        burst: float,
        *,
        clock: Callable[[], float] = time.monotonic,
    ) -> None:
        if rate <= 0:
            raise ValueError("token rate must be > 0")
        if burst < 1:
            raise ValueError("burst must allow at least one token")
        self.rate = float(rate)
        self.burst = float(burst)
        self._clock = clock
        self._tokens = float(burst)
        self._updated = clock()

    def _refill(self) -> None:
        now = self._clock()
        elapsed = now - self._updated
        if elapsed > 0:
            self._tokens = min(
                self.burst, self._tokens + elapsed * self.rate
            )
            self._updated = now

    def try_acquire(self) -> bool:
        """Take one token if available."""
        self._refill()
        if self._tokens >= 1.0:
            self._tokens -= 1.0
            return True
        return False

    def retry_after(self) -> float:
        """Seconds until the next token matures (0 when one is ready)."""
        self._refill()
        if self._tokens >= 1.0:
            return 0.0
        return (1.0 - self._tokens) / self.rate

    @property
    def tokens(self) -> float:
        self._refill()
        return self._tokens


@dataclass(frozen=True)
class Decision:
    """The outcome of one admission attempt."""

    admitted: bool
    #: ``"saturated"`` (node in-flight cap) or ``"throttled"``
    #: (client bucket) when rejected; ``""`` when admitted.
    reason: str = ""
    #: seconds the client should wait before retrying (throttle only).
    retry_after: float = 0.0


class AdmissionStats:
    """Counters the node's ``/v1/stats`` endpoint reports."""

    def __init__(self) -> None:
        self.admitted = 0
        self.rejected_saturated = 0
        self.rejected_throttled = 0
        self.peak_inflight = 0

    def as_dict(self) -> Dict[str, object]:
        return {
            "admitted": self.admitted,
            "rejected_saturated": self.rejected_saturated,
            "rejected_throttled": self.rejected_throttled,
            "peak_inflight": self.peak_inflight,
        }


class AdmissionController:
    """The two-gate admission policy (in-flight cap + client buckets).

    Args:
        max_inflight: node-wide cap on requests between
            :meth:`admit` and :meth:`release`.
        client_rate: per-client sustained admissions/second; ``None``
            disables the per-client gate entirely.
        client_burst: per-client token reserve (instantaneous burst).
        clock: monotonic time source (injectable for tests).
    """

    def __init__(
        self,
        *,
        max_inflight: int = 64,
        client_rate: Optional[float] = None,
        client_burst: float = 8,
        clock: Callable[[], float] = time.monotonic,
    ) -> None:
        if max_inflight < 1:
            raise ValueError("max_inflight must be >= 1")
        self.max_inflight = max_inflight
        self.client_rate = client_rate
        self.client_burst = client_burst
        self.stats = AdmissionStats()
        self._clock = clock
        self._inflight = 0
        self._buckets: Dict[str, TokenBucket] = {}
        self._lock = threading.Lock()

    # ------------------------------------------------------------------
    def admit(self, client: str) -> Decision:
        """Gate one request from ``client``; pair with :meth:`release`."""
        with self._lock:
            if self._inflight >= self.max_inflight:
                self.stats.rejected_saturated += 1
                return Decision(False, "saturated")
            if self.client_rate is not None:
                bucket = self._buckets.get(client)
                if bucket is None:
                    bucket = TokenBucket(
                        self.client_rate,
                        self.client_burst,
                        clock=self._clock,
                    )
                    self._buckets[client] = bucket
                if not bucket.try_acquire():
                    self.stats.rejected_throttled += 1
                    return Decision(
                        False, "throttled",
                        retry_after=bucket.retry_after(),
                    )
            self._inflight += 1
            self.stats.admitted += 1
            if self._inflight > self.stats.peak_inflight:
                self.stats.peak_inflight = self._inflight
            return Decision(True)

    def release(self) -> None:
        """One admitted request finished (success or failure)."""
        with self._lock:
            if self._inflight <= 0:  # pragma: no cover - misuse guard
                raise RuntimeError("release() without a matching admit()")
            self._inflight -= 1

    @property
    def inflight(self) -> int:
        with self._lock:
            return self._inflight

    def as_dict(self) -> Dict[str, object]:
        with self._lock:
            report = self.stats.as_dict()
            report.update(
                {
                    "max_inflight": self.max_inflight,
                    "inflight": self._inflight,
                    "client_rate": self.client_rate,
                    "client_burst": self.client_burst,
                    "clients_seen": len(self._buckets),
                }
            )
            return report
