"""The distributed serving fabric.

``repro.serve`` turns compiled programs into an in-process inference
service; this package puts that service on the network.  A
:class:`FabricNode` wraps one :class:`~repro.serve.server.InferenceServer`
in an asyncio HTTP/1.1 front-end (stdlib only — no web framework) with
two-gate admission control, binary (``application/x-lpw``) and JSON
wire formats, and an artifact-store endpoint so a warm node can feed
cold ones their ``.lpa`` executables.  :class:`FabricClient` is the
matching synchronous caller, and :func:`run_load_bench` is the
closed/open-loop load generator behind ``repro load-bench``.

Everything a node answers is bit-identical — outputs *and* run
statistics — to a direct in-process :class:`~repro.engine.session.Session`
run over the same words.
"""

from .admission import (
    AdmissionController,
    AdmissionStats,
    Decision,
    TokenBucket,
)
from .client import (
    CircuitBreaker,
    CircuitOpen,
    FabricClient,
    FabricError,
    FabricRejected,
    RetryPolicy,
)
from .httpio import HTTPProtocolError, Request
from .loadgen import run_load_bench
from .node import FabricConfig, FabricNode
from .wire import (
    BINARY_CONTENT_TYPE,
    JSON_CONTENT_TYPE,
    WireError,
    decode_request,
    decode_response,
    encode_request,
    encode_response,
)

__all__ = [
    "AdmissionController",
    "AdmissionStats",
    "BINARY_CONTENT_TYPE",
    "CircuitBreaker",
    "CircuitOpen",
    "Decision",
    "FabricClient",
    "FabricConfig",
    "FabricError",
    "FabricNode",
    "FabricRejected",
    "HTTPProtocolError",
    "JSON_CONTENT_TYPE",
    "Request",
    "RetryPolicy",
    "TokenBucket",
    "WireError",
    "decode_request",
    "decode_response",
    "encode_request",
    "encode_response",
    "run_load_bench",
]
