"""A tiny asyncio HTTP/1.1 codec — just enough protocol for the fabric.

The fabric node speaks plain HTTP so that any client — ``curl``, a
browser, :class:`~repro.artifact.backends.HTTPStoreBackend`, the
:class:`~repro.serve.fabric.client.FabricClient` — can talk to it, but
it deliberately implements only the slice of HTTP/1.1 the fabric
protocol uses, on top of bare :mod:`asyncio` streams:

* requests with an exact ``Content-Length`` body (no chunked encoding,
  no trailers, no continuations),
* persistent connections by default (``Connection: close`` honored),
* latin-1 header handling, case-insensitive header names.

No third-party dependency, no thread-per-connection: one coroutine per
connection, reading requests in a loop.
"""

from __future__ import annotations

import asyncio
from dataclasses import dataclass, field
from typing import Dict, Optional, Tuple
from urllib.parse import parse_qs, unquote, urlsplit

__all__ = [
    "HTTPProtocolError",
    "Request",
    "json_response",
    "read_request",
    "render_response",
    "split_status",
]

#: request bodies above this are refused outright (a fabric inference
#: frame is a few KB; artifact uploads a few MB).
MAX_BODY_BYTES = 256 * 1024 * 1024
#: a single start-line / header line above this is malformed.
_MAX_LINE_BYTES = 64 * 1024

_REASONS = {
    200: "OK",
    201: "Created",
    204: "No Content",
    400: "Bad Request",
    404: "Not Found",
    405: "Method Not Allowed",
    413: "Payload Too Large",
    422: "Unprocessable Entity",
    429: "Too Many Requests",
    500: "Internal Server Error",
    503: "Service Unavailable",
}


class HTTPProtocolError(ValueError):
    """The peer sent bytes this codec cannot parse as a request."""


@dataclass
class Request:
    """One parsed HTTP request."""

    method: str
    target: str
    headers: Dict[str, str]
    body: bytes
    #: path with the query string stripped and percent-decoding applied.
    path: str = field(init=False)
    #: decoded query parameters (first value wins).
    query: Dict[str, str] = field(init=False)

    def __post_init__(self) -> None:
        parts = urlsplit(self.target)
        self.path = unquote(parts.path)
        self.query = {
            key: values[0]
            for key, values in parse_qs(parts.query).items()
        }

    @property
    def content_type(self) -> str:
        return self.headers.get("content-type", "")

    @property
    def keep_alive(self) -> bool:
        return self.headers.get("connection", "").lower() != "close"


async def _read_line(reader: asyncio.StreamReader) -> bytes:
    try:
        line = await reader.readuntil(b"\n")
    except asyncio.IncompleteReadError as exc:
        if exc.partial:
            raise HTTPProtocolError("truncated header line") from exc
        return b""  # clean EOF between requests
    except asyncio.LimitOverrunError as exc:
        raise HTTPProtocolError("header line too long") from exc
    if len(line) > _MAX_LINE_BYTES:
        raise HTTPProtocolError("header line too long")
    return line


async def read_request(
    reader: asyncio.StreamReader,
    *,
    max_body: int = MAX_BODY_BYTES,
) -> Optional[Request]:
    """Read one request; ``None`` on clean EOF (peer closed keep-alive).

    Raises :class:`HTTPProtocolError` on malformed bytes — the caller
    should answer 400 (if it still can) and drop the connection.
    """
    start = await _read_line(reader)
    if not start:
        return None
    try:
        method, target, version = start.decode("latin-1").split()
    except ValueError as exc:
        raise HTTPProtocolError(
            f"malformed request line: {start[:80]!r}"
        ) from exc
    if not version.startswith("HTTP/1."):
        raise HTTPProtocolError(f"unsupported protocol {version!r}")
    headers: Dict[str, str] = {}
    while True:
        line = await _read_line(reader)
        if line in (b"\r\n", b"\n"):
            break
        if not line:
            raise HTTPProtocolError("connection closed inside headers")
        name, sep, value = line.decode("latin-1").partition(":")
        if not sep:
            raise HTTPProtocolError(f"malformed header line {line[:80]!r}")
        headers[name.strip().lower()] = value.strip()
    if "transfer-encoding" in headers:
        raise HTTPProtocolError(
            "chunked transfer encoding is not supported; "
            "send an exact Content-Length"
        )
    try:
        length = int(headers.get("content-length", "0"))
    except ValueError as exc:
        raise HTTPProtocolError("unparsable Content-Length") from exc
    if length < 0 or length > max_body:
        raise HTTPProtocolError(f"refusing {length}-byte body")
    body = b""
    if length:
        try:
            body = await reader.readexactly(length)
        except asyncio.IncompleteReadError as exc:
            raise HTTPProtocolError("truncated request body") from exc
    return Request(method=method.upper(), target=target,
                   headers=headers, body=body)


def render_response(
    status: int,
    body: bytes = b"",
    *,
    content_type: str = "application/octet-stream",
    headers: Optional[Dict[str, str]] = None,
    keep_alive: bool = True,
) -> bytes:
    """Serialize one response (always with an exact Content-Length)."""
    reason = _REASONS.get(status, "Unknown")
    lines = [
        f"HTTP/1.1 {status} {reason}",
        f"Content-Length: {len(body)}",
        f"Connection: {'keep-alive' if keep_alive else 'close'}",
    ]
    if body:
        lines.append(f"Content-Type: {content_type}")
    for name, value in (headers or {}).items():
        lines.append(f"{name}: {value}")
    head = ("\r\n".join(lines) + "\r\n\r\n").encode("latin-1")
    return head + body


def json_response(
    status: int,
    payload: object,
    *,
    keep_alive: bool = True,
    headers: Optional[Dict[str, str]] = None,
) -> bytes:
    """A :func:`render_response` with a JSON body."""
    import json

    return render_response(
        status,
        json.dumps(payload).encode("utf-8"),
        content_type="application/json",
        headers=headers,
        keep_alive=keep_alive,
    )


def split_status(response: bytes) -> Tuple[int, Dict[str, str], bytes]:
    """Parse a rendered response (the test-side inverse)."""
    head, _, body = response.partition(b"\r\n\r\n")
    lines = head.decode("latin-1").split("\r\n")
    status = int(lines[0].split()[1])
    headers = {}
    for line in lines[1:]:
        name, _, value = line.partition(":")
        headers[name.strip().lower()] = value.strip()
    return status, headers, body
