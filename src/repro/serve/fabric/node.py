"""The fabric node: an async HTTP front-end over the serving stack.

One :class:`FabricNode` is one network-addressable serving process.  It
owns an :class:`~repro.serve.server.InferenceServer` (cache → worker
pool → batch scheduler), runs a single-threaded :mod:`asyncio` event
loop accepting HTTP/1.1 connections (:mod:`.httpio` — no third-party
server), gates every inference through the admission controller
(:mod:`.admission`), and optionally serves its artifact store to the
rest of the fleet over the ``/v1/store`` protocol that
:class:`~repro.artifact.backends.HTTPStoreBackend` speaks.

Endpoints:

* ``POST /v1/infer`` — one inference request, binary
  (``application/x-lpw``) or JSON; the response carries outputs
  bit-identical to a direct :meth:`Session.run
  <repro.engine.session.Session.run>`, the run statistics, and
  per-request latency metadata (admission / service / total).  A
  ``deadline_ms`` field (frame header or JSON key) bounds the wait:
  a request the node cannot answer in time fails with **504** and
  partial-wait evidence instead of hanging the caller.
* ``GET /v1/health/live`` — liveness: 200 whenever the process is up.
* ``GET /v1/health/ready`` — readiness: 200 only when the node is
  accepting traffic (engine loaded, not draining); 503 with a JSON
  ``reason`` otherwise, so fleet load balancers stop routing to
  draining or rebuilding nodes while supervisors leave them alone.
* ``GET /v1/health`` — the combined legacy probe (readiness-gated).
* ``GET /v1/stats`` — admission, scheduler, pool, cache, and store
  counters in one JSON report.
* ``GET/PUT/DELETE /v1/store/{key}{suffix}``, ``GET
  /v1/store?suffix=`` — the shared blob store (disable with
  ``serve_store=False``).

The fleet story in two lines::

    node_a = FabricNode(graph, serving=ServeConfig(num_workers=4))
    node_b = FabricNode(graph, serving=ServeConfig(
        store=HTTPStoreBackend(node_a.url + "/v1/store")))

Node A compiles once and persists the artifact through its cache's
store tier; node B's cache resolves it over the wire and reaches
ready-to-serve with **zero compile passes**.

A node with ``source=None`` is a *store-only* node: no engine, no
``/v1/infer`` — just the shared artifact store for a fleet.
"""

from __future__ import annotations

import asyncio
import threading
import time
from dataclasses import dataclass
from typing import Dict, Optional, Union

from ...core.codegen import Program
from ...core.config import LPUConfig
from ...netlist.graph import LogicGraph
from ..config import ServeConfig
from .admission import AdmissionController
from .httpio import (
    HTTPProtocolError,
    Request,
    json_response,
    read_request,
    render_response,
)
from .wire import (
    BINARY_CONTENT_TYPE,
    WireError,
    decode_json_request_meta,
    decode_request_meta,
    encode_json_response,
    encode_response,
)

__all__ = ["FabricConfig", "FabricNode"]


@dataclass(frozen=True)
class FabricConfig:
    """Front-end parameters of one fabric node.

    Args:
        host: bind address (loopback default).
        port: bind port; ``0`` picks a free one (read it back from
            :attr:`FabricNode.port` after start).
        max_inflight: node-wide admission cap on in-flight requests.
        client_rate: per-client admissions/second (token bucket);
            ``None`` disables per-client throttling.
        client_burst: per-client token reserve.
        serve_store: expose the node's artifact store at ``/v1/store``.
        verify_artifacts: replay embedded probe vectors before
            accepting an ``.lpa`` upload into the store (rejecting
            corrupt or miscompiled artifacts at the door).
    """

    host: str = "127.0.0.1"
    port: int = 0
    max_inflight: int = 64
    client_rate: Optional[float] = None
    client_burst: float = 8.0
    serve_store: bool = True
    verify_artifacts: bool = False


class FabricNode:
    """One serving node: async HTTP front-end + engine + shared store.

    Args:
        source: the workload to serve — a :class:`LogicGraph`, compiled
            :class:`Program`, or
            :class:`~repro.artifact.format.ExecutableArtifact`; ``None``
            boots a store-only node (no inference endpoint).
        config: LPU parameters when compiling from a graph.
        serving: the :class:`~repro.serve.config.ServeConfig` for the
            embedded :class:`~repro.serve.server.InferenceServer`.  Its
            store wiring doubles as the node's served store.
        fabric: the :class:`FabricConfig` front-end parameters.
        store: the blob store served at ``/v1/store`` and wired as the
            program cache's disk tier (an in-memory backend by default).
    """

    def __init__(
        self,
        source: Optional[Union[LogicGraph, Program, object]] = None,
        config: Optional[LPUConfig] = None,
        *,
        serving: Optional[ServeConfig] = None,
        fabric: Optional[FabricConfig] = None,
        store=None,
    ) -> None:
        from ...artifact.backends import MemoryStoreBackend

        self.fabric = fabric if fabric is not None else FabricConfig()
        serving = serving if serving is not None else ServeConfig()
        if store is None:
            store = serving.store
        if store is None:
            store = MemoryStoreBackend()
        self.store = store
        if serving.cache is None and serving.store is None:
            serving = serving.replace(store=store)
        self.serving = serving
        self._source = source
        self._config = config
        self.admission = AdmissionController(
            max_inflight=self.fabric.max_inflight,
            client_rate=self.fabric.client_rate,
            client_burst=self.fabric.client_burst,
        )
        self.server = None  # built on start()
        self.port: Optional[int] = None
        self._requests: Dict[str, int] = {"binary": 0, "json": 0}
        self._deadline_504 = 0
        self._draining = False
        self._injector = getattr(serving, "injector", None)
        self._thread: Optional[threading.Thread] = None
        self._loop: Optional[asyncio.AbstractEventLoop] = None
        self._shutdown: Optional[asyncio.Event] = None
        self._ready = threading.Event()
        self._startup_error: Optional[BaseException] = None

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    @property
    def url(self) -> str:
        if self.port is None:
            raise RuntimeError("node is not started")
        return f"http://{self.fabric.host}:{self.port}"

    @property
    def store_url(self) -> str:
        return self.url + "/v1/store"

    def start(self, *, timeout: float = 60.0) -> "FabricNode":
        """Boot the engine (compile or warm-store load) and bind the
        listener; returns once ready to serve."""
        if self._thread is not None:
            raise RuntimeError("node already started")
        if self._source is not None:
            from ..server import InferenceServer

            # Resolve the program before accepting traffic: a cold
            # start compiles, a warm one loads from the store tier with
            # zero compile passes (watch cache.stats.disk_hits).
            self.server = InferenceServer(
                self._source, self._config, serving=self.serving
            )
        self._thread = threading.Thread(
            target=self._run_loop, name="repro-fabric", daemon=True
        )
        self._thread.start()
        if not self._ready.wait(timeout):
            raise RuntimeError("fabric node failed to become ready")
        if self._startup_error is not None:
            raise RuntimeError(
                "fabric node failed to start"
            ) from self._startup_error
        return self

    def _run_loop(self) -> None:
        try:
            asyncio.run(self._main())
        except BaseException as exc:  # pragma: no cover - startup races
            self._startup_error = exc
            self._ready.set()

    async def _main(self) -> None:
        self._loop = asyncio.get_running_loop()
        self._shutdown = asyncio.Event()
        listener = await asyncio.start_server(
            self._handle_connection, self.fabric.host, self.fabric.port
        )
        self.port = listener.sockets[0].getsockname()[1]
        self._ready.set()
        try:
            async with listener:
                await self._shutdown.wait()
        finally:
            self.port = None

    def drain(self, *, timeout: float = 30.0) -> None:
        """Graceful shutdown: stop admitting, finish in-flight work,
        then stop.

        The node flips to not-ready the moment draining starts
        (``/v1/health/ready`` answers 503 ``draining``, new
        ``/v1/infer`` requests are rejected 503), waits for the
        in-flight count to reach zero (bounded by ``timeout``), and
        only then tears the listener and engine down — no accepted
        request is dropped on the floor.
        """
        self._draining = True
        limit = time.monotonic() + timeout
        while self.admission.inflight > 0 and time.monotonic() < limit:
            time.sleep(0.005)
        self.stop()

    @property
    def draining(self) -> bool:
        return self._draining

    def stop(self) -> None:
        """Stop accepting, drain the engine, release the port."""
        self._draining = True
        loop, thread = self._loop, self._thread
        if loop is not None and self._shutdown is not None:
            try:
                loop.call_soon_threadsafe(self._shutdown.set)
            except RuntimeError:  # pragma: no cover - loop already gone
                pass
        if thread is not None:
            thread.join(timeout=30)
        self._thread = None
        self._loop = None
        if self.server is not None:
            self.server.close()
            self.server = None

    def __enter__(self) -> "FabricNode":
        return self.start()

    def __exit__(self, *exc) -> None:
        self.stop()

    # ------------------------------------------------------------------
    # Connection handling
    # ------------------------------------------------------------------
    async def _handle_connection(
        self,
        reader: asyncio.StreamReader,
        writer: asyncio.StreamWriter,
    ) -> None:
        peer = writer.get_extra_info("peername")
        peer_id = f"{peer[0]}:{peer[1]}" if peer else "unknown"
        try:
            while True:
                try:
                    request = await read_request(reader)
                except HTTPProtocolError as exc:
                    writer.write(
                        json_response(
                            400, {"error": str(exc)}, keep_alive=False
                        )
                    )
                    await writer.drain()
                    break
                if request is None:
                    break
                response = await self._dispatch(request, peer_id)
                if response is None:
                    # Injected response drop: sever the connection
                    # without answering (the client sees a transport
                    # error, exactly like a mid-flight network loss).
                    break
                writer.write(response)
                await writer.drain()
                if not request.keep_alive:
                    break
        except (ConnectionError, asyncio.IncompleteReadError):
            pass  # peer went away mid-exchange; nothing to salvage
        except asyncio.CancelledError:
            pass  # node shutting down with the connection still open
        finally:
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionError, OSError):  # pragma: no cover
                pass

    async def _dispatch(
        self, request: Request, peer_id: str
    ) -> Optional[bytes]:
        path = request.path
        try:
            if path == "/v1/infer":
                if request.method != "POST":
                    return json_response(
                        405, {"error": "POST /v1/infer"}
                    )
                return await self._infer(request, peer_id)
            if path == "/v1/health/live" and request.method == "GET":
                # Liveness: answering at all is the proof.
                return json_response(200, {"status": "live"})
            if path == "/v1/health/ready" and request.method == "GET":
                ready, reason = self._ready_state()
                if ready:
                    return json_response(200, {"status": "ready"})
                return json_response(
                    503, {"status": "not-ready", "reason": reason}
                )
            if path == "/v1/health" and request.method == "GET":
                ready, _ = self._ready_state()
                return json_response(200 if ready else 503, self._health())
            if path == "/v1/stats" and request.method == "GET":
                return json_response(200, self.stats())
            if (
                path == "/v1/store" or path.startswith("/v1/store/")
            ) and self.fabric.serve_store:
                return await self._store_endpoint(request)
            return json_response(404, {"error": f"no route {path!r}"})
        except Exception as exc:  # noqa: BLE001 - the wire boundary
            return json_response(500, {"error": str(exc)})

    # ------------------------------------------------------------------
    # Inference
    # ------------------------------------------------------------------
    async def _infer(
        self, request: Request, peer_id: str
    ) -> Optional[bytes]:
        if self.server is None:
            return json_response(
                503, {"error": "store-only node: no inference engine"}
            )
        if self._draining:
            return json_response(
                503,
                {"error": "node draining", "retry_after": 0.0},
                headers={"Retry-After": "0.010"},
            )
        start = time.perf_counter()
        client = request.headers.get("x-client", peer_id)
        decision = self.admission.admit(client)
        if not decision.admitted:
            if decision.reason == "throttled":
                return json_response(
                    429,
                    {"error": "client throttled",
                     "retry_after": decision.retry_after},
                    headers={
                        "Retry-After": f"{decision.retry_after:.3f}"
                    },
                )
            return json_response(
                503, {"error": "node saturated", "retry_after": 0.0},
                headers={"Retry-After": "0.010"},
            )
        try:
            from ..scheduler import DeadlineExceeded

            binary = request.content_type.startswith(BINARY_CONTENT_TYPE)
            try:
                if binary:
                    inputs, meta = decode_request_meta(request.body)
                else:
                    inputs, meta = decode_json_request_meta(request.body)
                deadline_ms = self.server.effective_deadline_ms(
                    meta.get("deadline_ms")
                )
                self._requests["binary" if binary else "json"] += 1
                future = self.server.submit(
                    inputs, deadline_ms=deadline_ms
                )
            except (WireError, ValueError) as exc:
                return json_response(400, {"error": str(exc)})
            admitted = time.perf_counter()
            try:
                if deadline_ms is None:
                    result = await asyncio.wrap_future(future)
                else:
                    # Bound the HTTP-side wait too: even a wedged
                    # worker cannot hold the connection past the
                    # request's budget.
                    result = await asyncio.wait_for(
                        asyncio.wrap_future(future),
                        timeout=deadline_ms / 1e3,
                    )
            except (DeadlineExceeded, asyncio.TimeoutError) as exc:
                self._deadline_504 += 1
                waited_ms = (time.perf_counter() - start) * 1e3
                if isinstance(exc, DeadlineExceeded):
                    waited_ms = exc.waited_ms
                return json_response(
                    504,
                    {
                        "error": "request deadline exceeded",
                        "deadline_ms": deadline_ms,
                        "waited_ms": waited_ms,
                    },
                )
            done = time.perf_counter()
            latency = {
                "admission_ms": (admitted - start) * 1e3,
                "service_ms": (done - admitted) * 1e3,
                "total_ms": (done - start) * 1e3,
            }
            if self._injector is not None:
                action, param = self._injector.response_action()
                if action == "drop":
                    return None  # sever: _handle_connection closes
                if action == "delay":
                    await asyncio.sleep(param)
            if binary:
                return render_response(
                    200,
                    encode_response(result, latency),
                    content_type=BINARY_CONTENT_TYPE,
                )
            return render_response(
                200,
                encode_json_response(result, latency),
                content_type="application/json",
            )
        finally:
            self.admission.release()

    # ------------------------------------------------------------------
    # Store endpoints
    # ------------------------------------------------------------------
    @staticmethod
    def _split_blob_name(path: str):
        name = path[len("/v1/store/"):]
        if not name or "/" in name:
            return None, None
        dot = name.find(".")
        if dot <= 0:
            return name, ""
        return name[:dot], name[dot:]

    async def _store_endpoint(self, request: Request) -> bytes:
        loop = asyncio.get_running_loop()
        if request.path == "/v1/store":
            if request.method != "GET":
                return json_response(405, {"error": "GET /v1/store"})
            suffix = request.query.get("suffix", ".lpa")
            keys = await loop.run_in_executor(
                None, self.store.keys, suffix
            )
            return json_response(200, {"keys": keys})
        key, suffix = self._split_blob_name(request.path)
        if key is None:
            return json_response(404, {"error": "bad store path"})
        if request.method == "GET":
            data = await loop.run_in_executor(
                None, lambda: self.store.get_bytes(key, suffix=suffix)
            )
            if data is None:
                return json_response(404, {"error": "no such blob"})
            return render_response(200, data)
        if request.method == "PUT":
            if self.fabric.verify_artifacts and suffix == ".lpa":
                problem = await loop.run_in_executor(
                    None, self._vet_artifact, request.body
                )
                if problem is not None:
                    return json_response(422, {"error": problem})
            await loop.run_in_executor(
                None,
                lambda: self.store.put_bytes(
                    key, request.body, suffix=suffix
                ),
            )
            return render_response(204)
        if request.method == "DELETE":
            removed = await loop.run_in_executor(
                None, lambda: self.store.delete(key, suffix=suffix)
            )
            if removed:
                return render_response(204)
            return json_response(404, {"error": "no such blob"})
        return json_response(405, {"error": "GET/PUT/DELETE"})

    def _vet_artifact(self, data: bytes) -> Optional[str]:
        """Decode an uploaded ``.lpa`` (single-program artifact or
        multi-program bundle, via the format reader registry) and replay
        its probes; ``None`` when acceptable, else the rejection
        reason."""
        from ...artifact.format import ArtifactError, load_artifact_bytes

        try:
            artifact = load_artifact_bytes(data)
        except ArtifactError as exc:
            return f"not a loadable artifact: {exc}"
        if artifact.probes is None:
            return None  # nothing to replay; fingerprint already held
        report = artifact.verify_probes()
        if not report["passed"]:
            return (
                "probe replay failed on outputs "
                + ", ".join(report["mismatches"])
            )
        return None

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    def _ready_state(self):
        """``(ready, reason)`` — the readiness the load balancer sees.

        Liveness is separate on purpose: a draining node is *alive*
        (supervisors must not restart it) but *not ready* (balancers
        must stop routing to it)."""
        if self._draining:
            return False, "draining"
        return True, None

    def _health(self) -> Dict[str, object]:
        ready, reason = self._ready_state()
        return {
            "status": "ok" if ready else "not-ready",
            "ready": ready,
            "reason": reason,
            "role": "serve" if self.server is not None else "store",
            "graph": (
                self.server.graph.name
                if self.server is not None
                else None
            ),
            "engine": (
                self.server.engine_name
                if self.server is not None
                else None
            ),
        }

    def stats(self) -> Dict[str, object]:
        report: Dict[str, object] = {
            "requests": dict(self._requests),
            "admission": self.admission.as_dict(),
            "store": self.store.stats.as_dict(),
            "deadline_504": self._deadline_504,
            "draining": self._draining,
        }
        if self.server is not None:
            report["server"] = self.server.stats()
            report["serving"] = self.serving.describe()
        return report

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        role = "serve" if self._source is not None else "store-only"
        where = (
            f"{self.fabric.host}:{self.port}"
            if self.port is not None
            else "stopped"
        )
        return f"FabricNode({role}, {where})"
