"""A synchronous keep-alive client for one fabric node.

:class:`FabricClient` is the caller-side half of the fabric protocol:
one persistent :class:`http.client.HTTPConnection` (re-dialed once per
operation when the server idles it out), speaking the binary LPW frame
format by default and returning plain
:class:`~repro.lpu.simulator.SimulationResult` objects — so a result
fetched over the wire drops into every comparison and report the
in-process serving layer already supports, bit for bit.

One client is one connection is one lane: drive it from one thread, and
give each load-generator client its own instance (that is what the
per-client admission fairness on the node keys on, via the
``X-Client`` header).

Resilience is opt-in and deterministic: hand the client a
:class:`RetryPolicy` and :meth:`FabricClient.infer` retries transport
failures and admission rejections under a bounded exponential backoff
(honoring the node's ``Retry-After``); hand it a
:class:`CircuitBreaker` and a node that keeps failing is quarantined —
calls fail fast with :class:`CircuitOpen` until a half-open probe
proves the node back.  Without either, behavior is the classic
single-shot client.
"""

from __future__ import annotations

import http.client
import json
import threading
import time
from dataclasses import dataclass
from typing import Dict, Optional, Tuple

import numpy as np

from ...lpu.simulator import SimulationResult
from .wire import (
    BINARY_CONTENT_TYPE,
    JSON_CONTENT_TYPE,
    WireError,
    decode_json_response,
    decode_response,
    encode_request,
)

__all__ = [
    "CircuitBreaker",
    "CircuitOpen",
    "FabricClient",
    "FabricError",
    "FabricRejected",
    "RetryPolicy",
]

#: errors that mean "the transport failed", not "the node answered no".
TRANSPORT_ERRORS = (http.client.HTTPException, OSError)


class FabricError(RuntimeError):
    """The node answered with a non-retryable error."""

    def __init__(self, status: int, message: str) -> None:
        super().__init__(f"fabric node answered {status}: {message}")
        self.status = status


class FabricRejected(FabricError):
    """Admission control turned the request away (429/503) — retryable
    after :attr:`retry_after` seconds."""

    def __init__(
        self, status: int, message: str, retry_after: float
    ) -> None:
        super().__init__(status, message)
        self.retry_after = retry_after


class CircuitOpen(FabricError):
    """The client's circuit breaker has quarantined this node: the call
    failed fast without touching the wire.  Retryable after
    :attr:`retry_after` seconds (when the breaker half-opens)."""

    def __init__(self, retry_after: float) -> None:
        RuntimeError.__init__(
            self,
            "circuit open: node quarantined for another "
            f"{retry_after:.3f}s",
        )
        self.status = 503
        self.retry_after = retry_after


@dataclass(frozen=True)
class RetryPolicy:
    """Deterministic bounded exponential backoff.

    Attempt ``k`` (zero-based) sleeps
    ``min(backoff_s * multiplier**k, max_backoff_s)`` before retrying —
    no jitter, so a seeded chaos run replays the exact same schedule.
    When the node sent ``Retry-After``, the sleep is
    ``max(computed, retry_after)``: never hammer a node that told us
    when to come back.
    """

    max_attempts: int = 3
    backoff_s: float = 0.01
    multiplier: float = 2.0
    max_backoff_s: float = 0.5

    def __post_init__(self) -> None:
        if self.max_attempts < 1:
            raise ValueError("max_attempts must be >= 1")
        if self.backoff_s < 0 or self.max_backoff_s < 0:
            raise ValueError("backoff durations must be >= 0")
        if self.multiplier < 1.0:
            raise ValueError("multiplier must be >= 1.0")

    def delay(self, attempt: int) -> float:
        """Backoff before retry ``attempt`` (zero-based)."""
        return min(
            self.backoff_s * self.multiplier ** attempt,
            self.max_backoff_s,
        )


class CircuitBreaker:
    """Per-node circuit breaker: closed → open → half-open → closed.

    ``failure_threshold`` consecutive transport failures open the
    circuit; while open every call fails fast with
    :class:`CircuitOpen`.  After ``reset_after_s`` the breaker goes
    half-open: exactly one probe call is let through (concurrent calls
    keep failing fast); the probe's outcome closes or re-opens the
    circuit.  An HTTP answer of any status counts as success here —
    the breaker tracks *node reachability*, not request outcomes.

    ``clock`` is injectable for deterministic tests.
    """

    def __init__(
        self,
        *,
        failure_threshold: int = 5,
        reset_after_s: float = 1.0,
        clock=time.monotonic,
    ) -> None:
        if failure_threshold < 1:
            raise ValueError("failure_threshold must be >= 1")
        if reset_after_s <= 0:
            raise ValueError("reset_after_s must be > 0")
        self.failure_threshold = failure_threshold
        self.reset_after_s = reset_after_s
        self._clock = clock
        self._lock = threading.Lock()
        self._failures = 0
        self._opened_at: Optional[float] = None
        self._probing = False
        self.opened_total = 0

    @property
    def state(self) -> str:
        with self._lock:
            if self._opened_at is None:
                return "closed"
            if self._probing:
                return "half-open"
            if self._clock() - self._opened_at >= self.reset_after_s:
                return "half-open"
            return "open"

    def check(self) -> None:
        """Gate one call: pass, or raise :class:`CircuitOpen`."""
        with self._lock:
            if self._opened_at is None:
                return
            now = self._clock()
            remaining = self.reset_after_s - (now - self._opened_at)
            if remaining > 0:
                raise CircuitOpen(remaining)
            # Half-open: this call is the probe.  Re-arm the window so
            # concurrent callers fail fast until the probe reports.
            self._opened_at = now
            self._probing = True

    def record_success(self) -> None:
        with self._lock:
            self._failures = 0
            self._opened_at = None
            self._probing = False

    def record_failure(self) -> None:
        with self._lock:
            self._failures += 1
            if self._probing or self._failures >= self.failure_threshold:
                self._opened_at = self._clock()
                self._probing = False
                self.opened_total += 1

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"CircuitBreaker(state={self.state!r}, "
            f"failures={self._failures})"
        )


class FabricClient:
    """One persistent connection to one fabric node.

    Args:
        base_url: the node root, e.g. ``http://127.0.0.1:8080``.
        client_id: admission identity sent as ``X-Client`` (per-client
            token buckets key on it); defaults to anonymous.
        wire: ``"binary"`` (LPW frames, the fast path) or ``"json"``.
        timeout: per-request socket timeout in seconds.
        retry: a :class:`RetryPolicy` makes :meth:`infer` retry
            transport failures and admission rejections under bounded
            deterministic backoff; ``None`` (default) keeps the
            single-shot behavior.
        breaker: a :class:`CircuitBreaker` quarantines the node after
            repeated transport failures — calls fail fast with
            :class:`CircuitOpen` instead of burning the timeout.
        injector: optional :class:`~repro.serve.faults.FaultInjector`;
            its ``client.request`` site severs this client's connection
            at chosen request indices (chaos testing the retry path).
    """

    def __init__(
        self,
        base_url: str,
        *,
        client_id: Optional[str] = None,
        wire: str = "binary",
        timeout: float = 30.0,
        retry: Optional[RetryPolicy] = None,
        breaker: Optional[CircuitBreaker] = None,
        injector=None,
    ) -> None:
        from urllib.parse import urlsplit

        if wire not in ("binary", "json"):
            raise ValueError("wire must be 'binary' or 'json'")
        parts = urlsplit(base_url)
        if parts.scheme != "http" or parts.hostname is None:
            raise ValueError(f"need an http://host:port url, got {base_url!r}")
        self.host = parts.hostname
        self.port = parts.port if parts.port is not None else 80
        self.client_id = client_id
        self.wire = wire
        self.timeout = timeout
        self.retry = retry
        self.breaker = breaker
        self._injector = injector
        self._conn: Optional[http.client.HTTPConnection] = None
        #: latency metadata of the most recent inference (node-measured).
        self.last_latency: Dict[str, float] = {}
        #: retries spent across this client's lifetime.
        self.retries = 0

    # ------------------------------------------------------------------
    def _close_conn(self) -> None:
        if self._conn is not None:
            try:
                self._conn.close()
            except Exception:  # pragma: no cover - best effort
                pass
            self._conn = None

    def _request(
        self,
        method: str,
        path: str,
        body: Optional[bytes] = None,
        headers: Optional[Dict[str, str]] = None,
    ) -> Tuple[int, Dict[str, str], bytes]:
        if self._injector is not None and self._injector.client_sever():
            self._close_conn()
            raise ConnectionError("injected connection sever")
        for attempt in (0, 1):
            if self._conn is None:
                self._conn = http.client.HTTPConnection(
                    self.host, self.port, timeout=self.timeout
                )
            try:
                self._conn.request(
                    method, path, body=body, headers=headers or {}
                )
                response = self._conn.getresponse()
                data = response.read()
                return (
                    response.status,
                    {k.lower(): v for k, v in response.getheaders()},
                    data,
                )
            except TRANSPORT_ERRORS:
                self._close_conn()
                if attempt:
                    raise
            except BaseException:
                # Anything else mid-exchange (decode bug, KeyboardInterrupt,
                # injected cancellation) leaves the connection with a
                # half-read body: reusing it would answer the *next*
                # request with *this* request's stale bytes.  Drop it.
                self._close_conn()
                raise
        raise OSError("unreachable")  # pragma: no cover - loop returns

    @staticmethod
    def _error_message(body: bytes) -> str:
        try:
            return str(json.loads(body.decode("utf-8"))["error"])
        except Exception:  # noqa: BLE001 - diagnostic best effort
            return body[:200].decode("latin-1")

    # ------------------------------------------------------------------
    def _encode_infer(
        self,
        inputs: Dict[str, np.ndarray],
        deadline_ms: Optional[float],
    ) -> Tuple[bytes, str]:
        if self.wire == "binary":
            return (
                encode_request(inputs, deadline_ms=deadline_ms),
                BINARY_CONTENT_TYPE,
            )
        message: Dict[str, object] = {
            "inputs": {
                name: [int(w) for w in np.atleast_1d(words)]
                for name, words in inputs.items()
            }
        }
        if deadline_ms is not None:
            message["deadline_ms"] = float(deadline_ms)
        return json.dumps(message).encode("utf-8"), JSON_CONTENT_TYPE

    def _infer_once(
        self, body: bytes, headers: Dict[str, str]
    ) -> SimulationResult:
        status, response_headers, data = self._request(
            "POST", "/v1/infer", body=body, headers=headers
        )
        if status in (429, 503):
            try:
                retry_after = float(
                    response_headers.get("retry-after", "0.01")
                )
            except ValueError:  # pragma: no cover - defensive
                retry_after = 0.01
            raise FabricRejected(
                status, self._error_message(data), retry_after
            )
        if status == 504:
            from ..scheduler import DeadlineExceeded

            try:
                detail = json.loads(data.decode("utf-8"))
                raise DeadlineExceeded(
                    float(detail["deadline_ms"]),
                    float(detail["waited_ms"]),
                )
            except (ValueError, KeyError, TypeError):
                raise FabricError(
                    status, self._error_message(data)
                ) from None
        if status != 200:
            raise FabricError(status, self._error_message(data))
        try:
            if response_headers.get("content-type", "").startswith(
                BINARY_CONTENT_TYPE
            ):
                result, latency = decode_response(data)
            else:
                result, latency = decode_json_response(data)
        except WireError as exc:
            raise FabricError(200, str(exc)) from exc
        self.last_latency = latency
        return result

    def infer(
        self,
        inputs: Dict[str, np.ndarray],
        *,
        deadline_ms: Optional[float] = None,
    ) -> SimulationResult:
        """One inference round trip; bit-identical to a local run.

        ``deadline_ms`` rides to the node, which sheds the request with
        504 — surfaced here as
        :class:`~repro.serve.scheduler.DeadlineExceeded` — if it cannot
        answer in time.  Without a :attr:`retry` policy this raises
        :class:`FabricRejected` on admission rejection (retryable by
        the caller) and transport errors as-is; with one, rejections
        and transport failures are retried under deterministic backoff
        (honoring ``Retry-After``) up to ``max_attempts``.  A
        :attr:`breaker` gates every attempt and converts a quarantined
        node into a fast :class:`CircuitOpen`.  The node's latency
        metadata lands in :attr:`last_latency`.
        """
        body, content_type = self._encode_infer(inputs, deadline_ms)
        headers = {"Content-Type": content_type}
        if self.client_id is not None:
            headers["X-Client"] = self.client_id
        attempts = self.retry.max_attempts if self.retry else 1
        for attempt in range(attempts):
            if self.breaker is not None:
                self.breaker.check()
            try:
                result = self._infer_once(body, headers)
            except FabricRejected as exc:
                # The node answered: reachable, just busy (or
                # draining).  Not a breaker failure.
                if self.breaker is not None:
                    self.breaker.record_success()
                if attempt + 1 >= attempts:
                    raise
                self.retries += 1
                time.sleep(
                    max(self.retry.delay(attempt), exc.retry_after)
                )
            except TRANSPORT_ERRORS:
                if self.breaker is not None:
                    self.breaker.record_failure()
                if attempt + 1 >= attempts:
                    raise
                self.retries += 1
                time.sleep(self.retry.delay(attempt))
            except FabricError:
                # A definitive answer (400/404/500): reachable node,
                # non-retryable outcome.
                if self.breaker is not None:
                    self.breaker.record_success()
                raise
            except RuntimeError:
                # DeadlineExceeded (the 504 surface): the node answered
                # and the request's budget is spent — never retried.
                if self.breaker is not None:
                    self.breaker.record_success()
                raise
            else:
                if self.breaker is not None:
                    self.breaker.record_success()
                return result
        raise OSError("unreachable")  # pragma: no cover - loop raises

    def health(self) -> Dict[str, object]:
        """The node's combined health document.

        Tolerates 503: a draining node answers ``{"status":
        "not-ready", "ready": false, "reason": ...}`` — that is an
        *answer*, not an error, so callers can distinguish
        alive-but-draining from dead."""
        status, _, data = self._request("GET", "/v1/health")
        if status not in (200, 503):
            raise FabricError(status, self._error_message(data))
        return json.loads(data.decode("utf-8"))

    def stats(self) -> Dict[str, object]:
        status, _, data = self._request("GET", "/v1/stats")
        if status != 200:
            raise FabricError(status, self._error_message(data))
        return json.loads(data.decode("utf-8"))

    def close(self) -> None:
        if self._conn is not None:
            try:
                self._conn.close()
            except Exception:  # pragma: no cover - best effort
                pass
            self._conn = None

    def __enter__(self) -> "FabricClient":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"FabricClient(http://{self.host}:{self.port}, "
            f"wire={self.wire!r})"
        )
