"""A synchronous keep-alive client for one fabric node.

:class:`FabricClient` is the caller-side half of the fabric protocol:
one persistent :class:`http.client.HTTPConnection` (re-dialed once per
operation when the server idles it out), speaking the binary LPW frame
format by default and returning plain
:class:`~repro.lpu.simulator.SimulationResult` objects — so a result
fetched over the wire drops into every comparison and report the
in-process serving layer already supports, bit for bit.

One client is one connection is one lane: drive it from one thread, and
give each load-generator client its own instance (that is what the
per-client admission fairness on the node keys on, via the
``X-Client`` header).
"""

from __future__ import annotations

import http.client
import json
from typing import Dict, Optional, Tuple

import numpy as np

from ...lpu.simulator import SimulationResult
from .wire import (
    BINARY_CONTENT_TYPE,
    JSON_CONTENT_TYPE,
    WireError,
    decode_json_response,
    decode_response,
    encode_request,
)

__all__ = ["FabricClient", "FabricError", "FabricRejected"]


class FabricError(RuntimeError):
    """The node answered with a non-retryable error."""

    def __init__(self, status: int, message: str) -> None:
        super().__init__(f"fabric node answered {status}: {message}")
        self.status = status


class FabricRejected(FabricError):
    """Admission control turned the request away (429/503) — retryable
    after :attr:`retry_after` seconds."""

    def __init__(
        self, status: int, message: str, retry_after: float
    ) -> None:
        super().__init__(status, message)
        self.retry_after = retry_after


class FabricClient:
    """One persistent connection to one fabric node.

    Args:
        base_url: the node root, e.g. ``http://127.0.0.1:8080``.
        client_id: admission identity sent as ``X-Client`` (per-client
            token buckets key on it); defaults to anonymous.
        wire: ``"binary"`` (LPW frames, the fast path) or ``"json"``.
        timeout: per-request socket timeout in seconds.
    """

    def __init__(
        self,
        base_url: str,
        *,
        client_id: Optional[str] = None,
        wire: str = "binary",
        timeout: float = 30.0,
    ) -> None:
        from urllib.parse import urlsplit

        if wire not in ("binary", "json"):
            raise ValueError("wire must be 'binary' or 'json'")
        parts = urlsplit(base_url)
        if parts.scheme != "http" or parts.hostname is None:
            raise ValueError(f"need an http://host:port url, got {base_url!r}")
        self.host = parts.hostname
        self.port = parts.port if parts.port is not None else 80
        self.client_id = client_id
        self.wire = wire
        self.timeout = timeout
        self._conn: Optional[http.client.HTTPConnection] = None
        #: latency metadata of the most recent inference (node-measured).
        self.last_latency: Dict[str, float] = {}

    # ------------------------------------------------------------------
    def _request(
        self,
        method: str,
        path: str,
        body: Optional[bytes] = None,
        headers: Optional[Dict[str, str]] = None,
    ) -> Tuple[int, Dict[str, str], bytes]:
        for attempt in (0, 1):
            if self._conn is None:
                self._conn = http.client.HTTPConnection(
                    self.host, self.port, timeout=self.timeout
                )
            try:
                self._conn.request(
                    method, path, body=body, headers=headers or {}
                )
                response = self._conn.getresponse()
                data = response.read()
                return (
                    response.status,
                    {k.lower(): v for k, v in response.getheaders()},
                    data,
                )
            except (http.client.HTTPException, OSError):
                try:
                    self._conn.close()
                except Exception:  # pragma: no cover - best effort
                    pass
                self._conn = None
                if attempt:
                    raise
        raise OSError("unreachable")  # pragma: no cover - loop returns

    @staticmethod
    def _error_message(body: bytes) -> str:
        try:
            return str(json.loads(body.decode("utf-8"))["error"])
        except Exception:  # noqa: BLE001 - diagnostic best effort
            return body[:200].decode("latin-1")

    # ------------------------------------------------------------------
    def infer(
        self, inputs: Dict[str, np.ndarray]
    ) -> SimulationResult:
        """One inference round trip; bit-identical to a local run.

        Raises :class:`FabricRejected` when admission control turns the
        request away (retryable), :class:`FabricError` otherwise.  The
        node's latency metadata lands in :attr:`last_latency`.
        """
        if self.wire == "binary":
            body = encode_request(inputs)
            content_type = BINARY_CONTENT_TYPE
        else:
            body = json.dumps(
                {
                    "inputs": {
                        name: [int(w) for w in np.atleast_1d(words)]
                        for name, words in inputs.items()
                    }
                }
            ).encode("utf-8")
            content_type = JSON_CONTENT_TYPE
        headers = {"Content-Type": content_type}
        if self.client_id is not None:
            headers["X-Client"] = self.client_id
        status, response_headers, data = self._request(
            "POST", "/v1/infer", body=body, headers=headers
        )
        if status in (429, 503):
            try:
                retry_after = float(
                    response_headers.get("retry-after", "0.01")
                )
            except ValueError:  # pragma: no cover - defensive
                retry_after = 0.01
            raise FabricRejected(
                status, self._error_message(data), retry_after
            )
        if status != 200:
            raise FabricError(status, self._error_message(data))
        try:
            if response_headers.get("content-type", "").startswith(
                BINARY_CONTENT_TYPE
            ):
                result, latency = decode_response(data)
            else:
                result, latency = decode_json_response(data)
        except WireError as exc:
            raise FabricError(200, str(exc)) from exc
        self.last_latency = latency
        return result

    def health(self) -> Dict[str, object]:
        status, _, data = self._request("GET", "/v1/health")
        if status != 200:
            raise FabricError(status, self._error_message(data))
        return json.loads(data.decode("utf-8"))

    def stats(self) -> Dict[str, object]:
        status, _, data = self._request("GET", "/v1/stats")
        if status != 200:
            raise FabricError(status, self._error_message(data))
        return json.loads(data.decode("utf-8"))

    def close(self) -> None:
        if self._conn is not None:
            try:
                self._conn.close()
            except Exception:  # pragma: no cover - best effort
                pass
            self._conn = None

    def __enter__(self) -> "FabricClient":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"FabricClient(http://{self.host}:{self.port}, "
            f"wire={self.wire!r})"
        )
