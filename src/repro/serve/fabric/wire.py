"""The fabric inference wire formats: binary LPW frames and JSON.

Inference payloads are packed uint64 words — JSON round-trips them
fine (Python ints are exact), but at serving rates the text encode /
decode dominates the wire cost.  The fabric therefore speaks two
formats, negotiated by ``Content-Type``:

* ``application/x-lpw`` — the binary fast path.  A frame is::

      magic   4 bytes  b"LPW1" (request) / b"LPR1" (response)
      hlen    4 bytes  uint32 little-endian header length
      header  hlen bytes of UTF-8 JSON
      payload len(names) * words * 8 bytes of uint64 little-endian

  The request header carries ``{"names": [...], "words": W}`` and the
  payload concatenates each signal's ``W`` words in header-name order.
  The response header adds the run statistics and per-request latency
  metadata; its payload carries the outputs the same way.

* ``application/json`` — the debuggable path: ``{"inputs": {name:
  [words...]}}`` in, ``{"outputs": ..., "stats": ..., "latency": ...}``
  out.  Bit-exact but slower; ``curl``-friendly.

Both formats carry identical information; results decoded from either
are bit-identical to a direct :meth:`~repro.engine.session.Session.run`.
"""

from __future__ import annotations

import json
import struct
from typing import Dict, Optional, Tuple

import numpy as np

from ...lpu.simulator import SimulationResult

__all__ = [
    "BINARY_CONTENT_TYPE",
    "JSON_CONTENT_TYPE",
    "WireError",
    "decode_json_request",
    "decode_json_request_meta",
    "decode_json_response",
    "decode_request",
    "decode_request_meta",
    "decode_response",
    "encode_json_response",
    "encode_request",
    "encode_response",
]

BINARY_CONTENT_TYPE = "application/x-lpw"
JSON_CONTENT_TYPE = "application/json"

_REQUEST_MAGIC = b"LPW1"
_RESPONSE_MAGIC = b"LPR1"
_WORD = np.dtype("<u8")

_STAT_FIELDS = (
    "macro_cycles",
    "clock_cycles",
    "compute_instructions_executed",
    "switch_routes",
    "peak_buffer_words",
    "buffer_writes",
)


class WireError(ValueError):
    """The bytes are not a valid fabric inference frame."""


def _word_matrix(
    values: Dict[str, np.ndarray], names
) -> Tuple[np.ndarray, int]:
    """Stack ``values`` in ``names`` order into a (n, words) matrix."""
    arrays = []
    words = None
    for name in names:
        array = np.atleast_1d(np.asarray(values[name], dtype=np.uint64))
        if array.ndim != 1:
            raise WireError(
                f"signal {name!r} must be a flat word array, "
                f"got shape {array.shape}"
            )
        if words is None:
            words = array.size
        elif array.size != words:
            raise WireError(
                "all signals in one frame must carry the same word "
                f"count ({name!r} has {array.size}, expected {words})"
            )
        arrays.append(array)
    if words is None:
        raise WireError("a frame needs at least one signal")
    return np.stack(arrays), words


def _pack(magic: bytes, header: Dict[str, object],
          payload: np.ndarray) -> bytes:
    header_bytes = json.dumps(
        header, sort_keys=True, separators=(",", ":")
    ).encode("utf-8")
    return b"".join(
        (
            magic,
            struct.pack("<I", len(header_bytes)),
            header_bytes,
            np.ascontiguousarray(payload, dtype=_WORD).tobytes(),
        )
    )


def _unpack(
    data: bytes, magic: bytes
) -> Tuple[Dict[str, object], np.ndarray]:
    if len(data) < 8 or data[:4] != magic:
        raise WireError(
            f"not a {magic.decode('latin-1')} frame "
            f"(leading bytes {data[:4]!r})"
        )
    (hlen,) = struct.unpack_from("<I", data, 4)
    if 8 + hlen > len(data):
        raise WireError("frame header overruns the payload")
    try:
        header = json.loads(data[8:8 + hlen].decode("utf-8"))
    except (UnicodeDecodeError, ValueError) as exc:
        raise WireError(f"unparsable frame header: {exc}") from exc
    if not isinstance(header, dict):
        raise WireError("frame header is not a JSON object")
    payload = np.frombuffer(data, dtype=_WORD, offset=8 + hlen)
    return header, payload


def _split_payload(
    header: Dict[str, object], payload: np.ndarray, kind: str
) -> Tuple[Dict[str, np.ndarray], int]:
    try:
        names = [str(name) for name in header["names"]]
        words = int(header["words"])
    except (KeyError, TypeError, ValueError) as exc:
        raise WireError(f"malformed {kind} header: {exc}") from exc
    if words < 1:
        raise WireError("frames carry at least one word per signal")
    if payload.size != len(names) * words:
        raise WireError(
            f"{kind} payload carries {payload.size} words, header "
            f"promises {len(names)} x {words}"
        )
    matrix = payload.reshape(len(names), words)
    values = {}
    for i, name in enumerate(names):
        row = matrix[i].copy()
        row.setflags(write=False)
        values[name] = row
    return values, words


# ----------------------------------------------------------------------
# Requests
# ----------------------------------------------------------------------
def encode_request(
    inputs: Dict[str, np.ndarray],
    *,
    deadline_ms: Optional[float] = None,
) -> bytes:
    """Pack one inference request into an LPW1 frame.

    ``deadline_ms`` rides in the frame header: the node sheds the
    request with HTTP 504 if it cannot answer within the budget.
    """
    names = sorted(inputs)
    matrix, words = _word_matrix(inputs, names)
    header: Dict[str, object] = {"names": names, "words": words}
    if deadline_ms is not None:
        header["deadline_ms"] = float(deadline_ms)
    return _pack(_REQUEST_MAGIC, header, matrix)


def _header_deadline(header: Dict[str, object]) -> Optional[float]:
    raw = header.get("deadline_ms")
    if raw is None:
        return None
    try:
        deadline_ms = float(raw)
    except (TypeError, ValueError) as exc:
        raise WireError(f"malformed request deadline: {raw!r}") from exc
    if deadline_ms <= 0:
        raise WireError("request deadline_ms must be > 0")
    return deadline_ms


def decode_request_meta(
    data: bytes,
) -> Tuple[Dict[str, np.ndarray], Dict[str, object]]:
    """Unpack an LPW1 frame into inputs + request metadata
    (``{"deadline_ms": float | None}``)."""
    header, payload = _unpack(data, _REQUEST_MAGIC)
    values, _ = _split_payload(header, payload, "request")
    return values, {"deadline_ms": _header_deadline(header)}


def decode_request(data: bytes) -> Dict[str, np.ndarray]:
    """Unpack an LPW1 frame into engine-ready inputs."""
    values, _ = decode_request_meta(data)
    return values


def decode_json_request_meta(
    body: bytes,
) -> Tuple[Dict[str, np.ndarray], Dict[str, object]]:
    """The JSON request form: ``{"inputs": {name: [words...]},
    "deadline_ms": optional}`` — inputs + request metadata."""
    try:
        message = json.loads(body.decode("utf-8"))
        raw = message["inputs"]
        inputs = {
            str(name): np.asarray(words, dtype=np.uint64).reshape(-1)
            for name, words in raw.items()
        }
    except (UnicodeDecodeError, ValueError, KeyError,
            TypeError, AttributeError, OverflowError) as exc:
        raise WireError(f"malformed JSON inference request: {exc}") from exc
    return inputs, {"deadline_ms": _header_deadline(message)}


def decode_json_request(body: bytes) -> Dict[str, np.ndarray]:
    """The JSON request form, inputs only (see the ``_meta`` variant)."""
    inputs, _ = decode_json_request_meta(body)
    return inputs


# ----------------------------------------------------------------------
# Responses
# ----------------------------------------------------------------------
def _stats_dict(result: SimulationResult) -> Dict[str, int]:
    return {name: int(getattr(result, name)) for name in _STAT_FIELDS}


def encode_response(
    result: SimulationResult,
    latency: Optional[Dict[str, float]] = None,
) -> bytes:
    """Pack one result (outputs + statistics + latency) as LPR1."""
    names = sorted(result.outputs)
    matrix, words = _word_matrix(result.outputs, names)
    header = {
        "names": names,
        "words": words,
        "stats": _stats_dict(result),
        "latency": latency or {},
    }
    return _pack(_RESPONSE_MAGIC, header, matrix)


def decode_response(
    data: bytes,
) -> Tuple[SimulationResult, Dict[str, float]]:
    """Unpack an LPR1 frame into a result + latency metadata."""
    header, payload = _unpack(data, _RESPONSE_MAGIC)
    outputs, _ = _split_payload(header, payload, "response")
    stats = header.get("stats")
    if not isinstance(stats, dict):
        raise WireError("response frame carries no statistics")
    try:
        result = SimulationResult(
            outputs=outputs,
            **{name: int(stats[name]) for name in _STAT_FIELDS},
        )
    except (KeyError, TypeError, ValueError) as exc:
        raise WireError(f"malformed response statistics: {exc}") from exc
    latency = {
        str(key): float(value)
        for key, value in dict(header.get("latency") or {}).items()
    }
    return result, latency


def encode_json_response(
    result: SimulationResult,
    latency: Optional[Dict[str, float]] = None,
) -> bytes:
    """The JSON response form (exact: words as decimal integers)."""
    return json.dumps(
        {
            "outputs": {
                name: [int(word) for word in np.atleast_1d(words)]
                for name, words in sorted(result.outputs.items())
            },
            "stats": _stats_dict(result),
            "latency": latency or {},
        }
    ).encode("utf-8")


def decode_json_response(
    body: bytes,
) -> Tuple[SimulationResult, Dict[str, float]]:
    """Inverse of :func:`encode_json_response`."""
    try:
        message = json.loads(body.decode("utf-8"))
        outputs = {
            str(name): np.asarray(words, dtype=np.uint64).reshape(-1)
            for name, words in message["outputs"].items()
        }
        stats = message["stats"]
        result = SimulationResult(
            outputs=outputs,
            **{name: int(stats[name]) for name in _STAT_FIELDS},
        )
        latency = {
            str(key): float(value)
            for key, value in dict(message.get("latency") or {}).items()
        }
        return result, latency
    except (UnicodeDecodeError, ValueError, KeyError,
            TypeError, AttributeError, OverflowError) as exc:
        raise WireError(f"malformed JSON inference response: {exc}") from exc
