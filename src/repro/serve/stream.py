"""Stateful streaming sessions over the worker pool.

The batch serving stack (:class:`~repro.serve.server.InferenceServer`)
treats every request as independent — correct, but blind to the structure
of the paper's flagship deployments (intrusion detection, trigger
systems), where each *client* is a stream whose consecutive samples
barely differ.  The delta engine (:mod:`repro.engine.delta`) exploits
that only if one persistent engine state sees the whole stream in order.

:class:`StreamingServer` provides exactly that: it owns a thread-backed
:class:`~repro.serve.pool.WorkerPool` and hands out sticky
:class:`StreamSession` handles.  Opening a session pins the client to the
least-loaded worker and allocates a dedicated engine state there
(:meth:`~repro.engine.delta.DeltaEngine.new_state`); every subsequent
step runs on that worker's own thread via
:meth:`~repro.serve.pool.WorkerPool.submit_call`, FIFO with the worker's
other traffic — so interleaved sessions sharing one worker stay isolated
(separate states) and ordered (one queue), with no cross-thread state
sharing.  Engines without stream state (``"fused"``, ``"trace"``) degrade
gracefully to plain per-request runs on the sticky worker.

:func:`run_stream_bench` is the measurement driver behind the
``repro stream-bench`` CLI and ``benchmarks/bench_delta_streaming.py``.
"""

from __future__ import annotations

import threading
import time
from typing import Dict, List, Optional, Union

import numpy as np

from ..artifact.format import ExecutableArtifact
from ..core.codegen import Program
from ..core.config import LPUConfig
from ..engine.base import SAMPLES_PER_WORD
from ..engine.session import Session
from ..lpu.functional import random_stimulus
from ..lpu.simulator import SimulationResult
from ..netlist.graph import LogicGraph
from .cache import ProgramCache
from .config import ServeConfig, resolve_serving
from .pool import WorkerPool

__all__ = [
    "StreamSession",
    "StreamingServer",
    "make_stream",
    "run_stream_bench",
]

_WORD = np.uint64


class StreamSession:
    """One client's sticky, ordered, stateful stream.

    Obtained from :meth:`StreamingServer.open_session`; drive it from one
    thread at a time (steps are FIFO on the pinned worker regardless).
    """

    def __init__(self, server: "StreamingServer", index: int, state) -> None:
        self._server = server
        self.worker_index = index
        self._state = state  # None for engines without stream state
        self._closed = False

    @property
    def stateful(self) -> bool:
        return self._state is not None

    def submit(self, inputs: Dict[str, np.ndarray]) -> "object":
        """Enqueue one stream step; the Future resolves to its result."""
        if self._closed:
            raise RuntimeError("stream session is closed")
        state = self._state
        if state is None:
            return self._server.pool.submit_call(
                self.worker_index, lambda session: session.run(inputs)
            )
        return self._server.pool.submit_call(
            self.worker_index,
            lambda session: session.engine.run_with_state(inputs, state),
        )

    def run(self, inputs: Dict[str, np.ndarray]) -> SimulationResult:
        """Synchronous single step (blocks for the result)."""
        return self.submit(inputs).result()

    def reset(self) -> None:
        """Forget the stream history (the next step runs densely).

        Executed on the worker thread, ordered after steps already
        queued."""
        if self._closed:
            raise RuntimeError("stream session is closed")
        state = self._state
        if state is not None:
            self._server.pool.submit_call(
                self.worker_index, lambda _session: state.invalidate()
            ).result()

    def stats(self) -> Dict[str, object]:
        """This stream's delta counters (empty for stateless engines)."""
        state = self._state
        if state is None:
            return {}
        return dict(state.counters())

    def close(self) -> None:
        """Release the worker slot (the state is garbage-collected)."""
        if self._closed:
            return
        self._closed = True
        self._server._release(self.worker_index)

    def __enter__(self) -> "StreamSession":
        return self

    def __exit__(self, *exc) -> None:
        self.close()


class StreamingServer:
    """Sticky per-client streaming on top of :class:`WorkerPool`.

    Args:
        source: a :class:`LogicGraph` to compile, a compiled
            :class:`Program`, or an :class:`ExecutableArtifact`.
        config: LPU parameters when compiling from a graph.
        serving: the :class:`~repro.serve.config.ServeConfig`; the
            streaming layer uses its ``engine`` (``"delta"`` default —
            the point of the layer; stateless engines simply run
            per-request), ``num_workers`` (sessions are placed on the
            worker with the fewest open sessions), and cache/store
            wiring.  The backend must stay ``"thread"``: per-session
            engine state lives in-process.
        **kwargs: compile options forwarded to
            :func:`repro.core.compile_ffcl` (legacy serving keywords
            keep working through the deprecation shim).
    """

    def __init__(
        self,
        source: Union[LogicGraph, Program, ExecutableArtifact],
        config: Optional[LPUConfig] = None,
        *,
        serving: Optional[ServeConfig] = None,
        **kwargs,
    ) -> None:
        serving, compile_options = resolve_serving(
            serving, kwargs, defaults={"engine": "delta"}
        )
        if serving.backend != "thread":
            raise ValueError(
                "streaming sessions require the thread backend: "
                "per-session engine state lives in-process and is "
                "driven on the owning worker's thread"
            )
        self.serving = serving
        self.cache = serving.resolve_cache()
        entry = self.cache.get_or_compile(
            source, config, engine=serving.engine, **compile_options
        )
        self.program = entry.program
        self.engine_name = serving.engine
        # Thread backend only: per-session engine state lives in-process
        # and submit_call drives it on the owning worker's thread.
        self.pool = WorkerPool(
            self.program,
            num_workers=serving.num_workers,
            engine=serving.engine,
            engine_options=dict(serving.engine_options) or None,
            backend="thread",
            artifact=entry.artifact,
        )
        self._lock = threading.Lock()
        self._open_sessions = [0] * serving.num_workers
        self._sessions_opened = 0
        self._closed = False

    # ------------------------------------------------------------------
    @property
    def graph(self) -> LogicGraph:
        return self.program.graph

    def open_session(self) -> StreamSession:
        """Open one client stream, pinned to the least-busy worker."""
        with self._lock:
            if self._closed:
                raise RuntimeError("streaming server is closed")
            index = min(
                range(self.pool.num_workers),
                key=lambda i: (self._open_sessions[i], i),
            )
            self._open_sessions[index] += 1
            self._sessions_opened += 1
        try:
            state = self.pool.submit_call(
                index,
                lambda session: session.engine.new_state()
                if hasattr(session.engine, "new_state") else None,
            ).result()
        except BaseException:
            self._release(index)
            raise
        return StreamSession(self, index, state)

    def _release(self, index: int) -> None:
        with self._lock:
            self._open_sessions[index] -= 1

    def stats(self) -> Dict[str, object]:
        with self._lock:
            open_sessions = list(self._open_sessions)
            opened = self._sessions_opened
        return {
            "engine": self.engine_name,
            "open_sessions": open_sessions,
            "sessions_opened": opened,
            "pool": self.pool.stats(),
            "cache": self.cache.stats.as_dict(),
        }

    def close(self) -> None:
        with self._lock:
            if self._closed:
                return
            self._closed = True
        self.pool.close()

    def __enter__(self) -> "StreamingServer":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"StreamingServer(graph={self.graph.name!r}, "
            f"engine={self.engine_name!r}, "
            f"workers={self.pool.num_workers})"
        )


# ----------------------------------------------------------------------
# The stream-bench driver
# ----------------------------------------------------------------------
def make_stream(
    graph: LogicGraph,
    *,
    steps: int,
    flip_bits: int = 1,
    array_size: int = 1,
    random_stream: bool = False,
    seed: int = 0,
) -> List[Dict[str, np.ndarray]]:
    """A deterministic input stream over ``graph``.

    Low-entropy mode (default): one random base sample, then a random
    walk flipping ``flip_bits`` uniformly-chosen bits per step —
    cumulative, like a real sensor stream.  ``random_stream=True``
    instead draws every step independently (the worst case for any
    incremental engine).
    """
    if random_stream:
        return [
            random_stimulus(graph, array_size=array_size, seed=seed + i)
            for i in range(steps)
        ]
    rng = np.random.default_rng(seed)
    current = {
        name: np.asarray(words, dtype=_WORD).copy()
        for name, words in random_stimulus(
            graph, array_size=array_size, seed=seed
        ).items()
    }
    names = sorted(current)
    stream = [{name: words.copy() for name, words in current.items()}]
    for _ in range(steps - 1):
        for _ in range(flip_bits):
            name = names[int(rng.integers(len(names)))]
            flat = current[name].reshape(-1)
            word = int(rng.integers(flat.size))
            bit = _WORD(rng.integers(SAMPLES_PER_WORD))
            flat[word] ^= _WORD(1) << bit
        stream.append(
            {name: words.copy() for name, words in current.items()}
        )
    return stream


def _stats_key(result: SimulationResult):
    return (
        result.macro_cycles,
        result.clock_cycles,
        result.compute_instructions_executed,
        result.switch_routes,
        result.peak_buffer_words,
        result.buffer_writes,
    )


def run_stream_bench(
    source: Union[LogicGraph, Program, ExecutableArtifact],
    config: Optional[LPUConfig] = None,
    *,
    steps: int = 256,
    flip_bits: int = 1,
    array_size: int = 1,
    random_stream: bool = False,
    seed: int = 0,
    num_workers: int = 1,
    engine: str = "delta",
    baseline_engine: str = "fused",
    reps: int = 3,
    verify: bool = True,
    cache: Optional[ProgramCache] = None,
    **compile_kwargs,
) -> Dict[str, object]:
    """Measure streamed incremental vs. per-step dense execution.

    1. compile (through the program cache) and generate a ``steps``-long
       stream (``flip_bits`` flips/step, or fully random),
    2. verify the streaming engine is bit-identical to the baseline on
       every step — outputs AND statistics,
    3. time full-stream sweeps of both engines interleaved (``reps``
       repetitions, medians reported) through direct stateful sessions,
    4. exercise the :class:`StreamingServer` session path on the same
       stream and verify it too,
    5. report steps/second for both, the speedup, and the delta
       counters.  Returns a JSON-able report.
    """
    if steps < 2:
        raise ValueError("steps must be >= 2")
    if reps < 1:
        raise ValueError("reps must be >= 1")
    serving = ServeConfig(
        engine=engine, num_workers=num_workers, cache=cache,
        compile_options=dict(compile_kwargs),
    )
    cache = serving.resolve_cache()
    serving = serving.replace(cache=cache)
    entry = cache.get_or_compile(
        source, config, engine=engine, **compile_kwargs
    )
    program = entry.program
    graph = program.graph
    stream = make_stream(
        graph,
        steps=steps,
        flip_bits=flip_bits,
        array_size=array_size,
        random_stream=random_stream,
        seed=seed,
    )

    baseline = Session(program, engine=baseline_engine)
    streaming = Session(program, engine=engine)

    bit_identical = True
    if verify:
        for stim in stream:
            expected = baseline.run(stim)
            got = streaming.run(stim)
            for name, words in expected.outputs.items():
                if not np.array_equal(got.outputs[name], words):
                    bit_identical = False
            if _stats_key(expected) != _stats_key(got):
                bit_identical = False

    def sweep(session: Session) -> float:
        start = time.perf_counter()
        for stim in stream:
            session.run(stim)
        return time.perf_counter() - start

    # Warm both (workspace/state allocation, kernel generation), then
    # interleave sweeps so drift hits both engines alike.
    sweep(baseline)
    sweep(streaming)
    baseline_times: List[float] = []
    streaming_times: List[float] = []
    for _ in range(reps):
        baseline_times.append(sweep(baseline))
        streaming_times.append(sweep(streaming))
    baseline_s = float(np.median(baseline_times))
    streaming_s = float(np.median(streaming_times))

    # The served path: one sticky session over a StreamingServer.
    served_verified = True
    server = StreamingServer(source, config, serving=serving)
    try:
        with server.open_session() as session:
            session_stateful = session.stateful
            for stim in stream:
                got = session.run(stim)
                if verify:
                    expected = baseline.run(stim)
                    for name, words in expected.outputs.items():
                        if not np.array_equal(got.outputs[name], words):
                            served_verified = False
            session_stats = session.stats()
        server_stats = server.stats()
    finally:
        server.close()

    delta_stats = None
    if hasattr(streaming.engine, "delta_stats"):
        delta_stats = streaming.engine.delta_stats()
    return {
        "graph": graph.name,
        "engine": engine,
        "baseline_engine": baseline_engine,
        "steps": steps,
        "flip_bits": None if random_stream else flip_bits,
        "random_stream": random_stream,
        "array_size": array_size,
        "samples_per_step": SAMPLES_PER_WORD * array_size,
        "num_workers": num_workers,
        "baseline": {
            "seconds": baseline_s,
            "steps_per_second": steps / baseline_s if baseline_s else None,
        },
        "streaming": {
            "seconds": streaming_s,
            "steps_per_second": (
                steps / streaming_s if streaming_s else None
            ),
        },
        "speedup": baseline_s / streaming_s if streaming_s else None,
        "bit_identical": bit_identical if verify else None,
        "stream_session": {
            "stateful": session_stateful,
            "verified": served_verified if verify else None,
            "counters": session_stats,
        },
        "delta": delta_stats,
        "server": server_stats,
    }
