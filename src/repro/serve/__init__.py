"""The serving layer: batched, cached, sharded inference over the engines.

Built on :mod:`repro.engine`, this package turns the compile-once
:class:`~repro.engine.session.Session` into a servable system:

* :class:`ProgramCache` — memoized compilation + lowering keyed by
  (workload fingerprint, engine, config, options), LRU-evicted, with an
  optional :class:`~repro.artifact.store.ArtifactStore` disk tier so a
  warm restart loads serialized executables instead of compiling,
* :class:`BatchScheduler` — dynamic micro-batching of individual requests
  under a max-batch-size / max-wait policy, bit-identical to per-request
  execution,
* :class:`WorkerPool` — batches sharded across N engine instances
  (thread- or process-backed) with round-robin or least-loaded placement,
* :class:`InferenceServer` / :func:`serve` — the facade wiring all three,
* :class:`StreamingServer` / :class:`StreamSession` — sticky stateful
  per-client streams for the incremental ``"delta"`` engine,
* :class:`FaultPlan` / :class:`FaultInjector` — the deterministic
  fault-injection harness behind the chaos tests and
  ``bench_fault_recovery`` (:mod:`repro.serve.faults`).

Quick start::

    from repro.serve import serve
    results = serve(graph, requests, num_workers=4, max_batch_size=16)
"""

from .bench import run_serve_bench
from .cache import (
    CacheEntry,
    CacheKey,
    CacheStats,
    ProgramCache,
    default_program_cache,
    disk_key,
    graph_fingerprint,
)
from .config import ServeConfig, resolve_serving
from .faults import (
    FaultEvent,
    FaultInjector,
    FaultPlan,
    InjectedFault,
    WorkerCrashed,
)
from .pool import BACKENDS, PLACEMENTS, WorkerPool
from .scheduler import BatchScheduler, DeadlineExceeded, SchedulerStats
from .server import InferenceServer, naive_serve, serve
from .stream import (
    StreamSession,
    StreamingServer,
    make_stream,
    run_stream_bench,
)

__all__ = [
    "BACKENDS",
    "PLACEMENTS",
    "BatchScheduler",
    "CacheEntry",
    "CacheKey",
    "CacheStats",
    "DeadlineExceeded",
    "FaultEvent",
    "FaultInjector",
    "FaultPlan",
    "InferenceServer",
    "InjectedFault",
    "ProgramCache",
    "SchedulerStats",
    "ServeConfig",
    "StreamSession",
    "StreamingServer",
    "WorkerCrashed",
    "WorkerPool",
    "default_program_cache",
    "disk_key",
    "graph_fingerprint",
    "make_stream",
    "naive_serve",
    "resolve_serving",
    "run_serve_bench",
    "run_stream_bench",
    "serve",
]
