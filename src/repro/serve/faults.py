"""Deterministic fault injection for the serving stack.

Serving millions of users means workers crash, packets vanish, blobs
rot, and connections drop — and every one of those failure modes must
be *reproducible* before it can be tested.  This module is the one
source of injected chaos for the whole serving stack:

* a :class:`FaultPlan` is a **seeded, immutable schedule** of
  :class:`FaultEvent` entries, each bound to an injection *site* (a
  named hook inside :class:`~repro.serve.pool.WorkerPool`,
  :class:`~repro.serve.fabric.FabricNode`,
  :class:`~repro.serve.fabric.FabricClient`, or a store backend) and
  an *occurrence index* — "the Nth time this site is consulted".
  Plans are built explicitly (:meth:`FaultPlan.crash_worker`,
  :meth:`~FaultPlan.drop_response`, ...) or generated from a seed
  (:meth:`FaultPlan.seeded`) so a whole chaos scenario is one integer,
* a :class:`FaultInjector` executes one plan: each site hook counts its
  own occurrences, fires the matching events, and appends every firing
  to an **event log** — two injectors running the same plan against the
  same traffic produce byte-identical logs, which is how the chaos
  bench proves a failure scenario reproduces exactly.

Inference here is pure and bit-deterministic, so any work lost to an
injected (or genuine) fault is provably safe to re-execute — the
property the supervision and retry layers lean on.

Sites (each hook documents its own semantics):

======================  ================================================
``pool.dispatch``       one batch placed on a worker; event
                        ``crash_worker`` kills the worker process (or
                        poisons a thread worker) right after placement.
``node.response``       one ``/v1/infer`` response about to be written;
                        ``drop_response`` severs the connection instead
                        of answering, ``delay_response`` stalls it.
``client.request``      one client-side HTTP operation; ``sever``
                        closes the client's connection mid-operation.
``store.get``           one blob fetched from a store backend;
                        ``corrupt_blob`` flips bytes in the payload.
======================  ================================================
"""

from __future__ import annotations

import random
import threading
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

__all__ = [
    "FAULT_KINDS",
    "FaultEvent",
    "FaultInjector",
    "FaultPlan",
    "InjectedFault",
    "WorkerCrashed",
]

#: every fault kind a plan can schedule, keyed to its site.
FAULT_KINDS = {
    "crash_worker": "pool.dispatch",
    "drop_response": "node.response",
    "delay_response": "node.response",
    "sever": "client.request",
    "corrupt_blob": "store.get",
}


class InjectedFault(RuntimeError):
    """Base class of every error raised *by* an injected fault."""


class WorkerCrashed(InjectedFault):
    """A (simulated or real) worker died mid-batch.

    Raised by poisoned thread workers and treated by the pool
    supervisor exactly like a genuine child-process death
    (``BrokenProcessPool`` / broken pipe): the worker is restarted and
    the batch re-placed.
    """


@dataclass(frozen=True)
class FaultEvent:
    """One scheduled fault.

    Args:
        kind: one of :data:`FAULT_KINDS`.
        at: occurrence index at the event's site (0-based: ``at=3``
            fires the 4th time the site is consulted).
        target: kind-specific target (``crash_worker``: worker index;
            unused otherwise).
        param: kind-specific parameter (``delay_response``: seconds;
            ``corrupt_blob``: byte position to flip).
    """

    kind: str
    at: int
    target: int = 0
    param: float = 0.0

    def __post_init__(self) -> None:
        if self.kind not in FAULT_KINDS:
            raise ValueError(
                f"unknown fault kind {self.kind!r}; "
                f"one of {sorted(FAULT_KINDS)}"
            )
        if self.at < 0:
            raise ValueError("occurrence index must be >= 0")

    @property
    def site(self) -> str:
        return FAULT_KINDS[self.kind]


class FaultPlan:
    """An immutable schedule of fault events.

    Build one explicitly::

        plan = (FaultPlan()
                .crash_worker(2, at=10)       # kill worker 2 at batch 10
                .drop_response(at=40)         # sever reply 40 on the wire
                .delay_response(at=40, seconds=0.05)
                .sever_connection(at=7)       # cut client op 7
                .corrupt_blob(at=0))          # rot the first blob fetch

    or derive a whole scenario from one seed with :meth:`seeded`.  The
    builder methods return *new* plans, so a plan in hand never changes
    under a running injector.
    """

    def __init__(self, events: Optional[List[FaultEvent]] = None) -> None:
        self.events: Tuple[FaultEvent, ...] = tuple(events or ())

    # -- builders --------------------------------------------------------
    def _with(self, event: FaultEvent) -> "FaultPlan":
        return FaultPlan(list(self.events) + [event])

    def crash_worker(self, worker: int, *, at: int) -> "FaultPlan":
        """Kill worker ``worker`` right after dispatch number ``at``."""
        return self._with(FaultEvent("crash_worker", at, target=worker))

    def drop_response(self, *, at: int) -> "FaultPlan":
        """Sever the connection instead of writing response ``at``."""
        return self._with(FaultEvent("drop_response", at))

    def delay_response(self, *, at: int, seconds: float) -> "FaultPlan":
        """Stall response ``at`` for ``seconds`` before writing it."""
        return self._with(FaultEvent("delay_response", at, param=seconds))

    def sever_connection(self, *, at: int) -> "FaultPlan":
        """Cut the client connection during its operation ``at``."""
        return self._with(FaultEvent("sever", at))

    def corrupt_blob(self, *, at: int, position: int = 0) -> "FaultPlan":
        """Flip a byte of the ``at``-th blob fetched from the store."""
        return self._with(
            FaultEvent("corrupt_blob", at, param=float(position))
        )

    # -- seeded scenarios ------------------------------------------------
    @classmethod
    def seeded(
        cls,
        seed: int,
        *,
        requests: int,
        workers: int = 1,
        crashes: int = 0,
        drop_rate: float = 0.0,
        delay_rate: float = 0.0,
        delay_s: float = 0.005,
        severs: int = 0,
    ) -> "FaultPlan":
        """A reproducible chaos scenario: ``seed`` fully determines the
        event schedule over a run of ``requests`` requests.

        ``crashes`` worker kills and ``severs`` connection cuts land at
        seed-chosen indices; every response independently drops with
        ``drop_rate`` and stalls with ``delay_rate``.
        """
        rng = random.Random(seed)
        events: List[FaultEvent] = []
        span = max(1, requests)
        for _ in range(crashes):
            events.append(
                FaultEvent(
                    "crash_worker",
                    rng.randrange(span),
                    target=rng.randrange(max(1, workers)),
                )
            )
        for _ in range(severs):
            events.append(FaultEvent("sever", rng.randrange(span)))
        for index in range(span):
            if drop_rate > 0 and rng.random() < drop_rate:
                events.append(FaultEvent("drop_response", index))
            if delay_rate > 0 and rng.random() < delay_rate:
                events.append(
                    FaultEvent("delay_response", index, param=delay_s)
                )
        return cls(events)

    # -- introspection ---------------------------------------------------
    def describe(self) -> List[Dict[str, object]]:
        """JSON-able event list (stable order: site, occurrence)."""
        return [
            {
                "kind": e.kind,
                "site": e.site,
                "at": e.at,
                "target": e.target,
                "param": e.param,
            }
            for e in sorted(
                self.events, key=lambda e: (e.site, e.at, e.kind)
            )
        ]

    def __len__(self) -> int:
        return len(self.events)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        kinds: Dict[str, int] = {}
        for event in self.events:
            kinds[event.kind] = kinds.get(event.kind, 0) + 1
        inner = ", ".join(f"{k}={v}" for k, v in sorted(kinds.items()))
        return f"FaultPlan({inner or 'empty'})"


@dataclass
class _SiteState:
    count: int = 0
    #: occurrence index -> events scheduled there.
    pending: Dict[int, List[FaultEvent]] = field(default_factory=dict)


class FaultInjector:
    """Executes one :class:`FaultPlan` against live serving traffic.

    Each site hook (:meth:`pool_crash_target`, :meth:`response_action`,
    :meth:`client_sever`, :meth:`corrupt`) advances that site's private
    occurrence counter, fires the events scheduled at that index, and
    records each firing in the :meth:`event_log` — the determinism
    witness: same plan + same traffic = identical log.

    Thread-safe; one injector may be shared by every component of one
    node (pool, front-end, store) or one client.
    """

    def __init__(self, plan: FaultPlan) -> None:
        self.plan = plan
        self._lock = threading.Lock()
        self._sites: Dict[str, _SiteState] = {}
        for site in set(FAULT_KINDS.values()):
            self._sites[site] = _SiteState()
        for event in plan.events:
            self._sites[event.site].pending.setdefault(
                event.at, []
            ).append(event)
        self._log: List[Tuple[str, int, str, float]] = []

    def _fire(self, site: str) -> List[FaultEvent]:
        """Advance ``site`` one occurrence; return the events due now."""
        with self._lock:
            state = self._sites[site]
            index = state.count
            state.count += 1
            events = state.pending.pop(index, [])
            for event in events:
                self._log.append((site, index, event.kind, event.param))
            return events

    # -- site hooks ------------------------------------------------------
    def pool_crash_target(self) -> Optional[int]:
        """``pool.dispatch`` hook: worker index to kill now, or None."""
        for event in self._fire("pool.dispatch"):
            if event.kind == "crash_worker":
                return event.target
        return None

    def response_action(self) -> Tuple[str, float]:
        """``node.response`` hook: ``("drop", 0)``, ``("delay", s)``,
        or ``("pass", 0)`` for the response being written now."""
        action, delay = "pass", 0.0
        for event in self._fire("node.response"):
            if event.kind == "drop_response":
                action = "drop"
            elif event.kind == "delay_response":
                delay = max(delay, event.param)
        if action == "drop":
            return "drop", 0.0
        if delay > 0:
            return "delay", delay
        return "pass", 0.0

    def client_sever(self) -> bool:
        """``client.request`` hook: sever the connection now?"""
        return any(
            event.kind == "sever"
            for event in self._fire("client.request")
        )

    def corrupt(self, data: Optional[bytes]) -> Optional[bytes]:
        """``store.get`` hook: possibly corrupt one fetched blob."""
        events = self._fire("store.get")
        if data is None:
            return None
        for event in events:
            if event.kind == "corrupt_blob":
                position = int(event.param) % max(1, len(data))
                mutated = bytearray(data)
                mutated[position] ^= 0xFF
                data = bytes(mutated)
        return data

    # -- determinism witness ---------------------------------------------
    def event_log(self) -> List[Tuple[str, int, str, float]]:
        """Every fired event as ``(site, occurrence, kind, param)``, in
        firing order — the sequence two same-seeded runs must agree on."""
        with self._lock:
            return list(self._log)

    def counts(self) -> Dict[str, int]:
        """Occurrences consulted per site (traffic fingerprint)."""
        with self._lock:
            return {
                site: state.count for site, state in self._sites.items()
            }

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"FaultInjector({self.plan!r}, fired={len(self._log)})"
