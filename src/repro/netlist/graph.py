"""Boolean network (logic graph) data structure.

A :class:`LogicGraph` is a directed acyclic graph whose nodes are Boolean
operations and whose edges are data dependencies — the representation the
paper's compiler operates on ("creates a DAG to represent these gate
operations and their directional data dependencies", Section V).

Nodes are identified by dense integer ids.  Primary inputs are nodes with op
``input``; constants are ``const0``/``const1`` nodes; every other node is a
gate drawn from the LPE-supported cell library (:mod:`repro.netlist.cells`).
Primary outputs are named references to nodes.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, Iterator, List, Optional, Tuple

import numpy as np

from . import cells
from .cells import arity


@dataclass
class Node:
    """One vertex of the logic DAG."""

    op: str
    fanins: Tuple[int, ...] = ()
    name: Optional[str] = None

    def __post_init__(self) -> None:
        if self.op not in cells.ALL_OPS:
            raise ValueError(f"unknown op {self.op!r}")
        if len(self.fanins) != arity(self.op):
            raise ValueError(
                f"op {self.op!r} needs {arity(self.op)} fanins, "
                f"got {len(self.fanins)}"
            )


class LogicGraph:
    """A combinational Boolean network with named PIs and POs.

    The graph enforces acyclicity by construction: a gate's fanins must
    already exist when the gate is added, so node ids are a valid topological
    order (sources first).  Transformation passes that rebuild graphs preserve
    this invariant.
    """

    def __init__(self, name: str = "top") -> None:
        self.name = name
        self.nodes: Dict[int, Node] = {}
        self._next_id = 0
        self._inputs: List[int] = []  # PI node ids, in declaration order
        self._outputs: List[Tuple[str, int]] = []  # (PO name, node id)
        self._input_names: Dict[str, int] = {}

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------
    def _alloc(self, node: Node) -> int:
        nid = self._next_id
        self._next_id += 1
        self.nodes[nid] = node
        return nid

    def add_input(self, name: Optional[str] = None) -> int:
        """Declare a primary input; returns its node id."""
        if name is None:
            name = f"pi{len(self._inputs)}"
        if name in self._input_names:
            raise ValueError(f"duplicate input name {name!r}")
        nid = self._alloc(Node(cells.INPUT, (), name))
        self._inputs.append(nid)
        self._input_names[name] = nid
        return nid

    def add_const(self, value: int) -> int:
        """Add a constant-0 or constant-1 source node."""
        op = cells.CONST1 if value else cells.CONST0
        return self._alloc(Node(op, ()))

    def add_gate(self, op: str, *fanins: int, name: Optional[str] = None) -> int:
        """Add a gate computing ``op`` over existing nodes; returns its id."""
        if op in cells.SOURCE_OPS:
            raise ValueError("use add_input/add_const for source nodes")
        for fid in fanins:
            if fid not in self.nodes:
                raise KeyError(f"fanin node {fid} does not exist")
        return self._alloc(Node(op, tuple(fanins), name))

    def set_output(self, name: str, nid: int) -> None:
        """Declare node ``nid`` as primary output ``name``."""
        if nid not in self.nodes:
            raise KeyError(f"node {nid} does not exist")
        for existing, _ in self._outputs:
            if existing == name:
                raise ValueError(f"duplicate output name {name!r}")
        self._outputs.append((name, nid))

    # ------------------------------------------------------------------
    # Accessors
    # ------------------------------------------------------------------
    @property
    def inputs(self) -> List[int]:
        """PI node ids in declaration order."""
        return list(self._inputs)

    @property
    def outputs(self) -> List[Tuple[str, int]]:
        """(name, node id) pairs for the POs, in declaration order."""
        return list(self._outputs)

    @property
    def output_ids(self) -> List[int]:
        return [nid for _, nid in self._outputs]

    @property
    def num_inputs(self) -> int:
        return len(self._inputs)

    @property
    def num_outputs(self) -> int:
        return len(self._outputs)

    @property
    def num_nodes(self) -> int:
        return len(self.nodes)

    @property
    def num_gates(self) -> int:
        """Number of non-source nodes (gates, including BUF/NOT)."""
        return sum(1 for n in self.nodes.values() if n.op in cells.LPE_OPS)

    def input_name(self, nid: int) -> str:
        node = self.nodes[nid]
        if node.op != cells.INPUT:
            raise ValueError(f"node {nid} is not a primary input")
        assert node.name is not None
        return node.name

    def input_id(self, name: str) -> int:
        return self._input_names[name]

    def op_of(self, nid: int) -> str:
        return self.nodes[nid].op

    def fanins_of(self, nid: int) -> Tuple[int, ...]:
        return self.nodes[nid].fanins

    def __contains__(self, nid: int) -> bool:
        return nid in self.nodes

    def __iter__(self) -> Iterator[int]:
        return iter(self.nodes)

    # ------------------------------------------------------------------
    # Structure queries
    # ------------------------------------------------------------------
    def fanouts(self) -> Dict[int, List[int]]:
        """Map node id -> list of node ids that consume it."""
        out: Dict[int, List[int]] = {nid: [] for nid in self.nodes}
        for nid, node in self.nodes.items():
            for fid in node.fanins:
                out[fid].append(nid)
        return out

    def topological_order(self) -> List[int]:
        """Node ids such that every fanin precedes its consumers.

        Because gates may only reference pre-existing nodes, ascending id
        order is already topological; we return it explicitly so passes do
        not have to rely on that construction detail.
        """
        return sorted(self.nodes)

    def levels(self) -> Dict[int, int]:
        """ASAP logic level per node: sources at 0, gate = 1 + max(fanins).

        This is the paper's levelization (Section III): gates at the same
        level have no connections between each other and can execute
        simultaneously.
        """
        level: Dict[int, int] = {}
        for nid in self.topological_order():
            node = self.nodes[nid]
            if node.op in cells.SOURCE_OPS:
                level[nid] = 0
            else:
                level[nid] = 1 + max(level[f] for f in node.fanins)
        return level

    def depth(self) -> int:
        """Maximum logic level over the POs (0 for a source-only graph)."""
        if not self._outputs:
            return 0
        level = self.levels()
        return max(level[nid] for _, nid in self._outputs)

    def level_widths(self) -> Dict[int, int]:
        """Number of gate nodes at each level (sources excluded)."""
        level = self.levels()
        widths: Dict[int, int] = {}
        for nid, node in self.nodes.items():
            if node.op in cells.LPE_OPS:
                widths[level[nid]] = widths.get(level[nid], 0) + 1
        return widths

    def transitive_fanin(self, roots: Iterable[int]) -> set:
        """All node ids reachable from ``roots`` through fanin edges
        (including the roots themselves)."""
        seen = set()
        stack = list(roots)
        while stack:
            nid = stack.pop()
            if nid in seen:
                continue
            seen.add(nid)
            stack.extend(self.nodes[nid].fanins)
        return seen

    def dangling_nodes(self) -> set:
        """Nodes not in the transitive fanin of any PO (dead logic)."""
        live = self.transitive_fanin(self.output_ids)
        return set(self.nodes) - live

    def validate(self) -> None:
        """Raise ValueError if any structural invariant is violated."""
        for nid, node in self.nodes.items():
            for fid in node.fanins:
                if fid not in self.nodes:
                    raise ValueError(f"node {nid} references missing fanin {fid}")
                if fid >= nid:
                    raise ValueError(
                        f"node {nid} references fanin {fid} >= itself "
                        "(ids must be topologically ordered)"
                    )
        for name, nid in self._outputs:
            if nid not in self.nodes:
                raise ValueError(f"output {name!r} references missing node {nid}")
        for nid in self._inputs:
            if self.nodes[nid].op != cells.INPUT:
                raise ValueError(f"input list contains non-input node {nid}")

    # ------------------------------------------------------------------
    # Evaluation
    # ------------------------------------------------------------------
    def evaluate(self, input_words: Dict[str, np.ndarray]) -> Dict[str, np.ndarray]:
        """Bit-parallel functional evaluation.

        ``input_words`` maps each PI name to a uint64 array; all arrays must
        share one shape.  Returns PO name -> uint64 array of the same shape.
        Each of the 64 bit lanes (times array elements) is an independent
        Boolean sample, matching the LPU's 2m-bit packed operands.
        """
        if not self._inputs:
            shape: Tuple[int, ...] = (1,)
        else:
            first = input_words[self.input_name(self._inputs[0])]
            shape = np.asarray(first, dtype=np.uint64).shape
        values: Dict[int, np.ndarray] = {}
        for nid in self.topological_order():
            node = self.nodes[nid]
            if node.op == cells.INPUT:
                assert node.name is not None
                word = np.asarray(input_words[node.name], dtype=np.uint64)
                if word.shape != shape:
                    raise ValueError(
                        f"input {node.name!r} has shape {word.shape}, "
                        f"expected {shape}"
                    )
                values[nid] = word
            elif node.op == cells.CONST0:
                values[nid] = np.zeros(shape, dtype=np.uint64)
            elif node.op == cells.CONST1:
                values[nid] = np.full(shape, 0xFFFFFFFFFFFFFFFF, dtype=np.uint64)
            else:
                operands = [values[f] for f in node.fanins]
                values[nid] = cells.eval_op(node.op, *operands)
        return {name: values[nid] for name, nid in self._outputs}

    def evaluate_bits(self, input_bits: Dict[str, int]) -> Dict[str, int]:
        """Scalar 0/1 evaluation (convenience wrapper for tests/tools)."""
        words = {
            name: np.array([0xFFFFFFFFFFFFFFFF if bit else 0], dtype=np.uint64)
            for name, bit in input_bits.items()
        }
        outs = self.evaluate(words)
        return {name: int(word[0] & np.uint64(1)) for name, word in outs.items()}

    # ------------------------------------------------------------------
    # Copying / rebuilding
    # ------------------------------------------------------------------
    def copy(self) -> "LogicGraph":
        """Deep structural copy."""
        g = LogicGraph(self.name)
        g.nodes = {nid: Node(n.op, n.fanins, n.name) for nid, n in self.nodes.items()}
        g._next_id = self._next_id
        g._inputs = list(self._inputs)
        g._outputs = list(self._outputs)
        g._input_names = dict(self._input_names)
        return g

    def extract(self, mapping_name: Optional[str] = None) -> "LogicGraph":
        """Rebuild the graph keeping only logic reachable from the POs,
        compacting node ids.  All PIs are kept (even if dead) so
        transformation passes preserve the netlist interface."""
        g = LogicGraph(mapping_name or self.name)
        live = self.transitive_fanin(self.output_ids)
        remap: Dict[int, int] = {}
        for nid in self._inputs:
            node = self.nodes[nid]
            assert node.name is not None
            remap[nid] = g.add_input(node.name)
        for nid in self.topological_order():
            if nid not in live or nid in remap:
                continue
            node = self.nodes[nid]
            if node.op in (cells.CONST0, cells.CONST1):
                remap[nid] = g.add_const(1 if node.op == cells.CONST1 else 0)
            else:
                remap[nid] = g.add_gate(
                    node.op, *(remap[f] for f in node.fanins), name=node.name
                )
        for name, nid in self._outputs:
            g.set_output(name, remap[nid])
        return g

    # ------------------------------------------------------------------
    # Reporting
    # ------------------------------------------------------------------
    def stats(self) -> "GraphStats":
        level = self.levels()
        op_counts: Dict[str, int] = {}
        for node in self.nodes.values():
            op_counts[node.op] = op_counts.get(node.op, 0) + 1
        widths = self.level_widths()
        return GraphStats(
            name=self.name,
            num_inputs=self.num_inputs,
            num_outputs=self.num_outputs,
            num_gates=self.num_gates,
            depth=self.depth(),
            max_width=max(widths.values(), default=0),
            op_counts=op_counts,
        )

    def __repr__(self) -> str:
        return (
            f"LogicGraph({self.name!r}, pis={self.num_inputs}, "
            f"pos={self.num_outputs}, gates={self.num_gates}, "
            f"depth={self.depth()})"
        )


@dataclass
class GraphStats:
    """Summary statistics of a logic graph."""

    name: str
    num_inputs: int
    num_outputs: int
    num_gates: int
    depth: int
    max_width: int
    op_counts: Dict[str, int] = field(default_factory=dict)

    def __str__(self) -> str:
        return (
            f"{self.name}: {self.num_inputs} PIs, {self.num_outputs} POs, "
            f"{self.num_gates} gates, depth {self.depth}, "
            f"max width {self.max_width}"
        )


def graphs_equivalent(
    a: LogicGraph,
    b: LogicGraph,
    num_trials: int = 16,
    rng: Optional[np.random.Generator] = None,
) -> bool:
    """Randomized equivalence check: same PI/PO names, same function on
    ``num_trials`` random 64-bit-packed input vectors (so 64*num_trials
    random samples).  Used heavily by tests to validate transformations."""
    names_a = sorted(a.input_name(i) for i in a.inputs)
    names_b = sorted(b.input_name(i) for i in b.inputs)
    if names_a != names_b:
        return False
    if sorted(n for n, _ in a.outputs) != sorted(n for n, _ in b.outputs):
        return False
    rng = rng or np.random.default_rng(0)
    for _ in range(num_trials):
        words = {
            name: rng.integers(0, 2**64, size=1, dtype=np.uint64)
            for name in names_a
        }
        out_a = a.evaluate(words)
        out_b = b.evaluate(words)
        for name in out_a:
            if int(out_a[name][0]) != int(out_b[name][0]):
                return False
    return True
