"""Random logic-graph generators.

Two families:

* :func:`random_dag` — unconstrained random combinational DAGs, used by the
  property-based tests to exercise every compiler pass on adversarial
  structures.
* :func:`random_layered_dag` — graphs with a controlled level-width profile,
  used by the workload generator to synthesize FFCL blocks whose
  width/depth statistics match NullaNet-style neuron logic (see
  :mod:`repro.models.workloads`).
"""

from __future__ import annotations

from typing import List, Optional, Sequence

import numpy as np

from . import cells
from .graph import LogicGraph

_GATE_CHOICES = (cells.AND, cells.OR, cells.XOR, cells.NAND, cells.NOR, cells.XNOR)


def random_dag(
    num_inputs: int,
    num_gates: int,
    num_outputs: int,
    seed: int = 0,
    not_probability: float = 0.15,
    locality: int = 0,
) -> LogicGraph:
    """Generate a random combinational DAG.

    Each gate draws its fanins uniformly from all earlier nodes (or, when
    ``locality`` > 0, from the most recent ``locality`` nodes, producing
    deeper graphs).  Outputs are drawn from the last quarter of the gates so
    most logic is live.
    """
    if num_inputs < 1 or num_gates < 1 or num_outputs < 1:
        raise ValueError("need at least one input, gate, and output")
    rng = np.random.default_rng(seed)
    graph = LogicGraph(f"rand_{seed}")
    pool: List[int] = [graph.add_input(f"x{i}") for i in range(num_inputs)]

    for _ in range(num_gates):
        window = pool if locality <= 0 else pool[-locality:]
        if rng.random() < not_probability:
            src = window[int(rng.integers(len(window)))]
            nid = graph.add_gate(cells.NOT, src)
        else:
            op = _GATE_CHOICES[int(rng.integers(len(_GATE_CHOICES)))]
            a = window[int(rng.integers(len(window)))]
            b = window[int(rng.integers(len(window)))]
            nid = graph.add_gate(op, a, b)
        pool.append(nid)

    candidates = pool[num_inputs:]
    tail = candidates[-max(1, len(candidates) // 4):]
    chosen = rng.choice(len(tail), size=min(num_outputs, len(tail)), replace=False)
    for k, idx in enumerate(sorted(int(c) for c in chosen)):
        graph.set_output(f"y{k}", tail[idx])
    return graph


def random_layered_dag(
    num_inputs: int,
    level_widths: Sequence[int],
    num_outputs: Optional[int] = None,
    seed: int = 0,
    cross_level_probability: float = 0.0,
) -> LogicGraph:
    """Generate a DAG with a prescribed number of gates per logic level.

    ``level_widths[l]`` gates are placed at level ``l+1`` (level 0 holds the
    PIs).  Each gate draws fanins from the previous level (or, with
    ``cross_level_probability``, from any earlier level — producing the
    unbalanced paths that full path balancing must fix).  POs are drawn from
    the final level.
    """
    if not level_widths:
        raise ValueError("need at least one level of gates")
    rng = np.random.default_rng(seed)
    graph = LogicGraph(f"layered_{seed}")
    levels: List[List[int]] = [[graph.add_input(f"x{i}") for i in range(num_inputs)]]

    for width in level_widths:
        if width < 1:
            raise ValueError("level widths must be positive")
        prev = levels[-1]
        earlier = [nid for lvl in levels for nid in lvl]
        layer: List[int] = []
        for _ in range(width):
            op = _GATE_CHOICES[int(rng.integers(len(_GATE_CHOICES)))]

            def pick() -> int:
                if (
                    cross_level_probability > 0.0
                    and len(levels) > 1
                    and rng.random() < cross_level_probability
                ):
                    return earlier[int(rng.integers(len(earlier)))]
                return prev[int(rng.integers(len(prev)))]

            layer.append(graph.add_gate(op, pick(), pick()))
        levels.append(layer)

    last = levels[-1]
    count = len(last) if num_outputs is None else min(num_outputs, len(last))
    chosen = rng.choice(len(last), size=count, replace=False)
    for k, idx in enumerate(sorted(int(c) for c in chosen)):
        graph.set_output(f"y{k}", last[idx])
    return graph


def random_tree(
    num_inputs: int,
    seed: int = 0,
    op_choices: Sequence[str] = _GATE_CHOICES,
) -> LogicGraph:
    """Generate a single-output balanced reduction tree over all PIs.

    Trees are the best case for partitioning (every level shrinks), so tests
    use them as a known-easy reference point.
    """
    if num_inputs < 2:
        raise ValueError("a tree needs at least two inputs")
    rng = np.random.default_rng(seed)
    graph = LogicGraph(f"tree_{seed}")
    layer = [graph.add_input(f"x{i}") for i in range(num_inputs)]
    while len(layer) > 1:
        nxt = []
        for i in range(0, len(layer) - 1, 2):
            op = op_choices[int(rng.integers(len(op_choices)))]
            nxt.append(graph.add_gate(op, layer[i], layer[i + 1]))
        if len(layer) % 2 == 1:
            nxt.append(layer[-1])
        layer = nxt
    graph.set_output("y", layer[0])
    return graph
