"""ISCAS ``.bench`` netlist reader/writer.

``.bench`` is the lingua franca of academic logic-synthesis benchmarks
(ISCAS-85/89, the format ABC reads and writes).  Supporting it lets the
reproduction ingest standard combinational benchmark circuits in addition to
Verilog, and gives the test suite a second, independent serialization for
round-trip checks.

Grammar (combinational subset)::

    INPUT(a)
    OUTPUT(y)
    y = AND(a, b)
    w = NOT(a)
    k = DFF(d)        # rejected: FFCL blocks are purely combinational

Multi-input AND/OR/NAND/NOR/XOR/XNOR are expanded into balanced two-input
trees, exactly as the Verilog reader does.
"""

from __future__ import annotations

import re
from typing import Dict, List, Tuple

from . import cells
from .graph import LogicGraph

_BENCH_OPS = {
    "AND": cells.AND,
    "OR": cells.OR,
    "NAND": cells.NAND,
    "NOR": cells.NOR,
    "XOR": cells.XOR,
    "XNOR": cells.XNOR,
    "NOT": cells.NOT,
    "BUF": cells.BUF,
    "BUFF": cells.BUF,
}

_OP_TO_BENCH = {
    cells.AND: "AND",
    cells.OR: "OR",
    cells.NAND: "NAND",
    cells.NOR: "NOR",
    cells.XOR: "XOR",
    cells.XNOR: "XNOR",
    cells.NOT: "NOT",
    cells.BUF: "BUFF",
}

_LINE_RE = re.compile(
    r"""^(?:
        INPUT\((?P<input>[^)]+)\)
      | OUTPUT\((?P<output>[^)]+)\)
      | (?P<target>\S+)\s*=\s*(?P<op>[A-Za-z]+)\((?P<args>[^)]*)\)
    )$""",
    re.VERBOSE,
)


class BenchParseError(ValueError):
    """Raised on malformed .bench input."""


def parse_bench(text: str, name: str = "bench") -> LogicGraph:
    """Parse ``.bench`` source into a :class:`LogicGraph`."""
    inputs: List[str] = []
    outputs: List[str] = []
    defs: Dict[str, Tuple[str, List[str]]] = {}

    for raw in text.splitlines():
        line = raw.split("#", 1)[0].strip()
        if not line:
            continue
        match = _LINE_RE.match(line)
        if match is None:
            raise BenchParseError(f"cannot parse line: {raw!r}")
        if match.group("input"):
            inputs.append(match.group("input").strip())
        elif match.group("output"):
            outputs.append(match.group("output").strip())
        else:
            op_name = match.group("op").upper()
            if op_name == "DFF":
                raise BenchParseError(
                    "sequential element DFF not allowed in an FFCL block"
                )
            if op_name not in _BENCH_OPS:
                raise BenchParseError(f"unknown bench op {op_name!r}")
            args = [a.strip() for a in match.group("args").split(",") if a.strip()]
            defs[match.group("target").strip()] = (_BENCH_OPS[op_name], args)

    graph = LogicGraph(name)
    node_of: Dict[str, int] = {}
    for pi in inputs:
        node_of[pi] = graph.add_input(pi)

    resolving: List[str] = []

    def reduce_tree(op: str, operand_ids: List[int]) -> int:
        base = {
            cells.NAND: cells.AND,
            cells.NOR: cells.OR,
            cells.XNOR: cells.XOR,
        }.get(op, op)
        layer = list(operand_ids)
        while len(layer) > 1:
            nxt = []
            for i in range(0, len(layer) - 1, 2):
                nxt.append(graph.add_gate(base, layer[i], layer[i + 1]))
            if len(layer) % 2 == 1:
                nxt.append(layer[-1])
            layer = nxt
        result = layer[0]
        if base is not op:
            result = graph.add_gate(cells.NOT, result)
        return result

    def resolve(net: str) -> int:
        if net in node_of:
            return node_of[net]
        if net in resolving:
            raise BenchParseError(f"combinational cycle through {net!r}")
        if net not in defs:
            raise BenchParseError(f"net {net!r} is never defined")
        resolving.append(net)
        op, args = defs[net]
        fanin_ids = [resolve(a) for a in args]
        if op in (cells.NOT, cells.BUF):
            if len(fanin_ids) != 1:
                raise BenchParseError(f"{op} takes one input at {net!r}")
            nid = graph.add_gate(op, fanin_ids[0], name=net)
        elif len(fanin_ids) == 2:
            nid = graph.add_gate(op, *fanin_ids, name=net)
        elif len(fanin_ids) > 2:
            tree = reduce_tree(op, fanin_ids)
            nid = graph.add_gate(cells.BUF, tree, name=net)
        else:
            raise BenchParseError(f"{op} needs two or more inputs at {net!r}")
        resolving.pop()
        node_of[net] = nid
        return nid

    for po in outputs:
        graph.set_output(po, resolve(po))
    if not outputs:
        raise BenchParseError("bench file declares no outputs")
    return graph


def write_bench(graph: LogicGraph) -> str:
    """Serialize ``graph`` in ``.bench`` format."""
    lines = [f"# {graph.name}"]
    net_of: Dict[int, str] = {}
    for nid in graph.inputs:
        net = graph.input_name(nid)
        net_of[nid] = net
        lines.append(f"INPUT({net})")

    po_of_node = {nid: name for name, nid in graph.outputs}
    for name, _nid in graph.outputs:
        lines.append(f"OUTPUT({name})")

    for nid in graph.topological_order():
        node = graph.nodes[nid]
        if node.op == cells.INPUT:
            continue
        net = po_of_node.get(nid, node.name or f"n{nid}")
        if net in net_of.values():
            net = f"n{nid}"
        net_of[nid] = net
        if node.op == cells.CONST0:
            # .bench has no constants; emit x AND NOT x over the first PI.
            if not graph.inputs:
                raise ValueError("cannot emit constants without any PI")
            pi = net_of[graph.inputs[0]]
            lines.append(f"{net}_inv = NOT({pi})")
            lines.append(f"{net} = AND({pi}, {net}_inv)")
        elif node.op == cells.CONST1:
            if not graph.inputs:
                raise ValueError("cannot emit constants without any PI")
            pi = net_of[graph.inputs[0]]
            lines.append(f"{net}_inv = NOT({pi})")
            lines.append(f"{net} = OR({pi}, {net}_inv)")
        else:
            args = ", ".join(net_of[f] for f in node.fanins)
            lines.append(f"{net} = {_OP_TO_BENCH[node.op]}({args})")

    # POs that alias a PI or another PO's node need explicit buffers.
    for name, nid in graph.outputs:
        if net_of[nid] != name:
            lines.append(f"{name} = BUFF({net_of[nid]})")
    return "\n".join(lines) + "\n"
