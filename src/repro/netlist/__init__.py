"""Netlist substrate: cell library, logic graphs, and netlist I/O.

This package provides everything "below" the paper's compiler: the two-input
cell library supported by the LPEs, the Boolean-network DAG the compiler
operates on, and readers/writers for the structural Verilog (the paper's
input format, Section III) and ISCAS ``.bench`` formats.
"""

from .cells import (
    ALL_OPS,
    AND,
    BUF,
    CONST0,
    CONST1,
    INPUT,
    LPE_OPS,
    MISO_OPS,
    NAND,
    NOR,
    NOT,
    OR,
    SISO_OPS,
    SOURCE_OPS,
    STANDARD_CELLS,
    XNOR,
    XOR,
    Cell,
    arity,
    cell_for_op,
    eval_op,
    eval_op_bits,
)
from .graph import GraphStats, LogicGraph, Node, graphs_equivalent
from .bench_io import BenchParseError, parse_bench, write_bench
from .random_graphs import random_dag, random_layered_dag, random_tree
from .verilog_parser import VerilogParseError, parse_verilog, parse_verilog_file
from .verilog_writer import write_verilog, write_verilog_file

__all__ = [
    "ALL_OPS",
    "AND",
    "BUF",
    "CONST0",
    "CONST1",
    "INPUT",
    "LPE_OPS",
    "MISO_OPS",
    "NAND",
    "NOR",
    "NOT",
    "OR",
    "SISO_OPS",
    "SOURCE_OPS",
    "STANDARD_CELLS",
    "XNOR",
    "XOR",
    "Cell",
    "arity",
    "cell_for_op",
    "eval_op",
    "eval_op_bits",
    "GraphStats",
    "LogicGraph",
    "Node",
    "graphs_equivalent",
    "BenchParseError",
    "parse_bench",
    "write_bench",
    "random_dag",
    "random_layered_dag",
    "random_tree",
    "VerilogParseError",
    "parse_verilog",
    "parse_verilog_file",
    "write_verilog",
    "write_verilog_file",
]
