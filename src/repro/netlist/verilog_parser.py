"""Structural-Verilog reader for FFCL blocks.

The paper's input is "a description of an FFCL block in the Verilog language"
(Section III) — a gate-level netlist such as the ones NullaNet, Yosys, or ABC
emit.  This module parses the structural subset those tools produce:

* ``module``/``endmodule`` with a port list,
* ``input``/``output``/``wire`` declarations, scalar or vectored
  (``input [7:0] x;`` expands to bits ``x[7] .. x[0]``),
* gate-primitive instantiations (``and g1 (y, a, b);`` — multi-input
  primitives are expanded into balanced two-input trees),
* library-cell instantiations with named port connections
  (``AND2 u1 (.A(a), .B(b), .Y(y));``),
* continuous assignments (``assign y = a & ~(b ^ c);``) over the operators
  ``~ & | ^ ~^ ^~`` plus parentheses and the constants ``1'b0``/``1'b1``,
* ``//`` and ``/* */`` comments.

The result is a :class:`~repro.netlist.graph.LogicGraph`.
"""

from __future__ import annotations

import re
from typing import Dict, List, Optional, Tuple

from . import cells
from .graph import LogicGraph

_PRIMITIVES = {
    "and": cells.AND,
    "or": cells.OR,
    "xor": cells.XOR,
    "xnor": cells.XNOR,
    "nand": cells.NAND,
    "nor": cells.NOR,
    "not": cells.NOT,
    "buf": cells.BUF,
}

_CELL_PINS = {
    "AND2": (cells.AND, ("A", "B"), "Y"),
    "OR2": (cells.OR, ("A", "B"), "Y"),
    "XOR2": (cells.XOR, ("A", "B"), "Y"),
    "XNOR2": (cells.XNOR, ("A", "B"), "Y"),
    "NAND2": (cells.NAND, ("A", "B"), "Y"),
    "NOR2": (cells.NOR, ("A", "B"), "Y"),
    "INV": (cells.NOT, ("A",), "Y"),
    "BUF": (cells.BUF, ("A",), "Y"),
}


class VerilogParseError(ValueError):
    """Raised on malformed netlist input."""


_TOKEN_RE = re.compile(
    r"""
    (?P<ws>\s+)
  | (?P<line_comment>//[^\n]*)
  | (?P<block_comment>/\*.*?\*/)
  | (?P<const>1'b[01])
  | (?P<ident>[A-Za-z_\\][A-Za-z0-9_$\\]*)
  | (?P<number>\d+)
  | (?P<sym>~\^|\^~|[()\[\];,.:=&|^~])
    """,
    re.VERBOSE | re.DOTALL,
)


def tokenize(text: str) -> List[str]:
    """Split Verilog source into tokens, dropping whitespace and comments."""
    tokens: List[str] = []
    pos = 0
    while pos < len(text):
        match = _TOKEN_RE.match(text, pos)
        if match is None:
            snippet = text[pos : pos + 20]
            raise VerilogParseError(f"unexpected character at {snippet!r}")
        pos = match.end()
        kind = match.lastgroup
        if kind in ("ws", "line_comment", "block_comment"):
            continue
        tokens.append(match.group())
    return tokens


class _TokenStream:
    def __init__(self, tokens: List[str]) -> None:
        self._tokens = tokens
        self._pos = 0

    def peek(self) -> Optional[str]:
        if self._pos < len(self._tokens):
            return self._tokens[self._pos]
        return None

    def next(self) -> str:
        tok = self.peek()
        if tok is None:
            raise VerilogParseError("unexpected end of input")
        self._pos += 1
        return tok

    def expect(self, token: str) -> str:
        tok = self.next()
        if tok != token:
            raise VerilogParseError(f"expected {token!r}, got {tok!r}")
        return tok

    def accept(self, token: str) -> bool:
        if self.peek() == token:
            self._pos += 1
            return True
        return False


class _NetTable:
    """Tracks declared nets and lazily resolves them to graph node ids.

    Verilog netlists may reference a wire before the gate driving it appears,
    so drivers are recorded first and the graph is built in a second pass.
    """

    def __init__(self) -> None:
        self.inputs: List[str] = []
        self.outputs: List[str] = []
        self.wires: List[str] = []
        # net name -> ("gate", op, (operand nets...)) or ("const", value)
        self.drivers: Dict[str, Tuple] = {}
        self._temp_count = 0

    def fresh_net(self) -> str:
        self._temp_count += 1
        return f"__t{self._temp_count}"

    def set_driver(self, net: str, driver: Tuple) -> None:
        if net in self.drivers:
            raise VerilogParseError(f"net {net!r} has multiple drivers")
        self.drivers[net] = driver


def _expand_vector(name: str, msb: int, lsb: int) -> List[str]:
    step = -1 if msb >= lsb else 1
    return [f"{name}[{i}]" for i in range(msb, lsb + step, step)]


def _parse_decl(stream: _TokenStream) -> Tuple[List[str], str]:
    """Parse an input/output/wire declaration body; returns (nets, kind)."""
    kind = stream.next()  # 'input' | 'output' | 'wire'
    names: List[str] = []
    msb = lsb = None
    if stream.accept("["):
        msb = int(stream.next())
        stream.expect(":")
        lsb = int(stream.next())
        stream.expect("]")
    while True:
        base = stream.next()
        if msb is not None and lsb is not None:
            names.extend(_expand_vector(base, msb, lsb))
        else:
            names.append(base)
        if stream.accept(","):
            continue
        stream.expect(";")
        break
    return names, kind


def _parse_net_ref(stream: _TokenStream, nets: _NetTable) -> str:
    """Parse a net reference: identifier, identifier[idx], or constant."""
    tok = stream.next()
    if tok in ("1'b0", "1'b1"):
        net = nets.fresh_net()
        nets.set_driver(net, ("const", 1 if tok.endswith("1") else 0))
        return net
    if not re.match(r"[A-Za-z_\\]", tok):
        raise VerilogParseError(f"expected net reference, got {tok!r}")
    if stream.accept("["):
        idx = stream.next()
        stream.expect("]")
        return f"{tok}[{idx}]"
    return tok


def _balanced_reduce(op: str, operands: List[str], nets: _NetTable) -> str:
    """Reduce a multi-input primitive to a balanced tree of two-input gates.

    For the inverting primitives (nand/nor/xnor) the k-input semantics are
    ``invert(reduce(base_op))``; the inversion is applied once at the root.
    """
    base = {cells.NAND: cells.AND, cells.NOR: cells.OR, cells.XNOR: cells.XOR}.get(
        op, op
    )
    layer = list(operands)
    while len(layer) > 1:
        nxt: List[str] = []
        for i in range(0, len(layer) - 1, 2):
            net = nets.fresh_net()
            nets.set_driver(net, ("gate", base, (layer[i], layer[i + 1])))
            nxt.append(net)
        if len(layer) % 2 == 1:
            nxt.append(layer[-1])
        layer = nxt
    result = layer[0]
    if base is not op:
        inv = nets.fresh_net()
        nets.set_driver(inv, ("gate", cells.NOT, (result,)))
        result = inv
    return result


def _parse_primitive(stream: _TokenStream, nets: _NetTable, prim: str) -> None:
    """Parse ``and g1 (out, in1, in2, ...);`` (instance name optional)."""
    op = _PRIMITIVES[prim]
    if stream.peek() != "(":
        stream.next()  # optional instance name
    stream.expect("(")
    terms: List[str] = [_parse_net_ref(stream, nets)]
    while stream.accept(","):
        terms.append(_parse_net_ref(stream, nets))
    stream.expect(")")
    stream.expect(";")
    out, ins = terms[0], terms[1:]
    if op in (cells.NOT, cells.BUF):
        if len(ins) != 1:
            raise VerilogParseError(f"{prim} takes exactly one input")
        nets.set_driver(out, ("gate", op, tuple(ins)))
    else:
        if len(ins) < 2:
            raise VerilogParseError(f"{prim} needs at least two inputs")
        if len(ins) == 2:
            nets.set_driver(out, ("gate", op, tuple(ins)))
        else:
            result = _balanced_reduce(op, ins, nets)
            nets.set_driver(out, ("gate", cells.BUF, (result,)))


def _parse_cell_instance(stream: _TokenStream, nets: _NetTable, cell: str) -> None:
    """Parse ``AND2 u1 (.A(a), .B(b), .Y(y));``."""
    op, in_pins, out_pin = _CELL_PINS[cell]
    if stream.peek() != "(":
        stream.next()  # instance name
    stream.expect("(")
    conns: Dict[str, str] = {}
    while True:
        stream.expect(".")
        pin = stream.next()
        stream.expect("(")
        conns[pin] = _parse_net_ref(stream, nets)
        stream.expect(")")
        if not stream.accept(","):
            break
    stream.expect(")")
    stream.expect(";")
    missing = [p for p in (*in_pins, out_pin) if p not in conns]
    if missing:
        raise VerilogParseError(f"cell {cell}: unconnected pins {missing}")
    nets.set_driver(conns[out_pin], ("gate", op, tuple(conns[p] for p in in_pins)))


# Expression grammar (lowest to highest precedence): |  ^/~^  &  unary~  atom
def _parse_expr(stream: _TokenStream, nets: _NetTable) -> str:
    return _parse_or(stream, nets)


def _parse_or(stream: _TokenStream, nets: _NetTable) -> str:
    left = _parse_xor(stream, nets)
    while stream.accept("|"):
        right = _parse_xor(stream, nets)
        net = nets.fresh_net()
        nets.set_driver(net, ("gate", cells.OR, (left, right)))
        left = net
    return left


def _parse_xor(stream: _TokenStream, nets: _NetTable) -> str:
    left = _parse_and(stream, nets)
    while stream.peek() in ("^", "~^", "^~"):
        tok = stream.next()
        right = _parse_and(stream, nets)
        op = cells.XOR if tok == "^" else cells.XNOR
        net = nets.fresh_net()
        nets.set_driver(net, ("gate", op, (left, right)))
        left = net
    return left


def _parse_and(stream: _TokenStream, nets: _NetTable) -> str:
    left = _parse_unary(stream, nets)
    while stream.accept("&"):
        right = _parse_unary(stream, nets)
        net = nets.fresh_net()
        nets.set_driver(net, ("gate", cells.AND, (left, right)))
        left = net
    return left


def _parse_unary(stream: _TokenStream, nets: _NetTable) -> str:
    if stream.accept("~"):
        inner = _parse_unary(stream, nets)
        net = nets.fresh_net()
        nets.set_driver(net, ("gate", cells.NOT, (inner,)))
        return net
    if stream.accept("("):
        inner = _parse_expr(stream, nets)
        stream.expect(")")
        return inner
    return _parse_net_ref(stream, nets)


def _parse_assign(stream: _TokenStream, nets: _NetTable) -> None:
    target = _parse_net_ref(stream, nets)
    stream.expect("=")
    source = _parse_expr(stream, nets)
    stream.expect(";")
    nets.set_driver(target, ("gate", cells.BUF, (source,)))


def _build_graph(module_name: str, nets: _NetTable) -> LogicGraph:
    graph = LogicGraph(module_name)
    node_of: Dict[str, int] = {}
    for name in nets.inputs:
        node_of[name] = graph.add_input(name)

    resolving: List[str] = []

    def resolve(net: str) -> int:
        if net in node_of:
            return node_of[net]
        if net in resolving:
            raise VerilogParseError(f"combinational cycle through net {net!r}")
        driver = nets.drivers.get(net)
        if driver is None:
            raise VerilogParseError(f"net {net!r} is never driven")
        resolving.append(net)
        if driver[0] == "const":
            nid = graph.add_const(driver[1])
        else:
            _, op, operands = driver
            fanins = [resolve(o) for o in operands]
            nid = graph.add_gate(op, *fanins, name=net)
        resolving.pop()
        node_of[net] = nid
        return nid

    for name in nets.outputs:
        graph.set_output(name, resolve(name))
    return graph


def parse_verilog(text: str) -> LogicGraph:
    """Parse structural Verilog source into a :class:`LogicGraph`."""
    stream = _TokenStream(tokenize(text))
    stream.expect("module")
    module_name = stream.next()
    if stream.accept("("):  # port list — names repeated in declarations below
        while not stream.accept(")"):
            stream.next()
    stream.expect(";")

    nets = _NetTable()
    while True:
        tok = stream.peek()
        if tok is None:
            raise VerilogParseError("missing endmodule")
        if tok == "endmodule":
            stream.next()
            break
        if tok in ("input", "output", "wire"):
            names, kind = _parse_decl(stream)
            if kind == "input":
                nets.inputs.extend(names)
            elif kind == "output":
                nets.outputs.extend(names)
            else:
                nets.wires.extend(names)
        elif tok in _PRIMITIVES:
            stream.next()
            _parse_primitive(stream, nets, tok)
        elif tok in _CELL_PINS:
            stream.next()
            _parse_cell_instance(stream, nets, tok)
        elif tok == "assign":
            stream.next()
            _parse_assign(stream, nets)
        else:
            raise VerilogParseError(f"unexpected token {tok!r}")

    if not nets.outputs:
        raise VerilogParseError("module has no outputs")
    return _build_graph(module_name, nets)


def parse_verilog_file(path: str) -> LogicGraph:
    """Parse a structural Verilog file into a :class:`LogicGraph`."""
    with open(path, "r", encoding="utf-8") as handle:
        return parse_verilog(handle.read())
