"""Cell library for the logic processor.

The paper's logic processing elements (LPEs) support two kinds of operations
(Section IV):

* MISO (multiple-input single-output, realized as two-input here): AND, OR,
  XOR/XNOR — we also include NAND and NOR, which standard-cell mapping
  produces and which an LPE realizes as a gate plus output inversion.
* SISO (single-input single-output): NOT and BUFFER.  BUFFER nodes are what
  full path balancing inserts to equalize path lengths.

Every cell's semantics are defined over bit-packed numpy ``uint64`` words so a
single evaluation processes 64 independent Boolean samples in parallel — this
mirrors the paper's 2m-bit operands ("2m Boolean variables" per operand).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, Tuple

import numpy as np

# Canonical opcode strings used throughout the code base.
INPUT = "input"
CONST0 = "const0"
CONST1 = "const1"
BUF = "buf"
NOT = "not"
AND = "and"
OR = "or"
XOR = "xor"
XNOR = "xnor"
NAND = "nand"
NOR = "nor"

#: Ops that read a primary input or constant — they have no fanins to compute.
SOURCE_OPS = frozenset({INPUT, CONST0, CONST1})

#: Single-input single-output ops (paper's SISO class).
SISO_OPS = frozenset({BUF, NOT})

#: Two-input ops (paper's MISO class, restricted to two inputs per LPE).
MISO_OPS = frozenset({AND, OR, XOR, XNOR, NAND, NOR})

#: Ops an LPE can execute (everything except graph sources).
LPE_OPS = SISO_OPS | MISO_OPS

#: All ops a LogicGraph node may carry.
ALL_OPS = SOURCE_OPS | LPE_OPS

_WORD = np.uint64
_ALL_ONES = _WORD(0xFFFFFFFFFFFFFFFF)


def _f_buf(a: np.ndarray) -> np.ndarray:
    return a


def _f_not(a: np.ndarray) -> np.ndarray:
    return a ^ _ALL_ONES


def _f_and(a: np.ndarray, b: np.ndarray) -> np.ndarray:
    return a & b


def _f_or(a: np.ndarray, b: np.ndarray) -> np.ndarray:
    return a | b


def _f_xor(a: np.ndarray, b: np.ndarray) -> np.ndarray:
    return a ^ b


def _f_xnor(a: np.ndarray, b: np.ndarray) -> np.ndarray:
    return (a ^ b) ^ _ALL_ONES


def _f_nand(a: np.ndarray, b: np.ndarray) -> np.ndarray:
    return (a & b) ^ _ALL_ONES


def _f_nor(a: np.ndarray, b: np.ndarray) -> np.ndarray:
    return (a | b) ^ _ALL_ONES


#: Word-level evaluation function for every LPE op.
WORD_FUNCS: Dict[str, Callable[..., np.ndarray]] = {
    BUF: _f_buf,
    NOT: _f_not,
    AND: _f_and,
    OR: _f_or,
    XOR: _f_xor,
    XNOR: _f_xnor,
    NAND: _f_nand,
    NOR: _f_nor,
}

#: Truth tables for two-input ops as (out for ab=00, 01, 10, 11).
TWO_INPUT_TT: Dict[str, Tuple[int, int, int, int]] = {
    AND: (0, 0, 0, 1),
    OR: (0, 1, 1, 1),
    XOR: (0, 1, 1, 0),
    XNOR: (1, 0, 0, 1),
    NAND: (1, 1, 1, 0),
    NOR: (1, 0, 0, 0),
}

#: Inverse lookup: 4-tuple truth table -> canonical op name.
TT_TO_OP: Dict[Tuple[int, int, int, int], str] = {
    tt: op for op, tt in TWO_INPUT_TT.items()
}

#: Which op computes the complement of each op's output.
COMPLEMENT_OP: Dict[str, str] = {
    AND: NAND,
    NAND: AND,
    OR: NOR,
    NOR: OR,
    XOR: XNOR,
    XNOR: XOR,
    BUF: NOT,
    NOT: BUF,
}

#: Ops whose output is unchanged when the two inputs are swapped.
COMMUTATIVE_OPS = frozenset(MISO_OPS)


def arity(op: str) -> int:
    """Number of fanins the op consumes (0 for sources)."""
    if op in SOURCE_OPS:
        return 0
    if op in SISO_OPS:
        return 1
    if op in MISO_OPS:
        return 2
    raise ValueError(f"unknown op {op!r}")


def eval_op(op: str, *operands: np.ndarray) -> np.ndarray:
    """Evaluate ``op`` on bit-packed uint64 operand words."""
    if op == CONST0:
        return np.zeros(1, dtype=_WORD) if not operands else np.zeros_like(operands[0])
    if op == CONST1:
        base = np.zeros(1, dtype=_WORD) if not operands else np.zeros_like(operands[0])
        return base ^ _ALL_ONES
    func = WORD_FUNCS.get(op)
    if func is None:
        raise ValueError(f"op {op!r} is not evaluable")
    if len(operands) != arity(op):
        raise ValueError(f"op {op!r} expects {arity(op)} operands, got {len(operands)}")
    return func(*operands)


def eval_op_bits(op: str, *bits: int) -> int:
    """Evaluate ``op`` on scalar 0/1 bits (slow path, used by tests/tools)."""
    words = [np.array([_WORD(0xFFFFFFFFFFFFFFFF if b else 0)]) for b in bits]
    if op == CONST0:
        return 0
    if op == CONST1:
        return 1
    out = eval_op(op, *words)
    return int(out[0] & _WORD(1))


@dataclass(frozen=True)
class Cell:
    """A standard-cell-library entry with area/delay characterization.

    Areas are in equivalent NAND2 units and delays in normalized gate delays;
    they feed the logic-optimization cost functions and the FPGA resource
    model, not the cycle-accurate simulation (which counts macro-cycles).
    """

    name: str
    op: str
    num_inputs: int
    area: float
    delay: float


#: The customized cell library the paper maps circuits onto (Section III):
#: every Boolean operation supported by a library gate must be supported by
#: the LPEs.
STANDARD_CELLS: Dict[str, Cell] = {
    "BUF": Cell("BUF", BUF, 1, 0.5, 0.4),
    "INV": Cell("INV", NOT, 1, 0.5, 0.35),
    "AND2": Cell("AND2", AND, 2, 1.0, 0.7),
    "OR2": Cell("OR2", OR, 2, 1.0, 0.7),
    "XOR2": Cell("XOR2", XOR, 2, 1.75, 0.9),
    "XNOR2": Cell("XNOR2", XNOR, 2, 1.75, 0.9),
    "NAND2": Cell("NAND2", NAND, 2, 0.75, 0.55),
    "NOR2": Cell("NOR2", NOR, 2, 0.75, 0.55),
}

#: Map opcode -> standard cell implementing it.
OP_TO_CELL: Dict[str, Cell] = {cell.op: cell for cell in STANDARD_CELLS.values()}


def cell_for_op(op: str) -> Cell:
    """Return the library cell realizing ``op`` (raises for sources)."""
    cell = OP_TO_CELL.get(op)
    if cell is None:
        raise ValueError(f"no library cell implements op {op!r}")
    return cell
