"""Graph composition utilities.

NullaNet extracts one FFCL block per network layer; evaluating a whole model
(or feeding one layer's outputs into the next) requires stitching logic
graphs together.  :func:`compose_serial` wires the first graph's POs to the
second graph's PIs; :func:`merge_parallel` places independent graphs side by
side in one netlist.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence

from . import cells
from .graph import LogicGraph


def compose_serial(
    first: LogicGraph,
    second: LogicGraph,
    wiring: Optional[Dict[str, str]] = None,
    name: Optional[str] = None,
) -> LogicGraph:
    """Feed ``first``'s outputs into ``second``'s inputs.

    ``wiring`` maps each PI name of ``second`` to a PO name of ``first``
    (identity mapping by name when omitted).  PIs of ``second`` not covered
    by the wiring become PIs of the result — sharing the node when
    ``first`` has a PI of the same name (the :func:`merge_parallel`
    shared-input convention); the result's POs are ``second``'s POs.
    """
    if wiring is None:
        first_pos = {po for po, _ in first.outputs}
        wiring = {
            second.input_name(nid): second.input_name(nid)
            for nid in second.inputs
            if second.input_name(nid) in first_pos
        }
    po_node = dict(first.outputs)
    second_pis = {second.input_name(nid) for nid in second.inputs}
    for pi_name, po_name in wiring.items():
        if pi_name not in second_pis:
            raise KeyError(f"second graph has no input {pi_name!r}")
        if po_name not in po_node:
            raise KeyError(f"first graph has no output {po_name!r}")

    out = LogicGraph(name or f"{first.name}+{second.name}")
    input_of: Dict[str, int] = {}
    remap_first: Dict[int, int] = {}
    for nid in first.topological_order():
        node = first.nodes[nid]
        if node.op == cells.INPUT:
            assert node.name is not None
            remap_first[nid] = input_of[node.name] = out.add_input(node.name)
        elif node.op in (cells.CONST0, cells.CONST1):
            remap_first[nid] = out.add_const(1 if node.op == cells.CONST1 else 0)
        else:
            remap_first[nid] = out.add_gate(
                node.op, *(remap_first[f] for f in node.fanins), name=node.name
            )

    remap_second: Dict[int, int] = {}
    for nid in second.topological_order():
        node = second.nodes[nid]
        if node.op == cells.INPUT:
            assert node.name is not None
            if node.name in wiring:
                remap_second[nid] = remap_first[po_node[wiring[node.name]]]
            elif node.name in input_of:
                remap_second[nid] = input_of[node.name]
            else:
                remap_second[nid] = out.add_input(node.name)
        elif node.op in (cells.CONST0, cells.CONST1):
            remap_second[nid] = out.add_const(1 if node.op == cells.CONST1 else 0)
        else:
            remap_second[nid] = out.add_gate(
                node.op, *(remap_second[f] for f in node.fanins), name=node.name
            )
    for po_name, nid in second.outputs:
        out.set_output(po_name, remap_second[nid])
    return out.extract()


def merge_parallel(
    graphs: Sequence[LogicGraph],
    name: str = "parallel",
    share_inputs: bool = True,
) -> LogicGraph:
    """Place independent graphs side by side in one netlist.

    With ``share_inputs`` (the default) PIs with the same name become one
    input — this is how per-neuron FFCL graphs over a shared input feature
    vector combine into one per-layer block.  PO names must be globally
    unique.
    """
    out = LogicGraph(name)
    input_of: Dict[str, int] = {}
    po_names: List[str] = []
    for g in graphs:
        remap: Dict[int, int] = {}
        for nid in g.topological_order():
            node = g.nodes[nid]
            if node.op == cells.INPUT:
                assert node.name is not None
                key = node.name if share_inputs else f"{g.name}.{node.name}"
                if key not in input_of:
                    input_of[key] = out.add_input(key)
                remap[nid] = input_of[key]
            elif node.op in (cells.CONST0, cells.CONST1):
                remap[nid] = out.add_const(1 if node.op == cells.CONST1 else 0)
            else:
                remap[nid] = out.add_gate(
                    node.op, *(remap[f] for f in node.fanins), name=None
                )
        for po_name, nid in g.outputs:
            if po_name in po_names:
                raise ValueError(f"duplicate output name {po_name!r}")
            po_names.append(po_name)
            out.set_output(po_name, remap[nid])
    return out
