"""Structural-Verilog emission from a :class:`~repro.netlist.graph.LogicGraph`.

The compiler's output stage (and the tests' round-trip checks) need to write
netlists back out in the same structural subset the parser accepts.  Gates
are emitted as Verilog primitives (``and``, ``or``, ``not``, ...), which every
downstream logic tool understands.
"""

from __future__ import annotations

import re
from typing import Dict

from . import cells
from .graph import LogicGraph

_OP_TO_PRIMITIVE = {
    cells.AND: "and",
    cells.OR: "or",
    cells.XOR: "xor",
    cells.XNOR: "xnor",
    cells.NAND: "nand",
    cells.NOR: "nor",
    cells.NOT: "not",
    cells.BUF: "buf",
}

_IDENT_RE = re.compile(r"^[A-Za-z_][A-Za-z0-9_$]*$")


def _sanitize(name: str) -> str:
    """Make an arbitrary net name a legal Verilog identifier."""
    if _IDENT_RE.match(name):
        return name
    cleaned = re.sub(r"[^A-Za-z0-9_$]", "_", name)
    if not cleaned or not re.match(r"[A-Za-z_]", cleaned[0]):
        cleaned = "n_" + cleaned
    return cleaned


def write_verilog(graph: LogicGraph) -> str:
    """Serialize ``graph`` as a structural Verilog module."""
    net_of: Dict[int, str] = {}
    used: set = set()

    def unique(name: str) -> str:
        candidate = _sanitize(name)
        suffix = 0
        while candidate in used:
            suffix += 1
            candidate = f"{_sanitize(name)}_{suffix}"
        used.add(candidate)
        return candidate

    input_nets = []
    for nid in graph.inputs:
        net = unique(graph.input_name(nid))
        net_of[nid] = net
        input_nets.append(net)

    output_nets = {}
    for name, _nid in graph.outputs:
        output_nets[name] = unique(name)

    lines = []
    ports = input_nets + [output_nets[name] for name, _ in graph.outputs]
    lines.append(f"module {_sanitize(graph.name)} ({', '.join(ports)});")
    if input_nets:
        lines.append(f"  input {', '.join(input_nets)};")
    lines.append(
        f"  output {', '.join(output_nets[name] for name, _ in graph.outputs)};"
    )

    wires = []
    body = []
    gate_index = 0
    for nid in graph.topological_order():
        node = graph.nodes[nid]
        if node.op == cells.INPUT:
            continue
        net = unique(node.name or f"n{nid}")
        net_of[nid] = net
        wires.append(net)
        if node.op == cells.CONST0:
            body.append(f"  assign {net} = 1'b0;")
        elif node.op == cells.CONST1:
            body.append(f"  assign {net} = 1'b1;")
        else:
            prim = _OP_TO_PRIMITIVE[node.op]
            operands = ", ".join(net_of[f] for f in node.fanins)
            body.append(f"  {prim} g{gate_index} ({net}, {operands});")
            gate_index += 1

    if wires:
        lines.append(f"  wire {', '.join(wires)};")
    lines.extend(body)
    for name, nid in graph.outputs:
        lines.append(f"  assign {output_nets[name]} = {net_of[nid]};")
    lines.append("endmodule")
    return "\n".join(lines) + "\n"


def write_verilog_file(graph: LogicGraph, path: str) -> None:
    """Write ``graph`` to ``path`` as structural Verilog."""
    with open(path, "w", encoding="utf-8") as handle:
        handle.write(write_verilog(graph))
