"""repro — reproduction of "Algorithms and Hardware for Efficient Processing
of Logic-based Neural Networks" (Hong, Fayyazi, Esmaili, Nazemi, Pedram;
DAC 2023, arXiv:2304.06299).

The package implements the paper's complete system in pure Python:

* :mod:`repro.netlist` — cell library, logic-graph DAG, Verilog/.bench I/O,
* :mod:`repro.synth` — logic optimization, levelization, full path
  balancing, two-level minimization, algebraic factoring,
* :mod:`repro.compiler` — the pass-manager pipeline: every stage of the
  flow as a registered pass over one compile state, with named/custom
  pipelines, per-pass instrumentation, pass-level result caching, and
  parallel per-MFG code generation,
* :mod:`repro.nullanet` — NullaNet-style FFCL extraction from binarized
  neural networks (the paper's upstream engine),
* :mod:`repro.core` — the paper's contribution: MFG partitioning, merging,
  scheduling, and code generation for the logic processor,
* :mod:`repro.lpu` — the logic-processor hardware model and macro-cycle-
  accurate simulator,
* :mod:`repro.engine` — the pluggable execution-engine layer: the
  cycle-accurate model, the precompiled vectorized trace engine, the
  fused generated-kernel engine, and the incremental streaming delta
  engine behind one interface, plus the compile-once/run-many
  :class:`Session` API,
* :mod:`repro.artifact` — ahead-of-time executable artifacts: a
  versioned, content-addressed, zero-pickle binary format
  (:class:`ExecutableArtifact`, ``.lpa`` files) plus the on-disk
  :class:`ArtifactStore` backing the serve/compile cache disk tiers,
* :mod:`repro.models` — VGG16 / LeNet-5 / MLPMixer / JSC / NID workload
  generators,
* :mod:`repro.baselines` — MAC, XNOR (FINN), NullaDSP, LogicNets, and
  hls4ml analytical performance baselines + the FPGA resource model,
* :mod:`repro.analysis` — table/figure rendering for the experiment
  harness.

Quick start::

    from repro.netlist import parse_verilog
    from repro.core import compile_ffcl
    from repro.lpu import cross_check

    graph = parse_verilog(open("block.v").read())
    result = compile_ffcl(graph)
    ok, lpu_out, ref_out = cross_check(result.program)

Serving-oriented fast path (compile once, run many batches)::

    from repro import Session
    from repro.lpu import random_stimulus

    session = Session(graph)  # the "fused" generated-kernel engine
    for batch in range(16):
        stim = random_stimulus(graph, array_size=256, seed=batch)
        result = session.run(stim)

Ahead-of-time deployment (compile once, serve from any process)::

    from repro import ExecutableArtifact

    compile_ffcl(graph).to_artifact().save("block.lpa")
    # ... later, in a fresh process — zero compile, zero lowering:
    session = ExecutableArtifact.load("block.lpa").session()
"""

__version__ = "1.10.0"

from .artifact import ArtifactStore, ExecutableArtifact
from .compiler import PassCache, PassManager, compile_with_pipeline
from .core import LPUConfig, PAPER_CONFIG, compile_ffcl
from .engine import (
    CycleAccurateEngine,
    ExecutionEngine,
    FusedEngine,
    Session,
    TraceEngine,
    available_engines,
    create_engine,
)
from .netlist import LogicGraph, parse_verilog, parse_verilog_file
# NOTE: the serve() *function* stays un-exported here — binding it at the
# top level would shadow the `repro.serve` submodule attribute.  Use
# `from repro.serve import serve`.
from .serve import (
    BatchScheduler,
    InferenceServer,
    ProgramCache,
    WorkerPool,
)

__all__ = [
    "__version__",
    "ArtifactStore",
    "ExecutableArtifact",
    "LPUConfig",
    "PAPER_CONFIG",
    "PassCache",
    "PassManager",
    "compile_ffcl",
    "compile_with_pipeline",
    "CycleAccurateEngine",
    "ExecutionEngine",
    "FusedEngine",
    "Session",
    "TraceEngine",
    "available_engines",
    "create_engine",
    "LogicGraph",
    "parse_verilog",
    "parse_verilog_file",
    "BatchScheduler",
    "InferenceServer",
    "ProgramCache",
    "WorkerPool",
]
