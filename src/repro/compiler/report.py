"""Per-pass report rendering for the CLI and the benches."""

from __future__ import annotations

from typing import Dict, List, Sequence

from .state import PassRecord

__all__ = ["format_pass_report", "records_as_dicts"]

_SIZE_COLUMNS = (
    ("gates", "gates"),
    ("depth", "depth"),
    ("mfgs", "mfgs"),
    ("makespan", "makespan"),
    ("instructions", "instrs"),
)


def records_as_dicts(records: Sequence[PassRecord]) -> List[Dict[str, object]]:
    """JSON-ready form of a pass-record list."""
    return [record.as_dict() for record in records]


def format_pass_report(records: Sequence[PassRecord]) -> str:
    """Render pass records as an aligned text table."""
    headers = ["#", "pass", "ms", "cache"] + [
        header for _, header in _SIZE_COLUMNS
    ]
    rows: List[List[str]] = []
    total_ms = 0.0
    for index, record in enumerate(records):
        ms = record.seconds * 1e3
        total_ms += ms
        row = [
            str(index),
            record.name,
            f"{ms:.2f}",
            "hit" if record.cache_hit else "-",
        ]
        for size_key, _ in _SIZE_COLUMNS:
            value = record.sizes.get(size_key)
            row.append("-" if value is None else str(value))
        rows.append(row)
    rows.append(
        ["", "total", f"{total_ms:.2f}", ""] + [""] * len(_SIZE_COLUMNS)
    )
    widths = [
        max(len(headers[col]), *(len(row[col]) for row in rows))
        for col in range(len(headers))
    ]
    lines = [
        "  ".join(header.ljust(widths[col]) for col, header in enumerate(headers)),
        "  ".join("-" * width for width in widths),
    ]
    for row in rows:
        lines.append(
            "  ".join(cell.rjust(widths[col]) for col, cell in enumerate(row))
        )
    return "\n".join(lines)
