"""The pass registry and the standard compiler passes.

Every stage of the paper's Fig. 1 flow is re-expressed as a :class:`Pass`
over one :class:`~repro.compiler.state.CompileState`:

======== ================================================================
pass      wraps
======== ================================================================
ingest    source bookkeeping (+ ``extract()`` when optimization is off)
rebalance :func:`repro.synth.rebalance.balance_trees`
simplify  :func:`repro.synth.simplify.simplify`
techmap   :func:`repro.synth.techmap.map_to_basis` (no-op without a basis)
balance   :func:`repro.synth.balance.balance` (full path balancing)
levelize  :func:`repro.synth.levelize.levelize` + PreprocessResult assembly
partition :func:`repro.core.partition.partition` (Algorithms 1/2)
merge     :func:`repro.core.merge.merge_partition` (Algorithm 3)
schedule  :func:`repro.core.schedule.build_schedule` (Algorithm 4)
codegen   :func:`repro.compiler.codegen_parallel.generate_program_parallel`
metrics   :class:`~repro.core.metrics.CompileMetrics` assembly
======== ================================================================

A pass declares:

* ``provides`` — the state fields it writes, which is exactly what the
  pass-level cache snapshots and restores on a hit,
* ``signature(state)`` — the configuration the pass result depends on
  *besides* the upstream artifact chain (e.g. ``partition`` depends on
  ``config.m`` but not on the clock frequency), which keeps cache prefixes
  shared across compiles that only differ downstream.
"""

from __future__ import annotations

import os
from typing import Callable, Dict, List, Tuple

from ..core.merge import merge_partition
from ..core.metrics import CompileMetrics
from ..core.partition import partition as partition_graph
from ..core.schedule import build_schedule
from ..synth.balance import balance
from ..synth.levelize import is_levelized_strict, levelize
from ..synth.rebalance import balance_trees
from ..synth.simplify import simplify as simplify_graph
from ..synth.techmap import map_to_basis
from .codegen_parallel import generate_program_parallel
from .state import CompileState

__all__ = [
    "Pass",
    "available_passes",
    "get_pass",
    "register_pass",
]


class Pass:
    """One stage of the compile pipeline.

    Subclasses set :attr:`name` and :attr:`provides` and implement
    :meth:`run`; :meth:`signature` defaults to "depends on nothing but the
    artifact chain".
    """

    #: registry key and pipeline-spec token.
    name: str = ""
    #: state fields written by :meth:`run` (snapshot unit for the cache).
    provides: Tuple[str, ...] = ()
    #: set False for passes whose artifacts should never be memoized.
    cacheable: bool = True

    def signature(self, state: CompileState) -> Tuple:
        """Hashable configuration identity of this pass application."""
        return ()

    def run(self, state: CompileState) -> None:
        raise NotImplementedError


_REGISTRY: Dict[str, Pass] = {}


def register_pass(cls: Callable[[], Pass]) -> Callable[[], Pass]:
    """Class decorator: instantiate and index a pass by its name."""
    instance = cls()
    if not instance.name:
        raise ValueError(f"pass class {cls.__name__} has no name")
    if instance.name in _REGISTRY:
        raise ValueError(f"duplicate pass name {instance.name!r}")
    _REGISTRY[instance.name] = instance
    return cls


def get_pass(name: str) -> Pass:
    try:
        return _REGISTRY[name]
    except KeyError:
        raise KeyError(
            f"unknown pass {name!r}; available: {', '.join(sorted(_REGISTRY))}"
        ) from None


def available_passes() -> List[str]:
    """Registered pass names, in registration (pipeline-natural) order."""
    return list(_REGISTRY)


# ----------------------------------------------------------------------
# Pre-processing passes (Fig. 1 box 1 + Section IV path balancing)
# ----------------------------------------------------------------------
@register_pass
class IngestPass(Pass):
    """Record source-shape counters and seed the working graph.

    Never cached: its "artifact" aliases the caller's graph object (the
    optimization passes rebuild it anyway), and memoizing a live reference
    to a mutable caller-owned graph would let later in-place edits poison
    cache entries keyed by the graph's *original* content.  The pass is
    trivially cheap, so re-running it costs nothing.
    """

    name = "ingest"
    cacheable = False
    provides = (
        "graph",
        "gates_in",
        "depth_in",
        "gates_after_simplify",
        "gates_after_mapping",
    )

    def signature(self, state: CompileState) -> Tuple:
        return (state.options.optimize,)

    def run(self, state: CompileState) -> None:
        source = state.source
        state.gates_in = source.num_gates
        state.depth_in = source.depth()
        # The optimization passes rebuild the graph anyway; the raw flow
        # must copy so downstream rewrites never touch the caller's graph.
        state.graph = source if state.options.optimize else source.extract()
        state.gates_after_simplify = state.graph.num_gates
        state.gates_after_mapping = state.graph.num_gates


@register_pass
class RebalancePass(Pass):
    """Tree rebalancing (must precede structural hashing — see
    :func:`repro.synth.pipeline.preprocess` for the ordering rationale)."""

    name = "rebalance"
    provides = ("graph",)

    def run(self, state: CompileState) -> None:
        graph = state.require("graph", self.name)
        state.graph = balance_trees(graph)


@register_pass
class SimplifyPass(Pass):
    """Logic simplification (constant folding, CSE, identities)."""

    name = "simplify"
    provides = ("graph", "gates_after_simplify", "gates_after_mapping")

    def run(self, state: CompileState) -> None:
        graph = state.require("graph", self.name)
        state.graph = simplify_graph(graph)
        state.gates_after_simplify = state.graph.num_gates
        # Mapping runs after simplification; until a techmap pass rewrites
        # the graph the mapped count equals the simplified count.
        state.gates_after_mapping = state.graph.num_gates


@register_pass
class TechmapPass(Pass):
    """Map onto a restricted LPE basis (no-op when no basis is set)."""

    name = "techmap"
    provides = ("graph", "gates_after_mapping")

    def signature(self, state: CompileState) -> Tuple:
        basis = state.options.basis
        return (tuple(sorted(basis)) if basis is not None else None,)

    def run(self, state: CompileState) -> None:
        graph = state.require("graph", self.name)
        if state.options.basis is not None:
            state.graph = map_to_basis(graph, state.options.basis)
        state.gates_after_mapping = state.graph.num_gates


@register_pass
class BalancePass(Pass):
    """Full path balancing (buffer insertion, Section IV)."""

    name = "balance"
    provides = ("graph", "balance_report")

    def run(self, state: CompileState) -> None:
        graph = state.require("graph", self.name)
        balanced, report = balance(graph)
        assert is_levelized_strict(balanced)
        state.graph = balanced
        state.balance_report = report


@register_pass
class LevelizePass(Pass):
    """Depth-levelize and assemble the PreprocessResult facade artifact."""

    name = "levelize"
    provides = ("levels", "preprocess")

    def run(self, state: CompileState) -> None:
        from ..synth.pipeline import PreprocessReport, PreprocessResult

        graph = state.require("graph", self.name)
        balance_report = state.require("balance_report", self.name)
        state.levels = levelize(graph)
        report = PreprocessReport(
            gates_in=state.require("gates_in", self.name),
            gates_after_simplify=state.require(
                "gates_after_simplify", self.name
            ),
            gates_after_mapping=state.require(
                "gates_after_mapping", self.name
            ),
            gates_out=graph.num_gates,
            depth_in=state.require("depth_in", self.name),
            depth_out=state.levels.max_level,
            balance=balance_report,
        )
        state.preprocess = PreprocessResult(
            graph=graph, levels=state.levels, report=report
        )


# ----------------------------------------------------------------------
# Compiler passes (Fig. 1 box 2: Algorithms 1-4 + instruction generation)
# ----------------------------------------------------------------------
@register_pass
class PartitionPass(Pass):
    """Partition the balanced DAG into MFGs (Algorithms 1/2)."""

    name = "partition"
    provides = ("partition_unmerged", "partition")

    def signature(self, state: CompileState) -> Tuple:
        return (state.config.m, state.options.max_mfgs)

    def run(self, state: CompileState) -> None:
        pre = state.require("preprocess", self.name)
        part = partition_graph(
            pre.graph, state.config.m, max_mfgs=state.options.max_mfgs
        )
        state.partition_unmerged = part
        state.partition = part


@register_pass
class MergePass(Pass):
    """Greedy sibling merging (Algorithm 3) on a cloned MFG DAG."""

    name = "merge"
    provides = ("partition",)

    def signature(self, state: CompileState) -> Tuple:
        return (state.config.m,)

    def run(self, state: CompileState) -> None:
        part = state.require("partition_unmerged", self.name)
        state.partition = merge_partition(part)


@register_pass
class SchedulePass(Pass):
    """Place MFGs onto the LPV pipeline (Algorithm 4 semantics)."""

    name = "schedule"
    provides = ("schedule",)

    def signature(self, state: CompileState) -> Tuple:
        return (state.config, state.options.policy)

    def run(self, state: CompileState) -> None:
        part = state.require("partition", self.name)
        state.schedule = build_schedule(
            part, state.config, policy=state.options.policy
        )


@register_pass
class CodegenPass(Pass):
    """Parallel per-MFG instruction generation (bit-identical to the
    sequential reference for every worker count)."""

    name = "codegen"
    provides = ("program",)

    def signature(self, state: CompileState) -> Tuple:
        # codegen_workers is deliberately absent: worker count never
        # changes the generated program.
        return (state.config,)

    def run(self, state: CompileState) -> None:
        schedule = state.require("schedule", self.name)
        pre = state.require("preprocess", self.name)
        workers = state.options.codegen_workers
        if workers is None:
            workers = os.cpu_count() or 1
        state.program = generate_program_parallel(
            schedule, pre.graph, state.config, workers=workers
        )


@register_pass
class MetricsPass(Pass):
    """Assemble the :class:`~repro.core.metrics.CompileMetrics` record."""

    name = "metrics"
    provides = ("metrics",)

    def signature(self, state: CompileState) -> Tuple:
        return (state.config, state.options.policy)

    def run(self, state: CompileState) -> None:
        source = state.source
        config = state.config
        pre = state.require("preprocess", self.name)
        part_unmerged = state.require("partition_unmerged", self.name)
        part = state.require("partition", self.name)
        schedule = state.require("schedule", self.name)
        program = state.program
        state.metrics = CompileMetrics(
            name=source.name,
            num_inputs=source.num_inputs,
            num_outputs=source.num_outputs,
            gates_source=source.num_gates,
            gates_balanced=pre.graph.num_gates,
            buffers_inserted=pre.report.balance.buffers_inserted,
            depth=pre.levels.max_level,
            mfgs_before_merge=part_unmerged.num_mfgs,
            mfgs_after_merge=part.num_mfgs,
            policy=state.options.policy,
            makespan_macro_cycles=schedule.makespan,
            total_clock_cycles=schedule.total_clock_cycles,
            queue_depth=schedule.queue_depth,
            circulations=schedule.circulations,
            latency_seconds=config.macro_cycles_to_seconds(schedule.makespan),
            fps=config.fps(schedule.makespan),
            compute_instructions=(
                program.num_compute_instructions if program else None
            ),
            queue_entries=program.num_queue_entries if program else None,
            peak_buffer_words=program.peak_buffer_words if program else None,
        )


@register_pass
class PackagePass(Pass):
    """Package the compiled program as a serializable
    :class:`~repro.artifact.format.ExecutableArtifact` (program + lowered
    trace tables + identity metadata).

    Never cached: the artifact embeds its own content fingerprint and
    aliases the program object, so memoizing it buys nothing.  Append
    ``package`` to any codegen-bearing pipeline to get ahead-of-time
    artifacts straight out of the pass manager; the equivalent post-hoc
    path is :meth:`repro.core.compiler.CompileResult.to_artifact`.
    """

    name = "package"
    cacheable = False
    provides = ("artifact",)

    def run(self, state: CompileState) -> None:
        from ..artifact.format import ExecutableArtifact
        from .cache import graph_fingerprint

        program = state.require("program", self.name)
        pipeline = "+".join(
            [record.name for record in state.records] + [self.name]
        )
        state.artifact = ExecutableArtifact.from_program(
            program,
            pipeline=pipeline,
            metrics=state.metrics.as_dict() if state.metrics else None,
            workload_fingerprint=graph_fingerprint(state.source),
        )
