"""Parallel per-MFG instruction generation (the pass-manager codegen pass).

:func:`generate_program_parallel` produces a :class:`~repro.core.codegen.Program`
bit-identical to the sequential reference
(:func:`repro.core.codegen.generate_program`) while restructuring the work
into three phases so the expensive part runs per-MFG with no shared mutable
state:

1. **plan** (sequential) — bottom-level column assignment through the
   snapshot allocator, compute-column marking, and the direct/buffered
   classification of every child edge.  This phase is order-dependent
   (allocator state threads through the MFGs in issue order) and cheap, so
   it stays sequential and byte-for-byte reproduces the reference
   allocator decisions.
2. **emit** (parallel) — per-MFG port resolution and instruction emission
   against read-only inputs (the schedule, the logic graph, and the phase-1
   plans).  Each MFG yields a self-contained bundle of compute
   instructions, latch directives, buffer traffic, and PI reads.  Bundles
   are computed by a thread pool when ``workers > 1`` and merged in issue
   order, so the result never depends on thread timing.
3. **merge** (sequential) — bundles are folded into the global instruction
   queues and buffer-event stream in the same order the reference
   implementation visits them, then frozen into immutable
   :class:`~repro.core.isa.LPEInstruction` vectors.

The emit phase is also substantially faster than the reference (interned
port specs, precomputed fanin tables, no intermediate mutable-instruction
objects), so the pass wins wall-clock even on a single core; on multi-core
hosts the thread pool additionally overlaps the per-MFG emission work.
"""

from __future__ import annotations

from concurrent.futures import ThreadPoolExecutor
from typing import Dict, List, Optional, Set, Tuple

from ..netlist import cells
from ..netlist.graph import LogicGraph
from ..core.codegen import (
    PORT_A,
    PORT_B,
    Program,
    _peak_buffer_words,
    _SnapshotAllocator,
)
from ..core.config import LPUConfig
from ..core.isa import (
    IDLE_PORT,
    LPEInstruction,
    NOP,
    NOP_INSTRUCTION,
    PortSpec,
    SRC_CONST,
    SRC_INPUT,
    SRC_SNAPSHOT,
    SRC_SWITCH,
)
from ..core.schedule import Schedule, ScheduledMFG, ScheduleError

__all__ = ["generate_program_parallel"]

_PORT_NAMES = (PORT_A, PORT_B)

#: Below this many MFGs the thread-pool dispatch overhead outweighs any
#: overlap, so the emit phase runs inline regardless of ``workers``.
_MIN_PARALLEL_ITEMS = 8


class _Plan:
    """Phase-1 output for one scheduled MFG (read-only during emission)."""

    __slots__ = (
        "item",
        "cols",
        "buffer_children",
        "direct_children",
        "wrapped_bottom",
        "sorted_levels",
    )

    def __init__(
        self,
        item: ScheduledMFG,
        cols: Dict[int, int],
        buffer_children: Set[int],
        direct_children: Set[int],
        wrapped_bottom: bool,
        sorted_levels: Dict[int, List[int]],
    ) -> None:
        self.item = item
        self.cols = cols
        self.buffer_children = buffer_children
        self.direct_children = direct_children
        self.wrapped_bottom = wrapped_bottom
        self.sorted_levels = sorted_levels


class _Bundle:
    """Phase-2 output for one scheduled MFG, merged in issue order."""

    __slots__ = (
        "computes",
        "latches",
        "input_reads",
        "circulation_reads",
        "buffer_events",
        "buffer_reads",
        "po_events",
        "po_names",
    )

    def __init__(self) -> None:
        #: (lpv, address) -> {col: [op, a, b, node]} (valid implied).
        self.computes: Dict[Tuple[int, int], Dict[int, list]] = {}
        #: (lpv, address, col, port index, PortSpec with latch).
        self.latches: List[Tuple[int, int, int, int, PortSpec]] = []
        #: (cycle, (col, port name), PI node id).
        self.input_reads: List[Tuple[int, Tuple[int, str], int]] = []
        #: ((cycle, lpv), (col, port name), buffer key).
        self.circulation_reads: List[
            Tuple[Tuple[int, int], Tuple[int, str], Tuple[int, int]]
        ] = []
        #: first-read buffer-write events in emission order.
        self.buffer_events: List[Tuple[Tuple[int, int], int, int, int]] = []
        #: (buffer key, reading macro-cycle).
        self.buffer_reads: List[Tuple[Tuple[int, int], int]] = []
        #: PO-capture buffer writes (root MFGs only), in sorted-root order.
        self.po_events: List[Tuple[Tuple[int, int], int, int, int]] = []
        #: (PO name, buffer key).
        self.po_names: List[Tuple[str, Tuple[int, int]]] = []


def _build_plans(
    items: List[ScheduledMFG],
    schedule: Schedule,
    m: int,
) -> Tuple[List[_Plan], int]:
    """Phase 1: allocator-order column assignment for every MFG."""
    alloc = _SnapshotAllocator(m)
    by_uid = schedule.by_uid
    plans: List[_Plan] = []
    buffer_spills = 0

    for item in items:
        mfg = item.mfg
        bottom = mfg.bottom_level
        bottom_lpv = item.lpv_of_level[bottom]
        wrapped_bottom = bottom > 1 and bottom_lpv == 0
        sorted_levels = {
            level: sorted(nodes)
            for level, nodes in mfg.nodes_by_level.items()
        }

        direct_children: Set[int] = set()
        if not wrapped_bottom:
            for child in mfg.children:
                if by_uid[child.uid].finish_cycle + 1 == item.issue_cycle:
                    direct_children.add(child.uid)

        bottom_nodes = sorted_levels[bottom]
        buffer_children: Set[int] = set()
        non_direct = [
            c
            for c in mfg.children
            if not wrapped_bottom and c.uid not in direct_children
        ]
        if wrapped_bottom:
            buffer_children = {c.uid for c in mfg.children}
        if mfg.reads_primary_inputs or wrapped_bottom or not non_direct:
            bottom_cols = list(range(len(bottom_nodes)))
        else:
            arrivals = sorted(
                by_uid[c.uid].finish_cycle + 1 for c in non_direct
            )
            try:
                bottom_cols = alloc.allocate(
                    bottom_lpv,
                    len(bottom_nodes),
                    arrivals[0],
                    item.issue_cycle,
                    arrivals,
                )
            except ScheduleError:
                buffer_children = {c.uid for c in non_direct}
                buffer_spills += 1
                bottom_cols = list(range(len(bottom_nodes)))

        cols: Dict[int, int] = dict(zip(bottom_nodes, bottom_cols))
        for level in range(bottom + 1, mfg.top_level + 1):
            for col, node in enumerate(sorted_levels[level]):
                cols[node] = col

        for level in mfg.levels():
            alloc.mark_compute(
                item.cycle_of_level[level],
                item.lpv_of_level[level],
                {cols[v] for v in sorted_levels[level]},
            )

        plans.append(
            _Plan(
                item=item,
                cols=cols,
                buffer_children=buffer_children,
                direct_children=direct_children,
                wrapped_bottom=wrapped_bottom,
                sorted_levels=sorted_levels,
            )
        )
    return plans, buffer_spills


class _Emitter:
    """Phase 2: pure per-MFG emission against read-only shared state."""

    def __init__(
        self,
        schedule: Schedule,
        graph: LogicGraph,
        config: LPUConfig,
        plans: List[_Plan],
    ) -> None:
        self.schedule = schedule
        self.graph = graph
        self.base_address = schedule.base_address
        self.last_lpv = config.n - 1
        self.plan_of: Dict[int, _Plan] = {p.item.mfg.uid: p for p in plans}
        # Flat fanin/op tables: node id -> (op, fanins).  Node objects are
        # dataclasses; direct attribute reads here beat the per-call
        # ``op_of``/``fanins_of`` accessors in the emission inner loop.
        self.node_info: Dict[int, Tuple[str, Tuple[int, ...]]] = {
            nid: (node.op, node.fanins) for nid, node in graph.nodes.items()
        }
        m = config.m
        # Interned port specs: emission only ever needs switch columns,
        # input-buffer slots, the snapshot port, and the two constants.
        self.switch_ports = [PortSpec(SRC_SWITCH, c) for c in range(m)]
        self.switch_latch_ports = [
            PortSpec(SRC_SWITCH, c, latch=True) for c in range(m)
        ]
        self.input_ports = [PortSpec(SRC_INPUT, s) for s in range(2 * m)]
        self.snapshot_port = PortSpec(SRC_SNAPSHOT)
        self.const_ports = (PortSpec(SRC_CONST, 0), PortSpec(SRC_CONST, 1))

    def emit(self, plan: _Plan) -> _Bundle:
        item = plan.item
        mfg = item.mfg
        uid = mfg.uid
        cols = plan.cols
        bottom = mfg.bottom_level
        reads_pis = mfg.reads_primary_inputs
        base = self.base_address
        last_lpv = self.last_lpv
        node_info = self.node_info
        switch_ports = self.switch_ports
        switch_latch_ports = self.switch_latch_ports
        snapshot_port = self.snapshot_port
        input_ports = self.input_ports
        const_ports = self.const_ports
        plan_of = self.plan_of
        by_uid = self.schedule.by_uid
        buffer_children = plan.buffer_children
        direct_children = plan.direct_children
        sorted_levels = plan.sorted_levels
        cycle_of_level = item.cycle_of_level
        lpv_of_level = item.lpv_of_level
        const0 = cells.CONST0
        const1 = cells.CONST1
        bundle = _Bundle()
        computes = bundle.computes
        input_read_list = bundle.input_reads
        circulation_read_list = bundle.circulation_reads
        buffer_event_list = bundle.buffer_events
        buffer_read_list = bundle.buffer_reads
        latch_list = bundle.latches

        # Child-producer lookup for the bottom level.
        producer: Dict[int, ScheduledMFG] = {}
        producer_cols: Dict[int, int] = {}
        producer_uid: Dict[int, int] = {}
        if not reads_pis:
            for child in mfg.children:
                child_cols = plan_of[child.uid].cols
                c_item = by_uid[child.uid]
                c_uid = child.uid
                for root in child.roots:
                    producer[root] = c_item
                    producer_cols[root] = child_cols[root]
                    producer_uid[root] = c_uid

        seen_buffer_keys: Set[Tuple[int, int]] = set()

        def read_from_buffer(
            key: Tuple[int, int],
            write_cycle: int,
            write_lpv: int,
            write_col: int,
            cycle: int,
            lpv: int,
            col: int,
            slot: int,
        ) -> PortSpec:
            if key not in seen_buffer_keys:
                seen_buffer_keys.add(key)
                buffer_event_list.append(
                    (key, write_cycle, write_lpv, write_col)
                )
            circulation_read_list.append(
                ((cycle, lpv), (col, _PORT_NAMES[slot]), key)
            )
            buffer_read_list.append((key, cycle))
            return input_ports[col * 2 + slot]

        for level in mfg.levels():
            cycle = cycle_of_level[level]
            lpv = lpv_of_level[level]
            address = cycle - lpv - base
            vec = computes.setdefault((lpv, address), {})
            internal_wrap = level > bottom and lpv == 0
            is_bottom = level == bottom

            for node in sorted_levels[level]:
                col = cols[node]
                if col in vec:
                    raise ScheduleError(
                        f"column {col} at (cycle {cycle}, LPV {lpv}) "
                        f"already computes node {vec[col][3]}"
                    )
                op, fanins = node_info[node]
                instr = [op, None, None, node]
                vec[col] = instr
                slot = 0
                for fanin in fanins:
                    if slot > 1:
                        break
                    fanin_op = node_info[fanin][0]
                    if fanin_op == const0:
                        spec = const_ports[0]
                    elif fanin_op == const1:
                        spec = const_ports[1]
                    elif not is_bottom:
                        src_col = cols[fanin]
                        if internal_wrap:
                            spec = read_from_buffer(
                                (uid, fanin),
                                cycle - 1,
                                last_lpv,
                                src_col,
                                cycle,
                                lpv,
                                col,
                                slot,
                            )
                        else:
                            spec = switch_ports[src_col]
                    elif reads_pis:
                        input_read_list.append(
                            (cycle, (col, _PORT_NAMES[slot]), fanin)
                        )
                        spec = input_ports[col * 2 + slot]
                    else:
                        c_item = producer.get(fanin)
                        if c_item is None:
                            raise ScheduleError(
                                f"no child MFG produces input node {fanin} "
                                f"of MFG {uid}"
                            )
                        c_uid = producer_uid[fanin]
                        src_col = producer_cols[fanin]
                        if c_uid in buffer_children:
                            spec = read_from_buffer(
                                (c_uid, fanin),
                                c_item.finish_cycle,
                                c_item.top_lpv,
                                src_col,
                                cycle,
                                lpv,
                                col,
                                slot,
                            )
                        elif c_uid in direct_children:
                            spec = switch_ports[src_col]
                        else:
                            # Earlier child: latch on arrival, read the
                            # snapshot register when this MFG issues.
                            arrival = c_item.finish_cycle + 1
                            latch_list.append(
                                (
                                    lpv,
                                    arrival - lpv - base,
                                    col,
                                    slot,
                                    switch_latch_ports[src_col],
                                )
                            )
                            spec = snapshot_port
                    instr[1 + slot] = spec
                    slot += 1

        if not mfg.parents:
            finish = item.finish_cycle
            top_lpv = item.lpv_of_level[mfg.top_level]
            for root in sorted(mfg.roots):
                bundle.po_events.append(((uid, root), finish, top_lpv, cols[root]))
            for po_name, po_node in self.graph.outputs:
                if po_node in mfg.roots:
                    bundle.po_names.append((po_name, (uid, po_node)))
        return bundle


def generate_program_parallel(
    schedule: Schedule,
    graph: LogicGraph,
    config: LPUConfig,
    workers: Optional[int] = None,
) -> Program:
    """Generate instruction queues and buffer traffic for ``schedule``.

    Bit-identical to :func:`repro.core.codegen.generate_program`;
    ``workers`` bounds the emit-phase thread pool (``None`` or ``1`` runs
    the emit phase inline).
    """
    m = config.m
    items = sorted(schedule.items, key=lambda it: (it.issue_cycle, it.mfg.uid))
    plans, buffer_spills = _build_plans(items, schedule, m)
    emitter = _Emitter(schedule, graph, config, plans)

    if workers is not None and workers > 1 and len(plans) >= _MIN_PARALLEL_ITEMS:
        with ThreadPoolExecutor(max_workers=workers) as pool:
            bundles = list(pool.map(emitter.emit, plans))
    else:
        bundles = [emitter.emit(plan) for plan in plans]

    # ---- phase 3: deterministic merge in issue order ----------------------
    mutable: Dict[Tuple[int, int], Dict[int, list]] = {}
    input_reads: Dict[int, Dict[Tuple[int, str], int]] = {}
    circulation_reads: Dict[
        Tuple[int, int], Dict[Tuple[int, str], Tuple[int, int]]
    ] = {}
    buffer_writes: Dict[int, List[Tuple[Tuple[int, int], int, int]]] = {}
    buffer_write_cycle: Dict[Tuple[int, int], int] = {}
    buffer_reads_by_key: Dict[Tuple[int, int], List[int]] = {}
    po_buffer_keys: Dict[str, Tuple[int, int]] = {}

    def note_buffer_write(
        key: Tuple[int, int], cycle: int, lpv: int, column: int
    ) -> None:
        if key in buffer_write_cycle:
            return
        buffer_write_cycle[key] = cycle
        buffer_writes.setdefault(cycle, []).append((key, lpv, column))

    for bundle in bundles:
        for cell_key, per_col in bundle.computes.items():
            existing = mutable.get(cell_key)
            if existing is None:
                mutable[cell_key] = per_col
            else:
                for col, instr in per_col.items():
                    prior = existing.get(col)
                    if prior is not None and prior[0] is not None:
                        raise ScheduleError(
                            f"column {col} at queue entry {cell_key} already "
                            f"computes node {prior[3]}"
                        )
                    if prior is not None:
                        # Latch-only placeholder: keep its latched ports,
                        # replicating the reference set_port semantics.
                        for slot in (1, 2):
                            if prior[slot] is not None:
                                if (
                                    instr[slot] is not None
                                    and instr[slot] != prior[slot]
                                ):
                                    raise ScheduleError(
                                        f"port {_PORT_NAMES[slot - 1]!r} "
                                        f"already configured with "
                                        f"{prior[slot]}, cannot also be "
                                        f"{instr[slot]}"
                                    )
                                instr[slot] = prior[slot]
                    existing[col] = instr
        for cycle, key, fanin in bundle.input_reads:
            input_reads.setdefault(cycle, {})[key] = fanin
        for cell_cycle_lpv, key, buffer_key in bundle.circulation_reads:
            circulation_reads.setdefault(cell_cycle_lpv, {})[key] = buffer_key
        for key, cycle, lpv, col in bundle.buffer_events:
            note_buffer_write(key, cycle, lpv, col)
        for key, cycle in bundle.buffer_reads:
            buffer_reads_by_key.setdefault(key, []).append(cycle)
        for lpv, address, col, slot, spec in bundle.latches:
            vec = mutable.setdefault((lpv, address), {})
            instr = vec.get(col)
            if instr is None:
                instr = [None, None, None, None]
                vec[col] = instr
            current = instr[1 + slot]
            if current is not None and current != spec:
                raise ScheduleError(
                    f"port {_PORT_NAMES[slot]!r} already configured with "
                    f"{current}, cannot also be {spec}"
                )
            instr[1 + slot] = spec
        for key, cycle, lpv, col in bundle.po_events:
            note_buffer_write(key, cycle, lpv, col)
        for po_name, key in bundle.po_names:
            po_buffer_keys.setdefault(po_name, key)

    # ---- freeze instruction vectors ---------------------------------------
    # Instructions are built through ``__new__`` + ``object.__setattr__``:
    # every field is valid by construction here (ops come from validated
    # graph nodes, ports from the interned tables), so the frozen-dataclass
    # ``__init__``/``__post_init__`` machinery is pure overhead in this
    # loop, which creates one object per emitted instruction.
    queues: Dict[int, Dict[int, List[LPEInstruction]]] = {}
    instr_new = LPEInstruction.__new__
    set_field = object.__setattr__
    for (lpv, address), per_col in mutable.items():
        vec = [NOP_INSTRUCTION] * m
        for col, (op, a, b, node) in per_col.items():
            frozen = instr_new(LPEInstruction)
            if op is None:
                set_field(frozen, "op", NOP)
                set_field(frozen, "valid", False)
                set_field(frozen, "node", None)
            else:
                set_field(frozen, "op", op)
                set_field(frozen, "valid", True)
                set_field(frozen, "node", node)
            set_field(frozen, "a", a if a is not None else IDLE_PORT)
            set_field(frozen, "b", b if b is not None else IDLE_PORT)
            vec[col] = frozen
        queues.setdefault(lpv, {})[address] = vec

    po_nodes = {name: nid for name, nid in graph.outputs}
    peak = _peak_buffer_words(
        buffer_write_cycle, buffer_reads_by_key, schedule.makespan
    )
    return Program(
        config=config,
        graph=graph,
        schedule=schedule,
        queues=queues,
        input_reads=input_reads,
        circulation_reads=circulation_reads,
        buffer_writes=buffer_writes,
        po_nodes=po_nodes,
        po_buffer_keys=po_buffer_keys,
        peak_buffer_words=peak,
        buffer_spills=buffer_spills,
    )
