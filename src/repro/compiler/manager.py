"""The pass manager: run a pipeline over one CompileState.

:class:`PassManager` is the declarative replacement for the monolithic
``preprocess()``/``compile_ffcl()`` call chains: it threads one
:class:`~repro.compiler.state.CompileState` through an ordered list of
registered passes, timing each pass, recording artifact sizes, and —
when given a :class:`~repro.compiler.cache.PassCache` — serving any pass
whose fingerprint chain (graph content + upstream passes + pass
signature) has been seen before straight from the cache.

:func:`compile_with_pipeline` is the one-call convenience the facades and
the CLI use; it returns the classic
:class:`~repro.core.compiler.CompileResult` when the pipeline produced
every facade artifact.
"""

from __future__ import annotations

import time
from typing import List, Optional, Sequence, Union

from ..core.config import LPUConfig, PAPER_CONFIG
from ..netlist.graph import LogicGraph
from .cache import PassCache, base_fingerprint, chain_fingerprint
from .passes import Pass, get_pass
from .pipelines import PipelineSpec, resolve_pipeline
from .state import CompileOptions, CompileState, PassRecord

__all__ = ["PassManager", "compile_with_pipeline"]


class PassManager:
    """Run a fixed pass pipeline over compile states.

    Args:
        pipeline: pipeline spec (name, comma list, or sequence of pass
            names / :class:`Pass` instances).
        cache: optional pass-level result cache shared across compiles.
    """

    def __init__(
        self,
        pipeline: Union[PipelineSpec, Sequence[Pass]],
        cache: Optional[PassCache] = None,
    ) -> None:
        if not isinstance(pipeline, str):
            pipeline = list(pipeline)  # single-use iterables: probe safely
        passes: List[Pass] = []
        if not isinstance(pipeline, str) and pipeline and all(
            isinstance(p, Pass) for p in pipeline
        ):
            passes = list(pipeline)  # pre-built pass instances
        else:
            passes = [get_pass(name) for name in resolve_pipeline(pipeline)]
        if not passes:
            raise ValueError("empty compile pipeline")
        self.passes = passes
        self.cache = cache

    @property
    def pass_names(self) -> List[str]:
        return [p.name for p in self.passes]

    def run(
        self,
        graph: LogicGraph,
        config: LPUConfig = PAPER_CONFIG,
        options: CompileOptions = CompileOptions(),
    ) -> CompileState:
        """Compile ``graph`` through the pipeline; returns the final state."""
        state = CompileState(source=graph, config=config, options=options)
        cache = self.cache
        fingerprint = base_fingerprint(graph) if cache is not None else ""

        for pass_ in self.passes:
            if cache is not None:
                fingerprint = chain_fingerprint(
                    fingerprint, pass_.name, pass_.signature(state)
                )
            start = time.perf_counter()
            hit = False
            if cache is not None and pass_.cacheable:
                snapshot = cache.lookup(fingerprint, pass_.name)
                if snapshot is not None:
                    for field_name, value in snapshot.items():
                        setattr(state, field_name, value)
                    hit = True
            if not hit:
                pass_.run(state)
                if cache is not None and pass_.cacheable:
                    snapshot = {
                        field_name: getattr(state, field_name)
                        for field_name in pass_.provides
                    }
                    # Never memoize a live alias of the caller's graph
                    # (e.g. techmap without a basis passes it through
                    # untouched): the caller may mutate it in place later,
                    # which would poison entries keyed by the graph's
                    # original content.
                    if not any(
                        value is state.source for value in snapshot.values()
                    ):
                        cache.store(fingerprint, snapshot)
            state.records.append(
                PassRecord(
                    name=pass_.name,
                    seconds=time.perf_counter() - start,
                    cache_hit=hit,
                    sizes=state.size_summary(),
                )
            )
        return state


def compile_with_pipeline(
    graph: LogicGraph,
    config: LPUConfig = PAPER_CONFIG,
    *,
    pipeline: PipelineSpec = "paper",
    cache: Optional[PassCache] = None,
    **option_kwargs,
):
    """Compile through a named/custom pipeline to a ``CompileResult``.

    ``option_kwargs`` populate :class:`CompileOptions` (``policy``,
    ``basis``, ``codegen_workers``, ...).  The pipeline must produce the
    classic facade artifacts (run through ``levelize``, ``partition``,
    ``schedule``, and ``metrics``); partial pipelines should use
    :class:`PassManager` directly and work with the returned state.
    """
    options = CompileOptions(**option_kwargs)
    state = PassManager(pipeline, cache=cache).run(graph, config, options)
    return state_to_result(state)


def state_to_result(state: CompileState):
    """Package a completed state as the classic ``CompileResult``."""
    from ..core.compiler import CompileResult

    missing = [
        name
        for name in (
            "preprocess",
            "partition_unmerged",
            "partition",
            "schedule",
            "metrics",
        )
        if getattr(state, name) is None
    ]
    if missing:
        raise ValueError(
            "pipeline did not produce the artifacts a CompileResult needs: "
            + ", ".join(missing)
        )
    return CompileResult(
        source=state.source,
        config=state.config,
        preprocess=state.preprocess,
        partition_unmerged=state.partition_unmerged,
        partition=state.partition,
        schedule=state.schedule,
        program=state.program,
        metrics=state.metrics,
        pass_records=list(state.records),
        artifact=state.artifact,
    )
