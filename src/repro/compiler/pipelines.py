"""Named pipelines and pipeline-spec resolution.

A *pipeline spec* is anything a CLI flag, a serve option, or a facade can
hand us:

* a registered name — ``"paper"``, ``"no-merge"``, ``"metrics-only"``,
* a comma-separated custom pass list — ``"ingest,simplify,balance,..."``,
* an explicit sequence of pass names.

:func:`resolve_pipeline` normalizes all of these to a tuple of registered
pass names, and :func:`pipeline_id` renders that tuple as the canonical
string used in cache keys (two different pipelines over the same graph
must never collide in any cache).
"""

from __future__ import annotations

from typing import Dict, Iterable, Tuple, Union

from .passes import get_pass

__all__ = [
    "PIPELINES",
    "PipelineSpec",
    "pipeline_from_options",
    "pipeline_id",
    "resolve_pipeline",
]

PipelineSpec = Union[str, Iterable[str]]

_PREPROCESS = (
    "ingest",
    "rebalance",
    "simplify",
    "rebalance",
    "simplify",
    "techmap",
    "balance",
    "levelize",
)

#: The standard pipelines.  ``paper`` is the full Fig. 1 flow (and exactly
#: what ``compile_ffcl``'s defaults ran before the pass-manager refactor);
#: ``no-merge`` is the Fig. 7/8 ablation; ``metrics-only`` skips
#: instruction generation for parameter sweeps on large workloads.
PIPELINES: Dict[str, Tuple[str, ...]] = {
    "paper": _PREPROCESS
    + ("partition", "merge", "schedule", "codegen", "metrics"),
    "no-merge": _PREPROCESS
    + ("partition", "schedule", "codegen", "metrics"),
    "metrics-only": _PREPROCESS
    + ("partition", "merge", "schedule", "metrics"),
}


def resolve_pipeline(spec: PipelineSpec) -> Tuple[str, ...]:
    """Normalize a pipeline spec to a validated tuple of pass names."""
    if isinstance(spec, str):
        if spec in PIPELINES:
            return PIPELINES[spec]
        names = tuple(part.strip() for part in spec.split(",") if part.strip())
    else:
        names = tuple(spec)
    if not names:
        raise ValueError("empty compile pipeline")
    for name in names:
        get_pass(name)  # raises KeyError with the available-pass list
    return names


def pipeline_id(spec: PipelineSpec) -> str:
    """Canonical cache-key string of a pipeline ('+'-joined pass names)."""
    return "+".join(resolve_pipeline(spec))


def pipeline_from_options(
    optimize: bool = True,
    merge: bool = True,
    generate_code: bool = True,
) -> Tuple[str, ...]:
    """The pass list the pre-refactor ``compile_ffcl`` keywords imply.

    With every default on, this is exactly ``PIPELINES["paper"]`` — the
    ``techmap`` pass stays in the list even without a basis (it no-ops), so
    option-equivalent compiles share one pipeline identity.
    """
    passes = ["ingest"]
    if optimize:
        passes += ["rebalance", "simplify", "rebalance", "simplify"]
    passes += ["techmap", "balance", "levelize", "partition"]
    if merge:
        passes.append("merge")
    passes.append("schedule")
    if generate_code:
        passes.append("codegen")
    passes.append("metrics")
    return tuple(passes)
