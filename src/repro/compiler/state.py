"""Compile state and options threaded through the pass pipeline.

A :class:`CompileState` is the single mutable record every
:class:`~repro.compiler.passes.Pass` reads from and writes to: the working
graph, the pre-processing bookkeeping, the partition/schedule/program
artifacts, the final metrics, and the per-pass instrumentation records.
:class:`CompileOptions` is the frozen bag of compile knobs (the old
``compile_ffcl`` keyword arguments), and :class:`PassRecord` is one row of
the per-pass report (wall time, cache hit, artifact sizes).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, FrozenSet, List, Optional

from ..core.codegen import Program
from ..core.config import LPUConfig, PAPER_CONFIG
from ..core.metrics import CompileMetrics
from ..core.mfg import Partition
from ..core.schedule import Schedule
from ..netlist.graph import LogicGraph
from ..synth.balance import BalanceReport
from ..synth.levelize import Levelization
from ..synth.pipeline import PreprocessResult

__all__ = [
    "CompileOptions",
    "CompileState",
    "PassRecord",
    "PipelineError",
]


class PipelineError(RuntimeError):
    """A pass was run against a state missing its required inputs."""


@dataclass(frozen=True)
class CompileOptions:
    """Compile knobs consumed by the passes (hashable, cache-key safe).

    Note there is no ``merge``/``generate_code`` knob here: whether those
    stages run is decided solely by the pass list (see
    :func:`repro.compiler.pipeline_from_options`), never by an option a
    pass would have to consult.
    """

    policy: str = "pipelined"
    optimize: bool = True
    basis: Optional[FrozenSet[str]] = None
    max_mfgs: int = 500_000
    #: emit-phase thread-pool width of the codegen pass; ``None`` uses the
    #: host CPU count.  Never part of any cache identity: the generated
    #: program is bit-identical for every worker count.
    codegen_workers: Optional[int] = None


@dataclass
class PassRecord:
    """Instrumentation for one executed (or cache-served) pass."""

    name: str
    seconds: float
    cache_hit: bool = False
    #: artifact sizes *after* the pass (gates, MFG counts, makespan, ...).
    sizes: Dict[str, int] = field(default_factory=dict)

    def as_dict(self) -> Dict[str, object]:
        return {
            "name": self.name,
            "seconds": self.seconds,
            "cache_hit": self.cache_hit,
            "sizes": dict(self.sizes),
        }


@dataclass
class CompileState:
    """Everything one compilation has produced so far."""

    source: LogicGraph
    config: LPUConfig = PAPER_CONFIG
    options: CompileOptions = CompileOptions()

    #: the working netlist the pre-processing passes rewrite.
    graph: Optional[LogicGraph] = None
    levels: Optional[Levelization] = None
    balance_report: Optional[BalanceReport] = None

    # Pre-processing bookkeeping (the PreprocessReport counters).
    gates_in: Optional[int] = None
    depth_in: Optional[int] = None
    gates_after_simplify: Optional[int] = None
    gates_after_mapping: Optional[int] = None

    #: assembled by the levelize pass (facade-compatible artifact).
    preprocess: Optional[PreprocessResult] = None

    partition_unmerged: Optional[Partition] = None
    partition: Optional[Partition] = None
    schedule: Optional[Schedule] = None
    program: Optional[Program] = None
    metrics: Optional[CompileMetrics] = None
    #: packaged executable (written by the ``package`` pass; an
    #: :class:`~repro.artifact.format.ExecutableArtifact`).
    artifact: Optional[object] = None

    records: List[PassRecord] = field(default_factory=list)

    def require(self, field_name: str, needed_by: str) -> object:
        """Fetch an artifact, raising a pipeline-shaped error when absent."""
        value = getattr(self, field_name)
        if value is None:
            raise PipelineError(
                f"pass {needed_by!r} requires {field_name!r}; add the pass "
                f"that produces it earlier in the pipeline"
            )
        return value

    def size_summary(self) -> Dict[str, int]:
        """Cheap artifact sizes for the per-pass report."""
        sizes: Dict[str, int] = {}
        if self.graph is not None:
            sizes["gates"] = self.graph.num_gates
        if self.levels is not None:
            sizes["depth"] = self.levels.max_level
        if self.partition_unmerged is not None:
            sizes["mfgs_unmerged"] = self.partition_unmerged.num_mfgs
        if self.partition is not None:
            sizes["mfgs"] = self.partition.num_mfgs
        if self.schedule is not None:
            sizes["makespan"] = self.schedule.makespan
        if self.program is not None:
            sizes["instructions"] = self.program.num_compute_instructions
            sizes["queue_entries"] = self.program.num_queue_entries
        return sizes
