"""Pass-level result caching keyed by content-fingerprint chains.

The :class:`~repro.serve.cache.ProgramCache` memoizes whole compilations;
:class:`PassCache` extends the same idea one level down.  Every pass
application is identified by a rolling fingerprint::

    fp_0     = sha256(graph content fingerprint + graph name)
    fp_{i+1} = sha256(fp_i + pass name + pass signature)

so the key of pass *i* encodes the entire upstream chain — two pipelines
that share a prefix (e.g. ``paper`` and ``no-merge``, or the same netlist
compiled under two scheduling policies) hit the cache for every shared
pass and only re-run from the first point of divergence.  The cached value
is the snapshot of the state fields the pass ``provides``; artifacts are
shared by reference, which is safe because passes never mutate their
inputs (the merge pass clones, every synth pass rebuilds).
"""

from __future__ import annotations

import hashlib
import threading
from collections import OrderedDict
from typing import Dict, Optional, Tuple

from ..netlist.graph import LogicGraph

__all__ = [
    "PassCache",
    "PassCacheStats",
    "base_fingerprint",
    "chain_fingerprint",
    "graph_fingerprint",
]


def graph_fingerprint(graph: LogicGraph) -> str:
    """Stable content hash of a logic graph's structure and interface.

    Nodes are renumbered in topological order, so the fingerprint depends
    only on the graph's logical content — never on node-id allocation
    history or object identity.  (:mod:`repro.serve.cache` re-exports this
    as the workload key of the program cache.)
    """
    digest = hashlib.sha256()
    order = graph.topological_order()
    renumber = {nid: i for i, nid in enumerate(order)}
    for nid in order:
        fanins = tuple(renumber[f] for f in graph.fanins_of(nid))
        digest.update(repr((renumber[nid], graph.op_of(nid), fanins)).encode())
    for nid in graph.inputs:
        digest.update(repr(("pi", graph.input_name(nid), renumber[nid])).encode())
    for name, nid in graph.outputs:
        digest.update(repr(("po", name, renumber[nid])).encode())
    return digest.hexdigest()


def base_fingerprint(graph: LogicGraph) -> str:
    """Starting fingerprint of a compile: graph content + display name."""
    digest = hashlib.sha256()
    digest.update(graph_fingerprint(graph).encode())
    digest.update(repr(graph.name).encode())
    return digest.hexdigest()


def chain_fingerprint(prefix: str, pass_name: str, signature: Tuple) -> str:
    """Fold one pass application into the rolling fingerprint."""
    digest = hashlib.sha256()
    digest.update(prefix.encode())
    digest.update(pass_name.encode())
    digest.update(repr(signature).encode())
    return digest.hexdigest()


class PassCacheStats:
    """Hit/miss counters, overall and per pass name."""

    def __init__(self) -> None:
        self.hits = 0
        self.misses = 0
        self.evictions = 0
        #: memory misses served from the disk tier (also counted as hits).
        self.disk_hits = 0
        #: snapshots persisted to the disk tier.
        self.disk_stores = 0
        self.by_pass: Dict[str, Dict[str, int]] = {}

    def record(self, pass_name: str, hit: bool) -> None:
        counters = self.by_pass.setdefault(pass_name, {"hits": 0, "misses": 0})
        if hit:
            self.hits += 1
            counters["hits"] += 1
        else:
            self.misses += 1
            counters["misses"] += 1

    @property
    def lookups(self) -> int:
        return self.hits + self.misses

    @property
    def hit_rate(self) -> float:
        return self.hits / self.lookups if self.lookups else 0.0

    def as_dict(self) -> Dict[str, object]:
        return {
            "hits": self.hits,
            "misses": self.misses,
            "evictions": self.evictions,
            "disk_hits": self.disk_hits,
            "disk_stores": self.disk_stores,
            "hit_rate": self.hit_rate,
            "by_pass": {name: dict(c) for name, c in self.by_pass.items()},
        }


#: disk-tier key prefix (one ArtifactStore serves several cache tiers).
_DISK_PREFIX = "pass-"
_DISK_SUFFIX = ".snap"


class PassCache:
    """Thread-safe LRU cache of per-pass state snapshots.

    Args:
        capacity: maximum retained pass applications (each entry is one
            pass's output snapshot, so a 13-pass pipeline occupies 13
            entries when fully cached).
        store: optional :class:`~repro.artifact.store.StoreBackend` blob
            tier (a directory store, an in-process memory backend, or a
            remote HTTP store — anything speaking
            ``get_bytes``/``put_bytes``).
            Memory misses fall through to it, and stored
            snapshots are persisted whenever the zero-pickle snapshot
            codec can encode them (scalars, logic graphs, levelizations,
            flat report dataclasses — i.e. every pre-processing pass and
            ``metrics``); snapshots carrying MFG partitions, schedules,
            or programs stay memory-only, since whole executables already
            persist through the :class:`~repro.serve.cache.ProgramCache`
            disk tier.  Keys are the rolling chain fingerprints, so the
            disk tier is content-addressed exactly like the memory tier.
    """

    def __init__(self, capacity: int = 256, store=None) -> None:
        if capacity < 1:
            raise ValueError("pass cache capacity must be >= 1")
        self.capacity = capacity
        self.disk = store
        self.stats = PassCacheStats()
        self._entries: "OrderedDict[str, Dict[str, object]]" = OrderedDict()
        self._lock = threading.RLock()

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)

    def clear(self) -> None:
        """Reset the memory tier and counters (disk entries persist)."""
        with self._lock:
            self._entries.clear()
            self.stats = PassCacheStats()

    def _disk_lookup(self, key: str) -> Optional[Dict[str, object]]:
        from ..artifact.codec import ArtifactDecodeError, decode_snapshot

        blob = self.disk.get_bytes(_DISK_PREFIX + key, suffix=_DISK_SUFFIX)
        if blob is None:
            return None
        try:
            return decode_snapshot(blob)
        except ArtifactDecodeError:
            return None

    def lookup(
        self, key: str, pass_name: str
    ) -> Optional[Dict[str, object]]:
        """Return the cached snapshot for ``key`` (and count the lookup)."""
        with self._lock:
            snapshot = self._entries.get(key)
            if snapshot is not None:
                self._entries.move_to_end(key)
                self.stats.record(pass_name, hit=True)
                return snapshot
        if self.disk is not None:
            snapshot = self._disk_lookup(key)
            if snapshot is not None:
                with self._lock:
                    # Promote to the memory tier so the next lookup is RAM.
                    self._insert(key, snapshot)
                    self.stats.disk_hits += 1
                    self.stats.record(pass_name, hit=True)
                return snapshot
        with self._lock:
            self.stats.record(pass_name, hit=False)
        return None

    def _insert(self, key: str, snapshot: Dict[str, object]) -> None:
        self._entries[key] = snapshot
        self._entries.move_to_end(key)
        while len(self._entries) > self.capacity:
            self._entries.popitem(last=False)
            self.stats.evictions += 1

    def store(self, key: str, snapshot: Dict[str, object]) -> None:
        with self._lock:
            self._insert(key, snapshot)
        if self.disk is not None:
            from ..artifact.codec import encode_snapshot

            blob = encode_snapshot(snapshot)
            if blob is not None:
                self.disk.put_bytes(
                    _DISK_PREFIX + key, blob, suffix=_DISK_SUFFIX
                )
                with self._lock:
                    self.stats.disk_stores += 1
