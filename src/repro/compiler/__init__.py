"""The pass-manager compile pipeline (Fig. 1 as declarative passes).

The paper's flow — pre-processing, MFG partitioning/merging, scheduling,
instruction generation — used to be hard-wired into two monolithic call
chains (``repro.synth.pipeline.preprocess`` and
``repro.core.compiler.compile_ffcl``).  This package re-expresses every
stage as a :class:`~repro.compiler.passes.Pass` over one
:class:`~repro.compiler.state.CompileState`, run by a
:class:`~repro.compiler.manager.PassManager`, which unlocks per-pass
instrumentation, pass-level result caching, pipeline ablations
(merge on/off, custom pass lists), and parallel per-MFG codegen.  The old
entry points survive as thin facades over the ``paper`` pipeline with
bit-identical results.

Module map
==========

``state``
    :class:`CompileState` (the record passes read/write),
    :class:`CompileOptions` (compile knobs), :class:`PassRecord`
    (per-pass wall time / cache / sizes), :class:`PipelineError`.
``passes``
    The :class:`Pass` protocol, the registry
    (:func:`register_pass` / :func:`get_pass` / :func:`available_passes`),
    and the eleven standard passes: ``ingest``, ``rebalance``,
    ``simplify``, ``techmap``, ``balance``, ``levelize``, ``partition``,
    ``merge``, ``schedule``, ``codegen``, ``metrics``.
``pipelines``
    Named pipelines (``paper``, ``no-merge``, ``metrics-only``),
    custom-list parsing (:func:`resolve_pipeline`), cache-identity
    rendering (:func:`pipeline_id`), and the kwargs-to-pipeline
    translation the facades use (:func:`pipeline_from_options`).
``manager``
    :class:`PassManager` (timed, cache-aware pipeline execution) and
    :func:`compile_with_pipeline` (one call to a ``CompileResult``).
``cache``
    :class:`PassCache`: LRU memoization of per-pass snapshots keyed by
    rolling content fingerprints, so compiles sharing a pipeline prefix
    re-use every pass up to the first divergence.  Also the canonical
    :func:`graph_fingerprint`.
``codegen_parallel``
    :func:`generate_program_parallel`: the three-phase (plan / parallel
    emit / deterministic merge) instruction generator, bit-identical to
    :func:`repro.core.codegen.generate_program` and >= 2x faster.
``report``
    Text/JSON rendering of pass records for ``repro passes`` and the
    pass-timing bench.
"""

from .cache import PassCache, PassCacheStats, graph_fingerprint
from .codegen_parallel import generate_program_parallel
from .manager import PassManager, compile_with_pipeline
from .passes import Pass, available_passes, get_pass, register_pass
from .pipelines import (
    PIPELINES,
    pipeline_from_options,
    pipeline_id,
    resolve_pipeline,
)
from .report import format_pass_report, records_as_dicts
from .state import CompileOptions, CompileState, PassRecord, PipelineError

__all__ = [
    "PIPELINES",
    "CompileOptions",
    "CompileState",
    "Pass",
    "PassCache",
    "PassCacheStats",
    "PassManager",
    "PassRecord",
    "PipelineError",
    "available_passes",
    "compile_with_pipeline",
    "format_pass_report",
    "generate_program_parallel",
    "get_pass",
    "graph_fingerprint",
    "pipeline_from_options",
    "pipeline_id",
    "records_as_dicts",
    "register_pass",
    "resolve_pipeline",
]
