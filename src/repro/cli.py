"""Command-line interface: compile, simulate, benchmark, and report.

Usage (after ``pip install -e .``)::

    python -m repro.cli compile block.v --lpvs 16 --lpes 32 [--json]
    python -m repro.cli compile block.v --pipeline no-merge --explain-passes
    python -m repro.cli compile block.v -o block.lpa [--probe-words 4]
    python -m repro.cli compile s1.v s2.v s3.v --bundle -o model.lpa
    python -m repro.cli inspect block.lpa [--json] [--verify]
    python -m repro.cli inspect model.lpa --verify  (chain replay)
    python -m repro.cli serve block.v --workers 4 --port 8080
    python -m repro.cli serve --artifact block.lpa --store-url http://a:8080/v1/store
    python -m repro.cli load-bench block.v --requests 512 --clients 8
    python -m repro.cli load-bench --url http://127.0.0.1:8080 block.v
    python -m repro.cli simulate block.v --seed 7 --engine trace
    python -m repro.cli simulate --artifact block.lpa --engine trace
    python -m repro.cli throughput block.v --array-size 256 --batches 16
    python -m repro.cli throughput block.v --engine native --native-threads 8
    python -m repro.cli throughput --artifact model.lpa --json
    python -m repro.cli calibrate block.v --max-words 256 [--json]
    python -m repro.cli serve-bench block.v --requests 256 --workers 2
    python -m repro.cli serve-bench --artifact block.lpa --backend spawn
    python -m repro.cli stream-bench block.v --steps 512 --flip-bits 1
    python -m repro.cli stream-bench --artifact block.lpa --random
    python -m repro.cli report block.v --no-merge --policy sequential [--json]
    python -m repro.cli passes block.v [--json] / passes --list
    python -m repro.cli store list /var/cache/repro-store [--json]
    python -m repro.cli store prune /var/cache/repro-store --max-bytes 256M

``compile`` prints the compilation metrics (MFG counts, schedule length,
FPS); ``--pipeline`` selects a named compile pipeline (``paper``,
``no-merge``, ``metrics-only``) or a custom comma-separated pass list, and
``--explain-passes`` appends the per-pass wall-time/size report.
``-o/--output`` additionally writes the compiled executable as an
ahead-of-time ``.lpa`` artifact (:mod:`repro.artifact`) with embedded
probe vectors (``--probe-words``, default 2); ``inspect``
prints an artifact's metadata (``--verify`` replays the embedded probes
through a fresh engine, falling back to a functional cross-check when
none are packaged), and ``simulate``/``serve-bench`` accept
``--artifact`` in place of a netlist to run a previously compiled
executable with zero compilation.
``compile --bundle`` compiles several netlists as the stages of one
format-v2 multi-program bundle (stage PIs wired from the previous
stage's same-named POs); ``serve --artifact``/``serve-bench``/
``throughput`` execute a bundle as a software pipeline — one engine per
stage, bounded inter-stage queues (``--pipeline-depth``) — and
``inspect --verify`` replays its embedded probes through the whole
chain.
``serve`` boots a network-addressable fabric node
(:mod:`repro.serve.fabric`): an asyncio HTTP front-end with admission
control over the batched serving stack, plus a ``/v1/store`` artifact
endpoint so further nodes warm-boot from it with zero compile passes
(``--store-url`` points a cold node at a warm one).  ``load-bench``
drives such a node with concurrent closed- or open-loop clients and
reports saturation req/s, p50/p99 latency, and the speedup over
single-process in-process serving, verifying bit-identical results.
``passes`` prints that per-pass report on its own (``--list`` enumerates
the registered passes and named pipelines without compiling anything).
``simulate`` additionally executes the program on the selected
execution engine (``--engine cycle`` for the cycle-accurate hardware
model, ``--engine trace`` for the vectorized path, ``--engine fused``
for the register-renamed generated-kernel serving default, ``--engine
native`` for the multi-core/optional-numba/optional-CuPy backends over
the packed fused tables) with random stimulus and cross-checks it
against functional evaluation.  The engine-bearing commands accept the
native/fused tuning flags (``--native-backend``, ``--native-threads``,
``--native-min-shard-words``, ``--rowwise-min-words``); ``calibrate``
measures the vector/rowwise kernel crossover on this host and prints
the ``--rowwise-min-words`` value to apply, and ``inspect --profile``
runs the kernel-level sampling profiler over an artifact and reports
the slowest levels.
``throughput`` measures wall-clock inference throughput of the engines
over repeated batched runs through the :class:`~repro.engine.Session`
API; with ``--json`` it also reports the process-wide lowering/fusion
cache counters and per-level execution timing for engine diagnosability.
``store`` lists and prunes the on-disk artifact store (LRU by mtime,
down to ``--max-bytes``).  ``serve-bench`` measures
the batched serving layer (:mod:`repro.serve`) against naive per-request
execution under concurrent clients, verifying bit-identical outputs.
``stream-bench`` measures the incremental ``delta`` engine on a
low-entropy input stream (``--flip-bits`` per step, or ``--random`` for
the independent-samples worst case) against dense per-step re-execution,
verifying bit-identical outputs and statistics; ``compile
--embed-fanout`` additionally packages the delta engine's fanout/cone
tables in the ``.lpa`` artifact so streaming deployments boot with zero
cone analysis.  ``report`` prints the per-stage breakdown.  ``--json`` on
``compile``/``report``/``throughput``/``serve-bench``/``stream-bench``
emits machine-readable output for benchmark harnesses.
"""

from __future__ import annotations

import argparse
import json
import sys
import time
from typing import Optional, Sequence

import numpy as np

from . import __version__
from .artifact import (
    ArtifactBundle,
    ArtifactStore,
    ExecutableArtifact,
    bundle_model,
    load_artifact,
    peek_header,
)
from .core.liveness import fusion_cache_stats
from .core.trace import lowering_cache_stats
from .compiler import (
    PIPELINES,
    available_passes,
    format_pass_report,
    records_as_dicts,
)
from .core import LPUConfig, compile_ffcl
from .core.partition import partition_summary
from .core.schedule import schedule_summary
from .engine import SAMPLES_PER_WORD, Session, available_engines
from .engine.native import FALLBACK_CHAIN as NATIVE_BACKENDS
from .lpu import cross_check, random_stimulus
from .netlist import parse_bench, parse_verilog
from .serve import ServeConfig, run_serve_bench, run_stream_bench
from .serve.pool import BACKENDS, PLACEMENTS


def _positive_int(text: str) -> int:
    value = int(text)
    if value < 1:
        raise argparse.ArgumentTypeError(f"must be >= 1, got {value}")
    return value


def _load_graph(path: str):
    with open(path, "r", encoding="utf-8") as handle:
        text = handle.read()
    if path.endswith(".bench"):
        return parse_bench(text)
    return parse_verilog(text)


def _add_common(
    parser: argparse.ArgumentParser,
    netlist_optional: bool = False,
    netlist_multi: bool = False,
) -> None:
    if netlist_multi:
        parser.add_argument(
            "netlist", nargs="+",
            help="structural Verilog (.v) or .bench file(s); several "
            "files require --bundle and become the stages of a "
            "multi-program bundle, in order",
        )
    elif netlist_optional:
        parser.add_argument(
            "netlist", nargs="?", default=None,
            help="structural Verilog (.v) or .bench file",
        )
    else:
        parser.add_argument(
            "netlist", help="structural Verilog (.v) or .bench file"
        )
    parser.set_defaults(artifact=None)
    parser.add_argument("--lpvs", type=int, default=16, help="LPV count (n)")
    parser.add_argument("--lpes", type=int, default=32, help="LPEs per LPV (m)")
    parser.add_argument(
        "--switch-stages", type=int, default=5, help="switch network stages"
    )
    parser.add_argument(
        "--frequency-mhz", type=float, default=333.0, help="clock frequency"
    )
    parser.add_argument(
        "--no-merge", action="store_true", help="disable MFG merging (Alg. 3)"
    )
    parser.add_argument(
        "--policy",
        choices=("pipelined", "sequential"),
        default="pipelined",
        help="MFG scheduling policy",
    )
    parser.add_argument(
        "--pipeline",
        default=None,
        metavar="SPEC",
        help="compile pipeline: a named pipeline "
        f"({', '.join(sorted(PIPELINES))}) or a comma-separated pass list; "
        "overrides --no-merge",
    )


def _add_engine(parser: argparse.ArgumentParser, default: str = "cycle") -> None:
    parser.add_argument(
        "--engine",
        choices=available_engines(),
        default=default,
        help="execution engine",
    )


def _add_engine_options(parser: argparse.ArgumentParser) -> None:
    """Per-engine tuning flags (native/fused kernel knobs)."""
    parser.add_argument(
        "--native-backend",
        choices=("auto",) + NATIVE_BACKENDS,
        default=None,
        help="native engine kernel backend (default auto: first "
        "available of cupy, numba, threaded, fused)",
    )
    parser.add_argument(
        "--native-threads", type=_positive_int, default=None,
        help="threaded native backend: worker threads "
        "(default: os.cpu_count())",
    )
    parser.add_argument(
        "--native-min-shard-words", type=_positive_int, default=None,
        help="threaded native backend: smallest per-thread word shard "
        "before falling back to single-threaded execution",
    )
    parser.add_argument(
        "--rowwise-min-words", type=_positive_int, default=None,
        help="fused/native engines: batch word count at which the "
        "rowwise kernel takes over from the vector kernel "
        "(measure with 'repro calibrate')",
    )


def _engine_options(
    args: argparse.Namespace, engine: str, *, strict: bool = True
) -> Optional[dict]:
    """Collect the ``--native-*``/``--rowwise-min-words`` flags into the
    engine-constructor options dict for ``engine``.

    Returns ``None`` when no applicable flag is set.  With ``strict``
    (the default), flags the selected engine does not understand exit
    with an error instead of being silently dropped; ``strict=False``
    (the ``throughput --engine all`` sweep) applies each flag only to
    the engines that accept it.
    """
    native = {}
    if getattr(args, "native_backend", None) is not None:
        native["backend"] = args.native_backend
    if getattr(args, "native_threads", None) is not None:
        native["threads"] = args.native_threads
    if getattr(args, "native_min_shard_words", None) is not None:
        native["min_shard_words"] = args.native_min_shard_words
    rowwise = getattr(args, "rowwise_min_words", None)
    options: dict = {}
    if engine == "native":
        options.update(native)
        if rowwise is not None:
            options["rowwise_min_words"] = rowwise
    elif engine == "fused":
        if native and strict:
            raise SystemExit(
                "error: --native-* options require --engine native"
            )
        if rowwise is not None:
            options["rowwise_min_words"] = rowwise
    elif native or rowwise is not None:
        if strict:
            raise SystemExit(
                "error: engine tuning options apply to the native/fused "
                f"engines, not {engine!r}"
            )
    return options or None


def _config(args: argparse.Namespace) -> LPUConfig:
    return LPUConfig(
        num_lpvs=args.lpvs,
        lpes_per_lpv=args.lpes,
        switch_stages=args.switch_stages,
        frequency_hz=args.frequency_mhz * 1e6,
    )


def _compile(args: argparse.Namespace):
    graph = _load_graph(args.netlist)
    return compile_ffcl(
        graph,
        _config(args),
        merge=not args.no_merge,
        policy=args.policy,
        pipeline=getattr(args, "pipeline", None),
    )


def _add_artifact_source(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--artifact",
        metavar="FILE",
        default=None,
        help="run a previously compiled .lpa executable artifact instead "
        "of compiling a netlist (netlist and compile flags are ignored)",
    )


def _resolve_program(args: argparse.Namespace):
    """(program, compile result or None, artifact or None) of one command.

    With ``--artifact`` the executable is loaded as-is — no compilation,
    and (for artifacts embedding trace tables) no lowering.  Otherwise
    the netlist is compiled exactly as before.
    """
    if args.artifact is not None:
        artifact = load_artifact(args.artifact)
        if isinstance(artifact, ArtifactBundle):
            raise SystemExit(
                f"error: {args.artifact} is a multi-program bundle; "
                "this command needs a single-program artifact (serve, "
                "serve-bench, throughput, and inspect accept bundles)"
            )
        return artifact.program, None, artifact
    if args.netlist is None:
        raise SystemExit(
            "error: either a netlist or --artifact FILE is required"
        )
    result = _compile(args)
    return result.program, result, None


def _compile_bundle(args: argparse.Namespace) -> int:
    """``compile --bundle``: every netlist compiles as one stage (through
    one shared pass cache) and the stages package into a format-v2
    multi-program ``.lpa`` with an identity-by-name dataflow manifest."""
    import os

    graphs = [_load_graph(path) for path in args.netlist]
    probe_words = args.probe_words if args.probe_words is not None else 2
    name = (
        os.path.splitext(os.path.basename(args.output))[0]
        if args.output
        else "model"
    )
    bundle = bundle_model(
        graphs,
        _config(args),
        name=name,
        probe_words=probe_words,
        fanout=args.embed_fanout,
        merge=not args.no_merge,
        policy=args.policy,
        pipeline=getattr(args, "pipeline", None),
    )
    info = {
        "name": bundle.name,
        "stages": [link.name for link in bundle.links],
        "external_inputs": list(bundle.external_inputs),
        "outputs": list(bundle.outputs),
        "bytes": len(bundle.to_bytes()),
        "fingerprint": bundle.fingerprint,
        "probe_words": probe_words,
    }
    if args.output:
        info["path"] = bundle.save(args.output)
    if args.json:
        print(json.dumps({"bundle": info}, indent=2, sort_keys=True))
        return 0
    print(
        f"bundle:    {bundle.name}: {bundle.num_stages} stages "
        f"({' -> '.join(info['stages'])})"
    )
    print(
        f"interface: {len(info['external_inputs'])} external PIs -> "
        f"{len(info['outputs'])} POs"
    )
    if args.output:
        print(
            f"wrote {info['path']} ({info['bytes']} bytes, "
            f"fingerprint {info['fingerprint'][:16]}...)"
        )
    return 0


def cmd_compile(args: argparse.Namespace) -> int:
    if args.bundle or len(args.netlist) > 1:
        if not args.bundle:
            raise SystemExit(
                "error: multiple netlists require --bundle (they become "
                "the stages of one multi-program artifact)"
            )
        return _compile_bundle(args)
    args.netlist = args.netlist[0]
    result = _compile(args)
    artifact_info = None
    if args.output:
        if not _require_program(result, args):
            return 2
        probe_words = (
            args.probe_words if args.probe_words is not None else 2
        )
        artifact = result.to_artifact(
            fanout=args.embed_fanout, probe_words=probe_words
        )
        path = artifact.save(args.output)
        artifact_info = {
            "path": path,
            "bytes": len(artifact.to_bytes()),
            "fingerprint": artifact.fingerprint,
            "workload_fingerprint": artifact.workload_fingerprint,
            "probe_words": probe_words,
        }
    if args.json:
        data = dict(result.metrics.as_dict())
        if args.explain_passes:
            data["passes"] = records_as_dicts(result.pass_records)
        if artifact_info is not None:
            data["artifact"] = artifact_info
        print(json.dumps(data, indent=2, sort_keys=True))
        return 0
    print(result.metrics)
    for key, value in result.metrics.as_dict().items():
        print(f"  {key}: {value}")
    if args.explain_passes:
        print()
        print(format_pass_report(result.pass_records))
    if artifact_info is not None:
        print(
            f"wrote {artifact_info['path']} ({artifact_info['bytes']} "
            f"bytes, fingerprint {artifact_info['fingerprint'][:16]}...)"
        )
    return 0


def _verify_artifact(artifact, args: argparse.Namespace):
    """``inspect --verify``: probe replay, or functional cross-check
    when the artifact packages no probes.  Returns a JSON-able report
    with a ``"passed"`` verdict."""
    if artifact.probes is not None:
        report = artifact.verify_probes()
        report["method"] = "probe-replay"
        return report
    ok, _outputs, _ref = cross_check(artifact.program, seed=0)
    return {
        "method": "functional-cross-check",
        "passed": bool(ok),
        "engine": "cycle",
        "note": "artifact embeds no probe vectors; recompile with "
        "--probe-words to package replayable known-answer tests",
    }


def _profile_artifact(artifact, args: argparse.Namespace) -> dict:
    """``inspect --profile``: per-level kernel wall time on random
    stimulus through the sampling profiler of the selected engine."""
    session = artifact.session(engine=args.profile_engine)
    stimulus = random_stimulus(
        artifact.program.graph, array_size=args.profile_words, seed=0
    )
    session.run(stimulus)  # warm-up: generate/compile the kernels once
    records = session.engine.profile_levels(stimulus)
    return {
        "engine": args.profile_engine,
        "words": args.profile_words,
        "total_seconds": sum(r["seconds"] for r in records),
        "levels": records,
    }


def _inspect_unloadable(args: argparse.Namespace, error) -> int:
    """``inspect`` on a container no reader accepts: still print the
    header (magic-checked, nothing else), then the precise error."""
    try:
        with open(args.artifact, "rb") as handle:
            header = peek_header(handle.read())
    except Exception:
        print(f"error: {error}", file=sys.stderr)
        return 1
    if args.json:
        print(
            json.dumps(
                {"header": header, "error": str(error)},
                indent=2,
                sort_keys=True,
                default=str,
            )
        )
        return 1
    print(f"artifact:  {args.artifact}")
    print(
        f"format:    v{header.get('format_version')} "
        f"(by {header.get('producer') or 'unknown producer'})"
    )
    if header.get("fingerprint"):
        print(f"content:   {header['fingerprint']}")
    print(f"error: {error}", file=sys.stderr)
    return 1


def _inspect_bundle(bundle, args: argparse.Namespace) -> int:
    """``inspect`` on a format-v2 multi-program bundle: the stage
    manifest, and with ``--verify`` an end-to-end chain replay of the
    embedded probes."""
    summary = bundle.summary()
    verification = None
    if args.verify:
        if bundle.probes is not None:
            verification = bundle.verify_probes()
            verification["method"] = "chain-probe-replay"
        else:
            verification = {
                "method": "none",
                "passed": False,
                "note": "bundle embeds no probe vectors; repackage with "
                "--probe-words to enable end-to-end verification",
            }
    if args.json:
        if verification is not None:
            summary = dict(summary)
            summary["verification"] = verification
        print(json.dumps(summary, indent=2, sort_keys=True))
        return 0 if verification is None or verification["passed"] else 1
    print(f"artifact:  {args.artifact}")
    print(
        f"format:    v{summary['format_version']} bundle "
        f"(by {summary['producer']})"
    )
    print(f"content:   {summary['fingerprint']}")
    print(
        f"model:     {summary['name']}: {len(summary['stages'])} stages, "
        f"{len(summary['external_inputs'])} external PIs -> "
        f"{len(summary['outputs'])} POs"
    )
    for i, stage in enumerate(summary["stages"]):
        graph = stage["graph"]
        print(
            f"stage {i}:   {stage['name']}: {graph['inputs']} PIs, "
            f"{graph['outputs']} POs, {graph['gates']} gates "
            f"({stage['program']['compute_instructions']} instructions)"
        )
        if stage["wired"]:
            wires = ", ".join(
                f"{pi}<-{po}" for pi, po in sorted(stage["wired"].items())
            )
            print(f"           wired: {wires}")
        if stage["external"] and i > 0:
            print(f"           external: {', '.join(stage['external'])}")
    probes = summary["probes"]
    if probes is None:
        print("probes:    not embedded (inspect --verify unavailable)")
    else:
        print(
            f"probes:    {probes['words']} words ({probes['samples']} "
            f"samples, seed {probes['seed']}) against the composed "
            f"reference"
        )
    if verification is not None:
        verdict = "PASSED" if verification["passed"] else "FAILED"
        if verification["method"] == "chain-probe-replay":
            print(
                f"verify:    {verdict} — replayed "
                f"{verification['probe_samples']} probe samples through "
                f"the {verification['stages']}-stage chain "
                f"({verification['engine']} engine, "
                f"{verification['outputs_checked']} outputs checked)"
            )
            if verification["mismatches"]:
                print(
                    "           mismatched outputs: "
                    + ", ".join(verification["mismatches"])
                )
        else:
            print(f"verify:    {verdict} — {verification['note']}")
        return 0 if verification["passed"] else 1
    return 0


def cmd_inspect(args: argparse.Namespace) -> int:
    from .artifact import ArtifactError

    try:
        artifact = load_artifact(args.artifact)
    except ArtifactError as exc:
        return _inspect_unloadable(args, exc)
    if isinstance(artifact, ArtifactBundle):
        return _inspect_bundle(artifact, args)
    summary = artifact.summary()
    verification = _verify_artifact(artifact, args) if args.verify else None
    profile = _profile_artifact(artifact, args) if args.profile else None
    if args.json:
        if verification is not None or profile is not None:
            summary = dict(summary)
        if verification is not None:
            summary["verification"] = verification
        if profile is not None:
            summary["level_profile"] = profile
        print(json.dumps(summary, indent=2, sort_keys=True))
        return (
            0 if verification is None or verification["passed"] else 1
        )
    graph = summary["graph"]
    schedule = summary["schedule"]
    program = summary["program"]
    print(f"artifact:  {args.artifact}")
    print(
        f"format:    v{summary['format_version']} "
        f"(by {summary['producer']})"
    )
    print(f"content:   {summary['fingerprint']}")
    print(f"workload:  {summary['workload_fingerprint']}")
    print(f"pipeline:  {summary['pipeline'] or '(unrecorded)'}")
    print(
        f"graph:     {graph['name']}: {graph['inputs']} PIs, "
        f"{graph['outputs']} POs, {graph['gates']} gates"
    )
    print(f"config:    {summary['config']}")
    print(
        f"schedule:  {schedule['makespan_macro_cycles']} macro-cycles "
        f"({schedule['total_clock_cycles']} clocks), queue depth "
        f"{schedule['queue_depth']}, {schedule['circulations']} "
        f"circulations, policy {schedule['policy']}"
    )
    print(
        f"program:   {program['compute_instructions']} compute "
        f"instructions in {program['queue_entries']} queue entries; "
        f"peak buffer {program['peak_buffer_words']} words"
    )
    trace = summary["trace"]
    if trace is None:
        print("trace:     not embedded (lowered on first trace-engine use)")
    else:
        print(
            f"trace:     {trace['levels']} levels, {trace['slots']} value "
            f"slots (embedded; trace engine boots with zero lowering)"
        )
    fused = summary["fused"]
    if fused is None:
        print("fused:     not embedded (renamed on first fused-engine use)")
    else:
        print(
            f"fused:     {fused['levels']} levels, {fused['registers']} "
            f"registers (embedded; fused engine boots with zero renaming)"
        )
    fanout = summary.get("fanout")
    if fanout is None:
        print(
            "fanout:    not embedded (delta engine derives the cone "
            "tables on first use)"
        )
    else:
        print(
            f"fanout:    {fanout['rows']} rows, "
            f"{fanout['consumer_edges']} consumer edges (embedded; delta "
            f"engine boots with zero cone analysis)"
        )
    probes = summary.get("probes")
    if probes is None:
        print("probes:    not embedded (inspect --verify falls back to "
              "a functional cross-check)")
    else:
        print(
            f"probes:    {probes['words']} words ({probes['samples']} "
            f"samples, seed {probes['seed']}) of known-answer vectors"
        )
    if profile is not None:
        slowest = sorted(
            profile["levels"], key=lambda r: r["seconds"], reverse=True
        )[:5]
        print(
            f"profile:   {len(profile['levels'])} levels in "
            f"{profile['total_seconds'] * 1e3:.3f} ms "
            f"({profile['engine']} engine, {profile['words']} words); "
            f"slowest:"
        )
        for record in slowest:
            print(
                f"           level {record['level']:>4} "
                f"({record['kernel']}): "
                f"{record['seconds'] * 1e6:>9.1f} us, "
                f"{record['instructions']} instructions"
            )
    if verification is not None:
        verdict = "PASSED" if verification["passed"] else "FAILED"
        if verification["method"] == "probe-replay":
            print(
                f"verify:    {verdict} — replayed "
                f"{verification['probe_samples']} probe samples through "
                f"the {verification['engine']} engine "
                f"({verification['outputs_checked']} outputs checked)"
            )
            if verification["mismatches"]:
                print(
                    "           mismatched outputs: "
                    + ", ".join(verification["mismatches"])
                )
        else:
            print(
                f"verify:    {verdict} — {verification['method']} "
                f"({verification['note']})"
            )
        return 0 if verification["passed"] else 1
    return 0


def cmd_passes(args: argparse.Namespace) -> int:
    if args.list:
        if args.json:
            print(
                json.dumps(
                    {
                        "passes": available_passes(),
                        "pipelines": {
                            name: list(pass_names)
                            for name, pass_names in PIPELINES.items()
                        },
                    },
                    indent=2,
                    sort_keys=True,
                )
            )
            return 0
        print("passes:")
        for name in available_passes():
            print(f"  {name}")
        print("pipelines:")
        for name, pass_names in sorted(PIPELINES.items()):
            print(f"  {name}: {','.join(pass_names)}")
        return 0
    if args.netlist is None:
        print("error: a netlist is required unless --list is given",
              file=sys.stderr)
        return 2
    result = _compile(args)
    if args.json:
        print(
            json.dumps(
                {
                    "netlist": args.netlist,
                    "metrics": result.metrics.as_dict(),
                    "passes": records_as_dicts(result.pass_records),
                },
                indent=2,
                sort_keys=True,
            )
        )
        return 0
    print(result.metrics)
    print()
    print(format_pass_report(result.pass_records))
    return 0


def _require_program(result, args: argparse.Namespace) -> bool:
    """False (with a clear error) when the pipeline emitted no program."""
    if result.program is not None:
        return True
    print(
        f"error: pipeline {args.pipeline!r} generates no program (no "
        f"'codegen' pass); this command needs an executable program",
        file=sys.stderr,
    )
    return False


def cmd_simulate(args: argparse.Namespace) -> int:
    program, result, artifact = _resolve_program(args)
    if result is not None and not _require_program(result, args):
        return 2
    ok, outputs, _ref = cross_check(
        program, seed=args.seed, engine=args.engine,
        engine_options=_engine_options(args, args.engine),
    )
    if result is not None:
        print(result.metrics)
    else:
        print(
            f"artifact: {args.artifact} "
            f"(fingerprint {artifact.fingerprint[:16]}...)"
        )
    print(f"engine: {args.engine}")
    print(f"{args.engine} == functional: {ok}")
    for name in sorted(outputs):
        print(f"  {name}: {int(outputs[name][0]):#018x}")
    return 0 if ok else 1


def _throughput_bundle(bundle, args: argparse.Namespace) -> int:
    """``throughput --artifact model.lpa`` on a bundle: whole-model
    serial per-stage runs vs the pipelined executor, with per-stage
    occupancy/queue-depth counters in the ``--json`` report."""
    from .pipeline import PipelineExecutor, SerialChainRunner

    if args.engine == "all":
        raise SystemExit(
            "error: --engine all is not supported with a bundle "
            "artifact; pick one engine"
        )
    options = _engine_options(args, args.engine)
    graph = bundle.reference_graph()
    stimuli = [
        random_stimulus(graph, array_size=args.array_size, seed=args.seed + b)
        for b in range(args.batches)
    ]
    runner = SerialChainRunner(
        bundle, engine=args.engine, engine_options=options
    )
    runner.run(stimuli[0])  # warm-up
    start = time.perf_counter()
    serial_results = [runner.run(stim) for stim in stimuli]
    serial_seconds = time.perf_counter() - start
    executor = PipelineExecutor(
        bundle, engine=args.engine, engine_options=options,
        depth=args.pipeline_depth,
    )
    try:
        executor.run(stimuli[0])  # warm-up
        executor.reset_stats()
        start = time.perf_counter()
        piped_results = executor.map(stimuli)
        piped_seconds = time.perf_counter() - start
        pipeline_stats = executor.stats()
    finally:
        executor.close()
    bit_identical = all(
        serial.macro_cycles == piped.macro_cycles
        and all(
            np.array_equal(serial.outputs[name], piped.outputs[name])
            for name in serial.outputs
        )
        for serial, piped in zip(serial_results, piped_results)
    )
    report = {
        "artifact": args.artifact,
        "graph": graph.name,
        "stages": bundle.num_stages,
        "engine": args.engine,
        "array_size": args.array_size,
        "batches": args.batches,
        "samples_per_run": SAMPLES_PER_WORD * args.array_size,
        "macro_cycles_per_run": sum(
            member.program.schedule.makespan for member in bundle.members
        ),
        "serial": {
            "seconds": serial_seconds,
            "runs_per_second": (
                args.batches / serial_seconds if serial_seconds > 0 else None
            ),
        },
        "pipelined": {
            "seconds": piped_seconds,
            "runs_per_second": (
                args.batches / piped_seconds if piped_seconds > 0 else None
            ),
        },
        "speedup": (
            serial_seconds / piped_seconds if piped_seconds > 0 else None
        ),
        "bit_identical": bit_identical,
        "pipeline": pipeline_stats,
    }
    if args.json:
        print(json.dumps(report, indent=2, sort_keys=True))
        return 0 if bit_identical else 1
    print(
        f"throughput: {bundle.name} ({bundle.num_stages} stages, "
        f"{args.engine} engine) over {args.batches} batches x "
        f"{report['samples_per_run']} samples"
    )
    print(
        f"  serial   : {report['serial']['runs_per_second']:>10,.1f} runs/s "
        f"({serial_seconds:.3f}s wall)"
    )
    print(
        f"  pipelined: {report['pipelined']['runs_per_second']:>10,.1f} "
        f"runs/s ({piped_seconds:.3f}s wall)"
    )
    print(
        f"  speedup {report['speedup']:.2f}x, bit-identical: "
        f"{bit_identical}"
    )
    for stage in pipeline_stats["stages"]:
        print(
            f"  stage {stage['stage']}: busy "
            f"{stage['busy_fraction'] * 100:.0f}%, queue depth "
            f"p50 {stage['queue_depth_p50']:.0f} / "
            f"p99 {stage['queue_depth_p99']:.0f}"
        )
    return 0 if bit_identical else 1


def cmd_throughput(args: argparse.Namespace) -> int:
    result = None
    if args.artifact is not None:
        loaded = load_artifact(args.artifact)
        if isinstance(loaded, ArtifactBundle):
            return _throughput_bundle(loaded, args)
        program = loaded.program
    else:
        if args.netlist is None:
            raise SystemExit(
                "error: either a netlist or --artifact FILE is required"
            )
        result = _compile(args)
        if not _require_program(result, args):
            return 2
        program = result.program
    graph = program.graph
    engines = (
        available_engines() if args.engine == "all" else [args.engine]
    )
    stimuli = [
        random_stimulus(graph, array_size=args.array_size, seed=args.seed + b)
        for b in range(args.batches)
    ]
    word_bits = program.config.word_bits
    report = {
        "netlist": args.netlist,
        "artifact": args.artifact,
        "graph": graph.name,
        "array_size": args.array_size,
        "batches": args.batches,
        "samples_per_run": SAMPLES_PER_WORD * args.array_size,
        "engines": {},
    }
    for engine in engines:
        options = _engine_options(
            args, engine, strict=(args.engine != "all")
        )
        session = Session(
            program, engine=engine, engine_options=options
        )
        session.run(stimuli[0])  # warm-up: amortized lowering/caches
        start = time.perf_counter()
        for stim in stimuli:
            session.run(stim)
        elapsed = time.perf_counter() - start
        samples = SAMPLES_PER_WORD * args.array_size * args.batches
        report["engines"][engine] = {
            "seconds": elapsed,
            "samples_per_second": samples / elapsed if elapsed > 0 else None,
            "runs_per_second": args.batches / elapsed if elapsed > 0 else None,
            "macro_cycles_per_run": program.schedule.makespan,
            "modeled_fps": program.config.fps(program.schedule.makespan),
        }
        if options:
            report["engines"][engine]["engine_options"] = options
        if hasattr(session.engine, "backend_stats"):
            report["engines"][engine]["native"] = (
                session.engine.backend_stats()
            )
        if args.json and hasattr(session.engine, "profile_levels"):
            # Per-level wall time: the diagnostic trail CI archives so an
            # engine regression points at the level that slowed down.
            records = session.engine.profile_levels(stimuli[0])
            report["engines"][engine]["level_timing"] = {
                "total_seconds": sum(r["seconds"] for r in records),
                "levels": records,
            }
    report["modeled_word_bits"] = word_bits
    report["lowering_cache"] = lowering_cache_stats()
    report["fusion_cache"] = fusion_cache_stats()
    if args.json:
        print(json.dumps(report, indent=2, sort_keys=True))
        return 0
    if result is not None:
        print(result.metrics)
    else:
        print(f"artifact: {args.artifact}")
    print(
        f"throughput over {args.batches} batches x "
        f"{SAMPLES_PER_WORD * args.array_size} samples:"
    )
    for engine, stats in report["engines"].items():
        print(
            f"  {engine:>6}: {stats['samples_per_second']:>16,.0f} samples/s "
            f"({stats['seconds']:.3f}s wall)"
        )
    return 0


def cmd_calibrate(args: argparse.Namespace) -> int:
    program, result, artifact = _resolve_program(args)
    if result is not None and not _require_program(result, args):
        return 2
    session = Session(
        artifact if artifact is not None else program,
        engine=args.engine,
        engine_options=_engine_options(args, args.engine),
    )
    sizes = [1]
    while sizes[-1] < args.max_words:
        sizes.append(min(sizes[-1] * 2, args.max_words))
    report = session.engine.calibrate_crossover(
        word_sizes=sizes, repeats=args.repeats, seed=args.seed
    )
    report["netlist"] = args.netlist
    report["artifact"] = args.artifact
    report["engine"] = args.engine
    if args.json:
        print(json.dumps(report, indent=2, sort_keys=True))
        return 0
    print(
        f"calibrate: {report['graph']} ({args.engine} engine, "
        f"best of {args.repeats})"
    )
    print(f"  {'words':>8} {'vector':>12} {'rowwise':>12}  winner")
    for point in report["points"]:
        winner = (
            "rowwise"
            if point["rowwise_seconds"] <= point["vector_seconds"]
            else "vector"
        )
        print(
            f"  {point['words']:>8} "
            f"{point['vector_seconds'] * 1e6:>10.1f}us "
            f"{point['rowwise_seconds'] * 1e6:>10.1f}us  {winner}"
        )
    measured = report["measured_crossover_words"]
    if measured is None:
        print(
            "  rowwise never won up to "
            f"{args.max_words} words; keep the vector kernel "
            f"(--rowwise-min-words > {args.max_words})"
        )
    else:
        print(
            f"  measured crossover: {measured} words "
            f"(engine currently {report['engine_rowwise_min_words']}, "
            f"built-in default {report['default_rowwise_min_words']}); "
            f"pass --rowwise-min-words {measured} to apply"
        )
    return 0


def cmd_serve_bench(args: argparse.Namespace) -> int:
    result = None
    if args.artifact is not None:
        # load_artifact dispatches on format version: a v1 artifact
        # benches the replica pool, a v2 bundle the stage pipeline.
        source = load_artifact(args.artifact)
    else:
        if args.netlist is None:
            raise SystemExit(
                "error: either a netlist or --artifact FILE is required"
            )
        result = _compile(args)
        if not _require_program(result, args):
            return 2
        source = result.program
    serving = ServeConfig(
        engine=args.engine,
        engine_options=_engine_options(args, args.engine) or {},
        num_workers=args.workers,
        max_batch_size=args.max_batch,
        max_wait_ms=args.max_wait_ms,
        placement=args.placement,
        backend=args.backend,
        pipeline_depth=args.pipeline_depth,
    )
    report = run_serve_bench(
        source,
        serving=serving,
        requests=args.requests,
        array_size=args.array_size,
        clients=args.clients,
        seed=args.seed,
    )
    report["netlist"] = args.netlist
    report["artifact"] = args.artifact
    if args.json:
        print(json.dumps(report, indent=2, sort_keys=True))
        return 0 if report["bit_identical"] else 1
    if result is not None:
        print(result.metrics)
    else:
        print(f"artifact: {args.artifact}")
    print(
        f"serve-bench: {args.requests} requests x "
        f"{report['samples_per_request']} samples, {args.clients} clients, "
        f"{args.workers} workers ({args.backend}/{args.placement})"
    )
    print(
        f"  naive : {report['naive']['requests_per_second']:>12,.0f} req/s "
        f"({report['naive']['seconds']:.3f}s wall)"
    )
    print(
        f"  served: {report['served']['requests_per_second']:>12,.0f} req/s "
        f"({report['served']['seconds']:.3f}s wall)"
    )
    print(
        f"  speedup {report['speedup']:.2f}x, mean batch "
        f"{report['scheduler']['mean_batch']:.1f}, bit-identical: "
        f"{report['bit_identical']}"
    )
    if report.get("pipeline") is not None:
        for stage in report["pipeline"]["stages"]:
            print(
                f"  stage {stage['stage']}: busy "
                f"{stage['busy_fraction'] * 100:.0f}%, queue depth "
                f"p50 {stage['queue_depth_p50']:.0f} / "
                f"p99 {stage['queue_depth_p99']:.0f}"
            )
    return 0 if report["bit_identical"] else 1


def cmd_stream_bench(args: argparse.Namespace) -> int:
    program, result, artifact = _resolve_program(args)
    if result is not None and not _require_program(result, args):
        return 2
    report = run_stream_bench(
        artifact if artifact is not None else program,
        engine=args.engine,
        baseline_engine=args.baseline_engine,
        steps=args.steps,
        flip_bits=args.flip_bits,
        array_size=args.array_size,
        random_stream=args.random,
        seed=args.seed,
        num_workers=args.workers,
    )
    report["netlist"] = args.netlist
    report["artifact"] = args.artifact
    if args.json:
        print(json.dumps(report, indent=2, sort_keys=True))
        return 0 if report["bit_identical"] else 1
    if result is not None:
        print(result.metrics)
    else:
        print(f"artifact: {args.artifact}")
    entropy = (
        "independent random samples" if args.random
        else f"{args.flip_bits} bit flips/step"
    )
    print(
        f"stream-bench: {args.steps} steps x "
        f"{report['samples_per_step']} samples ({entropy})"
    )
    print(
        f"  {report['baseline_engine']:>6}: "
        f"{report['baseline']['steps_per_second']:>12,.0f} steps/s "
        f"({report['baseline']['seconds']:.3f}s wall)"
    )
    print(
        f"  {report['engine']:>6}: "
        f"{report['streaming']['steps_per_second']:>12,.0f} steps/s "
        f"({report['streaming']['seconds']:.3f}s wall)"
    )
    delta = report["delta"]
    if delta is not None:
        print(
            f"  runs: {delta['sparse_runs']} sparse, "
            f"{delta['clean_runs']} clean, "
            f"{delta['dense_fallback_runs']} dense-fallback, "
            f"{delta['full_runs']} full; "
            f"{delta['sparse_instructions']} instructions executed "
            f"sparsely (one dense run = {delta['num_instructions']})"
        )
    print(
        f"  speedup {report['speedup']:.2f}x, bit-identical: "
        f"{report['bit_identical']}"
    )
    return 0 if report["bit_identical"] else 1


def _serving_source(args: argparse.Namespace):
    """(source, config) for the fabric commands.

    Unlike :func:`_resolve_program` this does **not** compile a netlist
    here — the graph goes to the node's program cache, so a node wired
    to a warm store (``--store-url``) resolves the compiled artifact
    over the wire with zero local compile passes.
    """
    if args.artifact is not None:
        # The reader registry dispatches on format version: a v1
        # single-program artifact serves through the replica pool, a
        # v2 bundle serves the whole model through the stage pipeline.
        return load_artifact(args.artifact), None
    if args.netlist is None:
        raise SystemExit(
            "error: either a netlist or --artifact FILE is required"
        )
    return _load_graph(args.netlist), _config(args)


def _serve_config(args: argparse.Namespace) -> ServeConfig:
    store = None
    if getattr(args, "store", None) is not None:
        store = ArtifactStore(args.store)
    elif getattr(args, "store_url", None) is not None:
        from .artifact import HTTPStoreBackend

        store = HTTPStoreBackend(args.store_url)
    compile_options = {}
    if args.artifact is None:
        compile_options = {
            "merge": not args.no_merge,
            "policy": args.policy,
            "pipeline": getattr(args, "pipeline", None),
        }
    return ServeConfig(
        engine=args.engine,
        engine_options=_engine_options(args, args.engine) or {},
        num_workers=args.workers,
        max_batch_size=args.max_batch,
        max_wait_ms=args.max_wait_ms,
        default_deadline_ms=getattr(args, "deadline_ms", None),
        placement=args.placement,
        backend=args.backend,
        share_tables=args.share_tables,
        pipeline_depth=args.pipeline_depth,
        store=store,
        compile_options=compile_options,
    )


def cmd_serve(args: argparse.Namespace) -> int:
    from .serve.fabric import FabricConfig, FabricNode

    source, config = _serving_source(args)
    node = FabricNode(
        source,
        config,
        serving=_serve_config(args),
        fabric=FabricConfig(
            host=args.host,
            port=args.port,
            max_inflight=args.max_inflight,
            client_rate=args.client_rate,
            client_burst=args.client_burst,
            serve_store=not args.no_store,
            verify_artifacts=args.verify_artifacts,
        ),
    )
    import signal
    import threading

    node.start()
    # Graceful shutdown on SIGTERM/SIGINT: flip to not-ready (load
    # balancers stop routing), finish every in-flight request, then
    # exit 0.  A second signal interrupts the drain the hard way.
    shutdown = threading.Event()

    def _on_signal(signum, frame):  # noqa: ARG001 - signal signature
        shutdown.set()

    previous = {}
    for signum in (signal.SIGTERM, signal.SIGINT):
        try:
            previous[signum] = signal.signal(signum, _on_signal)
        except (ValueError, OSError):  # pragma: no cover - odd platforms
            pass
    try:
        cache = node.stats()["server"]["cache"]
        boot = (
            "warm boot (artifact from store, zero compile passes)"
            if cache["disk_hits"] > 0
            else "cold boot (compiled locally)"
        )
        print(f"fabric node ready at {node.url}")
        print(
            f"  graph {node.server.graph.name}, engine "
            f"{node.server.engine_name}, {args.workers} "
            f"{args.backend} worker(s); {boot}"
        )
        if not args.no_store:
            print(f"  artifact store served at {node.store_url}")
        print("  SIGTERM/Ctrl-C to drain and stop")
        shutdown.wait()
        print("draining (finishing in-flight requests)")
        node.drain()
        print("stopped")
        return 0
    except KeyboardInterrupt:  # second Ctrl-C mid-drain
        print("stopping")
        return 0
    finally:
        node.stop()
        for signum, handler in previous.items():
            try:
                signal.signal(signum, handler)
            except (ValueError, OSError):  # pragma: no cover
                pass


def cmd_load_bench(args: argparse.Namespace) -> int:
    from .serve.fabric import FabricConfig, run_load_bench

    source, config = _serving_source(args)
    report = run_load_bench(
        source,
        config,
        serving=_serve_config(args),
        fabric=FabricConfig(
            max_inflight=args.max_inflight,
            client_rate=args.client_rate,
            client_burst=args.client_burst,
        ),
        url=args.url,
        requests=args.requests,
        clients=args.clients,
        array_size=args.array_size,
        seed=args.seed,
        mode=args.mode,
        target_rps=args.target_rps,
        wire=args.wire,
        baseline=not args.no_baseline,
        verify=not args.no_verify,
    )
    report["netlist"] = args.netlist
    report["artifact"] = args.artifact
    ok = report["bit_identical"] is not False
    if args.json:
        print(json.dumps(report, indent=2, sort_keys=True))
        return 0 if ok else 1
    fab = report["fabric"]
    loop_desc = (
        f"open loop @ {args.target_rps:g} req/s"
        if args.mode == "open"
        else "closed loop"
    )
    print(
        f"load-bench: {args.requests} requests x "
        f"{report['samples_per_request']} samples, {args.clients} "
        f"client(s), {loop_desc}, {args.wire} wire"
    )
    print(
        f"  fabric : {fab['requests_per_second']:>12,.0f} req/s  "
        f"p50 {fab['latency_p50_ms']:.2f}ms  "
        f"p99 {fab['latency_p99_ms']:.2f}ms  "
        f"({fab['rejections']} rejections)"
    )
    baseline = report["baseline_single_process"]
    if baseline is not None:
        print(
            f"  single : {baseline['requests_per_second']:>12,.0f} req/s "
            f"(in-process, 1 worker)"
        )
        print(
            f"  speedup {report['speedup_vs_single_process']:.2f}x over "
            f"single-process serve on {report['cpu_count']} core(s), "
            f"bit-identical: {report['bit_identical']}"
        )
    else:
        print(f"  bit-identical: {report['bit_identical']}")
    return 0 if ok else 1


_SIZE_SUFFIXES = {"k": 1 << 10, "m": 1 << 20, "g": 1 << 30}


def _parse_size(text: str) -> int:
    """Bytes from a human size spec: plain int, or K/M/G suffixed."""
    raw = text.strip().lower().rstrip("b")
    factor = 1
    if raw and raw[-1] in _SIZE_SUFFIXES:
        factor = _SIZE_SUFFIXES[raw[-1]]
        raw = raw[:-1]
    try:
        value = int(float(raw) * factor)
    except (ValueError, OverflowError):
        raise argparse.ArgumentTypeError(
            f"not a size: {text!r} (use e.g. 1048576, 512K, 64M, 2G)"
        ) from None
    if value < 0:
        raise argparse.ArgumentTypeError("size must be >= 0")
    return value


def _format_size(size: float) -> str:
    for unit in ("B", "KiB", "MiB", "GiB"):
        if size < 1024 or unit == "GiB":
            return f"{size:.1f}{unit}" if unit != "B" else f"{int(size)}B"
        size /= 1024
    return f"{size:.1f}GiB"  # pragma: no cover - loop always returns


def cmd_store(args: argparse.Namespace) -> int:
    store = ArtifactStore(args.root)
    if args.store_command == "list":
        entries = store.entries()
        total = sum(entry.size for entry in entries)
        if args.json:
            print(
                json.dumps(
                    {
                        "root": args.root,
                        "entries": [e.as_dict() for e in entries],
                        "total_bytes": total,
                        "count": len(entries),
                    },
                    indent=2,
                    sort_keys=True,
                )
            )
            return 0
        print(f"store: {args.root} ({len(entries)} blobs, "
              f"{_format_size(total)})")
        for entry in entries:
            stamp = time.strftime(
                "%Y-%m-%d %H:%M:%S", time.localtime(entry.mtime)
            )
            print(
                f"  {stamp}  {_format_size(entry.size):>10}  "
                f"{entry.key[:24]}{entry.suffix}"
            )
        return 0
    # prune
    evicted = store.prune(max_bytes=args.max_bytes)
    remaining = store.total_bytes()
    if args.json:
        print(
            json.dumps(
                {
                    "root": args.root,
                    "max_bytes": args.max_bytes,
                    "evicted": [e.as_dict() for e in evicted],
                    "evicted_bytes": sum(e.size for e in evicted),
                    "remaining_bytes": remaining,
                },
                indent=2,
                sort_keys=True,
            )
        )
        return 0
    freed = sum(e.size for e in evicted)
    print(
        f"pruned {len(evicted)} blobs ({_format_size(freed)}); "
        f"{_format_size(remaining)} remain under "
        f"{_format_size(args.max_bytes)}"
    )
    return 0


def cmd_report(args: argparse.Namespace) -> int:
    result = _compile(args)
    if args.json:
        data = {
            "netlist": args.netlist,
            "preprocess": str(result.preprocess.report),
            "partition": partition_summary(result.partition),
            "schedule": schedule_summary(result.schedule),
            "metrics": result.metrics.as_dict(),
        }
        if result.program is not None:
            data["program"] = {
                "compute_instructions":
                    result.program.num_compute_instructions,
                "queue_entries": result.program.num_queue_entries,
                "peak_buffer_words": result.program.peak_buffer_words,
                "buffer_spills": result.program.buffer_spills,
            }
        print(json.dumps(data, indent=2, sort_keys=True))
        return 0
    print(f"netlist:   {result.source}")
    print(f"preproc:   {result.preprocess.report}")
    print("partition:")
    for key, value in partition_summary(result.partition).items():
        print(f"  {key}: {value}")
    print("schedule:")
    for key, value in schedule_summary(result.schedule).items():
        print(f"  {key}: {value}")
    if result.program is not None:
        print(
            f"program:   {result.program.num_compute_instructions} compute "
            f"instructions in {result.program.num_queue_entries} queue "
            f"entries; peak buffer {result.program.peak_buffer_words} words; "
            f"{result.program.buffer_spills} spills"
        )
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro", description="FFCL-to-LPU compiler (DAC 2023 reproduction)"
    )
    parser.add_argument(
        "--version",
        action="version",
        version=f"%(prog)s {__version__}",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    p_compile = sub.add_parser("compile", help="compile and print metrics")
    _add_common(p_compile, netlist_multi=True)
    p_compile.add_argument(
        "--bundle",
        action="store_true",
        help="package the netlist(s) as a format-v2 multi-program "
        "bundle: one compiled stage per netlist (through one shared "
        "pass cache), chained by an identity-by-name dataflow "
        "manifest; serve it whole with 'repro serve --artifact'",
    )
    p_compile.add_argument(
        "--json", action="store_true", help="emit metrics as JSON"
    )
    p_compile.add_argument(
        "--explain-passes",
        action="store_true",
        help="append the per-pass wall-time/size report",
    )
    p_compile.add_argument(
        "-o", "--output",
        metavar="FILE",
        default=None,
        help="also write the compiled executable as an ahead-of-time "
        ".lpa artifact (program + lowered trace tables + metadata)",
    )
    p_compile.add_argument(
        "--embed-fanout",
        action="store_true",
        help="embed the delta engine's fanout/cone tables in the .lpa "
        "artifact (streaming deployments boot with zero cone analysis)",
    )
    p_compile.add_argument(
        "--probe-words",
        type=int,
        default=None,
        metavar="N",
        help="words of known-answer probe vectors to embed in the .lpa "
        "artifact (64 samples each; replayed by 'inspect --verify' and "
        "at fabric store-upload time; default 2 when -o is given, 0 "
        "disables)",
    )
    p_compile.set_defaults(func=cmd_compile)

    p_inspect = sub.add_parser(
        "inspect", help="print an .lpa artifact's metadata"
    )
    p_inspect.add_argument("artifact", help=".lpa executable artifact file")
    p_inspect.add_argument(
        "--json", action="store_true", help="emit the summary as JSON"
    )
    p_inspect.add_argument(
        "--verify",
        action="store_true",
        help="replay the embedded probe vectors through a fresh engine "
        "(falls back to a functional cross-check when the artifact "
        "packages none); exit 1 on mismatch",
    )
    p_inspect.add_argument(
        "--profile",
        action="store_true",
        help="run the kernel-level sampling profiler on random stimulus "
        "and report the slowest levels",
    )
    p_inspect.add_argument(
        "--profile-engine",
        choices=("fused", "native"),
        default="fused",
        help="engine whose kernels --profile times",
    )
    p_inspect.add_argument(
        "--profile-words", type=_positive_int, default=64,
        help="uint64 words per primary input for --profile stimulus",
    )
    p_inspect.set_defaults(func=cmd_inspect)

    p_passes = sub.add_parser(
        "passes", help="per-pass compile report (or --list the registry)"
    )
    _add_common(p_passes, netlist_optional=True)
    p_passes.add_argument(
        "--list",
        action="store_true",
        help="list registered passes and named pipelines (no netlist needed)",
    )
    p_passes.add_argument(
        "--json", action="store_true", help="emit the report as JSON"
    )
    p_passes.set_defaults(func=cmd_passes)

    p_sim = sub.add_parser("simulate", help="compile, execute, cross-check")
    _add_common(p_sim, netlist_optional=True)
    _add_artifact_source(p_sim)
    _add_engine(p_sim, default="cycle")
    _add_engine_options(p_sim)
    p_sim.add_argument("--seed", type=int, default=0, help="stimulus seed")
    p_sim.set_defaults(func=cmd_simulate)

    p_thr = sub.add_parser(
        "throughput", help="measure batched inference throughput"
    )
    _add_common(p_thr, netlist_optional=True)
    _add_artifact_source(p_thr)
    p_thr.add_argument(
        "--engine",
        choices=available_engines() + ["all"],
        default="trace",
        help="execution engine ('all' compares every registered engine)",
    )
    _add_engine_options(p_thr)
    p_thr.add_argument(
        "--pipeline-depth", type=_positive_int, default=4,
        help="bundle artifacts: inter-stage queue bound, in batches",
    )
    p_thr.add_argument(
        "--array-size", type=_positive_int, default=64,
        help="uint64 words per primary input per run (64 samples each)",
    )
    p_thr.add_argument(
        "--batches", type=_positive_int, default=8,
        help="timed Session.run calls",
    )
    p_thr.add_argument("--seed", type=int, default=0, help="stimulus seed")
    p_thr.add_argument(
        "--json", action="store_true", help="emit measurements as JSON"
    )
    p_thr.set_defaults(func=cmd_throughput)

    p_cal = sub.add_parser(
        "calibrate",
        help="measure the vector/rowwise kernel crossover and recommend "
        "--rowwise-min-words for this host",
    )
    _add_common(p_cal, netlist_optional=True)
    _add_artifact_source(p_cal)
    p_cal.add_argument(
        "--engine",
        choices=("fused", "native"),
        default="fused",
        help="engine whose generated kernels to calibrate",
    )
    _add_engine_options(p_cal)
    p_cal.add_argument(
        "--max-words", type=_positive_int, default=256,
        help="largest batch word count in the power-of-two sweep",
    )
    p_cal.add_argument(
        "--repeats", type=_positive_int, default=5,
        help="timing repetitions per point (best is kept)",
    )
    p_cal.add_argument("--seed", type=int, default=0, help="stimulus seed")
    p_cal.add_argument(
        "--json", action="store_true", help="emit measurements as JSON"
    )
    p_cal.set_defaults(func=cmd_calibrate)

    p_serve = sub.add_parser(
        "serve-bench",
        help="measure the batched serving layer vs naive per-request runs",
    )
    _add_common(p_serve, netlist_optional=True)
    _add_artifact_source(p_serve)
    _add_engine(p_serve, default="trace")
    _add_engine_options(p_serve)
    p_serve.add_argument(
        "--requests", type=_positive_int, default=256,
        help="inference requests to serve",
    )
    p_serve.add_argument(
        "--array-size", type=_positive_int, default=2,
        help="uint64 words per primary input per request (64 samples each)",
    )
    p_serve.add_argument(
        "--clients", type=_positive_int, default=8,
        help="concurrent client threads submitting requests",
    )
    p_serve.add_argument(
        "--workers", type=_positive_int, default=2,
        help="engine workers in the serving pool",
    )
    p_serve.add_argument(
        "--max-batch", type=_positive_int, default=32,
        help="max requests coalesced into one engine run",
    )
    p_serve.add_argument(
        "--max-wait-ms", type=float, default=1.0,
        help="micro-batching deadline for a non-full batch",
    )
    p_serve.add_argument(
        "--placement", choices=PLACEMENTS, default="round_robin",
        help="worker placement policy",
    )
    p_serve.add_argument(
        "--backend", choices=BACKENDS, default="thread",
        help="worker backend",
    )
    p_serve.add_argument(
        "--pipeline-depth", type=_positive_int, default=4,
        help="bundle artifacts: inter-stage queue bound, in batches",
    )
    p_serve.add_argument("--seed", type=int, default=0, help="stimulus seed")
    p_serve.add_argument(
        "--json", action="store_true", help="emit measurements as JSON"
    )
    p_serve.set_defaults(func=cmd_serve_bench)

    p_stream = sub.add_parser(
        "stream-bench",
        help="measure incremental streaming (delta engine) vs dense "
        "per-step re-execution",
    )
    _add_common(p_stream, netlist_optional=True)
    _add_artifact_source(p_stream)
    _add_engine(p_stream, default="delta")
    p_stream.add_argument(
        "--baseline-engine",
        choices=available_engines(),
        default="fused",
        help="dense engine to compare against",
    )
    p_stream.add_argument(
        "--steps", type=_positive_int, default=256,
        help="stream length in samples",
    )
    p_stream.add_argument(
        "--flip-bits", type=_positive_int, default=1,
        help="bits flipped per step in the low-entropy random walk",
    )
    p_stream.add_argument(
        "--array-size", type=_positive_int, default=1,
        help="uint64 words per primary input per step (64 samples each)",
    )
    p_stream.add_argument(
        "--random", action="store_true",
        help="draw every step independently instead (the incremental "
        "worst case; exercises the dense fallback)",
    )
    p_stream.add_argument(
        "--workers", type=_positive_int, default=1,
        help="streaming server worker threads",
    )
    p_stream.add_argument("--seed", type=int, default=0, help="stream seed")
    p_stream.add_argument(
        "--json", action="store_true", help="emit measurements as JSON"
    )
    p_stream.set_defaults(func=cmd_stream_bench)

    def _add_fabric_serving(p: argparse.ArgumentParser) -> None:
        _add_common(p, netlist_optional=True)
        _add_artifact_source(p)
        _add_engine(p, default="fused")
        _add_engine_options(p)
        p.add_argument(
            "--workers", type=_positive_int, default=2,
            help="engine workers in the node's serving pool",
        )
        p.add_argument(
            "--backend", choices=BACKENDS, default="thread",
            help="worker backend",
        )
        p.add_argument(
            "--placement", choices=PLACEMENTS, default="round_robin",
            help="worker placement policy",
        )
        p.add_argument(
            "--max-batch", type=_positive_int, default=32,
            help="max requests coalesced into one engine run",
        )
        p.add_argument(
            "--max-wait-ms", type=float, default=1.0,
            help="micro-batching deadline for a non-full batch",
        )
        p.add_argument(
            "--deadline-ms", type=float, default=None,
            help="default per-request deadline: requests the node "
            "cannot answer in time fail with HTTP 504 instead of "
            "waiting forever (default: no deadline)",
        )
        p.add_argument(
            "--share-tables", action="store_true",
            help="map fused tables into one shared-memory arena across "
            "spawn workers (one copy instead of N)",
        )
        p.add_argument(
            "--pipeline-depth", type=_positive_int, default=4,
            help="bundle artifacts: inter-stage queue bound, in batches "
            "(the pipeline executor's backpressure knob)",
        )
        p.add_argument(
            "--max-inflight", type=_positive_int, default=64,
            help="node-wide admission cap on in-flight requests "
            "(beyond it: HTTP 503)",
        )
        p.add_argument(
            "--client-rate", type=float, default=None, metavar="RPS",
            help="per-client admission rate (token bucket; beyond it: "
            "HTTP 429 with Retry-After); default unlimited",
        )
        p.add_argument(
            "--client-burst", type=float, default=8.0,
            help="per-client token-bucket burst reserve",
        )

    p_fserve = sub.add_parser(
        "serve",
        help="boot a fabric node: async HTTP inference front-end + "
        "shared artifact store",
    )
    _add_fabric_serving(p_fserve)
    p_fserve.add_argument(
        "--host", default="127.0.0.1", help="bind address"
    )
    p_fserve.add_argument(
        "--port", type=int, default=0,
        help="bind port (0 picks a free one and prints it)",
    )
    p_fserve.add_argument(
        "--store", metavar="DIR", default=None,
        help="back the node's artifact store with this directory "
        "(default: in-memory)",
    )
    p_fserve.add_argument(
        "--store-url", metavar="URL", default=None,
        help="resolve compiled artifacts from another node's "
        "/v1/store (warm boot: zero compile passes when the "
        "workload is already stored)",
    )
    p_fserve.add_argument(
        "--no-store", action="store_true",
        help="do not serve this node's store at /v1/store",
    )
    p_fserve.add_argument(
        "--verify-artifacts", action="store_true",
        help="replay embedded probe vectors before accepting .lpa "
        "uploads into the store (reject corrupt artifacts with 422)",
    )
    p_fserve.set_defaults(func=cmd_serve)

    p_load = sub.add_parser(
        "load-bench",
        help="drive a fabric node with concurrent clients; report "
        "saturation req/s, p50/p99 latency, speedup vs single-process",
    )
    _add_fabric_serving(p_load)
    p_load.add_argument(
        "--url", default=None, metavar="URL",
        help="aim at an already-running node instead of booting one "
        "(the netlist/artifact is still used for stimuli and the "
        "baseline)",
    )
    p_load.add_argument(
        "--requests", type=_positive_int, default=256,
        help="inference requests to issue",
    )
    p_load.add_argument(
        "--clients", type=_positive_int, default=4,
        help="concurrent client connections",
    )
    p_load.add_argument(
        "--array-size", type=_positive_int, default=2,
        help="uint64 words per primary input per request (64 samples "
        "each)",
    )
    p_load.add_argument(
        "--mode", choices=("closed", "open"), default="closed",
        help="closed loop (saturation) or open loop (fixed offered "
        "rate; needs --target-rps)",
    )
    p_load.add_argument(
        "--target-rps", type=float, default=None,
        help="offered request rate for --mode open",
    )
    p_load.add_argument(
        "--wire", choices=("binary", "json"), default="binary",
        help="wire format clients speak",
    )
    p_load.add_argument(
        "--no-baseline", action="store_true",
        help="skip the single-process in-process serve() comparison",
    )
    p_load.add_argument(
        "--no-verify", action="store_true",
        help="skip the bit-identity check against direct execution",
    )
    p_load.add_argument("--seed", type=int, default=0, help="stimulus seed")
    p_load.add_argument(
        "--json", action="store_true", help="emit measurements as JSON"
    )
    p_load.set_defaults(func=cmd_load_bench)

    p_store = sub.add_parser(
        "store",
        help="inspect or prune an on-disk artifact store directory",
    )
    store_sub = p_store.add_subparsers(dest="store_command", required=True)
    p_store_list = store_sub.add_parser(
        "list", help="list stored blobs (oldest first) with sizes"
    )
    p_store_list.add_argument("root", help="artifact store directory")
    p_store_list.add_argument(
        "--json", action="store_true", help="emit the listing as JSON"
    )
    p_store_list.set_defaults(func=cmd_store)
    p_store_prune = store_sub.add_parser(
        "prune",
        help="evict least-recently-used blobs down to a size budget",
    )
    p_store_prune.add_argument("root", help="artifact store directory")
    p_store_prune.add_argument(
        "--max-bytes",
        type=_parse_size,
        required=True,
        metavar="SIZE",
        help="size budget to prune down to (e.g. 1048576, 512K, 64M, 2G; "
        "0 empties the store)",
    )
    p_store_prune.add_argument(
        "--json", action="store_true", help="emit the eviction report as JSON"
    )
    p_store_prune.set_defaults(func=cmd_store)

    p_report = sub.add_parser("report", help="per-stage compilation report")
    _add_common(p_report)
    p_report.add_argument(
        "--json", action="store_true", help="emit the report as JSON"
    )
    p_report.set_defaults(func=cmd_report)
    return parser


def main(argv: Optional[Sequence[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    return args.func(args)


if __name__ == "__main__":
    sys.exit(main())
