"""Command-line interface: compile, simulate, and report on FFCL blocks.

Usage (after ``pip install -e .``)::

    python -m repro.cli compile block.v --lpvs 16 --lpes 32
    python -m repro.cli simulate block.v --seed 7
    python -m repro.cli report block.v --no-merge --policy sequential

``compile`` prints the compilation metrics (MFG counts, schedule length,
queue depth, FPS).  ``simulate`` additionally executes the program on the
cycle-accurate LPU model with random stimulus and cross-checks it against
functional evaluation.  ``report`` prints the per-stage breakdown
(pre-processing report, partition summary, schedule summary).
"""

from __future__ import annotations

import argparse
import sys
from typing import Optional, Sequence

from .core import LPUConfig, compile_ffcl
from .core.partition import partition_summary
from .core.schedule import schedule_summary
from .lpu import cross_check
from .netlist import parse_bench, parse_verilog


def _load_graph(path: str):
    with open(path, "r", encoding="utf-8") as handle:
        text = handle.read()
    if path.endswith(".bench"):
        return parse_bench(text)
    return parse_verilog(text)


def _add_common(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("netlist", help="structural Verilog (.v) or .bench file")
    parser.add_argument("--lpvs", type=int, default=16, help="LPV count (n)")
    parser.add_argument("--lpes", type=int, default=32, help="LPEs per LPV (m)")
    parser.add_argument(
        "--switch-stages", type=int, default=5, help="switch network stages"
    )
    parser.add_argument(
        "--frequency-mhz", type=float, default=333.0, help="clock frequency"
    )
    parser.add_argument(
        "--no-merge", action="store_true", help="disable MFG merging (Alg. 3)"
    )
    parser.add_argument(
        "--policy",
        choices=("pipelined", "sequential"),
        default="pipelined",
        help="MFG scheduling policy",
    )


def _config(args: argparse.Namespace) -> LPUConfig:
    return LPUConfig(
        num_lpvs=args.lpvs,
        lpes_per_lpv=args.lpes,
        switch_stages=args.switch_stages,
        frequency_hz=args.frequency_mhz * 1e6,
    )


def _compile(args: argparse.Namespace):
    graph = _load_graph(args.netlist)
    return compile_ffcl(
        graph,
        _config(args),
        merge=not args.no_merge,
        policy=args.policy,
    )


def cmd_compile(args: argparse.Namespace) -> int:
    result = _compile(args)
    print(result.metrics)
    for key, value in result.metrics.as_dict().items():
        print(f"  {key}: {value}")
    return 0


def cmd_simulate(args: argparse.Namespace) -> int:
    result = _compile(args)
    ok, outputs, _ref = cross_check(result.program, seed=args.seed)
    print(result.metrics)
    print(f"cycle-accurate == functional: {ok}")
    for name in sorted(outputs):
        print(f"  {name}: {int(outputs[name][0]):#018x}")
    return 0 if ok else 1


def cmd_report(args: argparse.Namespace) -> int:
    result = _compile(args)
    print(f"netlist:   {result.source}")
    print(f"preproc:   {result.preprocess.report}")
    print("partition:")
    for key, value in partition_summary(result.partition).items():
        print(f"  {key}: {value}")
    print("schedule:")
    for key, value in schedule_summary(result.schedule).items():
        print(f"  {key}: {value}")
    if result.program is not None:
        print(
            f"program:   {result.program.num_compute_instructions} compute "
            f"instructions in {result.program.num_queue_entries} queue "
            f"entries; peak buffer {result.program.peak_buffer_words} words; "
            f"{result.program.buffer_spills} spills"
        )
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro", description="FFCL-to-LPU compiler (DAC 2023 reproduction)"
    )
    sub = parser.add_subparsers(dest="command", required=True)

    p_compile = sub.add_parser("compile", help="compile and print metrics")
    _add_common(p_compile)
    p_compile.set_defaults(func=cmd_compile)

    p_sim = sub.add_parser("simulate", help="compile, execute, cross-check")
    _add_common(p_sim)
    p_sim.add_argument("--seed", type=int, default=0, help="stimulus seed")
    p_sim.set_defaults(func=cmd_simulate)

    p_report = sub.add_parser("report", help="per-stage compilation report")
    _add_common(p_report)
    p_report.set_defaults(func=cmd_report)
    return parser


def main(argv: Optional[Sequence[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    return args.func(args)


if __name__ == "__main__":
    sys.exit(main())
