"""FFCL extraction: binarized neurons -> minimized multi-level logic.

This is the NullaNet step the paper uses as its "upper stream engine"
(Section III): every binarized neuron is a threshold function of its
Boolean fan-in (see :mod:`repro.nullanet.binarize`); enumerating it yields a
truth table; input patterns never observed in the training data become
don't-cares (NullaNet's key optimization); two-level minimization plus
algebraic factoring produce the fixed-function combinational logic block.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence

import numpy as np

from ..netlist.compose import merge_parallel
from ..netlist.graph import LogicGraph
from ..synth.espresso import espresso_minimize
from ..synth.factoring import factored_graph
from ..synth.quine_mccluskey import MAX_QM_VARS, minimize as qm_minimize
from ..synth.truth_table import Cube, TruthTable
from .binarize import neuron_threshold
from .mlp import BinaryMLP

#: Above this fan-in, enumeration is refused (NullaNet-Tiny keeps neuron
#: fan-ins small by construction; our sparse training mask does the same).
MAX_NEURON_FAN_IN = 16


@dataclass
class NeuronFunction:
    """One extracted neuron: its truth table and minimized cover."""

    layer: int
    index: int
    support: np.ndarray  # indices of the inputs it reads
    table: TruthTable
    cover: List[Cube]

    @property
    def fan_in(self) -> int:
        return int(self.support.size)

    @property
    def num_cubes(self) -> int:
        return len(self.cover)


def neuron_truth_table(
    weights: np.ndarray,
    bias: float,
    observed_patterns: Optional[np.ndarray] = None,
) -> TruthTable:
    """Enumerate a bipolar neuron restricted to its support.

    ``weights`` must already be restricted to the neuron's fan-in (no
    zeros).  ``observed_patterns`` (rows of {0,1}, same width) marks the
    care set: unobserved input patterns become don't-cares.
    """
    k = int(weights.size)
    if k > MAX_NEURON_FAN_IN:
        raise ValueError(
            f"neuron fan-in {k} exceeds enumerable bound {MAX_NEURON_FAN_IN}"
        )
    folded_w, threshold = neuron_threshold(weights, bias)
    size = 1 << k
    idx = np.arange(size, dtype=np.int64)
    bits = (idx[:, None] >> np.arange(k)) & 1  # row i = minterm i
    fires = bits.astype(np.float64) @ folded_w >= threshold - 1e-12

    care = None
    if observed_patterns is not None:
        pattern_ids = (
            observed_patterns.astype(np.int64) @ (1 << np.arange(k))
        )
        care = np.zeros(size, dtype=bool)
        care[np.unique(pattern_ids)] = True
    return TruthTable(k, fires, care)


def minimize_table(table: TruthTable) -> List[Cube]:
    """Exact minimization when affordable, Espresso otherwise.

    Quine-McCluskey's prime-implicant count explodes on don't-care-rich
    tables (exactly the tables NullaNet produces), so exact minimization is
    reserved for small, mostly-specified functions.
    """
    import numpy as np

    dc_fraction = float(np.count_nonzero(~table.care_bits)) / max(
        1, table.size
    )
    if table.num_vars <= min(MAX_QM_VARS, 8) and dc_fraction <= 0.4:
        return qm_minimize(table)
    if table.num_vars <= 6:  # tiny tables are always safe for QM
        return qm_minimize(table)
    return espresso_minimize(table)


def extract_neuron(
    model: BinaryMLP,
    layer: int,
    neuron: int,
    observed_inputs: Optional[np.ndarray] = None,
) -> NeuronFunction:
    """Extract one neuron of ``model`` as a minimized Boolean function.

    ``observed_inputs``: {0,1} activations of the layer's *input* space on
    the training set (rows x features); used for don't-care mining.
    """
    support = model.neuron_connectivity(layer, neuron)
    weights = model.effective_weights(layer)[support, neuron]
    bias = float(model.biases[layer][neuron])
    observed = (
        observed_inputs[:, support] if observed_inputs is not None else None
    )
    table = neuron_truth_table(weights, bias, observed)
    cover = minimize_table(table)
    return NeuronFunction(
        layer=layer, index=neuron, support=support, table=table, cover=cover
    )


def neuron_to_graph(
    func: NeuronFunction,
    input_names: Sequence[str],
    output_name: str,
) -> LogicGraph:
    """Factor a neuron's cover into a multi-level two-input logic graph."""
    names = [input_names[i] for i in func.support]
    return factored_graph(
        func.cover,
        num_vars=func.fan_in,
        input_names=names,
        name=f"neuron_l{func.layer}_n{func.index}",
        output_name=output_name,
    )


def layer_to_graph(
    model: BinaryMLP,
    layer: int,
    observed_inputs: Optional[np.ndarray] = None,
    input_names: Optional[Sequence[str]] = None,
    output_prefix: Optional[str] = None,
    neurons: Optional[Sequence[int]] = None,
) -> LogicGraph:
    """Extract a whole layer as one multi-output FFCL block.

    ``neurons`` restricts extraction to a subset (used for sampled scaling
    of very wide layers); defaults to all neurons of the layer.
    """
    width = model.layer_specs[layer].width
    chosen = list(neurons) if neurons is not None else list(range(width))
    num_in = model.weights[layer].shape[0]
    if input_names is None:
        input_names = [f"l{layer}_i{i}" for i in range(num_in)]
    prefix = output_prefix or f"l{layer}_o"

    graphs = []
    for j in chosen:
        func = extract_neuron(model, layer, j, observed_inputs)
        graphs.append(neuron_to_graph(func, input_names, f"{prefix}{j}"))
    block = merge_parallel(graphs, name=f"layer{layer}", share_inputs=True)
    return block


def evaluate_ffcl_layer(
    graph: LogicGraph,
    x_bits: np.ndarray,
    input_names: Sequence[str],
    output_names: Sequence[str],
) -> np.ndarray:
    """Evaluate an extracted layer on {0,1} rows; returns {0,1} outputs.

    Packs samples into uint64 lanes, so the cost is one graph evaluation
    per 64 samples.
    """
    count = x_bits.shape[0]
    words = (count + 63) // 64
    packed = {}
    for i, name in enumerate(input_names):
        col = np.zeros(words * 64, dtype=np.uint64)
        col[:count] = x_bits[:, i].astype(np.uint64)
        lanes = col.reshape(words, 64) << np.arange(64, dtype=np.uint64)
        packed[name] = np.bitwise_or.reduce(lanes, axis=1)
    # PIs of the graph may be a subset of input_names (pruned logic).
    graph_inputs = {graph.input_name(nid) for nid in graph.inputs}
    stimulus = {n: w for n, w in packed.items() if n in graph_inputs}
    outs = graph.evaluate(stimulus)
    result = np.zeros((count, len(output_names)), dtype=np.int8)
    for j, name in enumerate(output_names):
        lanes = (
            outs[name][:, None] >> np.arange(64, dtype=np.uint64)
        ) & np.uint64(1)
        result[:, j] = lanes.reshape(-1)[:count].astype(np.int8)
    return result
