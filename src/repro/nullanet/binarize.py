"""Binarization utilities for NullaNet-style networks.

NullaNet (Nazemi et al., ASP-DAC 2019) replaces a binarized neuron's
arithmetic with a Boolean function.  A neuron with weights w, bias b over
bipolar inputs x ∈ {-1, +1} activates as ``sign(w.x + b)``.  Writing the
inputs as Boolean variables u ∈ {0, 1} with x = 2u - 1 gives::

    w.(2u - 1) + b >= 0   <=>   w.u >= (sum(w) - b) / 2

i.e. every binarized neuron is a *threshold function* of its Boolean
inputs.  :func:`neuron_threshold` performs that fold; the FFCL extractor
(:mod:`repro.nullanet.ffcl`) enumerates it into a truth table.
"""

from __future__ import annotations

from typing import Tuple

import numpy as np


def sign_activation(z: np.ndarray) -> np.ndarray:
    """Bipolar sign with sign(0) = +1 (the usual BNN convention)."""
    return np.where(z >= 0, 1.0, -1.0)


def sign_ste_grad(z: np.ndarray, clip: float = 1.0) -> np.ndarray:
    """Straight-through-estimator gradient of sign (hard tanh window)."""
    return (np.abs(z) <= clip).astype(z.dtype)


def to_bipolar(bits: np.ndarray) -> np.ndarray:
    """{0,1} -> {-1,+1} (floats)."""
    return 2.0 * bits.astype(np.float64) - 1.0


def to_bits(bipolar: np.ndarray) -> np.ndarray:
    """{-1,+1} -> {0,1} (int8)."""
    return (bipolar > 0).astype(np.int8)


def neuron_threshold(weights: np.ndarray, bias: float) -> Tuple[np.ndarray, float]:
    """Fold a bipolar-input neuron into Boolean threshold form.

    Returns ``(w, t)`` such that the neuron fires (outputs +1) exactly when
    ``w . u >= t`` for Boolean inputs u ∈ {0,1}.
    """
    w = np.asarray(weights, dtype=np.float64)
    threshold = (w.sum() - float(bias)) / 2.0
    return w, threshold


def threshold_fires(
    weights: np.ndarray, threshold: float, u: np.ndarray
) -> np.ndarray:
    """Evaluate the folded threshold function on Boolean input rows."""
    return (u.astype(np.float64) @ weights >= threshold - 1e-12)


def binarize_weights(weights: np.ndarray) -> np.ndarray:
    """Bipolar weight binarization (sign, zero -> +1)."""
    return np.where(weights >= 0, 1.0, -1.0)
