"""Synthetic datasets standing in for the paper's benchmark data.

The paper evaluates on MNIST (LeNet-5, VGG-like), CIFAR-10 (MLPMixer), jet
substructure classification (JSC, Duarte et al.), and UNSW-NB15 network
intrusion detection (NID, Murovic & Trost: 593 binary features, 2 classes).
Those datasets are not available offline, so this module generates synthetic
equivalents with the same shapes and learnable structure: class-conditional
templates plus noise, so a small binarized MLP reaches well-above-chance
accuracy and the NullaNet extraction pipeline is exercised exactly as it
would be on the real data (see DESIGN.md, substitutions).

All generators return binary {0,1} feature matrices — the paper's flow
binarizes activations *and* inputs before logic extraction.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Tuple

import numpy as np


@dataclass
class Dataset:
    """A train/test split of binary features and integer labels."""

    name: str
    x_train: np.ndarray
    y_train: np.ndarray
    x_test: np.ndarray
    y_test: np.ndarray

    @property
    def num_features(self) -> int:
        return self.x_train.shape[1]

    @property
    def num_classes(self) -> int:
        return int(max(self.y_train.max(), self.y_test.max())) + 1


def _template_dataset(
    name: str,
    num_features: int,
    num_classes: int,
    num_train: int,
    num_test: int,
    flip_probability: float,
    seed: int,
) -> Dataset:
    """Binary class templates + independent bit flips."""
    rng = np.random.default_rng(seed)
    templates = rng.integers(0, 2, size=(num_classes, num_features), dtype=np.int8)

    def sample(count: int) -> Tuple[np.ndarray, np.ndarray]:
        labels = rng.integers(0, num_classes, size=count)
        x = templates[labels].copy()
        flips = rng.random(x.shape) < flip_probability
        x[flips] ^= 1
        return x.astype(np.int8), labels.astype(np.int64)

    x_train, y_train = sample(num_train)
    x_test, y_test = sample(num_test)
    return Dataset(name, x_train, y_train, x_test, y_test)


def synthetic_mnist(
    num_train: int = 2000,
    num_test: int = 500,
    seed: int = 7,
) -> Dataset:
    """8x8 binary digit-like images, 10 classes (stand-in for MNIST).

    Class templates are smoothed random strokes so nearby pixels correlate,
    like downsampled digits.
    """
    rng = np.random.default_rng(seed)
    side = 8
    num_classes = 10
    templates = np.zeros((num_classes, side, side), dtype=np.int8)
    for c in range(num_classes):
        # Random walk "stroke" per class.
        r, col = rng.integers(1, side - 1, size=2)
        for _ in range(26):
            templates[c, r, col] = 1
            dr, dc = rng.integers(-1, 2, size=2)
            r = int(np.clip(r + dr, 0, side - 1))
            col = int(np.clip(col + dc, 0, side - 1))
    flat = templates.reshape(num_classes, side * side)

    def sample(count: int) -> Tuple[np.ndarray, np.ndarray]:
        labels = rng.integers(0, num_classes, size=count)
        x = flat[labels].copy()
        flips = rng.random(x.shape) < 0.03
        x[flips] ^= 1
        return x.astype(np.int8), labels.astype(np.int64)

    x_train, y_train = sample(num_train)
    x_test, y_test = sample(num_test)
    return Dataset("synthetic-mnist", x_train, y_train, x_test, y_test)


def synthetic_jsc(
    num_train: int = 2000,
    num_test: int = 500,
    seed: int = 11,
) -> Dataset:
    """Jet substructure classification stand-in: 16 physics features
    quantized to 3 bits each (48 binary features), 5 jet classes — the
    shapes used by LogicNets/hls4ml on the real JSC task."""
    rng = np.random.default_rng(seed)
    num_classes = 5
    raw_features = 16
    bits = 3
    centers = rng.normal(0.0, 1.0, size=(num_classes, raw_features))

    def sample(count: int) -> Tuple[np.ndarray, np.ndarray]:
        labels = rng.integers(0, num_classes, size=count)
        raw = centers[labels] + rng.normal(0.0, 0.7, size=(count, raw_features))
        # Quantize each feature to a 3-bit thermometer code.
        edges = np.quantile(raw, np.linspace(0, 1, bits + 1)[1:-1], axis=0)
        cols = []
        for f in range(raw_features):
            for b in range(bits - 1):
                cols.append((raw[:, f] > edges[b, f]).astype(np.int8))
            cols.append((raw[:, f] > 0).astype(np.int8))
        x = np.stack(cols, axis=1)
        return x, labels.astype(np.int64)

    x_train, y_train = sample(num_train)
    x_test, y_test = sample(num_test)
    return Dataset("synthetic-jsc", x_train, y_train, x_test, y_test)


def synthetic_nid(
    num_train: int = 2000,
    num_test: int = 500,
    num_features: int = 593,
    seed: int = 13,
) -> Dataset:
    """UNSW-NB15-style network intrusion detection stand-in: 593 binary
    features (the Murovic & Trost preprocessing), 2 classes."""
    return _template_dataset(
        "synthetic-nid",
        num_features=num_features,
        num_classes=2,
        num_train=num_train,
        num_test=num_test,
        flip_probability=0.08,
        seed=seed,
    )


def synthetic_cifar_patches(
    num_train: int = 2000,
    num_test: int = 500,
    seed: int = 17,
) -> Dataset:
    """Binary patch features for the MLPMixer flow: 64 patches x 4-bit codes
    (256 features), 10 classes — matching the paper's 32x32 images with 4x4
    patches."""
    return _template_dataset(
        "synthetic-cifar-patches",
        num_features=256,
        num_classes=10,
        num_train=num_train,
        num_test=num_test,
        flip_probability=0.05,
        seed=seed,
    )


def majority_dataset(
    num_features: int = 7,
    num_train: int = 512,
    num_test: int = 256,
    seed: int = 3,
) -> Dataset:
    """Noise-free majority function — a sanity task every pipeline stage
    should learn perfectly; used by the tests."""
    rng = np.random.default_rng(seed)

    def sample(count: int) -> Tuple[np.ndarray, np.ndarray]:
        x = rng.integers(0, 2, size=(count, num_features), dtype=np.int8)
        y = (x.sum(axis=1) > num_features // 2).astype(np.int64)
        return x, y

    x_train, y_train = sample(num_train)
    x_test, y_test = sample(num_test)
    return Dataset("majority", x_train, y_train, x_test, y_test)
