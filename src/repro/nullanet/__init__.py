"""NullaNet substrate: the paper's upstream FFCL generator.

Trains sparsely-connected binarized MLPs (numpy), folds every neuron into a
Boolean threshold function, mines don't-cares from unobserved input
patterns, minimizes, factors, and emits per-layer FFCL logic graphs.
"""

from .binarize import (
    binarize_weights,
    neuron_threshold,
    sign_activation,
    sign_ste_grad,
    threshold_fires,
    to_bipolar,
    to_bits,
)
from .datasets import (
    Dataset,
    majority_dataset,
    synthetic_cifar_patches,
    synthetic_jsc,
    synthetic_mnist,
    synthetic_nid,
)
from .ffcl import (
    MAX_NEURON_FAN_IN,
    NeuronFunction,
    evaluate_ffcl_layer,
    extract_neuron,
    layer_to_graph,
    minimize_table,
    neuron_to_graph,
    neuron_truth_table,
)
from .mlp import BinaryMLP, LayerSpec, TrainConfig
from .pipeline import (
    ExtractionResult,
    extract_network,
    logic_predict,
    observed_layer_inputs,
    run_nullanet_flow,
    stitch_network,
)

__all__ = [
    "binarize_weights",
    "neuron_threshold",
    "sign_activation",
    "sign_ste_grad",
    "threshold_fires",
    "to_bipolar",
    "to_bits",
    "Dataset",
    "majority_dataset",
    "synthetic_cifar_patches",
    "synthetic_jsc",
    "synthetic_mnist",
    "synthetic_nid",
    "MAX_NEURON_FAN_IN",
    "NeuronFunction",
    "evaluate_ffcl_layer",
    "extract_neuron",
    "layer_to_graph",
    "minimize_table",
    "neuron_to_graph",
    "neuron_truth_table",
    "BinaryMLP",
    "LayerSpec",
    "TrainConfig",
    "ExtractionResult",
    "extract_network",
    "logic_predict",
    "observed_layer_inputs",
    "run_nullanet_flow",
    "stitch_network",
]
