"""End-to-end NullaNet flow: train -> binarize -> extract -> verify.

Ties the substrate together the way the paper's toolchain does: a sparsely
connected BNN is trained on a (synthetic) dataset, every layer is extracted
into an FFCL block with don't-care mining, the blocks are stitched into one
network-level logic graph, and the logic is verified to reproduce the BNN's
hidden activations exactly on the training data (and its predictions on the
test data, up to the float head replaced by a binarized output layer).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence

import numpy as np

from ..netlist.compose import compose_serial
from ..netlist.graph import LogicGraph
from .binarize import to_bits
from .datasets import Dataset
from .ffcl import evaluate_ffcl_layer, layer_to_graph
from .mlp import BinaryMLP, LayerSpec, TrainConfig


@dataclass
class ExtractionResult:
    """All artifacts of one NullaNet extraction."""

    model: BinaryMLP
    layer_graphs: List[LogicGraph]
    network_graph: LogicGraph
    #: float-head accuracies (training-time reference).
    train_accuracy: float
    test_accuracy: float
    #: accuracy of the BNN with the binarized popcount readout — the
    #: function the logic reproduces (exactly, when don't-cares are off).
    binary_test_accuracy: float
    #: accuracy of the extracted logic on the test set.
    logic_test_accuracy: float
    bits_per_class: int = 1


def observed_layer_inputs(model: BinaryMLP, x_bits: np.ndarray) -> List[np.ndarray]:
    """{0,1} input patterns each layer sees on the dataset (layer 0 sees the
    raw inputs; layer l>0 sees layer l-1's activations)."""
    acts = model.hidden_forward(x_bits)
    observed = [x_bits.astype(np.int8)]
    for h in acts[:-1]:
        observed.append(to_bits(h))
    return observed


def extract_network(
    model: BinaryMLP,
    x_train: np.ndarray,
    use_dont_cares: bool = True,
) -> List[LogicGraph]:
    """Extract every layer of ``model`` as an FFCL block."""
    observed = (
        observed_layer_inputs(model, x_train) if use_dont_cares else None
    )
    graphs: List[LogicGraph] = []
    num_layers = len(model.layer_specs)
    for layer in range(num_layers):
        if layer == 0:
            in_names = [f"x{i}" for i in range(model.num_inputs)]
        else:
            in_names = [
                f"h{layer - 1}_{j}"
                for j in range(model.layer_specs[layer - 1].width)
            ]
        prefix = (
            f"h{layer}_" if layer < num_layers - 1 else "out"
        )
        graphs.append(
            layer_to_graph(
                model,
                layer,
                observed_inputs=observed[layer] if observed else None,
                input_names=in_names,
                output_prefix=prefix,
            )
        )
    return graphs


def stitch_network(layer_graphs: Sequence[LogicGraph]) -> LogicGraph:
    """Compose per-layer FFCL blocks into one network-level graph."""
    network = layer_graphs[0]
    for nxt in layer_graphs[1:]:
        network = compose_serial(network, nxt, name="network")
    return network


def popcount_readout(bits: np.ndarray, bits_per_class: int) -> np.ndarray:
    """LogicNets-style readout: class score = popcount of its bit group."""
    count, width = bits.shape
    if width % bits_per_class:
        raise ValueError("output width must be a multiple of bits_per_class")
    scores = bits.reshape(count, width // bits_per_class, bits_per_class).sum(
        axis=2
    )
    return np.argmax(scores, axis=1)


def binary_predict(model: BinaryMLP, x_bits: np.ndarray, bits_per_class: int):
    """The BNN's own prediction through the binarized popcount readout
    (no float head) — the function the extracted logic implements."""
    out_bits = to_bits(model.hidden_forward(x_bits)[-1])
    return popcount_readout(out_bits, bits_per_class)


def logic_predict(
    network_graph: LogicGraph,
    x_bits: np.ndarray,
    num_inputs: int,
    num_output_bits: int,
    bits_per_class: int = 1,
) -> np.ndarray:
    """Classify with the extracted logic via the popcount readout."""
    in_names = [f"x{i}" for i in range(num_inputs)]
    out_names = [f"out{j}" for j in range(num_output_bits)]
    bits = evaluate_ffcl_layer(network_graph, x_bits, in_names, out_names)
    return popcount_readout(bits, bits_per_class)


def run_nullanet_flow(
    dataset: Dataset,
    hidden: Sequence[LayerSpec],
    train_config: Optional[TrainConfig] = None,
    output_fan_in: int = 8,
    bits_per_class: int = 3,
    use_dont_cares: bool = True,
    seed: int = 0,
) -> ExtractionResult:
    """The complete flow on one dataset.

    ``hidden`` lists the hidden layers; an output layer of
    ``dataset.num_classes * bits_per_class`` neurons with fan-in
    ``output_fan_in`` is appended; at inference each class scores the
    popcount of its bit group (LogicNets-style redundant readout).
    """
    layers = list(hidden) + [
        LayerSpec(
            width=dataset.num_classes * bits_per_class, fan_in=output_fan_in
        )
    ]
    model = BinaryMLP(
        num_inputs=dataset.num_features,
        layers=layers,
        num_classes=dataset.num_classes,
        seed=seed,
    )
    model.tie_head_to_groups(bits_per_class)
    model.train(dataset.x_train, dataset.y_train, train_config)
    train_acc = model.accuracy(dataset.x_train, dataset.y_train)
    test_acc = model.accuracy(dataset.x_test, dataset.y_test)
    binary_acc = float(
        np.mean(
            binary_predict(model, dataset.x_test, bits_per_class)
            == dataset.y_test
        )
    )

    layer_graphs = extract_network(
        model, dataset.x_train, use_dont_cares=use_dont_cares
    )
    network_graph = stitch_network(layer_graphs)
    preds = logic_predict(
        network_graph,
        dataset.x_test,
        dataset.num_features,
        dataset.num_classes * bits_per_class,
        bits_per_class,
    )
    logic_acc = float(np.mean(preds == dataset.y_test))
    return ExtractionResult(
        model=model,
        layer_graphs=layer_graphs,
        network_graph=network_graph,
        train_accuracy=train_acc,
        test_accuracy=test_acc,
        binary_test_accuracy=binary_acc,
        logic_test_accuracy=logic_acc,
        bits_per_class=bits_per_class,
    )
