"""Numpy training of sparsely-connected binarized MLPs.

The reproduction hint says the paper's upstream (NullaNet) trains logic
networks in PyTorch on a GPU; PyTorch is unavailable offline, so this is a
compact numpy re-implementation of the same recipe:

* binary {0,1} inputs, bipolar internal representation,
* hidden layers with **sparse fan-in** (each neuron sees at most ``fan_in``
  inputs, LogicNets/NullaNet-Tiny style — this is what keeps the extracted
  truth tables enumerable),
* sign activations trained with the straight-through estimator,
* binarized weights in the forward pass (latent float weights updated by
  SGD with momentum),
* a float softmax head used *only during training*; at extraction time the
  output layer is binarized like the hidden ones.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence

import numpy as np

from .binarize import (
    binarize_weights,
    sign_activation,
    sign_ste_grad,
    to_bipolar,
)


@dataclass
class LayerSpec:
    """One hidden/output layer: ``width`` neurons of fan-in ``fan_in``."""

    width: int
    fan_in: int


@dataclass
class TrainConfig:
    epochs: int = 30
    batch_size: int = 64
    learning_rate: float = 0.05
    momentum: float = 0.9
    seed: int = 0
    verbose: bool = False


class BinaryMLP:
    """A sparsely-connected BNN trained with the straight-through estimator."""

    def __init__(
        self,
        num_inputs: int,
        layers: Sequence[LayerSpec],
        num_classes: int,
        seed: int = 0,
    ) -> None:
        if not layers:
            raise ValueError("need at least one layer")
        self.num_inputs = num_inputs
        self.layer_specs = list(layers)
        self.num_classes = num_classes
        rng = np.random.default_rng(seed)

        self.masks: List[np.ndarray] = []
        self.weights: List[np.ndarray] = []
        self.biases: List[np.ndarray] = []
        prev = num_inputs
        for spec in layers:
            fan_in = min(spec.fan_in, prev)
            mask = np.zeros((prev, spec.width), dtype=np.float64)
            for j in range(spec.width):
                chosen = rng.choice(prev, size=fan_in, replace=False)
                mask[chosen, j] = 1.0
            scale = 1.0 / np.sqrt(fan_in)
            self.masks.append(mask)
            self.weights.append(rng.normal(0.0, scale, size=(prev, spec.width)) * mask)
            self.biases.append(np.zeros(spec.width))
            prev = spec.width
        # Float classification head (training only).
        self.head_w = rng.normal(0.0, 1.0 / np.sqrt(prev), size=(prev, num_classes))
        self.head_b = np.zeros(num_classes)
        #: when True the head is not updated — used with a group-indicator
        #: head so training optimizes the binarized popcount readout.
        self.freeze_head = False

    def tie_head_to_groups(self, bits_per_class: int) -> None:
        """Fix the head to sum each class's output-bit group (and freeze it),
        aligning the training objective with the popcount readout used at
        inference."""
        width = self.layer_specs[-1].width
        if width != self.num_classes * bits_per_class:
            raise ValueError(
                "final layer width must be num_classes * bits_per_class"
            )
        head = np.zeros((width, self.num_classes))
        for c in range(self.num_classes):
            head[c * bits_per_class : (c + 1) * bits_per_class, c] = 1.0
        self.head_w = head
        self.head_b = np.zeros(self.num_classes)
        self.freeze_head = True

    # ------------------------------------------------------------------
    # Forward passes
    # ------------------------------------------------------------------
    def hidden_forward(self, x_bits: np.ndarray) -> List[np.ndarray]:
        """Bipolar activations after every layer (binarized weights)."""
        acts = []
        h = to_bipolar(x_bits)
        for w, b, mask in zip(self.weights, self.biases, self.masks):
            wb = binarize_weights(w) * mask
            z = h @ wb + b
            h = sign_activation(z)
            acts.append(h)
        return acts

    def logits(self, x_bits: np.ndarray) -> np.ndarray:
        h = self.hidden_forward(x_bits)[-1]
        return h @ self.head_w + self.head_b

    def predict(self, x_bits: np.ndarray) -> np.ndarray:
        return np.argmax(self.logits(x_bits), axis=1)

    def accuracy(self, x_bits: np.ndarray, labels: np.ndarray) -> float:
        return float(np.mean(self.predict(x_bits) == labels))

    # ------------------------------------------------------------------
    # Training
    # ------------------------------------------------------------------
    def train(
        self,
        x_bits: np.ndarray,
        labels: np.ndarray,
        config: Optional[TrainConfig] = None,
    ) -> List[float]:
        """Mini-batch SGD with STE through the sign activations.

        Returns the per-epoch training losses.
        """
        cfg = config or TrainConfig()
        rng = np.random.default_rng(cfg.seed)
        count = x_bits.shape[0]
        vel_w = [np.zeros_like(w) for w in self.weights]
        vel_b = [np.zeros_like(b) for b in self.biases]
        vel_hw = np.zeros_like(self.head_w)
        vel_hb = np.zeros_like(self.head_b)
        losses: List[float] = []

        for epoch in range(cfg.epochs):
            order = rng.permutation(count)
            epoch_loss = 0.0
            for start in range(0, count, cfg.batch_size):
                idx = order[start : start + cfg.batch_size]
                xb, yb = x_bits[idx], labels[idx]
                loss = self._step(
                    xb, yb, cfg.learning_rate, cfg.momentum,
                    vel_w, vel_b, vel_hw, vel_hb,
                )
                epoch_loss += loss * len(idx)
            losses.append(epoch_loss / count)
            if cfg.verbose:
                print(f"epoch {epoch}: loss {losses[-1]:.4f}")
        return losses

    def _step(
        self, xb, yb, lr, momentum, vel_w, vel_b, vel_hw, vel_hb
    ) -> float:
        batch = xb.shape[0]
        # Forward, keeping pre-activations for STE.
        h = to_bipolar(xb)
        pre: List[np.ndarray] = []
        acts: List[np.ndarray] = [h]
        for w, b, mask in zip(self.weights, self.biases, self.masks):
            wb = binarize_weights(w) * mask
            z = h @ wb + b
            pre.append(z)
            h = sign_activation(z)
            acts.append(h)
        logits = h @ self.head_w + self.head_b
        shifted = logits - logits.max(axis=1, keepdims=True)
        expz = np.exp(shifted)
        probs = expz / expz.sum(axis=1, keepdims=True)
        loss = float(
            -np.mean(np.log(probs[np.arange(batch), yb] + 1e-12))
        )

        # Backward.
        dlogits = probs.copy()
        dlogits[np.arange(batch), yb] -= 1.0
        dlogits /= batch
        d_hw = acts[-1].T @ dlogits
        d_hb = dlogits.sum(axis=0)
        dh = dlogits @ self.head_w.T

        grads_w: List[np.ndarray] = [None] * len(self.weights)  # type: ignore
        grads_b: List[np.ndarray] = [None] * len(self.biases)  # type: ignore
        for layer in range(len(self.weights) - 1, -1, -1):
            dz = dh * sign_ste_grad(pre[layer])
            grads_w[layer] = (acts[layer].T @ dz) * self.masks[layer]
            grads_b[layer] = dz.sum(axis=0)
            wb = binarize_weights(self.weights[layer]) * self.masks[layer]
            dh = dz @ wb.T

        # SGD with momentum.
        for layer in range(len(self.weights)):
            vel_w[layer] = momentum * vel_w[layer] - lr * grads_w[layer]
            self.weights[layer] += vel_w[layer]
            vel_b[layer] = momentum * vel_b[layer] - lr * grads_b[layer]
            self.biases[layer] += vel_b[layer]
        if not self.freeze_head:
            vel_hw *= momentum
            vel_hw -= lr * d_hw
            self.head_w += vel_hw
            vel_hb *= momentum
            vel_hb -= lr * d_hb
            self.head_b += vel_hb
        return loss

    # ------------------------------------------------------------------
    # Views used by the FFCL extractor
    # ------------------------------------------------------------------
    def effective_weights(self, layer: int) -> np.ndarray:
        """Binarized, masked weight matrix of ``layer``."""
        return binarize_weights(self.weights[layer]) * self.masks[layer]

    def neuron_connectivity(self, layer: int, neuron: int) -> np.ndarray:
        """Indices of the inputs neuron ``neuron`` of ``layer`` reads."""
        return np.nonzero(self.masks[layer][:, neuron])[0]
