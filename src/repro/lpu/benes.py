"""Explicit multi-stage switch construction and routing (Beneš network).

The paper relies on a non-blocking multicast multi-stage switch (Yang &
Masson's broadcast network) between adjacent LPVs.  The LPU simulator uses
a functional crossbar (:mod:`repro.lpu.switch`) because the non-blocking
property guarantees every required mapping is realizable; this module
*demonstrates* realizability with an explicit construction:

* :class:`BenesNetwork` builds the classic (2 log2 N - 1)-stage
  rearrangeable network of 2x2 switches and routes any one-to-one mapping
  with the looping algorithm,
* multicast is handled the standard way broadcast networks do it: a copy
  phase assigns each source a contiguous group of outputs (realizable with
  the same fabric run in distribution mode), followed by a permutation
  phase routed by the Beneš stages.

The tests route thousands of random permutations and multicast patterns and
verify that the switch settings deliver exactly the requested mapping —
i.e., that a concrete multi-stage network can stand in for the functional
crossbar without changing behaviour.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple


def _is_power_of_two(x: int) -> bool:
    return x > 0 and (x & (x - 1)) == 0


class BenesNetwork:
    """A Beneš rearrangeable network on N = 2^k ports.

    Stage layout: 2 log2(N) - 1 columns of N/2 two-by-two crossbar switches.
    ``route(perm)`` computes a bar/cross setting for every switch realizing
    the permutation ``perm`` (perm[i] = output port fed by input i), using
    the recursive looping algorithm.
    """

    def __init__(self, num_ports: int) -> None:
        if not _is_power_of_two(num_ports) or num_ports < 2:
            raise ValueError("Beneš network needs a power-of-two port count >= 2")
        self.num_ports = num_ports
        self.num_stages = 2 * (num_ports.bit_length() - 1) - 1

    # ------------------------------------------------------------------
    # Routing
    # ------------------------------------------------------------------
    def route(self, perm: Sequence[int]) -> List[List[bool]]:
        """Switch settings (stage -> switch -> crossed?) realizing ``perm``."""
        if sorted(perm) != list(range(self.num_ports)):
            raise ValueError("route() requires a full permutation")
        return self._route_rec(list(perm))

    def _route_rec(self, perm: List[int]) -> List[List[bool]]:
        n = len(perm)
        if n == 2:
            return [[perm[0] == 1]]

        half = n // 2
        inv = [0] * n
        for i, p in enumerate(perm):
            inv[p] = i

        # Looping algorithm: 2-color the inputs (0 = upper subnetwork,
        # 1 = lower) such that the two inputs of every ingress switch and
        # the two inputs feeding sibling outputs get different colors.
        color: List[Optional[int]] = [None] * n
        for start in range(n):
            if color[start] is not None:
                continue
            i, c = start, 0
            while color[i] is None:
                color[i] = c
                sibling = i ^ 1  # same ingress switch -> opposite color
                color[sibling] = 1 - c
                # The input feeding the sibling's partner output must take
                # the opposite color of the sibling, i.e. c again.
                partner_output = perm[sibling] ^ 1
                i = inv[partner_output]

        ingress = [color[2 * s] == 1 for s in range(half)]
        sub_perm = [[0] * half, [0] * half]
        for i in range(n):
            c = color[i]
            assert c is not None
            sub_perm[c][i // 2] = perm[i] // 2
        # Output 2t is fed by the subnetwork carrying input inv[2t]; the
        # egress switch is crossed when that is the lower subnetwork.
        egress = [color[inv[2 * t]] == 1 for t in range(half)]

        upper = self._route_rec(sub_perm[0])
        lower = self._route_rec(sub_perm[1])
        middle = [u + l for u, l in zip(upper, lower)]
        return [ingress] + middle + [egress]

    # ------------------------------------------------------------------
    # Evaluation
    # ------------------------------------------------------------------
    def apply(self, settings: List[List[bool]], values: Sequence) -> List:
        """Push ``values`` through the configured switches; returns outputs."""
        if len(values) != self.num_ports:
            raise ValueError("need one value per port")
        return self._apply_rec(settings, list(values))

    def _apply_rec(self, settings: List[List[bool]], values: List) -> List:
        n = len(values)
        if n == 2:
            crossed = settings[0][0]
            return [values[1], values[0]] if crossed else values

        half = n // 2
        ingress, egress = settings[0], settings[-1]
        middle = settings[1:-1]
        upper_in: List = [None] * half
        lower_in: List = [None] * half
        for s in range(half):
            a, b = values[2 * s], values[2 * s + 1]
            if ingress[s]:
                a, b = b, a
            upper_in[s] = a
            lower_in[s] = b
        upper_settings = [stage[: len(stage) // 2] for stage in middle]
        lower_settings = [stage[len(stage) // 2 :] for stage in middle]
        upper_out = self._apply_rec(upper_settings, upper_in)
        lower_out = self._apply_rec(lower_settings, lower_in)
        out: List = [None] * n
        for s in range(half):
            a, b = upper_out[s], lower_out[s]
            if egress[s]:
                a, b = b, a
            out[2 * s] = a
            out[2 * s + 1] = b
        return out

    def permute(self, perm: Sequence[int], values: Sequence) -> List:
        """Route and apply in one call: result[perm[i]] = values[i]."""
        return self.apply(self.route(perm), values)


def route_multicast(
    num_outputs: int, assignment: Dict[int, List[int]]
) -> Tuple[List[int], List[int]]:
    """Plan a multicast as copy-phase + permutation (Yang–Masson style).

    ``assignment`` maps each source index to the list of output ports it
    must reach.  Returns ``(copies, perm)`` where ``copies[j]`` is the
    source replicated into intermediate slot j (sources occupy contiguous
    slot runs, which a distribution network realizes), and ``perm`` is the
    permutation sending slot j to its final output port.  Unused outputs
    are fed from free slots so ``perm`` is a full permutation.
    """
    targets: List[Tuple[int, int]] = []  # (source, output port)
    used_ports = set()
    for src in sorted(assignment):
        for port in assignment[src]:
            if port in used_ports:
                raise ValueError(f"output port {port} requested twice")
            used_ports.add(port)
            targets.append((src, port))
    if len(targets) > num_outputs:
        raise ValueError("more multicast targets than output ports")

    copies: List[int] = [t[0] for t in targets]
    perm: List[int] = [t[1] for t in targets]
    free_ports = [p for p in range(num_outputs) if p not in used_ports]
    filler = copies[0] if copies else 0
    for port in free_ports:
        copies.append(filler)
        perm.append(port)
    return copies, perm


def apply_multicast(
    num_outputs: int,
    assignment: Dict[int, List[int]],
    values: Sequence,
) -> List:
    """Evaluate a multicast mapping through copy-phase + Beneš permutation."""
    copies, perm = route_multicast(num_outputs, assignment)
    slots = [values[src] for src in copies]
    if not _is_power_of_two(max(num_outputs, 2)):
        raise ValueError("output port count must be a power of two")
    net = BenesNetwork(max(num_outputs, 2))
    # apply(route(perm)) delivers slots[j] to output port perm[j].
    return net.apply(net.route(perm), slots)
