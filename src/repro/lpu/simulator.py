"""Macro-cycle-accurate LPU simulator.

Executes a compiled :class:`~repro.core.codegen.Program` on the modeled
hardware of Fig. 2: LPVs of LPEs with snapshot registers, the multicast
switch between adjacent LPVs, counter-addressed input data buffer, output
data buffer with circulation, and instruction queues driven by the
read-address shift register.

Timing model: one macro-cycle = one LPE compute cycle + t_sw switch cycles
(t_c = 6 clock cycles with the paper's 5-stage network).  Data produced by
LPV k at macro-cycle c is steered during c's switch phase and consumed by
LPV k+1 at macro-cycle c+1.  The simulator advances whole macro-cycles; the
clock-cycle count is ``macro_cycles * t_c``.

Operands are numpy ``uint64`` arrays: every bit lane is an independent
Boolean sample, so a single ``run`` call performs batch inference over
``64 * array_size`` samples — the paper's 2m-bit packed operands.

The simulator is the ground truth the tests compare against
:func:`repro.lpu.functional.evaluate_graph` (direct functional evaluation of
the source netlist): for every compiled program the two must agree bit-for-
bit on random inputs.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional

import numpy as np

from ..core.codegen import PORT_A, Program
from ..core.isa import SRC_SWITCH, LPEInstruction, PortSpec
from ..netlist import cells
from .buffers import InputDataBuffer, OutputDataBuffer
from .lpe import InvalidDataError
from .lpv import LPV
from .queues import InstructionQueueArray
from .switch import MulticastSwitch, RouteRequest


@dataclass
class SimulationResult:
    """Outputs plus the run's hardware statistics."""

    outputs: Dict[str, np.ndarray]
    macro_cycles: int
    clock_cycles: int
    compute_instructions_executed: int
    switch_routes: int
    peak_buffer_words: int
    buffer_writes: int

    def samples_per_run(self, word_bits: int, array_size: int) -> int:
        return word_bits * array_size


class LPUSimulator:
    """Executes compiled programs on the modeled LPU."""

    def __init__(self, program: Program) -> None:
        self.program = program
        cfg = program.config
        self.lpvs = [LPV(k, cfg.m) for k in range(cfg.n)]
        self.switches = [
            MulticastSwitch(cfg.m, cfg.m, cfg.switch_stages)
            for _ in range(cfg.n)
        ]
        self.queues = InstructionQueueArray(
            cfg.n, cfg.m, base=program.schedule.base_address
        )
        self.queues.load_program_queues(program.queues)
        self.input_buffer = InputDataBuffer()
        self.output_buffer = OutputDataBuffer()
        self._compute_count = 0

    # ------------------------------------------------------------------
    def _resolve_pi_values(
        self, inputs: Dict[str, np.ndarray]
    ) -> Dict[int, np.ndarray]:
        graph = self.program.graph
        values: Dict[int, np.ndarray] = {}
        shape = None
        for nid in graph.inputs:
            name = graph.input_name(nid)
            if name not in inputs:
                raise KeyError(f"missing value for primary input {name!r}")
            word = np.asarray(inputs[name], dtype=np.uint64)
            if shape is None:
                shape = word.shape
            elif word.shape != shape:
                raise ValueError("all PI arrays must share one shape")
            values[nid] = word
        self._shape = shape if shape is not None else (1,)
        # Constants may also be read from the input buffer path.
        for nid in graph.topological_order():
            op = graph.op_of(nid)
            if op == cells.CONST0:
                values[nid] = np.zeros(self._shape, dtype=np.uint64)
            elif op == cells.CONST1:
                values[nid] = np.full(
                    self._shape, 0xFFFFFFFFFFFFFFFF, dtype=np.uint64
                )
        return values

    def run(self, inputs: Dict[str, np.ndarray]) -> SimulationResult:
        """Execute one inference pass (all packed samples at once)."""
        program = self.program
        pi_values = self._resolve_pi_values(inputs)
        shape = self._shape
        self.output_buffer.reset()
        for lpv in self.lpvs:
            lpv.reset()
        for switch in self.switches:
            switch.reset()  # statistics are per-run, not cumulative
        self.input_buffer.load(program.input_reads, pi_values)
        self._compute_count = 0
        try:
            return self._run_loaded(pi_values, shape)
        finally:
            # Per-batch state (buffer words, snapshot registers) would
            # otherwise pin this batch's arrays until the next run — a
            # leak when a long-lived session alternates batch shapes.
            # Statistics stay readable: release() drops values only.
            self.input_buffer.release()
            self.output_buffer.release()
            for lpv in self.lpvs:
                lpv.reset()
            self._shape = None

    def _run_loaded(
        self, pi_values: Dict[int, np.ndarray], shape
    ) -> SimulationResult:
        program = self.program
        cfg = program.config
        schedule = program.schedule
        graph = program.graph

        # Outputs each LPV produced in the previous macro-cycle.
        prev_outputs: List[List[Optional[np.ndarray]]] = [
            [None] * cfg.m for _ in range(cfg.n)
        ]

        for cycle in range(schedule.makespan):
            new_outputs: List[List[Optional[np.ndarray]]] = []
            input_entry = self.input_buffer.fetch(cycle)
            for k in range(cfg.n):
                instructions = self.queues.fetch(cycle, k)
                routed = self._route_into(k, cycle, instructions, prev_outputs)
                circ_entry = program.circulation_reads.get((cycle, k), {})
                buffered = self._buffered_values(
                    k, input_entry, circ_entry, shape
                )

                def routed_fn(col: int, port: str, spec: PortSpec):
                    return routed.get((col, port))

                def buffered_fn(col: int, port: str, spec: PortSpec):
                    return buffered.get((col, port))

                outs = self.lpvs[k].execute(
                    instructions, routed_fn, buffered_fn, shape
                )
                self._compute_count += sum(
                    1 for instr in instructions if instr.valid
                )
                new_outputs.append(outs)

            # Switch phase: capture circulation / PO values written this
            # macro-cycle into the output data buffer.
            for key, lpv, column in program.buffer_writes.get(cycle, ()):
                value = new_outputs[lpv][column]
                if value is None:
                    raise InvalidDataError(
                        f"buffer write of {key} from LPV {lpv} "
                        f"column {column} at cycle {cycle}: invalid data"
                    )
                self.output_buffer.write(key, value)
            prev_outputs = new_outputs

        outputs: Dict[str, np.ndarray] = {}
        for name, nid in graph.outputs:
            if name in program.po_buffer_keys:
                outputs[name] = self.output_buffer.read(
                    program.po_buffer_keys[name]
                )
            elif nid in pi_values:  # PO aliased to a PI or constant
                outputs[name] = pi_values[nid]
            else:
                raise InvalidDataError(
                    f"output {name!r} was never produced"
                )
        return SimulationResult(
            outputs=outputs,
            macro_cycles=schedule.makespan,
            clock_cycles=schedule.makespan * cfg.t_c,
            compute_instructions_executed=self._compute_count,
            switch_routes=sum(s.total_routes for s in self.switches),
            peak_buffer_words=self.output_buffer.peak_words,
            buffer_writes=self.output_buffer.total_writes,
        )

    # ------------------------------------------------------------------
    def _route_into(
        self,
        k: int,
        cycle: int,
        instructions: List[LPEInstruction],
        prev_outputs: List[List[Optional[np.ndarray]]],
    ) -> Dict:
        """Run the multicast switch feeding LPV k for this macro-cycle."""
        if k == 0:
            return {}
        requests = []
        for col, instr in enumerate(instructions):
            for port_name, spec in ((PORT_A, instr.a), ("b", instr.b)):
                if spec.source == SRC_SWITCH:
                    requests.append(
                        RouteRequest(spec.index, col, port_name)
                    )
        return self.switches[k - 1].route(prev_outputs[k - 1], requests)

    def _buffered_values(
        self,
        k: int,
        input_entry,
        circ_entry,
        shape,
    ) -> Dict:
        """Values the data buffers present to LPV k's ports.

        The input data buffer feeds LPV 0 only; the output data buffer
        (circulation / spill path) can feed any LPV per the compiled
        ``circulation_reads`` table.
        """
        out: Dict = {}
        if k == 0 and input_entry:
            out.update(input_entry)
        for slot, key in circ_entry.items():
            out[slot] = self.output_buffer.read(key)
        return out


def simulate(program: Program, inputs: Dict[str, np.ndarray]) -> SimulationResult:
    """One-shot convenience wrapper around :class:`LPUSimulator`."""
    return LPUSimulator(program).run(inputs)
