"""Logic processing vector (LPV).

"Each LPV contains m LPEs, each of which receives two inputs and produces
one output, resembling a logic gate.  Therefore, each LPV receives up to 2m
input operands and produces a vector of up to m output results" (Section IV).
"""

from __future__ import annotations

from typing import Callable, List, Optional

import numpy as np

from ..core.isa import LPEInstruction
from .lpe import LPE

#: A port-value supplier: (column, port_name, spec) -> word or None.
PortSupplier = Callable[[int, str, object], Optional[np.ndarray]]


class LPV:
    """One vector of m LPEs executing an instruction vector per macro-cycle."""

    def __init__(self, index: int, m: int) -> None:
        self.index = index
        self.m = m
        self.lpes: List[LPE] = [LPE(index, col) for col in range(m)]

    def reset(self) -> None:
        for lpe in self.lpes:
            lpe.reset()

    def execute(
        self,
        instructions: List[LPEInstruction],
        routed: PortSupplier,
        buffered: PortSupplier,
        shape,
    ) -> List[Optional[np.ndarray]]:
        """Execute one macro-cycle; returns the m output words.

        ``routed`` supplies switch-delivered values and ``buffered``
        buffer-delivered values for a given (column, port, spec).
        """
        if len(instructions) != self.m:
            raise ValueError(
                f"LPV {self.index}: expected {self.m} instructions, "
                f"got {len(instructions)}"
            )
        outputs: List[Optional[np.ndarray]] = [None] * self.m
        for col, instr in enumerate(instructions):
            if instr.is_pure_nop:
                continue
            outputs[col] = self.lpes[col].execute(
                instr,
                routed_a=routed(col, "a", instr.a),
                routed_b=routed(col, "b", instr.b),
                buffered_a=buffered(col, "a", instr.a),
                buffered_b=buffered(col, "b", instr.b),
                shape=shape,
            )
        return outputs
