"""Functional reference evaluation and simulator cross-checking.

The cycle-accurate simulator must agree bit-for-bit with direct functional
evaluation of the source netlist.  This module provides the reference
evaluator, random-stimulus generation, and the cross-check helper the test
suite and examples use.
"""

from __future__ import annotations

from typing import Dict, Optional, Tuple

import numpy as np

from ..core.codegen import Program
from ..netlist.graph import LogicGraph


def evaluate_graph(
    graph: LogicGraph, inputs: Dict[str, np.ndarray]
) -> Dict[str, np.ndarray]:
    """Reference functional evaluation (bit-parallel)."""
    return graph.evaluate(inputs)


def random_stimulus(
    graph: LogicGraph,
    array_size: int = 1,
    seed: int = 0,
) -> Dict[str, np.ndarray]:
    """Random uint64 words for every PI of ``graph``."""
    rng = np.random.default_rng(seed)
    return {
        graph.input_name(nid): rng.integers(
            0, 2**64, size=array_size, dtype=np.uint64
        )
        for nid in graph.inputs
    }


def cross_check(
    program: Program,
    inputs: Optional[Dict[str, np.ndarray]] = None,
    seed: int = 0,
    engine: str = "cycle",
    engine_options: Optional[Dict[str, object]] = None,
) -> Tuple[bool, Dict[str, np.ndarray], Dict[str, np.ndarray]]:
    """Run an execution engine and the functional evaluator on the same
    stimulus; returns (agree, lpu_outputs, reference_outputs).

    ``engine`` selects any registered :mod:`repro.engine` backend; the
    default is the cycle-accurate hardware model.  ``engine_options``
    are constructor keywords for that engine (e.g. ``backend=`` for the
    native engine).
    """
    from ..engine import create_engine

    if inputs is None:
        inputs = random_stimulus(program.graph, seed=seed)
    result = create_engine(
        engine, program, **dict(engine_options or {})
    ).run(inputs)
    reference = evaluate_graph(program.graph, inputs)
    agree = set(result.outputs) == set(reference)
    if agree:
        for name, word in reference.items():
            if not np.array_equal(result.outputs[name], word):
                agree = False
                break
    return agree, result.outputs, reference
