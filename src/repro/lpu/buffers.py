"""Input and output data buffers of the LPU.

Section V-B: "All MFGs with Lbottom = 0 receive the PI values needed ...
from the input data buffer.  Using a counter, the compiler ensures that the
required PI values are properly stored in different locations of the input
data buffers such that the desired data is accessed correctly every cycle.
This scheme simplifies the address generation compared to a random-access
addressing system."

Section V-C: when an MFG is deeper than the LPV pipeline, "the output data
buffer will perform as the snapshot registers of LPV Ltop+1" and the data
circulates back into LPV 0.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

import numpy as np


class InputDataBuffer:
    """Counter-addressed PI storage feeding LPV 0.

    The compiler's ``input_reads`` table lists, per macro-cycle, which PI
    node each (column, port) slot must carry.  ``load`` materializes the
    buffer contents in cycle order — one entry per PI-consuming macro-cycle,
    exactly the layout a hardware counter walks through — and ``fetch``
    replays them.
    """

    def __init__(self) -> None:
        self._entries: List[Tuple[int, Dict[Tuple[int, str], np.ndarray]]] = []
        self._by_cycle: Dict[int, Dict[Tuple[int, str], np.ndarray]] = {}
        self._counter = 0

    def load(
        self,
        reads: Dict[int, Dict[Tuple[int, str], int]],
        values_by_node: Dict[int, np.ndarray],
    ) -> None:
        """Fill the buffer for one inference pass."""
        self._entries = []
        for cycle in sorted(reads):
            entry = {
                slot: values_by_node[node]
                for slot, node in reads[cycle].items()
            }
            self._entries.append((cycle, entry))
        self._by_cycle = dict(self._entries)
        self._counter = 0

    def release(self) -> None:
        """Drop the batch's operand words (end-of-run housekeeping).

        A buffer loaded for one pass would otherwise pin that pass's
        stimulus arrays until the next ``load`` — a leak when a long-lived
        session alternates batch shapes.
        """
        self._entries = []
        self._by_cycle = {}
        self._counter = 0

    @property
    def num_entries(self) -> int:
        return len(self._entries)

    def words_stored(self) -> int:
        """Total operand words held (the BRAM the resource model counts)."""
        return sum(len(entry) for _, entry in self._entries)

    def fetch(self, cycle: int) -> Optional[Dict[Tuple[int, str], np.ndarray]]:
        """Entry consumed at ``cycle``, advancing the counter (sequential
        access): entries must be fetched in non-decreasing cycle order."""
        entry = self._by_cycle.get(cycle)
        if entry is not None:
            if self._counter < len(self._entries):
                expected_cycle = self._entries[self._counter][0]
                if cycle == expected_cycle:
                    self._counter += 1
                else:
                    raise RuntimeError(
                        f"input buffer accessed out of order: cycle {cycle} "
                        f"but counter expects cycle {expected_cycle}"
                    )
        return entry


class OutputDataBuffer:
    """Output storage doubling as the circulation buffer (Section V-C).

    Entries are keyed by (producer MFG uid, node id): overlapping MFGs may
    compute the same logic node at different times (condition (3) of the
    partitioning), so the producer disambiguates.
    """

    def __init__(self) -> None:
        self._words: Dict[object, np.ndarray] = {}
        self.total_writes = 0
        self.peak_words = 0

    def reset(self) -> None:
        self._words.clear()
        self.total_writes = 0
        self.peak_words = 0

    def release(self) -> None:
        """Drop the stored words but keep this run's statistics readable."""
        self._words.clear()

    def write(self, key, value: np.ndarray) -> None:
        if value is None:
            raise ValueError(f"writing invalid data for {key}")
        self._words[key] = value
        self.total_writes += 1
        self.peak_words = max(self.peak_words, len(self._words))

    def read(self, key) -> np.ndarray:
        if key not in self._words:
            raise KeyError(f"{key} was never written to the buffer")
        return self._words[key]

    def __contains__(self, key) -> bool:
        return key in self._words

    @property
    def live_words(self) -> int:
        return len(self._words)
