"""Logic processing element (LPE).

"Each LPE contains a logic unit where an elementary Boolean operation can be
performed, and two snapshot registers where each of the LPE inputs can be
temporarily stored for a certain data lifecycle determined by the compiler"
(Section IV).

An LPE works on full operand words (2m bits packed into numpy uint64
arrays), so one ``execute`` call processes ``word_bits`` independent Boolean
samples.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from ..netlist import cells
from ..core.isa import (
    NOP,
    LPEInstruction,
    PortSpec,
    SRC_CONST,
    SRC_INPUT,
    SRC_SNAPSHOT,
    SRC_SWITCH,
)


class InvalidDataError(RuntimeError):
    """An instruction consumed a value that was never validly produced."""


class LPE:
    """One logic processing element: a logic unit plus two snapshot registers."""

    def __init__(self, lpv_index: int, column: int) -> None:
        self.lpv_index = lpv_index
        self.column = column
        self.snapshot_a: Optional[np.ndarray] = None
        self.snapshot_b: Optional[np.ndarray] = None

    def reset(self) -> None:
        self.snapshot_a = None
        self.snapshot_b = None

    def _resolve(
        self,
        port_name: str,
        spec: PortSpec,
        routed: Optional[np.ndarray],
        buffered: Optional[np.ndarray],
        shape,
    ) -> Optional[np.ndarray]:
        """Value presented at one operand port this macro-cycle."""
        if spec.source == SRC_SWITCH:
            value = routed
        elif spec.source == SRC_SNAPSHOT:
            value = self.snapshot_a if port_name == "a" else self.snapshot_b
        elif spec.source == SRC_INPUT:
            value = buffered
        elif spec.source == SRC_CONST:
            if spec.index:
                value = np.full(shape, 0xFFFFFFFFFFFFFFFF, dtype=np.uint64)
            else:
                value = np.zeros(shape, dtype=np.uint64)
        else:  # pragma: no cover - PortSpec validates sources
            raise ValueError(f"unknown source {spec.source!r}")
        if spec.latch:
            if value is None:
                raise InvalidDataError(
                    f"LPE({self.lpv_index},{self.column}) port {port_name}: "
                    "latching an invalid value"
                )
            if port_name == "a":
                self.snapshot_a = value
            else:
                self.snapshot_b = value
        return value

    def execute(
        self,
        instr: LPEInstruction,
        routed_a: Optional[np.ndarray],
        routed_b: Optional[np.ndarray],
        buffered_a: Optional[np.ndarray],
        buffered_b: Optional[np.ndarray],
        shape,
    ) -> Optional[np.ndarray]:
        """Run one macro-cycle; returns the output word (None if invalid).

        ``routed_*`` are the values the switch delivered to this LPE's ports
        (from the previous LPV's last macro-cycle), ``buffered_*`` the values
        the data buffers delivered (LPV 0 only).
        """
        val_a = self._resolve("a", instr.a, routed_a, buffered_a, shape)
        val_b = self._resolve("b", instr.b, routed_b, buffered_b, shape)
        if not instr.valid:
            return None
        if instr.op == NOP:  # pragma: no cover - isa forbids valid NOPs
            return None
        operands = [val_a]
        if cells.arity(instr.op) == 2:
            operands.append(val_b)
        for i, operand in enumerate(operands):
            if operand is None:
                raise InvalidDataError(
                    f"LPE({self.lpv_index},{self.column}) op {instr.op!r} "
                    f"port {'ab'[i]}: consuming an invalid value "
                    f"(node {instr.node})"
                )
        return cells.eval_op(instr.op, *operands)
