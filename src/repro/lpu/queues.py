"""Instruction queue arrays and the read-address shift register.

Fig. 6: "a LPV stage and the 5 stages of the subsequent switch network form
a block configured by a 6 instruction queues block, in which each memory
takes the read address from its predecessor every cycle.  The instruction
queues are accessible through a read address shift register."

The behavioural consequence, which this module implements literally: the
address injected by the read-address incrementor at macro-cycle c reaches
LPV k at macro-cycle c + k, so LPV k at macro-cycle c executes the entry at
address c - k (plus a global base offset).  An MFG issued at cycle s with
bottom LPV b therefore reads one address, s - b, on every LPV it visits —
the paper's memLoc.
"""

from __future__ import annotations

from typing import Dict, List, Optional

from ..core.isa import LPEInstruction, NOP_INSTRUCTION


class InstructionQueue:
    """One LPV's instruction memory, indexed by normalized address."""

    def __init__(self, lpv_index: int, m: int) -> None:
        self.lpv_index = lpv_index
        self.m = m
        self._entries: Dict[int, List[LPEInstruction]] = {}

    def write(self, address: int, vector: List[LPEInstruction]) -> None:
        if address < 0:
            raise ValueError("queue addresses are non-negative")
        if len(vector) != self.m:
            raise ValueError(
                f"instruction vector must have {self.m} entries, "
                f"got {len(vector)}"
            )
        if address in self._entries:
            raise ValueError(
                f"LPV {self.lpv_index}: address {address} written twice"
            )
        self._entries[address] = list(vector)

    def read(self, address: int) -> List[LPEInstruction]:
        """NOP vector when nothing was written (idle macro-cycle)."""
        vec = self._entries.get(address)
        if vec is None:
            return [NOP_INSTRUCTION] * self.m
        return vec

    @property
    def depth(self) -> int:
        """Entries needed = highest written address + 1."""
        return max(self._entries, default=-1) + 1

    @property
    def num_entries(self) -> int:
        return len(self._entries)


class ReadAddressShiftRegister:
    """The address pipeline driving all instruction queues.

    ``address_for(cycle, lpv)`` is the address LPV ``lpv`` sees at macro-
    cycle ``cycle``: the incrementor injected ``cycle - lpv`` (offset by the
    program's base) at LPV 0 and it shifted right one LPV per macro-cycle.
    Negative addresses (the pipeline still filling) read as idle.
    """

    def __init__(self, num_lpvs: int, base: int = 0) -> None:
        self.num_lpvs = num_lpvs
        self.base = base

    def address_for(self, cycle: int, lpv: int) -> Optional[int]:
        if not 0 <= lpv < self.num_lpvs:
            raise ValueError(f"LPV index {lpv} out of range")
        address = cycle - lpv - self.base
        return address if address >= 0 else None


class InstructionQueueArray:
    """All LPVs' queues plus the shared shift register."""

    def __init__(self, num_lpvs: int, m: int, base: int = 0) -> None:
        self.queues = [InstructionQueue(k, m) for k in range(num_lpvs)]
        self.shift_register = ReadAddressShiftRegister(num_lpvs, base)
        self.m = m

    def load_program_queues(
        self, queues: Dict[int, Dict[int, List[LPEInstruction]]]
    ) -> None:
        for lpv, entries in queues.items():
            for address, vector in entries.items():
                self.queues[lpv].write(address, vector)

    def fetch(self, cycle: int, lpv: int) -> List[LPEInstruction]:
        address = self.shift_register.address_for(cycle, lpv)
        if address is None:
            return [NOP_INSTRUCTION] * self.m
        return self.queues[lpv].read(address)

    @property
    def total_entries(self) -> int:
        return sum(q.num_entries for q in self.queues)

    @property
    def depth(self) -> int:
        return max((q.depth for q in self.queues), default=0)
