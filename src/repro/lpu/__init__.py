"""LPU hardware model: LPEs, LPVs, switch networks, buffers, queues, and the
macro-cycle-accurate simulator (paper Section IV)."""

from .benes import BenesNetwork, apply_multicast, route_multicast
from .buffers import InputDataBuffer, OutputDataBuffer
from .functional import cross_check, evaluate_graph, random_stimulus
from .lpe import LPE, InvalidDataError
from .lpv import LPV
from .queues import (
    InstructionQueue,
    InstructionQueueArray,
    ReadAddressShiftRegister,
)
from .simulator import LPUSimulator, SimulationResult, simulate
from .switch import MulticastSwitch, RouteRequest

__all__ = [
    "BenesNetwork",
    "apply_multicast",
    "route_multicast",
    "InputDataBuffer",
    "OutputDataBuffer",
    "cross_check",
    "evaluate_graph",
    "random_stimulus",
    "LPE",
    "InvalidDataError",
    "LPV",
    "InstructionQueue",
    "InstructionQueueArray",
    "ReadAddressShiftRegister",
    "LPUSimulator",
    "SimulationResult",
    "simulate",
    "MulticastSwitch",
    "RouteRequest",
]
