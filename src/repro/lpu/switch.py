"""The inter-LPV multicast switch network (functional model).

"To pass data from the ith LPV to the (i+1)th LPV, we use a non-blocking
multicasting multi-stage switch network" (Section IV) — the paper deploys
the 5-stage non-blocking broadcast network of Yang & Masson [20], so one
macro-cycle costs 1 (compute) + 5 (steering) = 6 clock cycles.

Because the network is strictly non-blocking for multicast, *any* mapping
from the m producer columns to the 2m consumer ports is realizable; the
functional model therefore applies an arbitrary multicast routing table in
one step and charges ``switch_stages`` clock cycles of latency.  The
companion module :mod:`repro.lpu.benes` builds an explicit multi-stage
network and routes it switch-by-switch to *demonstrate* realizability; the
LPU simulator uses this fast functional model.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

import numpy as np


@dataclass(frozen=True)
class RouteRequest:
    """Route producer column ``src`` to consumer (column, port) ``dst``."""

    src: int
    dst_column: int
    dst_port: str  # "a" | "b"


class MulticastSwitch:
    """Functional non-blocking multicast switch between adjacent LPVs.

    Tracks the routing statistics the FPGA resource model consumes (peak
    fan-out, total routes) and enforces the structural port limits: each
    destination port receives at most one source; a source may feed any
    number of destinations (multicast).
    """

    def __init__(self, num_inputs: int, num_output_columns: int, stages: int = 5):
        if num_inputs < 1 or num_output_columns < 1:
            raise ValueError("switch needs at least one input and output")
        self.num_inputs = num_inputs
        self.num_output_columns = num_output_columns
        self.stages = stages
        self.total_routes = 0
        self.peak_fanout = 0

    def reset(self) -> None:
        """Clear the per-run routing statistics."""
        self.total_routes = 0
        self.peak_fanout = 0

    @property
    def latency_cycles(self) -> int:
        return self.stages

    def route(
        self,
        inputs: List[Optional[np.ndarray]],
        requests: List[RouteRequest],
    ) -> Dict[Tuple[int, str], Optional[np.ndarray]]:
        """Apply a multicast routing table to one macro-cycle of data.

        Returns {(dst_column, dst_port): word}.  Raises if two requests
        target the same destination port or reference ports out of range.
        """
        out: Dict[Tuple[int, str], Optional[np.ndarray]] = {}
        fanout: Dict[int, int] = {}
        for req in requests:
            if not 0 <= req.src < self.num_inputs:
                raise ValueError(f"switch source {req.src} out of range")
            if not 0 <= req.dst_column < self.num_output_columns:
                raise ValueError(
                    f"switch destination column {req.dst_column} out of range"
                )
            key = (req.dst_column, req.dst_port)
            if key in out:
                raise ValueError(f"destination port {key} doubly driven")
            out[key] = inputs[req.src]
            fanout[req.src] = fanout.get(req.src, 0) + 1
        self.total_routes += len(requests)
        if fanout:
            self.peak_fanout = max(self.peak_fanout, max(fanout.values()))
        return out
