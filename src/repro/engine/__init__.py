"""Pluggable execution engines for compiled LPU programs.

Five engines execute the same :class:`~repro.core.codegen.Program` with
bit-identical outputs and identical run statistics:

* :class:`CycleAccurateEngine` (``"cycle"``) — the macro-cycle-accurate
  hardware model (ground truth),
* :class:`TraceEngine` (``"trace"``) — the program lowered once to flat
  numpy tables and executed with vectorized gathers,
* :class:`FusedEngine` (``"fused"``) — the lowered tables renamed onto a
  compact register file (liveness-driven slot reuse) and executed by a
  generated per-program kernel over preallocated workspaces: the fastest
  batch path and the serving default,
* :class:`DeltaEngine` (``"delta"``) — stateful incremental execution
  for low-entropy streams: XOR-diffs each sample against the previous
  one and recomputes only the dirty cone, falling back to the fused
  dense kernel when too much changed,
* :class:`NativeEngine` (``"native"``) — the fused tables executed
  through native multi-core/GPU backends (threaded word shards, and —
  import-gated — numba and CuPy over one packed instruction stream),
  falling back deterministically to the fused kernels.

:class:`Session` amortizes compile + lowering across repeated runs.
"""

from .base import (
    SAMPLES_PER_WORD,
    ExecutionEngine,
    SimulationResult,
    available_engines,
    create_engine,
    engine_uses_trace,
    register_engine,
)
from .cycle import CycleAccurateEngine
from .delta import DeltaEngine, DeltaState
from .fused import FusedEngine
from .native import NativeEngine
from .native import capabilities as native_capabilities
from .session import DEFAULT_ENGINE, Session
from .trace import TraceEngine

__all__ = [
    "SAMPLES_PER_WORD",
    "ExecutionEngine",
    "SimulationResult",
    "available_engines",
    "create_engine",
    "engine_uses_trace",
    "register_engine",
    "CycleAccurateEngine",
    "DeltaEngine",
    "DeltaState",
    "FusedEngine",
    "NativeEngine",
    "TraceEngine",
    "Session",
    "DEFAULT_ENGINE",
    "native_capabilities",
]
