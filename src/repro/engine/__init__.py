"""Pluggable execution engines for compiled LPU programs.

Two engines execute the same :class:`~repro.core.codegen.Program` with
bit-identical outputs and identical run statistics:

* :class:`CycleAccurateEngine` (``"cycle"``) — the macro-cycle-accurate
  hardware model (ground truth),
* :class:`TraceEngine` (``"trace"``) — the program lowered once to flat
  numpy tables and executed with vectorized gathers (the fast inference
  path).

:class:`Session` amortizes compile + lowering across repeated runs.
"""

from .base import (
    SAMPLES_PER_WORD,
    ExecutionEngine,
    SimulationResult,
    available_engines,
    create_engine,
    register_engine,
)
from .cycle import CycleAccurateEngine
from .session import DEFAULT_ENGINE, Session
from .trace import TraceEngine

__all__ = [
    "SAMPLES_PER_WORD",
    "ExecutionEngine",
    "SimulationResult",
    "available_engines",
    "create_engine",
    "register_engine",
    "CycleAccurateEngine",
    "TraceEngine",
    "Session",
    "DEFAULT_ENGINE",
]
