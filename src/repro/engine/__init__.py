"""Pluggable execution engines for compiled LPU programs.

Three engines execute the same :class:`~repro.core.codegen.Program` with
bit-identical outputs and identical run statistics:

* :class:`CycleAccurateEngine` (``"cycle"``) — the macro-cycle-accurate
  hardware model (ground truth),
* :class:`TraceEngine` (``"trace"``) — the program lowered once to flat
  numpy tables and executed with vectorized gathers,
* :class:`FusedEngine` (``"fused"``) — the lowered tables renamed onto a
  compact register file (liveness-driven slot reuse) and executed by a
  generated per-program kernel over preallocated workspaces: the fastest
  path and the serving default.

:class:`Session` amortizes compile + lowering across repeated runs.
"""

from .base import (
    SAMPLES_PER_WORD,
    ExecutionEngine,
    SimulationResult,
    available_engines,
    create_engine,
    engine_uses_trace,
    register_engine,
)
from .cycle import CycleAccurateEngine
from .fused import FusedEngine
from .session import DEFAULT_ENGINE, Session
from .trace import TraceEngine

__all__ = [
    "SAMPLES_PER_WORD",
    "ExecutionEngine",
    "SimulationResult",
    "available_engines",
    "create_engine",
    "engine_uses_trace",
    "register_engine",
    "CycleAccurateEngine",
    "FusedEngine",
    "TraceEngine",
    "Session",
    "DEFAULT_ENGINE",
]
