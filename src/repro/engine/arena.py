"""Shared-memory arena for the fused engine's constant index tables.

A spawn-backed :class:`~repro.serve.pool.WorkerPool` boots every child
process from the same artifact bytes — correct, but each child then
decodes a private copy of the fused program's per-level gather tables
(``a_index`` / ``b_index`` / ``out_index``), the dominant constant
memory of a fused deployment.  N serving processes pay N copies of
tables that never change after compile.

:class:`SharedTableArena` ends that: the parent publishes the tables
once into one :mod:`multiprocessing.shared_memory` segment, ships the
segment name + layout (a small JSON-able handle) through the worker
initializer, and each child *attaches* — rebinding its fused program's
levels to zero-copy read-only views of the shared segment and dropping
its private copies.  The mutable per-worker state (register file,
gather scratch) stays process-private; only the immutable tables are
shared, so there is nothing to race on.

The rebind verifies content before swapping: a child whose decoded
tables differ from the published ones (version skew, wrong artifact)
keeps its private copies rather than silently computing with someone
else's schedule.
"""

from __future__ import annotations

from multiprocessing import shared_memory
from typing import Dict, List, Optional, Tuple

import numpy as np

from ..core.liveness import FusedProgram

__all__ = ["SharedTableArena", "fused_table_arrays"]

#: segment offsets are 8-byte aligned (every table is int64/intp here,
#: but alignment is kept explicit so the layout never depends on it).
_ALIGN = 8


def _aligned(offset: int) -> int:
    return (offset + _ALIGN - 1) // _ALIGN * _ALIGN


def fused_table_arrays(
    fused: FusedProgram,
) -> List[Tuple[str, np.ndarray]]:
    """The shareable constant tables of ``fused``, in a stable order:
    ``(name, array)`` per level and port."""
    tables: List[Tuple[str, np.ndarray]] = []
    for i, level in enumerate(fused.levels):
        tables.append((f"level{i}.a_index", np.asarray(level.a_index)))
        tables.append((f"level{i}.b_index", np.asarray(level.b_index)))
        tables.append((f"level{i}.out_index", np.asarray(level.out_index)))
    return tables


class SharedTableArena:
    """One shared-memory segment holding a fused program's index tables.

    Create with :meth:`publish` (the owning parent) or :meth:`attach`
    (a child, from the owner's :meth:`handle`).  The owner unlinks the
    segment on :meth:`close`; attachers only detach.
    """

    def __init__(
        self,
        segment: shared_memory.SharedMemory,
        layout: List[Tuple[str, str, Tuple[int, ...], int]],
        *,
        owner: bool,
    ) -> None:
        self._segment = segment
        self._layout = layout
        self._owner = owner
        self._closed = False

    # ------------------------------------------------------------------
    @classmethod
    def publish(cls, fused: FusedProgram) -> "SharedTableArena":
        """Copy ``fused``'s index tables into a fresh shared segment."""
        tables = fused_table_arrays(fused)
        layout: List[Tuple[str, str, Tuple[int, ...], int]] = []
        offset = 0
        for name, array in tables:
            offset = _aligned(offset)
            layout.append(
                (name, array.dtype.str, tuple(array.shape), offset)
            )
            offset += array.nbytes
        segment = shared_memory.SharedMemory(
            create=True, size=max(offset, 1)
        )
        for (name, dtype, shape, start), (_, array) in zip(layout, tables):
            view = np.ndarray(
                shape, dtype=dtype, buffer=segment.buf, offset=start
            )
            view[...] = array
        return cls(segment, layout, owner=True)

    def handle(self) -> Dict[str, object]:
        """A picklable description a child passes to :meth:`attach`."""
        return {
            "segment": self._segment.name,
            "layout": [
                [name, dtype, list(shape), offset]
                for name, dtype, shape, offset in self._layout
            ],
        }

    @classmethod
    def attach(cls, handle: Dict[str, object]) -> "SharedTableArena":
        """Open the owner's segment read-only (child side).

        Attaching must not enroll the segment with the resource tracker:
        on Pythons before ``track=False`` existed, an attacher's exit
        would otherwise unlink the segment out from under its siblings
        (and a manual unregister is no better — the tracker's set is
        name-keyed, so it would drop the *owner's* registration).  The
        register call is suppressed for the duration of the attach.
        """
        from multiprocessing import resource_tracker

        original_register = resource_tracker.register
        resource_tracker.register = lambda *args, **kwargs: None
        try:
            segment = shared_memory.SharedMemory(
                name=str(handle["segment"])
            )
        finally:
            resource_tracker.register = original_register
        layout = [
            (str(name), str(dtype), tuple(int(d) for d in shape),
             int(offset))
            for name, dtype, shape, offset in handle["layout"]
        ]
        return cls(segment, layout, owner=False)

    # ------------------------------------------------------------------
    @property
    def size(self) -> int:
        """Bytes in the shared segment."""
        return self._segment.size

    @property
    def num_tables(self) -> int:
        return len(self._layout)

    def arrays(self) -> Dict[str, np.ndarray]:
        """Read-only zero-copy views of every table, by name."""
        views: Dict[str, np.ndarray] = {}
        for name, dtype, shape, offset in self._layout:
            view = np.ndarray(
                shape, dtype=dtype, buffer=self._segment.buf, offset=offset
            )
            view.setflags(write=False)
            views[name] = view
        return views

    def rebind(self, fused: FusedProgram, *, verify: bool = True) -> int:
        """Swap ``fused``'s level tables for shared views; returns the
        private bytes released.

        With ``verify`` (the default) every private table is compared
        bit-for-bit against its shared counterpart first, and a mismatch
        raises ``ValueError`` with nothing swapped — a child never
        silently executes someone else's schedule.
        """
        views = self.arrays()
        expected = fused_table_arrays(fused)
        if len(expected) != len(self._layout):
            raise ValueError(
                "shared arena does not match this fused program: "
                f"{len(self._layout)} tables vs {len(expected)}"
            )
        swaps = []
        for name, array in expected:
            view = views.get(name)
            if view is None or view.shape != array.shape:
                raise ValueError(
                    f"shared arena has no matching table for {name!r}"
                )
            if verify and not np.array_equal(
                view, array.astype(view.dtype, copy=False)
            ):
                raise ValueError(
                    f"shared arena table {name!r} differs from this "
                    "fused program's — refusing to rebind"
                )
            swaps.append((name, view.astype(np.intp, copy=False)))
        released = 0
        by_level: Dict[int, Dict[str, np.ndarray]] = {}
        for name, view in swaps:
            level_part, attr = name.split(".", 1)
            by_level.setdefault(int(level_part[len("level"):]), {})[
                attr
            ] = view
        for index, attrs in by_level.items():
            level = fused.levels[index]
            for attr, view in attrs.items():
                released += np.asarray(getattr(level, attr)).nbytes
                view.setflags(write=False)
                # FusedLevel is frozen; the swap preserves value
                # equality (verified above), only the backing store
                # moves into the shared segment.
                object.__setattr__(level, attr, view)
        return released

    def close(self) -> None:
        """Detach; the owner also unlinks the segment."""
        if self._closed:
            return
        self._closed = True
        try:
            self._segment.close()
        finally:
            if self._owner:
                try:
                    self._segment.unlink()
                except FileNotFoundError:  # pragma: no cover
                    pass

    def __enter__(self) -> "SharedTableArena":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        role = "owner" if self._owner else "attached"
        return (
            f"SharedTableArena({self._segment.name}, {role}, "
            f"tables={self.num_tables}, bytes={self.size})"
        )
