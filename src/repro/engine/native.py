"""The native engine: multi-core and GPU backends over the fused tables.

Every engine value is a ``uint64`` word of 64 parallel Boolean sample
lanes and every gate is one bitwise op over whole words — the layout the
paper's LPU exploits in hardware.  The remaining software speed lever is
escaping the Python interpreter loop, and the
:class:`~repro.core.liveness.FusedProgram` register tables are exactly
the right IR to lift: this module packs them into one flat **instruction
stream** (opcode / a / b / out arrays, with within-level read-after-write
hazards resolved by scratch-register MOVs so strictly sequential
execution is bit-identical to the level-parallel semantics) and executes
it through pluggable backends:

* ``"threaded"`` — pure numpy/stdlib, always available: the batch word
  axis is split into per-thread shards, each running the exec-generated
  rowwise kernel over its own workspace.  Numpy ufuncs release the GIL,
  so shards genuinely run on multiple cores; a crossover heuristic falls
  back to single-thread execution below :data:`MIN_SHARD_WORDS` words
  per shard.
* ``"numba"`` — optional: one program-independent
  ``@njit(parallel=True, nogil=True)`` loop over the packed stream,
  parallelized over word blocks.
* ``"cupy"`` — optional: the same stream lifted onto the GPU as one
  ``RawKernel`` (one CUDA thread per word column, sequential over the
  stream — columns are independent, so no synchronization is needed).
* ``"fused"`` — the single-threaded generated kernels, the terminal
  fallback (identical to :class:`~repro.engine.fused.FusedEngine`).

Both optional backends are gated behind import checks — the baseline
pure-numpy environment never imports them — and ``backend="auto"``
resolves through the deterministic fallback chain
``cupy -> numba -> threaded -> fused`` (:func:`capabilities` reports
what this host offers).  The packed stream and device-resident tables
are cached on the ``FusedProgram`` (``native_cache``) alongside the
exec-generated kernels, so a worker pool over one program packs once.

Outputs AND statistics are bit-identical to every other engine; the
parity matrix in ``tests/test_native.py`` and
``benchmarks/bench_native_kernels.py`` gate every backend over all
model workloads, directly and through ``.lpa`` round-trips.
"""

from __future__ import annotations

import math
import os
import threading
from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

import numpy as np

from ..core.codegen import Program
from ..core.liveness import FusedProgram, _level_ops
from ..core.trace import TraceProgram
from ..lpu.simulator import SimulationResult
from ..netlist import cells
from .base import register_engine
from .fused import (
    _WORD,
    FusedEngine,
    _Workspace,
    ensure_timed_kernels,
)

__all__ = [
    "FALLBACK_CHAIN",
    "MIN_SHARD_WORDS",
    "NativeEngine",
    "PackedStream",
    "capabilities",
    "execute_stream",
    "pack_stream",
]

#: deterministic backend preference of ``backend="auto"``.
FALLBACK_CHAIN: Tuple[str, ...] = ("cupy", "numba", "threaded", "fused")

#: below this many words per shard the threaded backend runs
#: single-threaded — thread dispatch costs more than it buys.
MIN_SHARD_WORDS = 64

#: word-block size of the numba kernel's parallel outer loop.
NUMBA_BLOCK_WORDS = 1024

#: packed-stream opcodes (stable — the CUDA source mirrors them).
OP_MOV = 0
OP_AND = 1
OP_OR = 2
OP_XOR = 3
OP_NAND = 4
OP_NOR = 5
OP_XNOR = 6
OP_NOT = 7

_CELL_OPS = {
    cells.AND: OP_AND,
    cells.OR: OP_OR,
    cells.XOR: OP_XOR,
    cells.NAND: OP_NAND,
    cells.NOR: OP_NOR,
    cells.XNOR: OP_XNOR,
    cells.NOT: OP_NOT,
}

_PACK_LOCK = threading.Lock()


# ----------------------------------------------------------------------
# Packed instruction stream
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class PackedStream:
    """The fused levels as one flat, strictly-sequential opcode stream.

    Level semantics (all reads observe pre-level values) are preserved
    under sequential execution by scratch-register MOVs: every register
    both read and written within one level is copied to a scratch row at
    the level head and the level's reads are remapped onto the copy.
    """

    ops: np.ndarray  # uint8, one packed opcode per instruction
    a_reg: np.ndarray  # int32 source register, port a
    b_reg: np.ndarray  # int32 source register, port b (0 for 1-ary)
    out_reg: np.ndarray  # int32 destination register
    level_starts: np.ndarray  # int64, len num_levels+1 (MOVs included)
    num_regs: int  # register rows including scratch

    @property
    def num_instructions(self) -> int:
        return len(self.ops)

    @property
    def num_levels(self) -> int:
        return len(self.level_starts) - 1


def _pack_uncached(fused: FusedProgram) -> PackedStream:
    ops: List[int] = []
    a_reg: List[int] = []
    b_reg: List[int] = []
    out_reg: List[int] = []
    level_starts: List[int] = [0]
    scratch_base = fused.num_regs
    max_scratch = 0
    for level in fused.levels:
        level_ops = _level_ops(level)
        reads: set = set()
        for i, op in enumerate(level_ops):
            reads.add(int(level.a_index[i]))
            if cells.arity(op) == 2:
                reads.add(int(level.b_index[i]))
        written = {int(r) for r in level.out_index}
        hazards = sorted(reads & written)
        remap = {
            reg: scratch_base + j for j, reg in enumerate(hazards)
        }
        max_scratch = max(max_scratch, len(hazards))
        for reg, scratch in remap.items():
            ops.append(OP_MOV)
            a_reg.append(reg)
            b_reg.append(0)
            out_reg.append(scratch)
        for i, op in enumerate(level_ops):
            ops.append(_CELL_OPS[op])
            a = int(level.a_index[i])
            a_reg.append(remap.get(a, a))
            if cells.arity(op) == 2:
                b = int(level.b_index[i])
                b_reg.append(remap.get(b, b))
            else:
                b_reg.append(0)
            out_reg.append(int(level.out_index[i]))
        level_starts.append(len(ops))
    stream = PackedStream(
        ops=np.asarray(ops, dtype=np.uint8),
        a_reg=np.asarray(a_reg, dtype=np.int32),
        b_reg=np.asarray(b_reg, dtype=np.int32),
        out_reg=np.asarray(out_reg, dtype=np.int32),
        level_starts=np.asarray(level_starts, dtype=np.int64),
        num_regs=scratch_base + max_scratch,
    )
    for array in (
        stream.ops, stream.a_reg, stream.b_reg, stream.out_reg,
        stream.level_starts,
    ):
        array.setflags(write=False)
    return stream


def pack_stream(fused: FusedProgram) -> PackedStream:
    """The packed stream of ``fused``, cached on the fusion itself (one
    packing per program process-wide, like the generated kernels)."""
    stream = fused.native_cache.get("stream")
    if stream is not None:
        return stream
    with _PACK_LOCK:
        if "stream" not in fused.native_cache:
            fused.native_cache["stream"] = _pack_uncached(fused)
        return fused.native_cache["stream"]


#: numpy ufunc + invert-after flag per packed opcode (MOV handled apart).
_STREAM_FUNCS = {
    OP_AND: (np.bitwise_and, False),
    OP_OR: (np.bitwise_or, False),
    OP_XOR: (np.bitwise_xor, False),
    OP_NAND: (np.bitwise_and, True),
    OP_NOR: (np.bitwise_or, True),
    OP_XNOR: (np.bitwise_xor, True),
}


def execute_stream(
    stream: PackedStream,
    values: np.ndarray,
    start: int = 0,
    end: Optional[int] = None,
) -> None:
    """Reference interpreter: run ``stream[start:end]`` sequentially over
    a ``(num_regs, words...)`` value table, in place.

    This is the semantics every native backend must match — the numba
    and CUDA kernels are transliterations of this loop — and it runs on
    pure numpy, so the tier-1 suite validates the packed IR (hazard MOVs
    included) without any optional dependency.
    """
    if end is None:
        end = stream.num_instructions
    ops = stream.ops
    a_reg = stream.a_reg
    b_reg = stream.b_reg
    out_reg = stream.out_reg
    for i in range(start, end):
        op = int(ops[i])
        a = values[a_reg[i]]
        o = values[out_reg[i]]
        if op == OP_MOV:
            np.copyto(o, a)
        elif op == OP_NOT:
            np.invert(a, out=o)
        else:
            func, inverted = _STREAM_FUNCS[op]
            func(a, values[b_reg[i]], out=o)
            if inverted:
                np.invert(o, out=o)


# ----------------------------------------------------------------------
# Optional-dependency probes (import-gated: the pure-numpy baseline
# environment never pays for — or fails on — missing accelerators).
# ----------------------------------------------------------------------
_NUMBA_KERNEL = None
_NUMBA_ERROR: Optional[str] = None


def _load_numba_kernel():
    """The program-independent numba stream kernel, compiled once per
    process; ``None`` (with the reason recorded) when numba is absent."""
    global _NUMBA_KERNEL, _NUMBA_ERROR
    if _NUMBA_KERNEL is not None or _NUMBA_ERROR is not None:
        return _NUMBA_KERNEL
    try:
        import numba
    except ImportError as exc:  # pragma: no cover - env-dependent
        _NUMBA_ERROR = str(exc)
        return None

    @numba.njit(parallel=True, nogil=True)
    def _stream_kernel(ops, a_reg, b_reg, out_reg, values, block):
        n = ops.shape[0]
        n_words = values.shape[1]
        n_blocks = (n_words + block - 1) // block
        for bi in numba.prange(n_blocks):
            lo = bi * block
            hi = min(lo + block, n_words)
            for i in range(n):
                op = ops[i]
                a = a_reg[i]
                b = b_reg[i]
                o = out_reg[i]
                if op == 0:  # MOV
                    for w in range(lo, hi):
                        values[o, w] = values[a, w]
                elif op == 1:  # AND
                    for w in range(lo, hi):
                        values[o, w] = values[a, w] & values[b, w]
                elif op == 2:  # OR
                    for w in range(lo, hi):
                        values[o, w] = values[a, w] | values[b, w]
                elif op == 3:  # XOR
                    for w in range(lo, hi):
                        values[o, w] = values[a, w] ^ values[b, w]
                elif op == 4:  # NAND
                    for w in range(lo, hi):
                        values[o, w] = ~(values[a, w] & values[b, w])
                elif op == 5:  # NOR
                    for w in range(lo, hi):
                        values[o, w] = ~(values[a, w] | values[b, w])
                elif op == 6:  # XNOR
                    for w in range(lo, hi):
                        values[o, w] = ~(values[a, w] ^ values[b, w])
                else:  # NOT
                    for w in range(lo, hi):
                        values[o, w] = ~values[a, w]

    _NUMBA_KERNEL = _stream_kernel
    return _NUMBA_KERNEL


#: CUDA source of the CuPy backend: one thread per word column, the
#: whole stream executed sequentially per thread.  Columns never share
#: registers *elements* (register rows are indexed [reg][word]), so the
#: only ordering requirement is the within-column program order each
#: thread executes natively; hazard MOVs are already in the stream.
_CUDA_SOURCE = r"""
extern "C" __global__
void lpu_stream(const unsigned char* __restrict__ ops,
                const int* __restrict__ a_reg,
                const int* __restrict__ b_reg,
                const int* __restrict__ out_reg,
                unsigned long long* __restrict__ values,
                const long long n_instr,
                const long long n_words)
{
    const long long w =
        (long long)blockIdx.x * blockDim.x + threadIdx.x;
    if (w >= n_words) return;
    for (long long i = 0; i < n_instr; ++i) {
        const unsigned long long a =
            values[(long long)a_reg[i] * n_words + w];
        const unsigned long long b =
            values[(long long)b_reg[i] * n_words + w];
        unsigned long long r;
        switch (ops[i]) {
            case 0: r = a; break;
            case 1: r = a & b; break;
            case 2: r = a | b; break;
            case 3: r = a ^ b; break;
            case 4: r = ~(a & b); break;
            case 5: r = ~(a | b); break;
            case 6: r = ~(a ^ b); break;
            default: r = ~a; break;
        }
        values[(long long)out_reg[i] * n_words + w] = r;
    }
}
"""

_CUPY = None
_CUPY_ERROR: Optional[str] = None


def _load_cupy():
    """The cupy module with a usable CUDA device, else ``None``."""
    global _CUPY, _CUPY_ERROR
    if _CUPY is not None or _CUPY_ERROR is not None:
        return _CUPY
    try:
        import cupy
        if cupy.cuda.runtime.getDeviceCount() < 1:
            raise RuntimeError("no CUDA device visible")
    except Exception as exc:  # pragma: no cover - env-dependent
        _CUPY_ERROR = str(exc)
        return None
    _CUPY = cupy
    return _CUPY


def _backend_available(name: str) -> bool:
    if name in ("threaded", "fused"):
        return True
    if name == "numba":
        return _load_numba_kernel() is not None
    if name == "cupy":
        return _load_cupy() is not None
    return False


def capabilities() -> Dict[str, object]:
    """What the native engine can run on this host, and why not."""
    report: Dict[str, object] = {
        "fallback_chain": list(FALLBACK_CHAIN),
        "cpu_count": os.cpu_count() or 1,
        "threaded": True,
        "fused": True,
        "numba": _backend_available("numba"),
        "cupy": _backend_available("cupy"),
    }
    if not report["numba"]:
        report["numba_error"] = _NUMBA_ERROR
    if not report["cupy"]:
        report["cupy_error"] = _CUPY_ERROR
    report["auto_backend"] = next(
        name for name in FALLBACK_CHAIN if _backend_available(name)
    )
    return report


# ----------------------------------------------------------------------
@register_engine
class NativeEngine(FusedEngine):
    """Fused-table execution through native multi-core / GPU backends.

    Same program sources, capability surface, outputs, and statistics as
    :class:`~repro.engine.fused.FusedEngine` (it *is* one, sharing the
    fusion, workspaces, and generated kernels), plus the backend options:

    Args:
        backend: ``"auto"`` (default — first available of
            ``cupy -> numba -> threaded -> fused``) or an explicit
            backend name; requesting an unavailable backend raises.
        threads: worker threads of the threaded backend
            (``os.cpu_count()`` default).
        min_shard_words: words per shard below which the threaded
            backend runs single-threaded (:data:`MIN_SHARD_WORDS`
            default).
        rowwise_min_words: the fused vector/rowwise kernel crossover,
            inherited (applies to the single-thread fallback and to each
            shard's kernel choice).
    """

    name = "native"
    uses_trace = True

    def __init__(
        self,
        program: Program,
        trace: Optional[TraceProgram] = None,
        fused: Optional[FusedProgram] = None,
        *,
        backend: str = "auto",
        threads: Optional[int] = None,
        min_shard_words: Optional[int] = None,
        rowwise_min_words: Optional[int] = None,
    ) -> None:
        super().__init__(
            program, trace, fused, rowwise_min_words=rowwise_min_words
        )
        if backend == "auto":
            self.backend = next(
                name for name in FALLBACK_CHAIN
                if _backend_available(name)
            )
        elif backend in FALLBACK_CHAIN:
            if not _backend_available(backend):
                reason = (
                    _NUMBA_ERROR if backend == "numba" else _CUPY_ERROR
                )
                raise ValueError(
                    f"native backend {backend!r} is unavailable on this "
                    f"host: {reason or 'import failed'}"
                )
            self.backend = backend
        else:
            raise ValueError(
                f"unknown native backend {backend!r}; one of "
                f"{('auto',) + FALLBACK_CHAIN}"
            )
        self.threads = int(threads) if threads else (os.cpu_count() or 1)
        if self.threads < 1:
            raise ValueError("threads must be >= 1")
        self.min_shard_words = (
            MIN_SHARD_WORDS
            if min_shard_words is None
            else max(1, int(min_shard_words))
        )
        self._executor: Optional[ThreadPoolExecutor] = None
        #: per-(shard slot, shape) workspaces of the threaded backend —
        #: concurrent shards must never share mutable buffers, so these
        #: are distinct from the inherited per-shape workspaces.
        self._shard_ws: Dict[Tuple[int, Tuple[int, ...]], _Workspace] = {}
        #: per-word-count (num_regs, W) value tables of the stream
        #: backends (numba), scratch rows included.
        self._stream_values: Dict[int, np.ndarray] = {}

    # -- lifecycle -----------------------------------------------------
    def close(self) -> None:
        """Shut down the shard executor (idempotent)."""
        if self._executor is not None:
            self._executor.shutdown(wait=True)
            self._executor = None

    def __del__(self):  # pragma: no cover - interpreter-dependent
        try:
            if self._executor is not None:
                self._executor.shutdown(wait=False)
        except Exception:
            pass

    # -- shared pieces -------------------------------------------------
    def _stats_result(
        self, outputs: Dict[str, np.ndarray]
    ) -> SimulationResult:
        trace = self.trace
        return SimulationResult(
            outputs=outputs,
            macro_cycles=trace.macro_cycles,
            clock_cycles=trace.clock_cycles,
            compute_instructions_executed=trace.compute_instructions,
            switch_routes=trace.switch_routes,
            peak_buffer_words=trace.peak_buffer_words,
            buffer_writes=trace.buffer_writes,
        )

    def _shard_count(self, num_words: int) -> int:
        return max(
            1, min(self.threads, num_words // self.min_shard_words)
        )

    def _ensure_executor(self) -> ThreadPoolExecutor:
        if self._executor is None:
            self._executor = ThreadPoolExecutor(
                max_workers=self.threads,
                thread_name_prefix="repro-native",
            )
        return self._executor

    def _shard_workspace(
        self, slot: int, shape: Tuple[int, ...]
    ) -> _Workspace:
        key = (slot, shape)
        ws = self._shard_ws.get(key)
        if ws is None:
            # One live shape per slot: shard geometry changes with the
            # batch size, so stale shapes would only pin memory.
            for stale in [k for k in self._shard_ws if k[0] == slot]:
                del self._shard_ws[stale]
            ws = _Workspace(self.fused, shape)
            self._shard_ws[key] = ws
        return ws

    # -- threaded word-shard backend -----------------------------------
    def _bind_shard(self, ws, flat, lo: int, hi: int) -> None:
        if self._pi_contiguous:
            ws.pi_block[...] = [word[lo:hi] for word in flat]
        else:
            for reg, word in zip(self.fused.pi_regs.values(), flat):
                np.copyto(ws.rows[reg], word[lo:hi])

    def _run_threaded(
        self, flat: List[np.ndarray], num_words: int, shards: int
    ) -> Dict[str, np.ndarray]:
        bounds = [
            num_words * t // shards for t in range(shards + 1)
        ]
        vector, rowwise = self._kernels
        out_items = list(self.fused.output_regs.items())
        outputs = {
            name: np.empty(num_words, dtype=_WORD)
            for name, _ in out_items
        }

        def run_shard(t: int) -> None:
            lo, hi = bounds[t], bounds[t + 1]
            ws = self._shard_workspace(t, (hi - lo,))
            self._bind_shard(ws, flat, lo, hi)
            kernel = (
                rowwise if hi - lo >= self.rowwise_min_words else vector
            )
            kernel(ws.values, ws.rows, ws.ab_buf)
            for name, reg in out_items:
                outputs[name][lo:hi] = ws.rows[reg]

        executor = self._ensure_executor()
        futures = [
            executor.submit(run_shard, t) for t in range(shards)
        ]
        for future in futures:
            future.result()
        return outputs

    # -- numba stream backend ------------------------------------------
    def _stream_table(self, num_words: int) -> np.ndarray:
        stream = pack_stream(self.fused)
        values = self._stream_values.get(num_words)
        if values is None:
            self._stream_values.clear()  # one live batch size
            values = np.empty(
                (stream.num_regs, num_words), dtype=_WORD
            )
            values[0] = 0
            values[1] = _WORD(0xFFFFFFFFFFFFFFFF)
            self._stream_values[num_words] = values
        return values

    def _bind_stream(
        self, values: np.ndarray, flat: List[np.ndarray]
    ) -> None:
        for reg, word in zip(self.fused.pi_regs.values(), flat):
            np.copyto(values[reg], word)

    def _run_numba(
        self, flat: List[np.ndarray], num_words: int
    ) -> Dict[str, np.ndarray]:
        stream = pack_stream(self.fused)
        kernel = _load_numba_kernel()
        values = self._stream_table(num_words)
        self._bind_stream(values, flat)
        kernel(
            stream.ops, stream.a_reg, stream.b_reg, stream.out_reg,
            values, NUMBA_BLOCK_WORDS,
        )
        return {
            name: values[reg].copy()
            for name, reg in self.fused.output_regs.items()
        }

    # -- cupy stream backend -------------------------------------------
    def _cupy_tables(self, cupy):
        tables = self.fused.native_cache.get("cupy_tables")
        if tables is None:
            stream = pack_stream(self.fused)
            kernel = cupy.RawKernel(_CUDA_SOURCE, "lpu_stream")
            tables = {
                "kernel": kernel,
                "ops": cupy.asarray(stream.ops),
                "a_reg": cupy.asarray(stream.a_reg),
                "b_reg": cupy.asarray(stream.b_reg),
                "out_reg": cupy.asarray(stream.out_reg),
                "n_instr": stream.num_instructions,
                "num_regs": stream.num_regs,
            }
            self.fused.native_cache["cupy_tables"] = tables
        return tables

    def _run_cupy(
        self, flat: List[np.ndarray], num_words: int
    ) -> Dict[str, np.ndarray]:
        cupy = _load_cupy()
        tables = self._cupy_tables(cupy)
        values = cupy.empty(
            (tables["num_regs"], num_words), dtype=_WORD
        )
        values[0] = 0
        values[1] = _WORD(0xFFFFFFFFFFFFFFFF)
        pi_regs = list(self.fused.pi_regs.values())
        if not pi_regs:
            host_block = np.empty((0, num_words), dtype=_WORD)
        else:
            host_block = np.stack(
                [np.ascontiguousarray(w) for w in flat]
            )
        if pi_regs and pi_regs == list(
            range(pi_regs[0], pi_regs[0] + len(pi_regs))
        ):
            values[pi_regs[0]:pi_regs[0] + len(pi_regs)] = (
                cupy.asarray(host_block)
            )
        else:  # pragma: no cover - foreign register layouts
            for reg, word in zip(pi_regs, host_block):
                values[reg] = cupy.asarray(word)
        block = 256
        grid = (num_words + block - 1) // block
        tables["kernel"](
            (grid,), (block,),
            (
                tables["ops"], tables["a_reg"], tables["b_reg"],
                tables["out_reg"], values,
                np.int64(tables["n_instr"]), np.int64(num_words),
            ),
        )
        return {
            name: cupy.asnumpy(values[reg])
            for name, reg in self.fused.output_regs.items()
        }

    # -- dispatch ------------------------------------------------------
    def run(self, inputs: Dict[str, np.ndarray]) -> SimulationResult:
        words, shape = self._gather_inputs(inputs)
        words, shape, squeeze = self._promote_scalars(words, shape)
        num_words = int(math.prod(shape))
        with self._run_lock:
            outputs = None
            if self.backend in ("cupy", "numba", "threaded"):
                flat = [word.reshape(-1) for word in words]
                if self.backend == "cupy":
                    outputs = self._run_cupy(flat, num_words)
                elif self.backend == "numba":
                    outputs = self._run_numba(flat, num_words)
                else:
                    shards = self._shard_count(num_words)
                    if shards > 1:
                        outputs = self._run_threaded(
                            flat, num_words, shards
                        )
            if outputs is not None:
                outputs = {
                    name: np.ascontiguousarray(word).reshape(shape)
                    for name, word in outputs.items()
                }
                result = self._stats_result(outputs)
            else:
                # Terminal fallback (and the threaded backend's small-
                # batch crossover): the single-thread generated kernels.
                ws = self.workspace(shape)
                self._bind_inputs(ws, words)
                vector, rowwise = self._kernels
                kernel = (
                    rowwise
                    if num_words >= self.rowwise_min_words
                    else vector
                )
                kernel(ws.values, ws.rows, ws.ab_buf)
                result = self._result(ws)
        if squeeze:
            for name in result.outputs:
                result.outputs[name] = result.outputs[name].reshape(())
        return result

    # -- profiling -----------------------------------------------------
    def profile_levels(
        self, inputs: Dict[str, np.ndarray], *, repeats: int = 1
    ) -> List[Dict[str, object]]:
        """Per-level timing through the backend this engine runs.

        The threaded backend profiles every shard concurrently with the
        timed generated kernels and reports the per-level critical path
        (max across shards); the stream backends (numba/cupy) time
        per-level sub-stream launches; everything else inherits the
        fused timed-kernel profile.  Records carry a ``backend`` key.
        """
        words, shape = self._gather_inputs(inputs)
        num_words = int(math.prod(shape)) if shape != () else 1
        backend = self.backend
        if backend == "threaded" and self._shard_count(num_words) > 1:
            records = self._profile_threaded(inputs, repeats=repeats)
        elif backend in ("numba", "cupy"):
            records = self._profile_stream(inputs, repeats=repeats)
        else:
            records = super().profile_levels(inputs, repeats=repeats)
        for record in records:
            record["backend"] = backend
        return records

    def _profile_threaded(
        self, inputs: Dict[str, np.ndarray], *, repeats: int = 1
    ) -> List[Dict[str, object]]:
        words, shape = self._gather_inputs(inputs)
        words, shape, _squeeze = self._promote_scalars(words, shape)
        num_words = int(math.prod(shape))
        num_levels = len(self.fused.levels)
        with self._run_lock:
            shards = self._shard_count(num_words)
            flat = [word.reshape(-1) for word in words]
            bounds = [
                num_words * t // shards for t in range(shards + 1)
            ]
            timed_vector, timed_rowwise = ensure_timed_kernels(
                self.fused
            )
            shard_times = np.zeros(
                (shards, num_levels), dtype=np.float64
            )

            def profile_shard(t: int) -> None:
                lo, hi = bounds[t], bounds[t + 1]
                ws = self._shard_workspace(t, (hi - lo,))
                kernel = (
                    timed_rowwise
                    if hi - lo >= self.rowwise_min_words
                    else timed_vector
                )
                for _ in range(max(1, int(repeats))):
                    self._bind_shard(ws, flat, lo, hi)
                    kernel(
                        ws.values, ws.rows, ws.ab_buf, shard_times[t]
                    )

            executor = self._ensure_executor()
            futures = [
                executor.submit(profile_shard, t)
                for t in range(shards)
            ]
            for future in futures:
                future.result()
            critical = shard_times.max(axis=0)
            records: List[Dict[str, object]] = []
            for index, level in enumerate(self.fused.levels):
                records.append(
                    {
                        "level": index,
                        "cycle": level.cycle,
                        "instructions": level.num_instructions,
                        "segments": len(level.segments),
                        "seconds": float(critical[index]),
                        "kernel": "threaded-shards",
                        "shards": shards,
                    }
                )
        return records

    def _profile_stream(
        self, inputs: Dict[str, np.ndarray], *, repeats: int = 1
    ) -> List[Dict[str, object]]:
        import time

        words, shape = self._gather_inputs(inputs)
        words, shape, _squeeze = self._promote_scalars(words, shape)
        num_words = int(math.prod(shape))
        stream = pack_stream(self.fused)
        with self._run_lock:
            flat = [word.reshape(-1) for word in words]
            values = self._stream_table(num_words)
            kernel = (
                _load_numba_kernel() if self.backend == "numba" else None
            )
            times = np.zeros(stream.num_levels, dtype=np.float64)
            for _ in range(max(1, int(repeats))):
                self._bind_stream(values, flat)
                for index in range(stream.num_levels):
                    s = int(stream.level_starts[index])
                    e = int(stream.level_starts[index + 1])
                    start = time.perf_counter()
                    if kernel is not None:
                        kernel(
                            stream.ops[s:e], stream.a_reg[s:e],
                            stream.b_reg[s:e], stream.out_reg[s:e],
                            values, NUMBA_BLOCK_WORDS,
                        )
                    else:  # cupy profiles through the host interpreter
                        execute_stream(stream, values, s, e)
                    times[index] += time.perf_counter() - start
            records: List[Dict[str, object]] = []
            for index, level in enumerate(self.fused.levels):
                records.append(
                    {
                        "level": index,
                        "cycle": level.cycle,
                        "instructions": level.num_instructions,
                        "segments": len(level.segments),
                        "seconds": float(times[index]),
                        "kernel": "stream",
                    }
                )
        return records

    # -- diagnostics ---------------------------------------------------
    def backend_stats(self) -> Dict[str, object]:
        """The active backend and its tuning knobs (for benches/CLI)."""
        return {
            "backend": self.backend,
            "threads": self.threads,
            "min_shard_words": self.min_shard_words,
            "rowwise_min_words": self.rowwise_min_words,
            "stream_instructions": (
                pack_stream(self.fused).num_instructions
            ),
            "stream_regs": pack_stream(self.fused).num_regs,
            "capabilities": capabilities(),
        }
