"""The trace engine: precompiled vectorized execution of lowered programs.

Construction lowers the program once (:func:`repro.core.trace.lower_program`)
into flat opcode/operand-index tables grouped by macro-cycle.  Each run then
materializes one value table of shape ``(num_slots, *batch_shape)`` and
sweeps the macro-cycle levels: gather the operand rows with one fancy index
per port, apply each Boolean opcode to its contiguous segment with numpy's
bitwise kernels, and write the level's results back as one contiguous block.
No per-instruction Python dispatch remains — per macro-cycle the work is a
handful of array operations over the whole batch, which is what makes large
``array_size`` batches order(s)-of-magnitude faster than the cycle-accurate
interpreter while remaining bit-identical to it.

Statistics (macro-cycles, instruction counts, switch routes, buffer traffic)
are computed during lowering — they depend on the program alone — and are
reported identically to the cycle-accurate engine, per run.
"""

from __future__ import annotations

import time
from typing import Dict, List, Optional, Tuple

import numpy as np

from ..core.codegen import Program
from ..core.trace import TraceProgram, lower_program
from ..netlist import cells
from ..lpu.simulator import SimulationResult
from .base import ExecutionEngine, register_engine

_WORD = np.uint64


@register_engine
class TraceEngine(ExecutionEngine):
    """Vectorized execution of a program lowered to flat numpy tables."""

    name = "trace"
    uses_trace = True

    @classmethod
    def from_artifact(cls, artifact, **options) -> "TraceEngine":
        return cls(artifact.program, artifact.trace_program(), **options)

    def __init__(
        self, program: Program, trace: Optional[TraceProgram] = None
    ) -> None:
        super().__init__(program)
        self.trace = trace if trace is not None else lower_program(program)
        # Bind each level's opcode segments to their word kernels up front.
        self._levels = [
            (
                level.out_start,
                level.a_index,
                level.b_index,
                tuple(
                    (cells.WORD_FUNCS[seg.op], cells.arity(seg.op),
                     seg.start, seg.end)
                    for seg in level.segments
                ),
            )
            for level in self.trace.levels
        ]

    # ------------------------------------------------------------------
    def _gather_inputs(
        self, inputs: Dict[str, np.ndarray]
    ) -> Tuple[Dict[str, np.ndarray], Tuple[int, ...]]:
        words: Dict[str, np.ndarray] = {}
        shape: Optional[Tuple[int, ...]] = None
        for name in self.trace.pi_slots:
            if name not in inputs:
                raise KeyError(f"missing value for primary input {name!r}")
            word = np.asarray(inputs[name], dtype=_WORD)
            if shape is None:
                shape = word.shape
            elif word.shape != shape:
                raise ValueError("all PI arrays must share one shape")
            words[name] = word
        return words, shape if shape is not None else (1,)

    def _fresh_values(self, inputs: Dict[str, np.ndarray]) -> np.ndarray:
        """A value table with constants and PI words bound (one run's
        mutable state — shared by run() and profile_levels())."""
        trace = self.trace
        words, shape = self._gather_inputs(inputs)
        values = np.empty((trace.num_slots,) + shape, dtype=_WORD)
        values[0] = 0
        values[1] = _WORD(0xFFFFFFFFFFFFFFFF)
        for name, slot in trace.pi_slots.items():
            values[slot] = words[name]
        return values

    def run(self, inputs: Dict[str, np.ndarray]) -> SimulationResult:
        trace = self.trace
        values = self._fresh_values(inputs)

        for out_start, a_index, b_index, segments in self._levels:
            a = values[a_index]
            out = values[out_start:out_start + len(a_index)]
            for func, arity, s, e in segments:
                if arity == 2:
                    out[s:e] = func(a[s:e], values[b_index[s:e]])
                else:
                    out[s:e] = func(a[s:e])

        outputs = {
            name: values[slot].copy()
            for name, slot in trace.output_slots.items()
        }
        return SimulationResult(
            outputs=outputs,
            macro_cycles=trace.macro_cycles,
            clock_cycles=trace.clock_cycles,
            compute_instructions_executed=trace.compute_instructions,
            switch_routes=trace.switch_routes,
            peak_buffer_words=trace.peak_buffer_words,
            buffer_writes=trace.buffer_writes,
        )

    def profile_levels(
        self, inputs: Dict[str, np.ndarray]
    ) -> List[Dict[str, object]]:
        """Per-level wall time of one run (the diagnostic view behind
        ``repro throughput --json``)."""
        values = self._fresh_values(inputs)
        records = []
        # The loop body mirrors run()'s level execution exactly, with a
        # timer around each level — keep the two in sync.
        for index, (out_start, a_index, b_index, segments) in enumerate(
            self._levels
        ):
            start = time.perf_counter()
            a = values[a_index]
            out = values[out_start:out_start + len(a_index)]
            for func, arity, s, e in segments:
                if arity == 2:
                    out[s:e] = func(a[s:e], values[b_index[s:e]])
                else:
                    out[s:e] = func(a[s:e])
            records.append(
                {
                    "level": index,
                    "cycle": self.trace.levels[index].cycle,
                    "instructions": len(a_index),
                    "segments": len(segments),
                    "seconds": time.perf_counter() - start,
                }
            )
        return records
