"""The pluggable execution-engine interface.

Everything that can execute a compiled :class:`~repro.core.codegen.Program`
implements :class:`ExecutionEngine`: construct it from a program (doing any
one-time lowering there), then call :meth:`~ExecutionEngine.run` any number
of times.  Every run returns a fresh
:class:`~repro.lpu.simulator.SimulationResult` whose statistics cover that
run only — never cumulative state.

Engines register themselves by name in a module-level registry so callers
(the CLI, benchmarks, :class:`~repro.engine.session.Session`) select them
with a string:

* ``"cycle"`` — :class:`~repro.engine.cycle.CycleAccurateEngine`, the
  macro-cycle-accurate hardware model (ground truth),
* ``"trace"`` — :class:`~repro.engine.trace.TraceEngine`, the precompiled
  vectorized fast path.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from typing import Dict, List, Type

import numpy as np

from ..core.codegen import Program
from ..lpu.simulator import SimulationResult

__all__ = [
    "ExecutionEngine",
    "SAMPLES_PER_WORD",
    "SimulationResult",
    "available_engines",
    "create_engine",
    "register_engine",
]

#: Independent Boolean samples carried by one operand word: engines pack
#: operands into numpy ``uint64`` lanes, so every stimulus word is 64
#: parallel samples regardless of the modeled 2m-bit operand width.
SAMPLES_PER_WORD = 64


class ExecutionEngine(ABC):
    """Executes a compiled program; one instance serves many runs."""

    #: Registry name; subclasses override (and register themselves).
    name: str = "abstract"

    def __init__(self, program: Program) -> None:
        self.program = program

    @abstractmethod
    def run(self, inputs: Dict[str, np.ndarray]) -> SimulationResult:
        """Execute one inference pass over ``inputs``.

        ``inputs`` maps every primary-input name to a ``uint64`` array; all
        arrays must share one shape (any shape — every element is a packed
        64-sample word).  Returns the outputs plus this run's statistics.
        """

    @property
    def config(self):
        return self.program.config

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"{type(self).__name__}(program={self.program.graph.name!r})"


_REGISTRY: Dict[str, Type[ExecutionEngine]] = {}


def register_engine(cls: Type[ExecutionEngine]) -> Type[ExecutionEngine]:
    """Class decorator: make ``cls`` selectable by its ``name``."""
    if not cls.name or cls.name == "abstract":
        raise ValueError(f"{cls.__name__} needs a concrete 'name'")
    _REGISTRY[cls.name] = cls
    return cls


def available_engines() -> List[str]:
    """Registered engine names, sorted."""
    return sorted(_REGISTRY)


def create_engine(name: str, source) -> ExecutionEngine:
    """Instantiate the engine registered under ``name``.

    ``source`` is a compiled :class:`Program` or an
    :class:`~repro.artifact.format.ExecutableArtifact`; artifacts hand
    their embedded lowered trace tables to the trace engine, so booting
    from an artifact performs neither compilation nor lowering.
    """
    try:
        cls = _REGISTRY[name]
    except KeyError:
        raise ValueError(
            f"unknown engine {name!r}; available: {available_engines()}"
        ) from None
    from ..artifact.format import ExecutableArtifact

    if isinstance(source, ExecutableArtifact):
        if name == "trace":
            return cls(source.program, source.trace_program())
        return cls(source.program)
    return cls(source)
