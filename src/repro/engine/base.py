"""The pluggable execution-engine interface.

Everything that can execute a compiled :class:`~repro.core.codegen.Program`
implements :class:`ExecutionEngine`: construct it from a program (doing any
one-time lowering there), then call :meth:`~ExecutionEngine.run` any number
of times.  Every run returns a fresh
:class:`~repro.lpu.simulator.SimulationResult` whose statistics cover that
run only — never cumulative state.

Engines register themselves by name in a module-level registry so callers
(the CLI, benchmarks, :class:`~repro.engine.session.Session`) select them
with a string:

* ``"cycle"`` — :class:`~repro.engine.cycle.CycleAccurateEngine`, the
  macro-cycle-accurate hardware model (ground truth),
* ``"trace"`` — :class:`~repro.engine.trace.TraceEngine`, the precompiled
  vectorized path,
* ``"fused"`` — :class:`~repro.engine.fused.FusedEngine`, the trace
  lowering renamed onto a compact register file and executed by a
  generated per-program kernel over preallocated workspaces (the serving
  default).
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from typing import Dict, List, Type

import numpy as np

from ..core.codegen import Program
from ..lpu.simulator import SimulationResult

__all__ = [
    "ExecutionEngine",
    "SAMPLES_PER_WORD",
    "SimulationResult",
    "available_engines",
    "create_engine",
    "engine_uses_trace",
    "register_engine",
]

#: Independent Boolean samples carried by one operand word: engines pack
#: operands into numpy ``uint64`` lanes, so every stimulus word is 64
#: parallel samples regardless of the modeled 2m-bit operand width.
SAMPLES_PER_WORD = 64


class ExecutionEngine(ABC):
    """Executes a compiled program; one instance serves many runs."""

    #: Registry name; subclasses override (and register themselves).
    name: str = "abstract"
    #: True for engines built on the trace lowering — caching layers
    #: pre-lower (and artifact packagers embed tables) for these without
    #: naming individual engines.
    uses_trace: bool = False

    def __init__(self, program: Program) -> None:
        self.program = program

    @classmethod
    def from_artifact(cls, artifact, **options) -> "ExecutionEngine":
        """Construct from a deserialized
        :class:`~repro.artifact.format.ExecutableArtifact`.  The default
        uses the program only; engines with embedded-table fast paths
        override this.  ``options`` are engine constructor keywords
        (see :func:`create_engine`)."""
        return cls(artifact.program, **options)

    @abstractmethod
    def run(self, inputs: Dict[str, np.ndarray]) -> SimulationResult:
        """Execute one inference pass over ``inputs``.

        ``inputs`` maps every primary-input name to a ``uint64`` array; all
        arrays must share one shape (any shape — every element is a packed
        64-sample word).  Returns the outputs plus this run's statistics.
        """

    @property
    def config(self):
        return self.program.config

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"{type(self).__name__}(program={self.program.graph.name!r})"


_REGISTRY: Dict[str, Type[ExecutionEngine]] = {}


def register_engine(cls: Type[ExecutionEngine]) -> Type[ExecutionEngine]:
    """Class decorator: make ``cls`` selectable by its ``name``."""
    if not cls.name or cls.name == "abstract":
        raise ValueError(f"{cls.__name__} needs a concrete 'name'")
    _REGISTRY[cls.name] = cls
    return cls


def available_engines() -> List[str]:
    """Registered engine names, sorted."""
    return sorted(_REGISTRY)


def create_engine(name: str, source, **options) -> ExecutionEngine:
    """Instantiate the engine registered under ``name``.

    ``source`` is a compiled :class:`Program` or an
    :class:`~repro.artifact.format.ExecutableArtifact`; artifacts hand
    their embedded lowered trace tables to the trace engine, so booting
    from an artifact performs neither compilation nor lowering.

    ``options`` are engine-specific constructor keywords (e.g. the
    native engine's ``backend=``/``threads=``, the fused engine's
    ``rowwise_min_words=``); an option the selected engine does not
    accept raises ``TypeError``, like any keyword mismatch.
    """
    try:
        cls = _REGISTRY[name]
    except KeyError:
        raise ValueError(
            f"unknown engine {name!r}; available: {available_engines()}"
        ) from None
    from ..artifact.format import ExecutableArtifact

    if isinstance(source, ExecutableArtifact):
        return cls.from_artifact(source, **options)
    return cls(source, **options)


def engine_uses_trace(name: str) -> bool:
    """True when the engine registered under ``name`` executes the trace
    lowering (so serving caches pre-lower and artifacts embed tables)."""
    cls = _REGISTRY.get(name)
    return bool(cls is not None and cls.uses_trace)
