"""The fused engine: generated per-program kernels over a register file.

Three stacked optimizations over :class:`~repro.engine.trace.TraceEngine`,
all bit-identical to it (outputs and statistics):

1. **Liveness-driven slot reuse** — the lowered trace is renamed onto a
   compact register file (:func:`repro.core.liveness.fuse_trace`), so the
   execution working set is the *peak* number of live values instead of
   one row per instruction, and BUF word-moves are copy-propagated away.
   Smaller tables mean less memory traffic per gather — the software
   analogue of the LPU's circulation buffers.
2. **Preallocated workspaces** — each engine keeps one workspace per
   batch shape (the register file plus one gather scratch) and executes
   with ``take(..., out=...)`` gathers and ufunc ``out=`` kernels, so the
   steady-state run loop performs no array allocation at all.
3. **Per-program generated kernels** — the level/segment loop is lowered
   once into flat ``exec``-compiled Python functions of direct ufunc
   calls: no per-level tuple unpacking, no segment dispatch.  Two kernels
   are generated per program, chosen per run by batch size:

   * the **vector** kernel minimizes Python/numpy *call count* (one
     fused A+B gather per level, segment ufuncs computed in place in the
     gather buffer, one scatter) — fastest when rows are a few words and
     interpreter overhead dominates;
   * the **rowwise** kernel minimizes *memory traffic* (every
     instruction one direct row-view ufunc, no gather/scatter copies at
     all — three row touches per instruction instead of seven) — fastest
     when rows are wide and bandwidth dominates.

   Both are cached on the :class:`~repro.core.liveness.FusedProgram`
   itself, which lives in the process-wide fusion cache — a serving pool
   over one program compiles the kernels once, not once per worker.

One :class:`FusedEngine` instance owns mutable workspaces; a per-engine
lock serializes concurrent :meth:`FusedEngine.run` calls, so sharing one
engine (or :class:`~repro.engine.session.Session`) across threads stays
*correct* — but for thread-PARALLEL serving create one engine per
thread, which is exactly what :class:`~repro.serve.pool.WorkerPool`
does; the renamed tables and the generated kernels are still shared
process-wide.
"""

from __future__ import annotations

import math
import threading
import time
from collections import OrderedDict
from typing import Callable, Dict, List, Optional, Tuple

import numpy as np

from ..core.codegen import Program
from ..core.liveness import (
    FusedProgram,
    _level_ops,
    adopt_fusion,
    fuse_trace,
)
from ..core.trace import _NUM_CONST_SLOTS, TraceProgram, lower_program
from ..lpu.simulator import SimulationResult
from ..netlist import cells
from .base import ExecutionEngine, register_engine

_WORD = np.uint64

#: first primary-input register (right after the pinned constants — the
#: same layout the trace lowering and the liveness allocator pin).
_PI_BASE = _NUM_CONST_SLOTS

#: In the vector kernel, levels with at most this many instructions are
#: inlined as direct row-view ufunc calls (when register aliasing allows
#: it) instead of the gather/compute/scatter sequence.
INLINE_MAX = 4

#: Batch sizes (uint64 words per PI) at or above which the rowwise
#: kernel wins: rows are wide enough that the gather/scatter copies cost
#: more than the extra per-instruction ufunc calls.  The module constant
#: is the default; every engine takes a ``rowwise_min_words`` option to
#: override it per instance (``repro calibrate`` measures the host's
#: actual crossover).
ROWWISE_MIN_WORDS = 32

#: In a non-contiguous (scattered) level, output sub-runs at least this
#: long are written with direct slice copies; only the short remainder
#: goes through one fancy-index scatter.
SCATTER_RUN_MIN = 4

#: Workspaces retained per engine (distinct batch shapes); least recently
#: used beyond this are dropped.
MAX_WORKSPACES = 4

#: base ufunc name + invert-after flag per two-input opcode.
_MISO_KERNELS = {
    cells.AND: ("band", False),
    cells.OR: ("bor", False),
    cells.XOR: ("bxor", False),
    cells.NAND: ("band", True),
    cells.NOR: ("bor", True),
    cells.XNOR: ("bxor", True),
}

_KERNEL_LOCK = threading.Lock()


# ----------------------------------------------------------------------
# Kernel generation
# ----------------------------------------------------------------------
def _rowwise_safe(level) -> bool:
    """True when the level may run as ordered per-instruction statements.

    Safe only if no later instruction reads a register an earlier one of
    the same level writes (an instruction aliasing its *own* output with
    an input is fine: numpy ufuncs handle exact overlap in place).
    """
    ops = _level_ops(level)
    written: set = set()
    for j in range(level.num_instructions):
        if int(level.a_index[j]) in written:
            return False
        if cells.arity(ops[j]) == 2 and int(level.b_index[j]) in written:
            return False
        written.add(int(level.out_index[j]))
    return True


def _emit_rowwise_level(lines: List[str], level) -> None:
    """Every instruction as one direct row-view ufunc statement."""
    ops = _level_ops(level)
    for i, op in enumerate(ops):
        a = int(level.a_index[i])
        r = int(level.out_index[i])
        if op == cells.NOT:
            lines.append(f"    binv(rows[{a}], out=rows[{r}])")
        else:
            b = int(level.b_index[i])
            name, inverted = _MISO_KERNELS[op]
            lines.append(f"    {name}(rows[{a}], rows[{b}], out=rows[{r}])")
            if inverted:
                lines.append(f"    binv(rows[{r}], out=rows[{r}])")


def _emit_gather_level(
    lines: List[str], ns: Dict[str, object], index: int, level
) -> None:
    """One gather/compute level.

    Ports a and b are fetched with a single fused ``take`` of the
    concatenated index vector; segment ufuncs then compute *straight into
    the value table* — the allocator guarantees each level's output
    registers form one contiguous run, so no scatter pass exists.  A
    scatter fallback covers non-contiguous levels (fragmentation-budget
    overflows, foreign artifact producers): the allocator composes those
    from maximal free runs sorted ascending, so the fallback writes each
    sub-run of at least :data:`SCATTER_RUN_MIN` registers as one direct
    slice copy and fancy-scatters only the short remainder.
    """
    k = level.num_instructions
    two_ary = any(cells.arity(seg.op) == 2 for seg in level.segments)
    if two_ary:
        ns[f"AB{index}"] = np.ascontiguousarray(
            np.concatenate([level.a_index, level.b_index])
        )
        lines.append(f"    take(AB{index}, 0, ab_buf[:{2 * k}], 'clip')")
    else:
        ns[f"AB{index}"] = level.a_index
        lines.append(f"    take(AB{index}, 0, ab_buf[:{k}], 'clip')")
    out = level.out_index
    contiguous = bool(np.all(np.diff(out) == 1)) if k > 1 else True
    lo = int(out[0])

    def out_slice(seg) -> str:
        if contiguous:
            return f"values[{lo + seg.start}:{lo + seg.end}]"
        return f"ab_buf[{seg.start}:{seg.end}]"

    for seg in level.segments:
        a = f"ab_buf[{seg.start}:{seg.end}]"
        o = out_slice(seg)
        if seg.op == cells.NOT:
            lines.append(f"    binv({a}, out={o})")
        else:
            b = f"ab_buf[{k + seg.start}:{k + seg.end}]"
            name, inverted = _MISO_KERNELS[seg.op]
            lines.append(f"    {name}({a}, {b}, out={o})")
            if inverted:
                lines.append(f"    binv({o}, out={o})")
    if not contiguous:
        runs: List[Tuple[int, int]] = []  # (start, end) positions
        start = 0
        for j in range(1, k + 1):
            if j == k or int(out[j]) != int(out[j - 1]) + 1:
                runs.append((start, j))
                start = j
        rest = [(s, e) for s, e in runs if e - s < SCATTER_RUN_MIN]
        for s, e in runs:
            if e - s >= SCATTER_RUN_MIN:
                o_lo = int(out[s])
                lines.append(
                    f"    values[{o_lo}:{o_lo + e - s}] = ab_buf[{s}:{e}]"
                )
        if rest:
            pos = np.concatenate(
                [np.arange(s, e, dtype=np.intp) for s, e in rest]
            )
            ns[f"O{index}"] = np.ascontiguousarray(out[pos])
            if len(rest) == len(runs) and len(pos) == k:
                lines.append(f"    values[O{index}] = ab_buf[:{k}]")
            else:
                ns[f"S{index}"] = pos
                lines.append(f"    values[O{index}] = ab_buf[S{index}]")


#: kernel prologue: ufuncs enter as default arguments (local-variable
#: lookups inside the generated body, not global dict lookups) and the
#: bound ``take`` method is hoisted out of the level sequence.
_KERNEL_HEAD = (
    "def _kernel(values, rows, ab_buf, band=_band, bor=_bor, "
    "bxor=_bxor, binv=_binv):\n    take = values.take"
)

#: prologue of the timed profiling kernels: identical dataflow, plus a
#: ``times`` accumulator written once per level.
_TIMED_KERNEL_HEAD = (
    "def _kernel(values, rows, ab_buf, times, band=_band, bor=_bor, "
    "bxor=_bxor, binv=_binv, perf=_perf):\n    take = values.take"
)


def _compile_kernel(lines: List[str], ns: Dict[str, object]):
    source = "\n".join(lines)
    exec(compile(source, "<fused-kernel>", "exec"), ns)  # noqa: S102
    kernel = ns["_kernel"]
    kernel.__source__ = source  # inspectable, for tests and debugging
    return kernel


def generate_kernels(
    fused: FusedProgram,
) -> Tuple[Callable, Callable]:
    """Compile the (vector, rowwise) run kernels of one fused program.

    Each kernel executes every level in place over a workspace:
    ``kernel(values, rows, ab_buf)``.
    """
    base_ns = {
        "_band": np.bitwise_and,
        "_bor": np.bitwise_or,
        "_bxor": np.bitwise_xor,
        "_binv": np.invert,
    }

    vec_ns: Dict[str, object] = dict(base_ns)
    vec_lines = [_KERNEL_HEAD]
    for index, level in enumerate(fused.levels):
        if level.num_instructions <= INLINE_MAX and _rowwise_safe(level):
            _emit_rowwise_level(vec_lines, level)
        else:
            _emit_gather_level(vec_lines, vec_ns, index, level)
    vector = _compile_kernel(vec_lines, vec_ns)

    row_ns: Dict[str, object] = dict(base_ns)
    row_lines = [_KERNEL_HEAD]
    for index, level in enumerate(fused.levels):
        if _rowwise_safe(level):
            _emit_rowwise_level(row_lines, level)
        else:
            _emit_gather_level(row_lines, row_ns, index, level)
    rowwise = _compile_kernel(row_lines, row_ns)
    return vector, rowwise


def ensure_kernels(fused: FusedProgram) -> Tuple[Callable, Callable]:
    """The generated kernels of ``fused``, compiling (once) on first use."""
    kernels = fused.kernel
    if kernels is not None:
        return kernels
    with _KERNEL_LOCK:
        if fused.kernel is None:
            fused.kernel = generate_kernels(fused)
        return fused.kernel


def generate_timed_kernels(
    fused: FusedProgram,
) -> Tuple[Callable, Callable]:
    """The (vector, rowwise) kernels with per-level timing accumulation.

    Identical dataflow to :func:`generate_kernels`, but each level is
    bracketed by ``perf_counter`` reads accumulated into a ``times``
    array: ``kernel(values, rows, ab_buf, times)``.  This is the
    sampling profiler's view of the *actual generated kernels* — not an
    interpreted re-execution — so per-level shares match production runs.
    """
    base_ns = {
        "_band": np.bitwise_and,
        "_bor": np.bitwise_or,
        "_bxor": np.bitwise_xor,
        "_binv": np.invert,
        "_perf": time.perf_counter,
    }
    compiled: List[Callable] = []
    for rowwise in (False, True):
        ns: Dict[str, object] = dict(base_ns)
        lines = [_TIMED_KERNEL_HEAD]
        for index, level in enumerate(fused.levels):
            lines.append("    _t0 = perf()")
            inline = rowwise or level.num_instructions <= INLINE_MAX
            if inline and _rowwise_safe(level):
                _emit_rowwise_level(lines, level)
            else:
                _emit_gather_level(lines, ns, index, level)
            lines.append(f"    times[{index}] += perf() - _t0")
        compiled.append(_compile_kernel(lines, ns))
    return compiled[0], compiled[1]


def ensure_timed_kernels(fused: FusedProgram) -> Tuple[Callable, Callable]:
    """The timed profiling kernels, compiled once and cached on the
    fusion (in ``native_cache``, like every lazily-derived executable)."""
    kernels = fused.native_cache.get("timed_kernels")
    if kernels is not None:
        return kernels
    with _KERNEL_LOCK:
        if "timed_kernels" not in fused.native_cache:
            fused.native_cache["timed_kernels"] = generate_timed_kernels(
                fused
            )
        return fused.native_cache["timed_kernels"]


# ----------------------------------------------------------------------
# Workspaces
# ----------------------------------------------------------------------
class _Workspace:
    """Preallocated buffers for one batch shape: the register file plus
    the whole-level fused a+b gather scratch."""

    __slots__ = ("values", "rows", "ab_buf", "pi_block")

    def __init__(self, fused: FusedProgram, shape: Tuple[int, ...]) -> None:
        self.values = np.empty((fused.num_regs,) + shape, dtype=_WORD)
        self.values[0] = 0
        self.values[1] = _WORD(0xFFFFFFFFFFFFFFFF)
        width = max(2 * fused.max_level_width, 1)
        self.ab_buf = np.empty((width,) + shape, dtype=_WORD)
        # Prebound row views: generated code indexes rows[i] instead of
        # re-slicing values[i] on every rowwise instruction, and input
        # binding concatenates straight into the pinned PI block.
        self.rows = list(self.values)
        self.pi_block = self.values[_PI_BASE:_PI_BASE + len(fused.pi_regs)]

    @property
    def nbytes(self) -> int:
        return self.values.nbytes + self.ab_buf.nbytes


# ----------------------------------------------------------------------
@register_engine
class FusedEngine(ExecutionEngine):
    """Zero-allocation execution of a liveness-renamed lowered program."""

    name = "fused"
    uses_trace = True

    @classmethod
    def from_artifact(cls, artifact, **options) -> "FusedEngine":
        # Embedded renamed tables boot with zero lowering and zero
        # renaming; the engine falls back to fusing the embedded (or
        # freshly lowered) trace when they are absent.
        return cls(
            artifact.program,
            trace=artifact.trace,
            fused=artifact.fused,
            **options,
        )

    def __init__(
        self,
        program: Program,
        trace: Optional[TraceProgram] = None,
        fused: Optional[FusedProgram] = None,
        *,
        rowwise_min_words: Optional[int] = None,
    ) -> None:
        super().__init__(program)
        self.rowwise_min_words = (
            ROWWISE_MIN_WORDS
            if rowwise_min_words is None
            else int(rowwise_min_words)
        )
        if fused is not None and (trace is None or fused.trace is trace):
            # Prebuilt renamed tables (e.g. artifact-embedded): adopt
            # them; a live canonical fusion of the same trace wins.
            self.fused = adopt_fusion(fused)
        else:
            if trace is None:
                trace = lower_program(program)
            self.fused = fuse_trace(trace)
        self.trace = self.fused.trace
        self._kernels = ensure_kernels(self.fused)
        # Workspaces are mutable per-instance state; the lock keeps a
        # Session shared across threads correct (the re-entrancy the
        # old trace default offered), at ~100ns uncontended cost.
        # Thread-PARALLEL serving still wants one engine per worker,
        # which is what WorkerPool builds.
        self._run_lock = threading.Lock()
        self._pi_names = list(self.fused.pi_regs)
        # PI registers are pinned to one contiguous block by the
        # allocator, so binding is a single concatenate into that block;
        # the row-by-row fallback guards the invariant anyway.
        regs = list(self.fused.pi_regs.values())
        self._pi_contiguous = regs == list(
            range(_PI_BASE, _PI_BASE + len(regs))
        )
        self._workspaces: "OrderedDict[Tuple[int, ...], _Workspace]" = \
            OrderedDict()

    # ------------------------------------------------------------------
    def _gather_inputs(
        self, inputs: Dict[str, np.ndarray]
    ) -> Tuple[List[np.ndarray], Tuple[int, ...]]:
        """The PI words in register order, plus their common shape."""
        words: List[np.ndarray] = []
        shape: Optional[Tuple[int, ...]] = None
        for name in self._pi_names:
            try:
                word = inputs[name]
            except KeyError:
                raise KeyError(
                    f"missing value for primary input {name!r}"
                ) from None
            word = np.asarray(word, dtype=_WORD)
            if shape is None:
                shape = word.shape
            elif word.shape != shape:
                raise ValueError("all PI arrays must share one shape")
            words.append(word)
        return words, shape if shape is not None else (1,)

    def workspace(self, shape: Tuple[int, ...]) -> _Workspace:
        """The (pre)allocated workspace for one batch shape."""
        ws = self._workspaces.get(shape)
        if ws is None:
            ws = _Workspace(self.fused, shape)
            self._workspaces[shape] = ws
            while len(self._workspaces) > MAX_WORKSPACES:
                self._workspaces.popitem(last=False)
        else:
            self._workspaces.move_to_end(shape)
        return ws

    def _bind_inputs(
        self, ws: _Workspace, words: List[np.ndarray]
    ) -> None:
        if not words:
            return
        if self._pi_contiguous:
            # One C-level assignment stacks every PI word into the
            # pinned PI block (numpy converts the list in one pass).
            ws.pi_block[...] = words
            return
        rows = ws.rows
        for reg, word in zip(self.fused.pi_regs.values(), words):
            np.copyto(rows[reg], word)

    def _result(self, ws: _Workspace) -> SimulationResult:
        trace = self.trace
        rows = ws.rows
        outputs = {
            name: rows[reg].copy()
            for name, reg in self.fused.output_regs.items()
        }
        return SimulationResult(
            outputs=outputs,
            macro_cycles=trace.macro_cycles,
            clock_cycles=trace.clock_cycles,
            compute_instructions_executed=trace.compute_instructions,
            switch_routes=trace.switch_routes,
            peak_buffer_words=trace.peak_buffer_words,
            buffer_writes=trace.buffer_writes,
        )

    @staticmethod
    def _promote_scalars(words, shape):
        """0-d (scalar-per-PI) stimulus runs as a one-word batch — row
        views of a 1-D value table would be numpy scalars, which ufunc
        ``out=`` rejects.  Outputs are squeezed back to 0-d afterwards,
        matching the trace engine's shapes exactly."""
        if shape != ():
            return words, shape, False
        return [word.reshape(1) for word in words], (1,), True

    def run(self, inputs: Dict[str, np.ndarray]) -> SimulationResult:
        words, shape = self._gather_inputs(inputs)
        words, shape, squeeze = self._promote_scalars(words, shape)
        with self._run_lock:
            ws = self.workspace(shape)
            self._bind_inputs(ws, words)
            vector, rowwise = self._kernels
            kernel = rowwise if math.prod(shape) >= self.rowwise_min_words \
                else vector
            kernel(ws.values, ws.rows, ws.ab_buf)
            result = self._result(ws)
        if squeeze:
            for name in result.outputs:
                result.outputs[name] = result.outputs[name].reshape(())
        return result

    # ------------------------------------------------------------------
    def profile_levels(
        self, inputs: Dict[str, np.ndarray], *, repeats: int = 1
    ) -> List[Dict[str, object]]:
        """Per-level wall time through the *generated* kernels.

        Runs the timed variant of whichever kernel :meth:`run` would pick
        for this batch shape (identical dataflow, one ``perf_counter``
        bracket per level), accumulating over ``repeats`` runs — so the
        per-level shares reflect production execution, not an interpreted
        re-execution."""
        words, shape = self._gather_inputs(inputs)
        words, shape, _squeeze = self._promote_scalars(words, shape)
        with self._run_lock:
            ws = self.workspace(shape)
            timed_vector, timed_rowwise = ensure_timed_kernels(self.fused)
            use_rowwise = math.prod(shape) >= self.rowwise_min_words
            kernel = timed_rowwise if use_rowwise else timed_vector
            times = np.zeros(len(self.fused.levels), dtype=np.float64)
            for _ in range(max(1, int(repeats))):
                self._bind_inputs(ws, words)
                kernel(ws.values, ws.rows, ws.ab_buf, times)
            kernel_name = "rowwise" if use_rowwise else "vector"
            records: List[Dict[str, object]] = []
            for index, level in enumerate(self.fused.levels):
                records.append(
                    {
                        "level": index,
                        "cycle": level.cycle,
                        "instructions": level.num_instructions,
                        "segments": len(level.segments),
                        "seconds": float(times[index]),
                        "kernel": kernel_name,
                    }
                )
        return records

    # ------------------------------------------------------------------
    def calibrate_crossover(
        self,
        *,
        word_sizes: Optional[List[int]] = None,
        repeats: int = 5,
        seed: int = 0,
    ) -> Dict[str, object]:
        """Measure the vector/rowwise kernel crossover on this host.

        Times both generated kernels over a sweep of batch word counts
        (random stimulus, best of ``repeats``) and reports the smallest
        size where the rowwise kernel wins — the measured value to pass
        as ``rowwise_min_words`` (the seed of the ROADMAP autotuning
        item).  Purely diagnostic: does not change this engine's setting.
        """
        from ..lpu.functional import random_stimulus

        if word_sizes is None:
            word_sizes = [1, 2, 4, 8, 16, 32, 64, 128, 256]
        vector, rowwise = self._kernels
        points: List[Dict[str, object]] = []
        crossover: Optional[int] = None
        with self._run_lock:
            for words_n in word_sizes:
                stim = random_stimulus(
                    self.program.graph, array_size=words_n, seed=seed
                )
                bound = [
                    np.asarray(stim[name], dtype=_WORD)
                    for name in self._pi_names
                ]
                ws = self.workspace((words_n,))
                timings = {}
                for label, kernel in (
                    ("vector", vector), ("rowwise", rowwise),
                ):
                    best = float("inf")
                    for _ in range(max(1, int(repeats))):
                        self._bind_inputs(ws, bound)
                        start = time.perf_counter()
                        kernel(ws.values, ws.rows, ws.ab_buf)
                        best = min(best, time.perf_counter() - start)
                    timings[label] = best
                points.append(
                    {
                        "words": words_n,
                        "vector_seconds": timings["vector"],
                        "rowwise_seconds": timings["rowwise"],
                    }
                )
                if (
                    crossover is None
                    and timings["rowwise"] <= timings["vector"]
                ):
                    crossover = words_n
        return {
            "graph": self.program.graph.name,
            "default_rowwise_min_words": ROWWISE_MIN_WORDS,
            "engine_rowwise_min_words": self.rowwise_min_words,
            "measured_crossover_words": crossover,
            "points": points,
        }

    # ------------------------------------------------------------------
    def workspace_stats(self) -> Dict[str, object]:
        """Sizes of the live workspaces (for diagnostics and benches)."""
        return {
            "num_regs": self.fused.num_regs,
            "trace_slots": self.trace.num_slots,
            "max_level_width": self.fused.max_level_width,
            "shapes": {
                str(shape): ws.nbytes
                for shape, ws in self._workspaces.items()
            },
        }
