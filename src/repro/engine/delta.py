"""The delta engine: event-driven incremental execution for streams.

Every other engine recomputes the full gate table on every run.  For the
paper's flagship streaming deployments — network intrusion detection and
jet-substructure triggers — consecutive samples differ in a handful of
bits, so almost all of that work reproduces values already sitting in the
previous run's table.  :class:`DeltaEngine` keeps that table: persistent
**single-assignment rows** (:class:`~repro.core.fanout.FanoutTables`, one
row per instruction so liveness-style register reuse can never clobber a
value a skipped instruction still depends on) plus the previous input
words, per engine *state*.

Each run then:

1. diffs the incoming words against the previous ones (one vectorized
   compare over the primary-input block),
2. seeds the dirty frontier with the consumers of the changed input rows
   (the CSR fanout tables), and sweeps levels in ascending order
   executing **only instructions with a dirty operand**,
3. prunes by value: an executed instruction whose output words are
   unchanged does not propagate — the masking of AND/OR cones keeps
   effective dirty cones far smaller than structural ones,
4. **falls back dense** when dirtiness defeats sparsity: a whole-run
   fallback when the changed-input fraction reaches
   ``dense_input_fraction``, and a per-level bulk path when one level's
   dirty instruction count reaches ``dense_level_fraction`` /
   ``dense_level_min`` — both reuse the fused engine's generated-kernel
   machinery over the dense view of the delta tables, so worst-case cost
   stays ~fused (one kernel over a slightly larger table) instead of
   degrading to per-gate Python.

Results are **bit-identical to the fused engine — outputs and
statistics** — for any stream history: a clean instruction's recorded row
equals what recomputation would produce, by induction over levels.

State and threading: one :class:`DeltaEngine` owns a default
:class:`DeltaState` behind the engine run lock, so ``Session.run`` works
unchanged (each call is one stream step).  Independent streams — e.g.
sticky per-client serving sessions (:class:`repro.serve.stream.
StreamSession`) — get their own :meth:`DeltaEngine.new_state` and run via
:meth:`DeltaEngine.run_with_state`; states are not internally locked, so
drive any single state from one thread at a time.
"""

from __future__ import annotations

import math
import threading
from typing import Dict, List, Optional, Tuple

import numpy as np

from ..core.codegen import Program
from ..core.fanout import FanoutTables, adopt_fanout, build_fanout
from ..core.liveness import FusedProgram, adopt_fusion, fuse_trace
from ..core.trace import TraceProgram, lower_program
from ..lpu.simulator import SimulationResult
from ..netlist import cells
from .base import ExecutionEngine, register_engine
from .fused import _PI_BASE, ROWWISE_MIN_WORDS, ensure_kernels

_WORD = np.uint64

__all__ = ["DeltaEngine", "DeltaState"]


class DeltaState:
    """Persistent per-stream execution state: the single-assignment value
    table, the previous input words, and stream counters.

    Buffers bind lazily to the first run's batch shape; a shape change
    rebinds them and forces one full dense run.
    """

    __slots__ = (
        "shape", "values", "rows", "ab_buf", "pi_block", "prev",
        "incoming", "valid", "runs", "full_runs", "clean_runs",
        "sparse_runs", "dense_fallback_runs", "dense_levels",
        "sparse_instructions",
    )

    def __init__(self) -> None:
        self.shape: Optional[Tuple[int, ...]] = None
        self.values = None
        self.rows: List[np.ndarray] = []
        self.ab_buf = None
        self.pi_block = None
        self.prev = None
        self.incoming = None
        self.valid = False
        self.runs = 0
        self.full_runs = 0
        self.clean_runs = 0
        self.sparse_runs = 0
        self.dense_fallback_runs = 0
        self.dense_levels = 0
        self.sparse_instructions = 0

    def bind(self, tables: FanoutTables, shape: Tuple[int, ...]) -> None:
        self.shape = shape
        self.values = np.empty((tables.num_rows,) + shape, dtype=_WORD)
        self.values[0] = 0
        self.values[1] = _WORD(0xFFFFFFFFFFFFFFFF)
        width = max(2 * tables.fused.max_level_width, 1)
        self.ab_buf = np.empty((width,) + shape, dtype=_WORD)
        self.rows = list(self.values)
        num_pi = len(tables.pi_rows)
        self.pi_block = self.values[_PI_BASE:_PI_BASE + num_pi]
        self.prev = np.empty((num_pi,) + shape, dtype=_WORD)
        self.incoming = np.empty((num_pi,) + shape, dtype=_WORD)
        self.valid = False

    def invalidate(self) -> None:
        """Forget the stream history (the next run executes densely)."""
        self.valid = False

    @property
    def nbytes(self) -> int:
        if self.values is None:
            return 0
        return (self.values.nbytes + self.ab_buf.nbytes
                + self.prev.nbytes + self.incoming.nbytes)

    def counters(self) -> Dict[str, int]:
        return {
            "runs": self.runs,
            "full_runs": self.full_runs,
            "clean_runs": self.clean_runs,
            "sparse_runs": self.sparse_runs,
            "dense_fallback_runs": self.dense_fallback_runs,
            "dense_levels": self.dense_levels,
            "sparse_instructions": self.sparse_instructions,
        }


@register_engine
class DeltaEngine(ExecutionEngine):
    """Incremental execution over persistent single-assignment tables."""

    name = "delta"
    uses_trace = True

    #: changed-PI fraction at (or above) which a run skips the sparse
    #: sweep entirely and executes the dense kernel.
    dense_input_fraction = 0.5
    #: dirty fraction of one level at which that level runs as one bulk
    #: gather/compute over the dense tables instead of per-gate Python...
    dense_level_fraction = 0.25
    #: ...but never for levels dirtier than this many instructions only.
    dense_level_min = 8

    @classmethod
    def from_artifact(cls, artifact, **options) -> "DeltaEngine":
        # Embedded fanout tables boot with zero lowering, zero renaming
        # and zero cone analysis; absent sections are derived on the fly.
        return cls(
            artifact.program,
            trace=artifact.trace,
            fused=artifact.fused,
            fanout=artifact.fanout,
            **options,
        )

    def __init__(
        self,
        program: Program,
        trace: Optional[TraceProgram] = None,
        fused: Optional[FusedProgram] = None,
        fanout: Optional[FanoutTables] = None,
        *,
        dense_input_fraction: Optional[float] = None,
        dense_level_fraction: Optional[float] = None,
        dense_level_min: Optional[int] = None,
    ) -> None:
        super().__init__(program)
        if fused is not None and (trace is None or fused.trace is trace):
            self.fused = adopt_fusion(fused)
        else:
            if trace is None:
                trace = lower_program(program)
            self.fused = fuse_trace(trace)
        self.trace = self.fused.trace
        if fanout is not None and fanout.fused is self.fused:
            self.tables = adopt_fanout(fanout)
        else:
            self.tables = build_fanout(self.fused)
        # The dense view IS a FusedProgram, so the fallback kernels come
        # straight from the fused engine's generator (cached on the view,
        # which lives in the process-wide fanout cache).
        self._kernels = ensure_kernels(self.tables.dense)
        if dense_input_fraction is not None:
            self.dense_input_fraction = float(dense_input_fraction)
        if dense_level_fraction is not None:
            self.dense_level_fraction = float(dense_level_fraction)
        if dense_level_min is not None:
            self.dense_level_min = int(dense_level_min)

        tables = self.tables
        self._pi_names = list(tables.pi_rows)
        self._num_pinned = tables.num_pinned
        self._out_names = list(tables.output_rows)
        self._out_rows = np.array(
            [tables.output_rows[n] for n in self._out_names], dtype=np.intp
        )
        # Python-native views of the flat tables: the sparse sweep is a
        # Python loop over dirty gids, and list indexing beats ndarray
        # item access there by a wide margin.
        self._a = tables.a_row.tolist()
        self._b = tables.b_row.tolist()
        op_table = sorted(cells.ALL_OPS)
        self._func = [cells.WORD_FUNCS[op_table[c]]
                      for c in tables.op_code.tolist()]
        self._two = [cells.arity(op_table[c]) == 2
                     for c in tables.op_code.tolist()]
        starts = tables.level_start.tolist()
        self._level_start = starts
        self._gid_level = [0] * tables.num_instructions
        for lev in range(tables.num_levels):
            for g in range(starts[lev], starts[lev + 1]):
                self._gid_level[g] = lev
        offsets = tables.consumer_offsets.tolist()
        gid_list = tables.consumer_gids.tolist()
        self._consumers = [
            gid_list[offsets[r]:offsets[r + 1]]
            for r in range(tables.num_rows)
        ]
        # Per-level bulk-exec plan: fused A(+B) gather index and the
        # (func, two_ary, start, end) segment schedule — the same shape
        # profile_levels interprets, over the dense rows.
        self._level_plan = []
        for lev, level in enumerate(tables.dense.levels):
            two_ary = any(cells.arity(seg.op) == 2
                          for seg in level.segments)
            if two_ary:
                ab = np.ascontiguousarray(
                    np.concatenate([level.a_index, level.b_index])
                )
            else:
                ab = level.a_index
            segs = tuple(
                (cells.WORD_FUNCS[seg.op], cells.arity(seg.op) == 2,
                 seg.start, seg.end)
                for seg in level.segments
            )
            self._level_plan.append((ab, two_ary, segs))

        self._run_lock = threading.Lock()
        self._state = DeltaState()

    # ------------------------------------------------------------------
    # Input handling (identical contract to the fused engine)
    # ------------------------------------------------------------------
    def _gather_block(
        self, inputs: Dict[str, np.ndarray]
    ) -> Tuple[np.ndarray, Tuple[int, ...], bool]:
        """The incoming words as one ``(num_pi,) + shape`` uint64 block.

        Same contract as the fused engine's gather (missing-input
        KeyError, mismatched-shape ValueError, 0-d promotion) but one
        C-level conversion instead of a Python loop per primary input —
        fixed per-step overhead is what bounds streaming speedup.
        """
        names = self._pi_names
        if not names:
            return np.empty((0, 1), dtype=_WORD), (1,), False
        try:
            values = [inputs[name] for name in names]
        except KeyError as exc:
            raise KeyError(
                f"missing value for primary input {exc.args[0]!r}"
            ) from None
        try:
            block = np.asarray(values, dtype=_WORD)
        except ValueError:
            # Ragged shapes land here, but so can per-word conversion
            # errors — replay word-by-word so each raises its own
            # precise exception, as the fused engine's gather would.
            self._gather_check(values)
            raise
        if block.ndim == 1:  # every word was 0-d: promote, squeeze later
            return block.reshape(len(names), 1), (1,), True
        return block, block.shape[1:], False

    @staticmethod
    def _gather_check(values) -> None:
        shape: Optional[Tuple[int, ...]] = None
        for word in values:
            word = np.asarray(word, dtype=_WORD)
            if shape is None:
                shape = word.shape
            elif word.shape != shape:
                raise ValueError("all PI arrays must share one shape")

    def _result(self, state: DeltaState) -> SimulationResult:
        trace = self.trace
        out_block = state.values.take(self._out_rows, 0)
        outputs = dict(zip(self._out_names, out_block))
        return SimulationResult(
            outputs=outputs,
            macro_cycles=trace.macro_cycles,
            clock_cycles=trace.clock_cycles,
            compute_instructions_executed=trace.compute_instructions,
            switch_routes=trace.switch_routes,
            peak_buffer_words=trace.peak_buffer_words,
            buffer_writes=trace.buffer_writes,
        )

    # ------------------------------------------------------------------
    # Public API
    # ------------------------------------------------------------------
    def new_state(self) -> DeltaState:
        """A fresh, independent stream state (e.g. one per client)."""
        return DeltaState()

    def reset(self, state: Optional[DeltaState] = None) -> None:
        """Invalidate a state's history (default: the engine's own)."""
        (state if state is not None else self._state).invalidate()

    def delta_stats(
        self, state: Optional[DeltaState] = None
    ) -> Dict[str, object]:
        """Stream counters plus the fallback thresholds, JSON-able."""
        state = state if state is not None else self._state
        stats: Dict[str, object] = dict(state.counters())
        stats.update(
            num_rows=self.tables.num_rows,
            num_instructions=self.tables.num_instructions,
            dense_input_fraction=self.dense_input_fraction,
            dense_level_fraction=self.dense_level_fraction,
            dense_level_min=self.dense_level_min,
            state_bytes=state.nbytes,
        )
        return stats

    def run(self, inputs: Dict[str, np.ndarray]) -> SimulationResult:
        """One stream step over the engine's default state."""
        with self._run_lock:
            return self.run_with_state(inputs, self._state)

    def run_with_state(
        self, inputs: Dict[str, np.ndarray], state: DeltaState
    ) -> SimulationResult:
        """One stream step over an explicit state (caller-serialized)."""
        block, shape, squeeze = self._gather_block(inputs)
        if state.shape != shape:
            state.bind(self.tables, shape)
        state.runs += 1
        num_pi = block.shape[0]
        if num_pi:
            state.incoming[...] = block
        if not state.valid:
            state.full_runs += 1
            self._run_dense(state)
        else:
            changed = np.flatnonzero(
                (state.incoming != state.prev)
                .reshape(num_pi, -1).any(axis=1)
            ) if num_pi else np.empty(0, dtype=np.intp)
            if not len(changed):
                state.clean_runs += 1
            elif len(changed) >= self.dense_input_fraction * num_pi:
                state.dense_fallback_runs += 1
                self._run_dense(state)
            else:
                state.sparse_runs += 1
                self._run_sparse(state, changed)
        result = self._result(state)
        if squeeze:
            for name in result.outputs:
                result.outputs[name] = result.outputs[name].reshape(())
        return result

    # ------------------------------------------------------------------
    # Execution paths
    # ------------------------------------------------------------------
    def _run_dense(self, state: DeltaState) -> None:
        """Bind every input and run the generated dense kernel."""
        if state.pi_block.shape[0]:
            state.pi_block[...] = state.incoming
        vector, rowwise = self._kernels
        kernel = rowwise if math.prod(state.shape) >= ROWWISE_MIN_WORDS \
            else vector
        kernel(state.values, state.rows, state.ab_buf)
        state.prev, state.incoming = state.incoming, state.prev
        state.valid = True

    def _run_sparse(self, state: DeltaState, changed: np.ndarray) -> None:
        """Dirty-frontier sweep: execute only the changed cone."""
        rows = state.rows
        num_pinned = self._num_pinned
        consumers = self._consumers
        gid_level = self._gid_level
        a_row, b_row = self._a, self._b
        funcs, two = self._func, self._two
        buckets: List[set] = [set() for _ in self._level_plan]
        changed_list = changed.tolist()
        state.pi_block[changed_list] = state.incoming[changed_list]
        for i in changed_list:
            for g in consumers[_PI_BASE + i]:
                buckets[gid_level[g]].add(g)
        starts = self._level_start
        # One-word batches (the streaming sweet spot) compare and write
        # single elements — the n-word compare machinery costs more than
        # the recompute itself there.
        one_word = state.values.shape[1:] == (1,)
        executed = 0
        for lev, bucket in enumerate(buckets):
            if not bucket:
                continue
            s, e = starts[lev], starts[lev + 1]
            size = e - s
            if (len(bucket) >= self.dense_level_min
                    and len(bucket) >= self.dense_level_fraction * size):
                state.dense_levels += 1
                dirty = self._run_level_dense(state, lev, s, e)
            else:
                executed += len(bucket)
                dirty = []
                for g in sorted(bucket):
                    a = rows[a_row[g]]
                    new = (funcs[g](a, rows[b_row[g]]) if two[g]
                           else funcs[g](a))
                    out = rows[num_pinned + g]
                    if one_word:
                        if new[0] == out[0]:
                            continue
                        out[0] = new[0]
                    else:
                        if not (new != out).any():
                            continue
                        out[...] = new
                    dirty.append(num_pinned + g)
            for row in dirty:
                for g in consumers[row]:
                    buckets[gid_level[g]].add(g)
        state.sparse_instructions += executed
        state.prev, state.incoming = state.incoming, state.prev

    def _run_level_dense(
        self, state: DeltaState, lev: int, s: int, e: int
    ) -> List[int]:
        """Recompute one whole level into the gather scratch, write back
        only the rows whose value changed; returns the changed rows."""
        ab_idx, two_ary, segs = self._level_plan[lev]
        k = e - s
        ab = state.ab_buf[:2 * k] if two_ary else state.ab_buf[:k]
        state.values.take(ab_idx, 0, ab, "clip")
        a, b = ab[:k], ab[k:]
        for func, is2, seg_s, seg_e in segs:
            if is2:
                a[seg_s:seg_e] = func(a[seg_s:seg_e], b[seg_s:seg_e])
            else:
                a[seg_s:seg_e] = func(a[seg_s:seg_e])
        lo = self._num_pinned + s
        out_block = state.values[lo:lo + k]
        dirty_local = np.flatnonzero(
            (a != out_block).reshape(k, -1).any(axis=1)
        ).tolist()
        if dirty_local:
            out_block[dirty_local] = a[dirty_local]
        return [lo + i for i in dirty_local]

    # ------------------------------------------------------------------
    def workspace_stats(self) -> Dict[str, object]:
        """Sizes of the persistent tables (diagnostics and benches)."""
        return {
            "num_rows": self.tables.num_rows,
            "fused_regs": self.fused.num_regs,
            "trace_slots": self.trace.num_slots,
            "max_level_width": self.fused.max_level_width,
            "state_bytes": self._state.nbytes,
        }
