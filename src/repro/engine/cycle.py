"""The cycle-accurate engine: the hardware model behind the engine API.

A thin adapter porting :class:`~repro.lpu.simulator.LPUSimulator` onto the
:class:`~repro.engine.base.ExecutionEngine` interface.  It models every
architectural structure of the paper's Fig. 2 (instruction queues, the
multicast switch, snapshot registers, the data buffers) per macro-cycle —
the ground truth the fast :class:`~repro.engine.trace.TraceEngine` is
verified against.
"""

from __future__ import annotations

from typing import Dict

import numpy as np

from ..core.codegen import Program
from ..lpu.simulator import LPUSimulator, SimulationResult
from .base import ExecutionEngine, register_engine


@register_engine
class CycleAccurateEngine(ExecutionEngine):
    """Macro-cycle-accurate execution on the modeled LPU hardware."""

    name = "cycle"

    def __init__(self, program: Program) -> None:
        super().__init__(program)
        self.simulator = LPUSimulator(program)

    def run(self, inputs: Dict[str, np.ndarray]) -> SimulationResult:
        return self.simulator.run(inputs)
