"""Sessions: compile once, run many times.

A :class:`Session` is the serving-oriented entry point of the engine layer:
it owns one compiled program and one engine instance, so the expensive
one-time work (netlist preprocessing, partitioning, scheduling, code
generation, and — for the trace engine — lowering to flat numpy tables) is
amortized across every subsequent :meth:`Session.run`.  Inputs may have any
batch shape: each array element is a packed 64-sample ``uint64`` word, so a
run over shape ``(array_size,)`` inputs performs inference on
``64 * array_size`` independent samples.
"""

from __future__ import annotations

from typing import Dict, Mapping, Optional, Union

import numpy as np

from ..core.codegen import Program
from ..core.compiler import CompileResult, compile_ffcl
from ..core.config import LPUConfig, PAPER_CONFIG
from ..lpu.simulator import SimulationResult
from ..netlist.graph import LogicGraph
from .base import SAMPLES_PER_WORD, ExecutionEngine, create_engine

#: Default engine for sessions and the serving layer: the fused engine is
#: bit-identical to ``"trace"`` and ``"cycle"`` (outputs and statistics —
#: proven over every model workload in tests/test_engine.py and
#: benchmarks/bench_trace_fusion.py) while running the hot path with
#: zero steady-state allocation.
DEFAULT_ENGINE = "fused"


class Session:
    """One compiled workload bound to one execution engine.

    Args:
        source: a :class:`LogicGraph` to compile, an already-compiled
            :class:`Program` (its embedded config is used), or a
            deserialized :class:`~repro.artifact.format.ExecutableArtifact`
            (no compile and — with embedded trace tables — no lowering:
            the ahead-of-time serving path).
        config: LPU parameters, when compiling from a graph
            (:data:`~repro.core.config.PAPER_CONFIG` by default).
        engine: registered engine name (``"fused"``, ``"native"``,
            ``"trace"``, ...), or an
            already-constructed :class:`ExecutionEngine` bound to ``source``
            — the reuse hook serving layers use to share one-time lowering
            artifacts across many sessions over the same program.
        engine_options: engine-specific constructor keywords forwarded
            to :func:`repro.engine.create_engine` (the native engine's
            ``backend=``/``threads=``/``min_shard_words=``, the fused
            engine's ``rowwise_min_words=``, ...).  Only valid with an
            engine *name* — a pre-built engine instance already carries
            its options.
        **compile_kwargs: forwarded to :func:`repro.core.compile_ffcl`
            (``merge``, ``policy``, ``basis``, ...) when compiling.  This
            includes the pass-manager knobs: ``pipeline=`` selects a named
            or custom compile pipeline and ``pass_cache=`` shares
            pass-level results across sessions (see :mod:`repro.compiler`).
    """

    def __init__(
        self,
        source: Union[LogicGraph, Program],
        config: Optional[LPUConfig] = None,
        *,
        engine: Union[str, ExecutionEngine] = DEFAULT_ENGINE,
        engine_options: Optional[Mapping[str, object]] = None,
        **compile_kwargs,
    ) -> None:
        from ..artifact.format import ExecutableArtifact

        self.compile_result: Optional[CompileResult] = None
        self.artifact = None
        engine_source: Union[Program, ExecutableArtifact]
        if isinstance(source, (Program, ExecutableArtifact)):
            if compile_kwargs:
                raise ValueError(
                    "compile options are meaningless for a compiled "
                    "Program or artifact"
                )
            program = (
                source.program
                if isinstance(source, ExecutableArtifact)
                else source
            )
            if config is not None and config != program.config:
                raise ValueError(
                    "a compiled Program carries its own config; "
                    "recompile from the graph to change LPU parameters"
                )
            if isinstance(source, ExecutableArtifact):
                self.artifact = source
            engine_source = source
        else:
            self.compile_result = compile_ffcl(
                source, config if config is not None else PAPER_CONFIG,
                **compile_kwargs,
            )
            program = self.compile_result.program
            if program is None:  # pragma: no cover - guarded by compile_ffcl
                raise ValueError("compilation produced no program")
            engine_source = program
        self.program = program
        if isinstance(engine, ExecutionEngine):
            if engine_options:
                raise ValueError(
                    "engine_options apply when the session constructs "
                    "the engine; a pre-built engine instance already "
                    "carries its options"
                )
            if engine.program is not program:
                raise ValueError(
                    "the supplied engine instance executes a different "
                    "program than this session's source"
                )
            self.engine: ExecutionEngine = engine
        else:
            self.engine = create_engine(
                engine, engine_source, **dict(engine_options or {})
            )
        self.runs_completed = 0

    # ------------------------------------------------------------------
    @property
    def engine_name(self) -> str:
        return self.engine.name

    @property
    def config(self) -> LPUConfig:
        return self.program.config

    @property
    def graph(self) -> LogicGraph:
        return self.program.graph

    def run(self, inputs: Dict[str, np.ndarray]) -> SimulationResult:
        """One inference pass; statistics cover this run only."""
        result = self.engine.run(inputs)
        self.runs_completed += 1
        return result

    def run_random(
        self, array_size: int = 1, seed: int = 0
    ) -> SimulationResult:
        """One pass over random stimulus of ``array_size`` words per PI."""
        from ..lpu.functional import random_stimulus

        return self.run(
            random_stimulus(self.graph, array_size=array_size, seed=seed)
        )

    def samples_per_run(self, array_size: int = 1) -> int:
        """Independent Boolean sample sets processed by one run."""
        return SAMPLES_PER_WORD * array_size

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"Session(graph={self.graph.name!r}, engine={self.engine_name!r}, "
            f"runs={self.runs_completed})"
        )
