"""Benchmark model workloads: VGG16, LeNet-5, MLPMixer-S/4 and -B/4,
JSC-M/L, and NID (the paper's Section VI benchmark suite), plus the FFCL
workload generator that turns them into compilable logic blocks."""

from .jsc import JSC_INPUT_BITS, jsc_l_workload, jsc_m_workload
from .layers import (
    KIND_CONV,
    KIND_DENSE,
    LayerWorkload,
    ModelWorkload,
    conv_layer,
    dense_layer,
    mlp_layers,
)
from .lenet5 import lenet5_workload
from .mlpmixer import mlpmixer_b4_workload, mlpmixer_s4_workload
from .nid import NID_INPUT_BITS, nid_workload
from .vgg16 import vgg16_paper_layers, vgg16_workload
from .workloads import (
    LayerEvaluation,
    ModelEvaluation,
    evaluate_layer,
    evaluate_model,
    layer_block,
    neuron_graph,
    synthetic_sop_neuron_graph,
    threshold_neuron_graph,
)

#: The Table II ("high accuracy") and Table III ("high throughput") suites.
def table2_models():
    return [
        vgg16_workload(),
        lenet5_workload(),
        mlpmixer_s4_workload(),
        mlpmixer_b4_workload(),
    ]


def table3_models():
    return [nid_workload(), jsc_m_workload(), jsc_l_workload()]


def all_models():
    return table2_models() + table3_models()


__all__ = [
    "JSC_INPUT_BITS",
    "jsc_l_workload",
    "jsc_m_workload",
    "KIND_CONV",
    "KIND_DENSE",
    "LayerWorkload",
    "ModelWorkload",
    "conv_layer",
    "dense_layer",
    "mlp_layers",
    "lenet5_workload",
    "mlpmixer_b4_workload",
    "mlpmixer_s4_workload",
    "NID_INPUT_BITS",
    "nid_workload",
    "vgg16_paper_layers",
    "vgg16_workload",
    "LayerEvaluation",
    "ModelEvaluation",
    "evaluate_layer",
    "evaluate_model",
    "layer_block",
    "neuron_graph",
    "synthetic_sop_neuron_graph",
    "threshold_neuron_graph",
    "table2_models",
    "table3_models",
    "all_models",
]
