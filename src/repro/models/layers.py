"""Layer and model workload descriptors.

A :class:`LayerWorkload` captures everything the experiments need about one
network layer:

* for the LPU: how many neurons (filters) its FFCL block contains, each
  neuron's binary fan-in (after NullaNet-Tiny-style input pruning — the
  paper's upstream, reference [11]), the layer's input bit width, and how
  many spatial positions one inference applies the block to (positions fill
  the 2m bit-lanes of the packed operands: "the 2m bits of data come from
  different patches of an input feature volume", Section IV),
* for the baselines: exact full-precision MAC and parameter counts.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Tuple

KIND_CONV = "conv"
KIND_DENSE = "dense"


@dataclass(frozen=True)
class LayerWorkload:
    """One layer's workload description."""

    name: str
    kind: str  # KIND_CONV or KIND_DENSE
    num_neurons: int  # filters (conv) or output features (dense)
    fan_in: int  # binary fan-in per neuron after NullaNet pruning
    input_bits: int  # width of the layer's binary input space
    positions: int  # spatial applications per inference (1 for dense)
    macs: int  # full-precision multiply-accumulates per inference
    params: int  # weight count

    def __post_init__(self) -> None:
        if self.kind not in (KIND_CONV, KIND_DENSE):
            raise ValueError(f"unknown layer kind {self.kind!r}")
        if self.fan_in > self.input_bits:
            raise ValueError(
                f"{self.name}: fan-in {self.fan_in} exceeds input bits "
                f"{self.input_bits}"
            )

    @property
    def output_bits(self) -> int:
        return self.num_neurons


@dataclass(frozen=True)
class ModelWorkload:
    """A whole network as a sequence of layer workloads."""

    name: str
    layers: Tuple[LayerWorkload, ...]
    input_shape: Tuple[int, ...]
    num_classes: int

    @property
    def total_macs(self) -> int:
        return sum(l.macs for l in self.layers)

    @property
    def total_params(self) -> int:
        return sum(l.params for l in self.layers)

    @property
    def total_neurons(self) -> int:
        return sum(l.num_neurons for l in self.layers)

    def layer(self, name: str) -> LayerWorkload:
        for l in self.layers:
            if l.name == name:
                return l
        raise KeyError(f"model {self.name} has no layer {name!r}")


def conv_layer(
    name: str,
    in_channels: int,
    out_channels: int,
    kernel: int,
    in_hw: int,
    stride: int = 1,
    padding: int = 1,
    pruned_fan_in: int = 10,
) -> Tuple[LayerWorkload, int]:
    """Build a conv layer descriptor; returns (layer, output spatial size)."""
    out_hw = (in_hw + 2 * padding - kernel) // stride + 1
    positions = out_hw * out_hw
    receptive = kernel * kernel * in_channels
    macs = receptive * out_channels * positions
    params = receptive * out_channels
    layer = LayerWorkload(
        name=name,
        kind=KIND_CONV,
        num_neurons=out_channels,
        fan_in=min(pruned_fan_in, receptive),
        input_bits=receptive,
        positions=positions,
        macs=macs,
        params=params,
    )
    return layer, out_hw


def dense_layer(
    name: str,
    in_features: int,
    out_features: int,
    pruned_fan_in: int = 10,
    positions: int = 1,
) -> LayerWorkload:
    """Build a dense layer descriptor.

    ``positions > 1`` models layers applied repeatedly per inference (e.g.
    MLPMixer token/channel MLPs applied per channel / per patch).
    """
    return LayerWorkload(
        name=name,
        kind=KIND_DENSE,
        num_neurons=out_features,
        fan_in=min(pruned_fan_in, in_features),
        input_bits=in_features,
        positions=positions,
        macs=in_features * out_features * positions,
        params=in_features * out_features,
    )


def mlp_layers(
    prefix: str,
    widths: List[int],
    in_features: int,
    pruned_fan_in: int = 7,
) -> List[LayerWorkload]:
    """A chain of dense layers ``in_features -> widths[0] -> ...``."""
    layers = []
    prev = in_features
    for i, width in enumerate(widths):
        layers.append(
            dense_layer(f"{prefix}_fc{i + 1}", prev, width, pruned_fan_in)
        )
        prev = width
    return layers
