"""FFCL workload generation and model-level LPU evaluation.

This module turns the layer descriptors of :mod:`repro.models.layers` into
concrete FFCL logic graphs and drives the compiler over them — the engine
behind every table and figure bench.

**Neuron logic.**  For enumerable fan-ins (<= 16) each neuron is a *real*
NullaNet-style function: a random threshold function (binarized neuron) is
enumerated, minimized (Quine-McCluskey / Espresso), and factored into
multi-level logic — the exact pipeline of :mod:`repro.nullanet`.  For the
wide fan-ins the paper mentions ("neurons designed for SoA NNs include tens
to hundreds of inputs", Section I) enumeration is impossible for anyone, so
a synthetic minimized-SOP of calibrated size is factored instead (see
DESIGN.md, substitutions).

**Sampling.**  A layer with hundreds of filters would produce an enormous
block; we compile a sample of ``sample_neurons`` neurons and scale the
schedule length by ``num_neurons / sample``.  This is conservative for the
merging experiments (merging across more neurons can only help more).

**Positions and packing.**  One pass of the compiled schedule processes one
2m-bit operand set.  Conv layers (and dense blocks applied per-patch /
per-channel, positions > 1) fill the bit-lanes with the patches of a single
image: ``ceil(positions / 2m)`` passes per image.  Dense layers with a
single application fill the lanes with different images of a batch, so a
pass amortizes over 2m images (Section IV describes both packings).
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from ..core.compiler import compile_ffcl
from ..core.config import LPUConfig
from ..netlist.compose import merge_parallel
from ..netlist.graph import LogicGraph
from ..nullanet.ffcl import minimize_table
from ..synth.factoring import factored_graph
from ..synth.truth_table import Cube, sop_to_graph
from .layers import LayerWorkload, ModelWorkload

#: Neuron graphs are cached by (fan_in, seed): workload generation is a hot
#: path in the parameter sweeps.
_NEURON_CACHE: Dict[Tuple[int, int], LogicGraph] = {}

#: Fan-in bound for exact threshold-function enumeration.
_MAX_ENUM_FAN_IN = 12


#: Fraction of a neuron's input patterns observed in "training data": the
#: rest are don't-cares, which NullaNet's minimization exploits (its core
#: optimization — without it, per-neuron logic is near worst case).
DEFAULT_CARE_FRACTION = 0.25


def threshold_neuron_graph(
    fan_in: int,
    seed: int,
    style: str = "sop",
    care_fraction: float = DEFAULT_CARE_FRACTION,
) -> LogicGraph:
    """A real binarized-neuron function: a random bipolar threshold function
    is enumerated, don't-cares are mined from a simulated observed-pattern
    set (``care_fraction`` of all patterns), and the cover is minimized
    (inputs named x0..x{fan_in-1}).

    ``style`` selects the multi-level construction: ``"sop"`` builds the
    flat two-level AND-OR form with balanced trees (depth ~ log2(cubes) +
    log2(literals), the shape NullaNet's depth-optimized mapping targets),
    ``"factored"`` the quick-factored form (fewer gates, much deeper —
    threshold functions factor poorly, so the chains are long).
    """
    if fan_in > _MAX_ENUM_FAN_IN:
        raise ValueError(f"fan-in {fan_in} too wide to enumerate")
    rng = np.random.default_rng(seed)
    weights = rng.choice([-1.0, 1.0], size=fan_in)
    # Random threshold inside the achievable range keeps the function
    # non-constant with high probability.
    bias = float(rng.integers(-fan_in // 2, fan_in // 2 + 1))
    from ..nullanet.ffcl import neuron_truth_table

    observed = None
    if care_fraction < 1.0:
        count = max(4, int((1 << fan_in) * care_fraction))
        observed = rng.integers(0, 2, size=(count, fan_in), dtype=np.int8)
    table = neuron_truth_table(weights, bias, observed)
    cover = minimize_table(table)
    name = f"thr{fan_in}_{seed}"
    if style == "factored":
        return factored_graph(
            cover, num_vars=fan_in, name=name, output_name="y"
        )
    return sop_to_graph(cover, num_vars=fan_in, name=name, output_name="y")


def synthetic_sop_neuron_graph(
    fan_in: int,
    seed: int,
    cubes_per_neuron: Optional[int] = None,
    max_literals: int = 12,
) -> LogicGraph:
    """Calibrated synthetic neuron for non-enumerable fan-ins: a random
    minimized-SOP-like cover, factored into multi-level logic."""
    rng = np.random.default_rng(seed)
    num_cubes = cubes_per_neuron or max(6, min(48, fan_in))
    cover: List[Cube] = []
    seen = set()
    for _ in range(num_cubes):
        k = int(rng.integers(3, min(max_literals, fan_in) + 1))
        variables = rng.choice(fan_in, size=k, replace=False)
        mask = 0
        value = 0
        for v in variables:
            mask |= 1 << int(v)
            if rng.random() < 0.5:
                value |= 1 << int(v)
        if (mask, value) in seen:
            continue
        seen.add((mask, value))
        cover.append(Cube(mask, value))
    return sop_to_graph(
        cover, num_vars=fan_in, name=f"sop{fan_in}_{seed}", output_name="y"
    )


def neuron_graph(fan_in: int, seed: int) -> LogicGraph:
    """Neuron logic for any fan-in (cached).

    Degenerate draws (a neuron whose care set collapses it to a constant)
    are re-rolled, as a training flow would discard dead neurons.
    """
    key = (fan_in, seed)
    if key not in _NEURON_CACHE:
        attempt = seed
        for _ in range(8):
            if fan_in <= _MAX_ENUM_FAN_IN:
                graph = threshold_neuron_graph(fan_in, attempt)
            else:
                graph = synthetic_sop_neuron_graph(fan_in, attempt)
            if graph.num_gates > 0:
                break
            attempt += 7919
        _NEURON_CACHE[key] = graph
    return _NEURON_CACHE[key]


def _rename_inputs(graph: LogicGraph, mapping: Dict[str, str]) -> LogicGraph:
    """Rebuild ``graph`` with renamed PIs."""
    out = LogicGraph(graph.name)
    remap: Dict[int, int] = {}
    from ..netlist import cells

    for nid in graph.topological_order():
        node = graph.nodes[nid]
        if node.op == cells.INPUT:
            assert node.name is not None
            remap[nid] = out.add_input(mapping.get(node.name, node.name))
        elif node.op in (cells.CONST0, cells.CONST1):
            remap[nid] = out.add_const(1 if node.op == cells.CONST1 else 0)
        else:
            remap[nid] = out.add_gate(
                node.op, *(remap[f] for f in node.fanins), name=node.name
            )
    for name, nid in graph.outputs:
        out.set_output(name, remap[nid])
    return out


def layer_block(
    layer: LayerWorkload,
    sample_neurons: int = 8,
    seed: int = 0,
) -> Tuple[LogicGraph, int]:
    """Build the FFCL block for a sample of a layer's neurons.

    Each sampled neuron connects to a random support of ``layer.fan_in``
    bits out of the layer's ``input_bits``-wide input space (NullaNet-Tiny
    sparse connectivity).  Returns (block graph, neurons sampled).
    """
    sample = min(sample_neurons, layer.num_neurons)
    rng = np.random.default_rng(seed ^ hash(layer.name) & 0xFFFF)
    graphs = []
    for j in range(sample):
        base = neuron_graph(layer.fan_in, seed * 1009 + j)
        support = rng.choice(layer.input_bits, size=layer.fan_in, replace=False)
        mapping = {
            f"x{i}": f"in{int(support[i])}" for i in range(layer.fan_in)
        }
        g = _rename_inputs(base, mapping)
        renamed = LogicGraph(f"{layer.name}_n{j}")
        # merge_parallel requires unique PO names; rebuild with one.
        remap: Dict[int, int] = {}
        from ..netlist import cells as _c

        for nid in g.topological_order():
            node = g.nodes[nid]
            if node.op == _c.INPUT:
                remap[nid] = renamed.add_input(node.name)
            elif node.op in (_c.CONST0, _c.CONST1):
                remap[nid] = renamed.add_const(1 if node.op == _c.CONST1 else 0)
            else:
                remap[nid] = renamed.add_gate(
                    node.op, *(remap[f] for f in node.fanins)
                )
        renamed.set_output(f"{layer.name}_n{j}", remap[g.outputs[0][1]])
        graphs.append(renamed)
    block = merge_parallel(graphs, name=f"{layer.name}_block")
    return block, sample


@dataclass
class LayerEvaluation:
    """LPU cost of one layer (per image)."""

    layer: LayerWorkload
    sampled_neurons: int
    scale: float  # num_neurons / sampled
    makespan_sample: int  # macro-cycles of the sampled block
    makespan_full: int  # scaled to all neurons
    mfgs_before_merge: int
    mfgs_after_merge: int
    passes_per_image: int
    cycles_per_image: float  # macro-cycles, amortized for batched dense

    @property
    def mfgs_full(self) -> float:
        return self.mfgs_after_merge * self.scale


@dataclass
class ModelEvaluation:
    """LPU cost and throughput of a whole model."""

    model: ModelWorkload
    config: LPUConfig
    merged: bool
    layers: List[LayerEvaluation]

    @property
    def total_cycles_per_image(self) -> float:
        return sum(l.cycles_per_image for l in self.layers)

    @property
    def total_mfgs(self) -> float:
        return sum(l.mfgs_full for l in self.layers)

    @property
    def fps(self) -> float:
        cycles = self.total_cycles_per_image
        if cycles <= 0:
            return float("inf")
        return self.config.frequency_hz / (self.config.t_c * cycles)

    @property
    def latency_seconds(self) -> float:
        return self.total_cycles_per_image * self.config.t_c / self.config.frequency_hz


#: Compiled-block cache: the schedule length of a sampled block depends on
#: the block structure and the LPU parameters only, so layers with the same
#: (fan-in, input width, sample, seed) — e.g. repeated mixer blocks — share
#: one compilation.
_EVAL_CACHE: Dict[Tuple, Tuple[int, int, int]] = {}


def _compile_block_cached(
    layer: LayerWorkload,
    config: LPUConfig,
    merge: bool,
    policy: str,
    sample_neurons: int,
    seed: int,
) -> Tuple[int, int, int, int]:
    """(sampled, makespan, mfgs_before, mfgs_after) with caching."""
    sample = min(sample_neurons, layer.num_neurons)
    key = (
        layer.fan_in, layer.input_bits, sample, seed,
        config.num_lpvs, config.lpes_per_lpv, merge, policy,
    )
    # The schedule length of a sampled block is determined (up to the
    # random support draw, which only shifts PI sharing marginally) by the
    # neuron fan-in, the input width, and the LPU parameters — so blocks of
    # identically-shaped layers share one compilation.
    if key not in _EVAL_CACHE:
        block, sample = layer_block(layer, sample_neurons, seed)
        result = compile_ffcl(
            block, config, merge=merge, policy=policy, generate_code=False
        )
        _EVAL_CACHE[key] = (
            result.schedule.makespan,
            result.metrics.mfgs_before_merge,
            result.metrics.mfgs_after_merge,
        )
    makespan, before, after = _EVAL_CACHE[key]
    return sample, makespan, before, after


def evaluate_layer(
    layer: LayerWorkload,
    config: LPUConfig,
    merge: bool = True,
    policy: str = "pipelined",
    sample_neurons: int = 8,
    seed: int = 0,
) -> LayerEvaluation:
    """Compile one layer's sampled FFCL block and scale to the full layer."""
    sample, makespan_sample, mfgs_before, mfgs_after = _compile_block_cached(
        layer, config, merge, policy, sample_neurons, seed
    )
    scale = layer.num_neurons / sample
    makespan_full = int(math.ceil(makespan_sample * scale))
    word_bits = config.word_bits
    passes = max(1, math.ceil(layer.positions / word_bits))
    if layer.positions == 1:
        # Batch packing: one pass serves word_bits images.
        cycles = makespan_full / word_bits
    else:
        cycles = float(makespan_full * passes)
    return LayerEvaluation(
        layer=layer,
        sampled_neurons=sample,
        scale=scale,
        makespan_sample=makespan_sample,
        makespan_full=makespan_full,
        mfgs_before_merge=mfgs_before,
        mfgs_after_merge=mfgs_after,
        passes_per_image=passes,
        cycles_per_image=cycles,
    )


def evaluate_model(
    model: ModelWorkload,
    config: LPUConfig,
    merge: bool = True,
    policy: str = "pipelined",
    sample_neurons: int = 8,
    seed: int = 0,
    layers: Optional[Sequence[LayerWorkload]] = None,
) -> ModelEvaluation:
    """Evaluate every layer (or a subset) of a model on the LPU."""
    chosen = list(layers) if layers is not None else list(model.layers)
    evaluations = [
        evaluate_layer(
            l, config, merge=merge, policy=policy,
            sample_neurons=sample_neurons, seed=seed,
        )
        for l in chosen
    ]
    return ModelEvaluation(
        model=model, config=config, merged=merge, layers=evaluations
    )
