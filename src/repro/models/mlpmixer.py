"""MLPMixer workloads (Tolstikhin et al. [15]) per the paper's Section VI:

"the resolution of the input image is 32*32, and the patch size ... is 4*4.
So, we have 64 non-overlapping image patches that are mapped to a hidden
dimension C which is 128 and 192 for small design (S) and Base design (B).
DS and DC are ... 64 (96) and 512 (768) for S (B).  There are 8 and 12
mixing layers in S and B designs."

Each mixing layer contributes four dense blocks:

* token-mixing MLP (applied once per channel, C positions):
  patches -> DS -> patches  (64 -> DS -> 64),
* channel-mixing MLP (applied once per patch, 64 positions):
  C -> DC -> C.

A stem projects each 4x4x3 patch (48 values) to C, and a classifier head
maps C to 10 classes.
"""

from __future__ import annotations

from typing import List

from .layers import LayerWorkload, ModelWorkload, dense_layer

NUM_PATCHES = 64  # 32x32 image, 4x4 patches
PATCH_VALUES = 4 * 4 * 3


def _mixer_workload(
    name: str,
    hidden_c: int,
    token_ds: int,
    channel_dc: int,
    num_layers: int,
    pruned_fan_in: int,
) -> ModelWorkload:
    layers: List[LayerWorkload] = [
        dense_layer(
            "stem", PATCH_VALUES, hidden_c, pruned_fan_in,
            positions=NUM_PATCHES,
        )
    ]
    for i in range(num_layers):
        layers.append(
            dense_layer(
                f"mix{i + 1}_tok1", NUM_PATCHES, token_ds, pruned_fan_in,
                positions=hidden_c,
            )
        )
        layers.append(
            dense_layer(
                f"mix{i + 1}_tok2", token_ds, NUM_PATCHES, pruned_fan_in,
                positions=hidden_c,
            )
        )
        layers.append(
            dense_layer(
                f"mix{i + 1}_ch1", hidden_c, channel_dc, pruned_fan_in,
                positions=NUM_PATCHES,
            )
        )
        layers.append(
            dense_layer(
                f"mix{i + 1}_ch2", channel_dc, hidden_c, pruned_fan_in,
                positions=NUM_PATCHES,
            )
        )
    layers.append(dense_layer("head", hidden_c, 10, pruned_fan_in))
    return ModelWorkload(
        name=name,
        layers=tuple(layers),
        input_shape=(3, 32, 32),
        num_classes=10,
    )


def mlpmixer_s4_workload(pruned_fan_in: int = 9) -> ModelWorkload:
    """MLPMixer-S/4: C=128, DS=64, DC=512, 8 mixing layers."""
    return _mixer_workload(
        "MLPMixer-S/4", hidden_c=128, token_ds=64, channel_dc=512,
        num_layers=8, pruned_fan_in=pruned_fan_in,
    )


def mlpmixer_b4_workload(pruned_fan_in: int = 11) -> ModelWorkload:
    """MLPMixer-B/4: C=192, DS=96, DC=768, 12 mixing layers."""
    return _mixer_workload(
        "MLPMixer-B/4", hidden_c=192, token_ds=96, channel_dc=768,
        num_layers=12, pruned_fan_in=pruned_fan_in,
    )
