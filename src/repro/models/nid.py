"""Network intrusion detection (NID) workload.

Section VI: "We used UNSWNB15 dataset ... the same preprocessed training
and testing data as that of Murovic et al. [9] which has 593 binary
features corresponding to 49 original features and two output classes."

The topology follows LogicNets' NID configuration (593 binary inputs,
hidden widths 100-100-100, 2 output classes, per-neuron fan-in 7).
"""

from __future__ import annotations

from .layers import ModelWorkload, mlp_layers

NID_INPUT_BITS = 593


def nid_workload() -> ModelWorkload:
    """NID: 593 -> 100 -> 100 -> 100 -> 2, fan-in 7."""
    layers = mlp_layers(
        "nid", [100, 100, 100, 2], NID_INPUT_BITS, pruned_fan_in=7
    )
    return ModelWorkload(
        name="NID",
        layers=tuple(layers),
        input_shape=(593,),
        num_classes=2,
    )
