"""LeNet-5 workload (MNIST, the paper's second Table II model)."""

from __future__ import annotations

from .layers import ModelWorkload, conv_layer, dense_layer


def lenet5_workload(pruned_fan_in: int = 8) -> ModelWorkload:
    """The classic LeNet-5: two valid-padding conv layers with 2x2 pooling,
    then three dense layers (120, 84, 10)."""
    conv1, hw = conv_layer(
        "conv1", in_channels=1, out_channels=6, kernel=5, in_hw=28,
        padding=0, pruned_fan_in=pruned_fan_in,
    )
    hw //= 2  # 24 -> 12 after pooling
    conv2, hw = conv_layer(
        "conv2", in_channels=6, out_channels=16, kernel=5, in_hw=hw,
        padding=0, pruned_fan_in=pruned_fan_in,
    )
    hw //= 2  # 8 -> 4 after pooling
    flat = 16 * hw * hw  # 256
    fc1 = dense_layer("fc1", flat, 120, pruned_fan_in)
    fc2 = dense_layer("fc2", 120, 84, pruned_fan_in)
    fc3 = dense_layer("fc3", 84, 10, pruned_fan_in)
    return ModelWorkload(
        name="LENET5",
        layers=(conv1, conv2, fc1, fc2, fc3),
        input_shape=(1, 28, 28),
        num_classes=10,
    )
