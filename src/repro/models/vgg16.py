"""VGG16 workload (Simonyan & Zisserman [13]).

The paper implements "intermediate convolutional layers 2-13" of VGG16 as
FFCL (Section VI-B).  We use the CIFAR-10-resolution variant (32x32 input),
consistent with the rest of the paper's Table II models (the ChewBaccaNN
VGG-like model and MLPMixer are CIFAR-10 models); the ImageNet-resolution
variant is also provided for the baselines' MAC/parameter accounting
(``imagenet=True`` reproduces the paper's "about 138 million parameters").
"""

from __future__ import annotations

from typing import List

from .layers import LayerWorkload, ModelWorkload, conv_layer

#: (out_channels, pool_after) per conv layer, the standard VGG16 stack.
_VGG16_PLAN = [
    (64, False),
    (64, True),
    (128, False),
    (128, True),
    (256, False),
    (256, False),
    (256, True),
    (512, False),
    (512, False),
    (512, True),
    (512, False),
    (512, False),
    (512, True),
]


def vgg16_workload(
    imagenet: bool = False,
    pruned_fan_in: int = 10,
) -> ModelWorkload:
    """The thirteen conv layers of VGG16 as layer workloads."""
    hw = 224 if imagenet else 32
    in_channels = 3
    layers: List[LayerWorkload] = []
    for i, (out_channels, pool_after) in enumerate(_VGG16_PLAN):
        layer, hw = conv_layer(
            name=f"conv{i + 1}",
            in_channels=in_channels,
            out_channels=out_channels,
            kernel=3,
            in_hw=hw,
            pruned_fan_in=pruned_fan_in,
        )
        layers.append(layer)
        in_channels = out_channels
        if pool_after:
            hw //= 2
    return ModelWorkload(
        name="VGG16" + ("-imagenet" if imagenet else ""),
        layers=tuple(layers),
        input_shape=(3, 224, 224) if imagenet else (3, 32, 32),
        num_classes=1000 if imagenet else 10,
    )


def vgg16_paper_layers(model: ModelWorkload) -> List[LayerWorkload]:
    """Layers 2-13 — the range the paper compiles to FFCL (Fig. 7)."""
    return [l for l in model.layers if l.name != "conv1"]
