"""Jet substructure classification (JSC) workloads.

The paper compares against LogicNets [17] and the Google+CERN hls4ml
implementation [8] on JSC (Duarte et al. [5]): 16 physics features, 5 jet
classes.  We encode the two LogicNets topologies the paper cites:

* JSC-M: layers 64-32-32-32-5, per-neuron fan-in 4 (LogicNets' published
  medium configuration; inputs quantized to 2-3 bits each),
* JSC-L: layers 32-64-192-192-16-5, per-neuron fan-in 7 (the large
  configuration).

These are *tiny* models — the regime where a fully-unrolled random-logic
pipeline (LogicNets) beats a programmable logic processor, which is the
honest outcome Table III reports.
"""

from __future__ import annotations

from .layers import ModelWorkload, mlp_layers

#: 16 features, 3-bit quantization -> 48 binary inputs.
JSC_INPUT_BITS = 48


def jsc_m_workload() -> ModelWorkload:
    """LogicNets JSC-M: 64-32-32-32-5, fan-in 4."""
    layers = mlp_layers(
        "jscm", [64, 32, 32, 32, 5], JSC_INPUT_BITS, pruned_fan_in=4
    )
    return ModelWorkload(
        name="JSC-M",
        layers=tuple(layers),
        input_shape=(16,),
        num_classes=5,
    )


def jsc_l_workload() -> ModelWorkload:
    """LogicNets JSC-L: 32-64-192-192-16-5, fan-in 7."""
    layers = mlp_layers(
        "jscl", [32, 64, 192, 192, 16, 5], JSC_INPUT_BITS, pruned_fan_in=7
    )
    return ModelWorkload(
        name="JSC-L",
        layers=tuple(layers),
        input_shape=(16,),
        num_classes=5,
    )
