"""LPU (logic processing unit) configuration.

Section IV fixes the architecture parameters this reproduction models:

* an LPU contains ``num_lpvs`` linearly-ordered LPVs,
* each LPV contains ``lpes_per_lpv`` (= m) LPEs, so it consumes up to 2m
  operands and produces up to m results per macro-cycle,
* each operand is ``2m`` bits wide (2m Boolean variables processed in
  parallel — different patches of a feature volume or different images of a
  batch),
* LPVs are connected by a ``switch_stages``-stage non-blocking multicast
  switch network, so one macro-cycle costs ``t_c = 1 + switch_stages`` clock
  cycles (the paper uses t_sw = 5, t_c = 6),
* the evaluation targets a Xilinx VU9P running at 333 MHz.

The default configuration (16 LPVs, m = 32 -> 64-bit operands, one numpy
``uint64`` word per operand) is the one Tables I-III use.
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class LPUConfig:
    """Architecture parameters of one logic processor."""

    num_lpvs: int = 16
    lpes_per_lpv: int = 32
    switch_stages: int = 5
    frequency_hz: float = 333e6

    def __post_init__(self) -> None:
        if self.num_lpvs < 1:
            raise ValueError("an LPU needs at least one LPV")
        if self.lpes_per_lpv < 1:
            raise ValueError("an LPV needs at least one LPE")
        if self.switch_stages < 1:
            raise ValueError("the switch network needs at least one stage")
        if self.frequency_hz <= 0:
            raise ValueError("frequency must be positive")

    @property
    def m(self) -> int:
        """LPEs per LPV (the paper's m): max graph width an LPV computes."""
        return self.lpes_per_lpv

    @property
    def n(self) -> int:
        """LPVs per LPU (the paper's n): max MFG depth without circulation."""
        return self.num_lpvs

    @property
    def word_bits(self) -> int:
        """Operand width in bits (= 2m): parallel Boolean samples per pass."""
        return 2 * self.lpes_per_lpv

    @property
    def t_sw(self) -> int:
        """Clock cycles spent steering data through the switch network."""
        return self.switch_stages

    @property
    def t_c(self) -> int:
        """Clock cycles per macro-cycle: one LPE compute + t_sw routing."""
        return 1 + self.switch_stages

    @property
    def total_lpes(self) -> int:
        return self.num_lpvs * self.lpes_per_lpv

    def macro_cycles_to_seconds(self, macro_cycles: int) -> float:
        """Wall-clock time for ``macro_cycles`` macro-cycles."""
        return macro_cycles * self.t_c / self.frequency_hz

    def fps(self, macro_cycles_per_pass: int, passes_per_inference: int = 1) -> float:
        """Inference throughput in frames per second.

        One pass through the schedule evaluates the FFCL for ``word_bits``
        independent samples (the packed operand width), so::

            FPS = f * 2m / (t_c * macro_cycles * passes)
        """
        if macro_cycles_per_pass <= 0:
            raise ValueError("macro-cycle count must be positive")
        total = macro_cycles_per_pass * passes_per_inference
        return self.frequency_hz * self.word_bits / (self.t_c * total)

    def describe(self) -> str:
        return (
            f"LPU: {self.num_lpvs} LPVs x {self.lpes_per_lpv} LPEs, "
            f"{self.word_bits}-bit operands, t_c={self.t_c} "
            f"({self.switch_stages}-stage switch), "
            f"{self.frequency_hz / 1e6:.0f} MHz"
        )


#: The configuration used throughout the paper's evaluation (Section VI).
PAPER_CONFIG = LPUConfig()
