"""Heterogeneous and multi-LPU configurations (the paper's future work).

Section VII: "we plan to explore the heterogeneous architecture where the
number of LPEs per LPVs and their following switch networks will not be the
same for all LPVs.  Also, it is worth trying multiple LPUs that can be
assembled in parallel or series configurations."

This module implements both as *modeled* extensions on top of the verified
homogeneous core (metric-level: partitioning and scheduling adapt to the
heterogeneous widths; code generation/simulation remain homogeneous-only):

* :class:`HeterogeneousLPU` — per-LPV LPE counts.  Partitioning uses the
  width of the LPV each level lands on (so MFG growth stops earlier where
  the pipeline is narrow), and the FPGA resource model prices each LPV by
  its own width.  Since FFCL level widths shrink toward the outputs
  (graphs converge), a tapered profile can save area at equal throughput —
  the hypothesis behind the paper's future work, which
  ``benchmarks/bench_ablation_hetero.py`` tests.
* :class:`MultiLPU` — k LPUs in parallel (neurons of a layer split across
  LPUs; throughput scales, latency does not) or in series (layer ranges
  pipelined across LPUs; both batch throughput and per-LPU queue pressure
  improve at the cost of inter-LPU buffering).
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import List, Sequence, Tuple

from ..netlist.graph import LogicGraph
from ..synth.levelize import is_levelized_strict, levelize
from .config import LPUConfig
from .mfg import MFG, Partition
from .merge import merge_partition
from .schedule import build_schedule


@dataclass(frozen=True)
class HeterogeneousLPU:
    """An LPU whose LPVs may have different LPE counts.

    ``lpe_widths[k]`` is the m of LPV k; the operand word width (and hence
    the packed batch size) is set by the *widest* LPV (narrower LPVs simply
    populate fewer columns).
    """

    lpe_widths: Tuple[int, ...]
    switch_stages: int = 5
    frequency_hz: float = 333e6

    def __post_init__(self) -> None:
        if not self.lpe_widths:
            raise ValueError("need at least one LPV")
        if any(w < 1 for w in self.lpe_widths):
            raise ValueError("every LPV needs at least one LPE")

    @property
    def n(self) -> int:
        return len(self.lpe_widths)

    @property
    def max_m(self) -> int:
        return max(self.lpe_widths)

    @property
    def word_bits(self) -> int:
        return 2 * self.max_m

    @property
    def t_c(self) -> int:
        return 1 + self.switch_stages

    @property
    def total_lpes(self) -> int:
        return sum(self.lpe_widths)

    def m_of_level(self, level: int) -> int:
        """LPE budget of the LPV that logic level ``level`` maps onto."""
        return self.lpe_widths[(level - 1) % self.n]

    def homogeneous(self) -> LPUConfig:
        """The uniform-width LPU with the same LPV count and peak width."""
        return LPUConfig(
            num_lpvs=self.n,
            lpes_per_lpv=self.max_m,
            switch_stages=self.switch_stages,
            frequency_hz=self.frequency_hz,
        )

    def fps(self, macro_cycles: int) -> float:
        if macro_cycles <= 0:
            raise ValueError("macro-cycle count must be positive")
        return self.frequency_hz * self.word_bits / (self.t_c * macro_cycles)


def partition_heterogeneous(
    graph: LogicGraph, lpu: HeterogeneousLPU, max_mfgs: int = 500_000
) -> Partition:
    """Algorithm 1/2 with a per-level width budget.

    Identical to :func:`repro.core.partition.partition` except the stop
    rule compares each level's node count against the width of the LPV
    that level executes on.
    """
    if not is_levelized_strict(graph):
        raise ValueError("partitioning requires a fully path-balanced graph")
    levels = levelize(graph)
    from collections import deque

    from ..netlist import cells

    all_mfgs: List[MFG] = []
    queue: deque = deque()

    def create(root: int) -> MFG:
        mfg = _find_mfg_hetero(graph, levels, root, lpu, uid=len(all_mfgs))
        all_mfgs.append(mfg)
        if len(all_mfgs) > max_mfgs:
            raise RuntimeError("heterogeneous partitioning exceeded max_mfgs")
        queue.append(mfg)
        return mfg

    root_mfgs: List[MFG] = []
    seen = set()
    for _name, nid in graph.outputs:
        if graph.op_of(nid) in cells.SOURCE_OPS or nid in seen:
            continue
        seen.add(nid)
        root_mfgs.append(create(nid))
    while queue:
        current = queue.popleft()
        if current.reads_primary_inputs:
            continue
        for input_node in sorted(current.input_nodes):
            child = create(input_node)
            current.children.append(child)
            child.parents.append(current)

    # Partition.m is used by merging's checkLevel; heterogeneous merging
    # must respect the *minimum* width over the MFG's level range, so we
    # conservatively expose the smallest LPV width here.
    return Partition(
        graph=graph, m=min(lpu.lpe_widths), mfgs=all_mfgs, root_mfgs=root_mfgs
    )


def _find_mfg_hetero(graph, levels, root, lpu: HeterogeneousLPU, uid: int) -> MFG:
    root_level = levels.level[root]
    if root_level < 1:
        raise ValueError(f"root {root} is a source node, not a gate")
    nodes_by_level = {root_level: {root}}
    frontier = {root}
    level = root_level
    while True:
        fanins = set()
        for nid in frontier:
            fanins.update(graph.fanins_of(nid))
        if level == 1:
            return MFG(
                uid=uid, bottom_level=1, top_level=root_level,
                nodes_by_level=nodes_by_level, roots={root},
                input_nodes=fanins, reads_primary_inputs=True,
            )
        if len(fanins) > lpu.m_of_level(level - 1):
            return MFG(
                uid=uid, bottom_level=level, top_level=root_level,
                nodes_by_level=nodes_by_level, roots={root},
                input_nodes=fanins, reads_primary_inputs=False,
            )
        nodes_by_level[level - 1] = fanins
        frontier = fanins
        level -= 1


@dataclass
class HeteroEvaluation:
    """Throughput/area of one heterogeneous profile on one graph."""

    lpu: HeterogeneousLPU
    makespan: int
    num_mfgs: int
    total_lpes: int

    @property
    def fps(self) -> float:
        return self.lpu.fps(self.makespan)

    @property
    def fps_per_lpe(self) -> float:
        """Throughput per LPE — the area-efficiency figure of merit."""
        return self.fps / self.total_lpes


def evaluate_heterogeneous(
    graph: LogicGraph,
    lpu: HeterogeneousLPU,
    merge: bool = True,
) -> HeteroEvaluation:
    """Partition/merge/schedule a balanced graph on a heterogeneous LPU."""
    part = partition_heterogeneous(graph, lpu)
    if merge:
        part = merge_partition(part)
    # Scheduling only needs the LPV count; per-level widths were already
    # enforced by the partitioner.
    schedule = build_schedule(part, lpu.homogeneous())
    return HeteroEvaluation(
        lpu=lpu,
        makespan=schedule.makespan,
        num_mfgs=part.num_mfgs,
        total_lpes=lpu.total_lpes,
    )


# ----------------------------------------------------------------------
# Multi-LPU assemblies
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class MultiLPU:
    """k identical LPUs assembled in parallel or in series."""

    base: LPUConfig
    count: int
    topology: str  # "parallel" | "series"

    def __post_init__(self) -> None:
        if self.count < 1:
            raise ValueError("need at least one LPU")
        if self.topology not in ("parallel", "series"):
            raise ValueError(f"unknown topology {self.topology!r}")

    def throughput_fps(self, per_lpu_macro_cycles: Sequence[int]) -> float:
        """Aggregate FPS for a model whose layer groups cost the given
        macro-cycles on one LPU.

        * parallel: each LPU processes a slice of every layer's neurons —
          each LPU's share of the work is 1/count, throughput scales by
          ``count`` (perfect neuron-level data parallelism; the switch
          never crosses LPUs because neurons are independent).
        * series: layer groups are assigned to pipeline stages; steady-
          state throughput is set by the slowest stage.
        """
        total = sum(per_lpu_macro_cycles)
        if total <= 0:
            raise ValueError("need positive work")
        if self.topology == "parallel":
            share = math.ceil(total / self.count)
            return self.base.fps(share)
        stages = self.partition_stages(per_lpu_macro_cycles)
        bottleneck = max(sum(group) for group in stages)
        return self.base.fps(bottleneck)

    def partition_stages(
        self, costs: Sequence[int]
    ) -> List[List[int]]:
        """Greedy contiguous partition of layer costs into ``count`` stages
        (series topology): repeatedly close a stage once it reaches the
        ideal per-stage load."""
        total = sum(costs)
        target = total / self.count
        stages: List[List[int]] = [[]]
        acc = 0.0
        for cost in costs:
            if acc >= target and len(stages) < self.count:
                stages.append([])
                acc = 0.0
            stages[-1].append(cost)
            acc += cost
        while len(stages) < self.count:
            stages.append([])
        return stages

    def total_lpes(self) -> int:
        return self.count * self.base.total_lpes


def tapered_profile(n: int, peak_m: int, taper: float) -> HeterogeneousLPU:
    """A width profile that narrows geometrically toward the last LPV.

    ``taper`` = 1.0 gives the homogeneous LPU; 0.5 halves the width across
    the pipeline.  Converging FFCL graphs (wide near the inputs, narrow at
    the outputs) are the motivation.
    """
    if not 0 < taper <= 1.0:
        raise ValueError("taper must be in (0, 1]")
    widths = []
    for k in range(n):
        frac = k / max(1, n - 1)
        widths.append(max(1, round(peak_m * (taper ** frac))))
    return HeterogeneousLPU(lpe_widths=tuple(widths))
