"""Trace lowering: flatten a compiled :class:`Program` into vectorized form.

The cycle-accurate simulator interprets every LPE instruction per
macro-cycle through Python-level dispatch (queues, switch routing tables,
snapshot registers, buffer lookups).  All of that machinery is *static* for
a given program: which slot of the value space every operand port reads is
fully determined at compile time.  This module performs that resolution
once — a symbolic replay of the simulator's dataflow — and emits a
:class:`TraceProgram`: flat numpy opcode/operand-index tables grouped by
macro-cycle, ready for batched execution with vectorized gathers
(:class:`repro.engine.trace.TraceEngine`).

Value-space layout (one row per word in the execution value table):

* slot 0 — constant 0, slot 1 — constant 1,
* slots ``2 .. 2 + |PI|`` — the primary inputs, in ``graph.inputs`` order,
* one slot per valid compute instruction, in macro-cycle order (slots of one
  macro-cycle are contiguous and sorted by opcode, so execution applies each
  Boolean op to one contiguous segment).

Instructions within a macro-cycle only ever consume values produced in
*earlier* macro-cycles (switch data from the previous LPV's last cycle,
snapshot registers latched earlier, buffer words written earlier), so every
macro-cycle is one data-parallel level.

The lowering also precomputes the run statistics the simulator reports
(instruction counts, switch routes, buffer traffic): they depend only on
the program, never on the stimulus, so a :class:`TraceProgram` carries them
as constants.
"""

from __future__ import annotations

import threading
import weakref
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

import numpy as np

from ..netlist import cells
from .codegen import PORT_A, PORT_B, Program
from .isa import (
    SRC_CONST,
    SRC_INPUT,
    SRC_SNAPSHOT,
    SRC_SWITCH,
)

#: Slots of the two constant words in every value table.
CONST0_SLOT = 0
CONST1_SLOT = 1
_NUM_CONST_SLOTS = 2


class TraceLoweringError(RuntimeError):
    """The program references a value that is never validly produced."""


@dataclass(frozen=True)
class OpSegment:
    """A contiguous run of instructions sharing one opcode within a level."""

    op: str
    start: int  # offsets into the level's local instruction range
    end: int


@dataclass(frozen=True)
class TraceLevel:
    """All compute instructions of one macro-cycle."""

    cycle: int
    out_start: int  # first value-table slot this level produces
    a_index: np.ndarray  # value-table slots feeding port a (intp, len k)
    b_index: np.ndarray  # value-table slots feeding port b (intp, len k)
    segments: Tuple[OpSegment, ...]

    @property
    def num_instructions(self) -> int:
        return len(self.a_index)


@dataclass
class TraceProgram:
    """A compiled program lowered to flat vectorizable tables."""

    program: Program
    num_slots: int
    pi_slots: Dict[str, int]  # PI name -> value-table slot
    levels: List[TraceLevel]
    output_slots: Dict[str, int]  # PO name -> value-table slot
    # Statistics identical to what the cycle-accurate simulator reports.
    macro_cycles: int
    clock_cycles: int
    compute_instructions: int
    switch_routes: int
    peak_buffer_words: int
    buffer_writes: int
    # node id of each compute slot, for debugging/inspection (trace only).
    slot_nodes: Dict[int, int] = field(default_factory=dict)

    @property
    def num_levels(self) -> int:
        return len(self.levels)


# ----------------------------------------------------------------------
# Lowering cache: a TraceProgram depends on the Program alone, and its
# tables are immutable at run time (the index arrays are marked read-only),
# so every engine lowering the same Program object can share one artifact.
# The cache holds *weak* references — it never extends the lifetime of a
# lowering beyond its last consumer — keyed by the program's id with an
# identity check guarding against id reuse.  This is what makes a
# multi-worker serving pool over one compiled program pay for lowering
# once instead of once per worker.
_LOWER_CACHE: Dict[int, "weakref.ref[TraceProgram]"] = {}
_LOWER_LOCK = threading.Lock()
_LOWER_HITS = 0
_LOWER_MISSES = 0


def lowering_cache_stats() -> Dict[str, int]:
    """Hit/miss counters of the process-wide lowering cache."""
    with _LOWER_LOCK:
        return {
            "hits": _LOWER_HITS,
            "misses": _LOWER_MISSES,
            "live_entries": len(_LOWER_CACHE),
        }


def clear_lowering_cache() -> None:
    """Drop all cached lowerings and reset the counters (for tests)."""
    global _LOWER_HITS, _LOWER_MISSES
    with _LOWER_LOCK:
        _LOWER_CACHE.clear()
        _LOWER_HITS = 0
        _LOWER_MISSES = 0


def lower_program(program: Program, *, cache: bool = True) -> TraceProgram:
    """Lower ``program`` to a :class:`TraceProgram`, memoized per program.

    With ``cache=True`` (the default) repeated lowerings of the *same*
    :class:`Program` object return one shared :class:`TraceProgram`; pass
    ``cache=False`` to force a fresh lowering.
    """
    global _LOWER_HITS, _LOWER_MISSES
    if not cache:
        return _lower_program_uncached(program)
    key = id(program)
    with _LOWER_LOCK:
        ref = _LOWER_CACHE.get(key)
        cached = ref() if ref is not None else None
        if cached is not None and cached.program is program:
            _LOWER_HITS += 1
            return cached
    trace = _lower_program_uncached(program)
    with _LOWER_LOCK:
        _LOWER_MISSES += 1
        # Dead entries are swept here, on the (rare, compile-scale) miss
        # path — never from a weakref callback, which could fire at any
        # refcount drop and race live replacements out of the cache.
        dead = [k for k, r in _LOWER_CACHE.items() if r() is None]
        for k in dead:
            del _LOWER_CACHE[k]
        ref = _LOWER_CACHE.get(key)
        racing = ref() if ref is not None else None
        if racing is not None and racing.program is program:
            return racing  # another thread lowered first: share theirs
        _LOWER_CACHE[key] = weakref.ref(trace)
    return trace


def adopt_lowering(trace: TraceProgram) -> TraceProgram:
    """Register an externally-built lowering (e.g. deserialized from an
    :mod:`repro.artifact` container) in the process-wide cache.

    Returns the canonical lowering for ``trace.program``: if a live
    lowering of the *same* program object is already cached it wins, so
    every consumer keeps sharing one set of tables.  After adoption,
    :func:`lower_program` on that program object is a cache hit — loading
    an artifact therefore never pays the symbolic replay.
    """
    with _LOWER_LOCK:
        key = id(trace.program)
        ref = _LOWER_CACHE.get(key)
        cached = ref() if ref is not None else None
        if cached is not None and cached.program is trace.program:
            return cached
        # Sweep here too: artifact-only processes adopt without ever
        # taking the lower_program miss path, and churning workloads
        # would otherwise accumulate dead entries forever.
        dead = [k for k, r in _LOWER_CACHE.items() if r() is None]
        for k in dead:
            del _LOWER_CACHE[k]
        _LOWER_CACHE[key] = weakref.ref(trace)
        return trace


def _lower_program_uncached(program: Program) -> TraceProgram:
    """Symbolically replay ``program`` once, producing a :class:`TraceProgram`.

    Raises :class:`TraceLoweringError` where the simulator would raise
    :class:`~repro.lpu.lpe.InvalidDataError` at run time (an operand port
    consuming or latching a value that was never produced).
    """
    cfg = program.config
    graph = program.graph
    schedule = program.schedule
    n, m = cfg.n, cfg.m

    pi_slots: Dict[str, int] = {}
    node_slot: Dict[int, int] = {}  # PI/const node id -> slot
    next_slot = _NUM_CONST_SLOTS
    for nid in graph.inputs:
        pi_slots[graph.input_name(nid)] = next_slot
        node_slot[nid] = next_slot
        next_slot += 1
    for nid in graph.topological_order():
        op = graph.op_of(nid)
        if op == cells.CONST0:
            node_slot[nid] = CONST0_SLOT
        elif op == cells.CONST1:
            node_slot[nid] = CONST1_SLOT

    # Mutable machine state, tracked symbolically (slots, not words).
    prev_out: List[List[Optional[int]]] = [[None] * m for _ in range(n)]
    snapshots: Dict[Tuple[int, int, str], int] = {}
    buffer_slot: Dict[Tuple[int, int], int] = {}

    levels: List[TraceLevel] = []
    slot_nodes: Dict[int, int] = {}
    switch_routes = 0
    compute_instructions = 0
    total_buffer_writes = 0

    for cycle in range(schedule.makespan):
        input_entry = program.input_reads.get(cycle, {})
        new_out: List[List[Optional[int]]] = [[None] * m for _ in range(n)]
        # (op, a_slot, b_slot, lpv, col, node) for this macro-cycle.
        pending: List[Tuple[str, int, int, int, int, Optional[int]]] = []

        for k in range(n):
            instructions = program.instruction_at(cycle, k)
            circ_entry = program.circulation_reads.get((cycle, k), {})

            # Switch statistics mirror LPUSimulator._route_into: every
            # switch-sourced port spec of a fetched instruction is one
            # route request (LPV 0 has no feeding switch).
            if k > 0:
                for instr in instructions:
                    for spec in (instr.a, instr.b):
                        if spec.source == SRC_SWITCH:
                            switch_routes += 1

            for col, instr in enumerate(instructions):
                if instr.is_pure_nop:
                    continue
                a_slot = _resolve_port(
                    k, col, PORT_A, instr.a, cycle,
                    prev_out, snapshots, buffer_slot,
                    input_entry, circ_entry, node_slot, instr,
                )
                b_slot = _resolve_port(
                    k, col, PORT_B, instr.b, cycle,
                    prev_out, snapshots, buffer_slot,
                    input_entry, circ_entry, node_slot, instr,
                )
                if not instr.valid:
                    continue  # latch-only instruction: no output
                if a_slot is None or (
                    b_slot is None and cells.arity(instr.op) == 2
                ):
                    raise TraceLoweringError(
                        f"LPE({k},{col}) op {instr.op!r} at cycle {cycle}: "
                        f"consuming an invalid value (node {instr.node})"
                    )
                pending.append(
                    (instr.op, a_slot,
                     b_slot if b_slot is not None else CONST0_SLOT,
                     k, col, instr.node)
                )

        if pending:
            # Sort by opcode so each op covers one contiguous segment; the
            # instructions of a macro-cycle are mutually independent, so
            # reordering cannot change any value.
            pending.sort(key=lambda entry: entry[0])
            out_start = next_slot
            a_index = np.empty(len(pending), dtype=np.intp)
            b_index = np.empty(len(pending), dtype=np.intp)
            segments: List[OpSegment] = []
            for i, (op, a_slot, b_slot, k, col, node) in enumerate(pending):
                a_index[i] = a_slot
                b_index[i] = b_slot
                new_out[k][col] = next_slot
                if node is not None:
                    slot_nodes[next_slot] = node
                if segments and segments[-1].op == op:
                    segments[-1] = OpSegment(op, segments[-1].start, i + 1)
                else:
                    segments.append(OpSegment(op, i, i + 1))
                next_slot += 1
            compute_instructions += len(pending)
            # Lowered tables may be shared across engines and threads
            # (see the lowering cache): freeze them.
            a_index.setflags(write=False)
            b_index.setflags(write=False)
            levels.append(
                TraceLevel(
                    cycle=cycle,
                    out_start=out_start,
                    a_index=a_index,
                    b_index=b_index,
                    segments=tuple(segments),
                )
            )

        # Switch phase: capture this macro-cycle's buffer writes.
        for key, lpv, col in program.buffer_writes.get(cycle, ()):
            slot = new_out[lpv][col]
            if slot is None:
                raise TraceLoweringError(
                    f"buffer write of {key} from LPV {lpv} column {col} "
                    f"at cycle {cycle}: invalid data"
                )
            buffer_slot[key] = slot
            total_buffer_writes += 1
        prev_out = new_out

    output_slots: Dict[str, int] = {}
    for name, nid in graph.outputs:
        if name in program.po_buffer_keys:
            output_slots[name] = buffer_slot[program.po_buffer_keys[name]]
        elif nid in node_slot:  # PO aliased to a PI or constant
            output_slots[name] = node_slot[nid]
        else:
            raise TraceLoweringError(f"output {name!r} is never produced")

    # The output buffer only grows within a run, so its peak equals the
    # number of distinct keys written — identical to the simulator's count.
    return TraceProgram(
        program=program,
        num_slots=next_slot,
        pi_slots=pi_slots,
        levels=levels,
        output_slots=output_slots,
        macro_cycles=schedule.makespan,
        clock_cycles=schedule.makespan * cfg.t_c,
        compute_instructions=compute_instructions,
        switch_routes=switch_routes,
        peak_buffer_words=len(buffer_slot),
        buffer_writes=total_buffer_writes,
        slot_nodes=slot_nodes,
    )


def _resolve_port(
    k: int,
    col: int,
    port: str,
    spec,
    cycle: int,
    prev_out: List[List[Optional[int]]],
    snapshots: Dict[Tuple[int, int, str], int],
    buffer_slot: Dict[Tuple[int, int], int],
    input_entry: Dict[Tuple[int, str], int],
    circ_entry: Dict[Tuple[int, str], Tuple[int, int]],
    node_slot: Dict[int, int],
    instr,
) -> Optional[int]:
    """Slot presented at one operand port — LPE._resolve, symbolically."""
    if spec.source == SRC_SWITCH:
        slot = prev_out[k - 1][spec.index] if k > 0 else None
    elif spec.source == SRC_SNAPSHOT:
        slot = snapshots.get((k, col, port))
    elif spec.source == SRC_INPUT:
        # The data buffers address by (column, port): circulation reads
        # shadow input-buffer reads, and the input buffer feeds LPV 0 only.
        key = circ_entry.get((col, port))
        if key is not None:
            slot = buffer_slot.get(key)
        elif k == 0 and (col, port) in input_entry:
            slot = node_slot[input_entry[(col, port)]]
        else:
            slot = None
    elif spec.source == SRC_CONST:
        slot = CONST1_SLOT if spec.index else CONST0_SLOT
    else:  # pragma: no cover - PortSpec validates sources
        raise ValueError(f"unknown source {spec.source!r}")
    if spec.latch:
        if slot is None:
            raise TraceLoweringError(
                f"LPE({k},{col}) port {port} at cycle {cycle}: "
                f"latching an invalid value (node {instr.node})"
            )
        snapshots[(k, col, port)] = slot
    return slot
