"""Instruction-queue code generation (Fig. 1 box 2, Fig. 6, Section V-B).

Turns a :class:`~repro.core.schedule.Schedule` into the concrete contents of
every LPV's instruction queues, the input data buffer layout, and the
output-buffer (circulation) traffic — everything the cycle-accurate LPU
simulator executes.

Dataflow rules implemented here:

* **within an MFG** — level l reads level l-1's results through the switch
  network (one macro-cycle earlier, previous LPV),
* **most recent child** — a child finishing exactly one macro-cycle before
  its parent issues feeds the parent's bottom level directly through the
  switch, with no snapshot storage (Section V-B),
* **earlier children** — their top-level results are latched into the
  snapshot registers of the parent's bottom LPV when they arrive ("the
  instruction that invalidates output & does a snapshot", Fig. 6) and read
  from there when the parent issues.  Snapshot registers are per-LPE and
  per-port, so the code generator allocates the parent's bottom-level
  columns such that every latched value's lifetime has exclusive use of its
  (LPE, port) slot,
* **primary inputs** — MFGs whose bottom level consumes PIs read the input
  data buffer at LPV 0; the buffer is laid out in issue order so a simple
  counter addresses it (Section V-B),
* **circulation (the depth issue)** — any hop that wraps from LPV n-1 back
  to LPV 0 (inside a deep MFG or on a child->parent boundary) parks its
  values in the output data buffer, which "performs as the snapshot
  registers of LPV Ltop+1" (Section V-C), and re-enters at LPV 0,
* **primary outputs** — root MFGs' top-level results are captured into the
  output data buffer.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Set, Tuple

from ..netlist import cells
from ..netlist.graph import LogicGraph
from .config import LPUConfig
from .isa import (
    IDLE_PORT,
    NOP,
    LPEInstruction,
    PortSpec,
    SRC_CONST,
    SRC_INPUT,
    SRC_SNAPSHOT,
    SRC_SWITCH,
)
from .mfg import MFG
from .schedule import Schedule, ScheduledMFG, ScheduleError

PORT_A = "a"
PORT_B = "b"


@dataclass
class Program:
    """Everything the LPU needs to execute one FFCL block."""

    config: LPUConfig
    graph: LogicGraph
    schedule: Schedule
    #: lpv -> normalized queue address -> instruction vector (length m).
    queues: Dict[int, Dict[int, List[LPEInstruction]]]
    #: macro-cycle -> {(column, port): source node id} — LPV 0 reads of
    #: PI/constant values from the input data buffer.
    input_reads: Dict[int, Dict[Tuple[int, str], int]]
    #: (macro-cycle, lpv) -> {(column, port): buffer key} — reads of
    #: circulated values from the output data buffer.  LPV 0 entries are the
    #: paper's depth-issue circulation; entries at other LPVs are snapshot-
    #: pressure spills (see DESIGN.md, "buffer spill" modeling extension).
    #: Buffer keys are (producer MFG uid, node id): overlapping MFGs compute
    #: the same node at different times, so entries carry their producer.
    circulation_reads: Dict[Tuple[int, int], Dict[Tuple[int, str], Tuple[int, int]]]
    #: macro-cycle -> [(buffer key, lpv, column)] — values captured into the
    #: output data buffer after that macro-cycle's compute phase.
    buffer_writes: Dict[int, List[Tuple[Tuple[int, int], int, int]]]
    #: PO name -> node id whose final value is the output.
    po_nodes: Dict[str, int]
    #: PO name -> buffer key holding its value (absent for source POs).
    po_buffer_keys: Dict[str, Tuple[int, int]]
    #: peak number of simultaneously-live words in the output data buffer.
    peak_buffer_words: int
    #: MFGs whose inputs overflowed the snapshot registers and were parked
    #: in the output data buffer instead (0 when m is sized sensibly).
    buffer_spills: int = 0

    @property
    def num_compute_instructions(self) -> int:
        # Memoized: the queues are immutable once generated, and the count
        # is re-read by per-pass instrumentation and metrics on every
        # compile — a full queue scan each time on large programs.
        cached = self.__dict__.get("_num_compute_instructions")
        if cached is None:
            cached = sum(
                1
                for per_lpv in self.queues.values()
                for vec in per_lpv.values()
                for instr in vec
                if instr.op != NOP
            )
            self.__dict__["_num_compute_instructions"] = cached
        return cached

    @property
    def num_queue_entries(self) -> int:
        return sum(len(per_lpv) for per_lpv in self.queues.values())

    def instruction_at(self, cycle: int, lpv: int) -> List[LPEInstruction]:
        """Instruction vector executed by ``lpv`` at ``cycle`` (NOPs if
        the queue holds nothing for that address)."""
        address = self.schedule.address_of(cycle, lpv)
        vec = self.queues.get(lpv, {}).get(address)
        if vec is None:
            from .isa import NOP_INSTRUCTION

            return [NOP_INSTRUCTION] * self.config.m
        return vec


@dataclass
class _MutableInstr:
    op: str = NOP
    a: Optional[PortSpec] = None
    b: Optional[PortSpec] = None
    valid: bool = False
    node: Optional[int] = None

    def freeze(self) -> LPEInstruction:
        return LPEInstruction(
            op=self.op,
            a=self.a if self.a is not None else IDLE_PORT,
            b=self.b if self.b is not None else IDLE_PORT,
            valid=self.valid,
            node=self.node,
        )

    def set_port(self, port: str, spec: PortSpec) -> None:
        current = getattr(self, port)
        if current is not None and current != spec:
            raise ScheduleError(
                f"port {port!r} already configured with {current}, "
                f"cannot also be {spec}"
            )
        setattr(self, port, spec)


class _SnapshotAllocator:
    """Tracks (LPV, column) snapshot lifetimes and compute-column usage."""

    def __init__(self, m: int) -> None:
        self.m = m
        # (lpv, column) -> list of (start, end) reserved intervals.
        self._busy: Dict[Tuple[int, int], List[Tuple[int, int]]] = {}
        # (cycle, lpv) -> columns computing there.
        self.compute_cols: Dict[Tuple[int, int], Set[int]] = {}

    def _column_free(
        self, lpv: int, col: int, start: int, end: int, arrival_cycles: List[int]
    ) -> bool:
        for s, e in self._busy.get((lpv, col), ()):
            if not (end < s or e < start):
                return False
        for cycle in arrival_cycles:
            if col in self.compute_cols.get((cycle, lpv), ()):
                return False
        return True

    def allocate(
        self,
        lpv: int,
        width: int,
        start: int,
        end: int,
        arrival_cycles: List[int],
    ) -> List[int]:
        """Reserve ``width`` columns at ``lpv`` over [start, end]."""
        chosen: List[int] = []
        for col in range(self.m):
            if self._column_free(lpv, col, start, end, arrival_cycles):
                chosen.append(col)
                if len(chosen) == width:
                    break
        if len(chosen) < width:
            raise ScheduleError(
                f"snapshot pressure at LPV {lpv}: need {width} columns over "
                f"macro-cycles [{start}, {end}], only {len(chosen)} free"
            )
        for col in chosen:
            self._busy.setdefault((lpv, col), []).append((start, end))
        return chosen

    def mark_compute(self, cycle: int, lpv: int, columns: Set[int]) -> None:
        self.compute_cols.setdefault((cycle, lpv), set()).update(columns)


def _port_names(num_fanins: int) -> List[str]:
    return [PORT_A, PORT_B][:num_fanins]


def generate_program(
    schedule: Schedule, graph: LogicGraph, config: LPUConfig
) -> Program:
    """Generate instruction queues and buffer traffic for ``schedule``."""
    m = config.m
    n = config.n
    items = sorted(schedule.items, key=lambda it: (it.issue_cycle, it.mfg.uid))

    alloc = _SnapshotAllocator(m)
    # (lpv, address) -> column -> mutable instruction
    cells_out: Dict[Tuple[int, int], Dict[int, _MutableInstr]] = {}
    # uid -> node -> column
    col_of: Dict[int, Dict[int, int]] = {}
    input_reads: Dict[int, Dict[Tuple[int, str], int]] = {}
    circulation_reads: Dict[Tuple[int, int], Dict[Tuple[int, str], int]] = {}
    buffer_writes: Dict[int, List[Tuple[Tuple[int, int], int, int]]] = {}
    buffer_reads_by_key: Dict[Tuple[int, int], List[int]] = {}
    buffer_write_cycle: Dict[Tuple[int, int], int] = {}
    po_buffer_keys: Dict[str, Tuple[int, int]] = {}
    buffer_spills = 0

    def cell(cycle: int, lpv: int) -> Dict[int, _MutableInstr]:
        address = schedule.address_of(cycle, lpv)
        return cells_out.setdefault((lpv, address), {})

    def note_buffer_write(
        key: Tuple[int, int], cycle: int, lpv: int, column: int
    ) -> None:
        if key in buffer_write_cycle:
            return  # already captured (value read through several ports)
        buffer_write_cycle[key] = cycle
        buffer_writes.setdefault(cycle, []).append((key, lpv, column))

    for item in items:
        mfg = item.mfg
        uid = mfg.uid
        cols: Dict[int, int] = {}
        col_of[uid] = cols

        bottom = mfg.bottom_level
        bottom_lpv = item.lpv_of_level[bottom]
        bottom_cycle = item.cycle_of_level[bottom]
        wrapped_bottom = bottom > 1 and bottom_lpv == 0

        # Map each external input node to the child MFG producing it.
        producer: Dict[int, MFG] = {}
        if not mfg.reads_primary_inputs:
            for child in mfg.children:
                for root in child.roots:
                    producer[root] = child
        child_item: Dict[int, ScheduledMFG] = {
            c.uid: schedule.by_uid[c.uid] for c in mfg.children
        }

        def child_is_direct(child: MFG) -> bool:
            if wrapped_bottom:
                return False
            return child_item[child.uid].finish_cycle + 1 == item.issue_cycle

        # ---- bottom-level column assignment ------------------------------
        # Children whose outputs reach this MFG through the output data
        # buffer rather than the switch/snapshot path: every child when the
        # bottom hop wraps the pipeline (the paper's circulation), or every
        # non-direct child when the snapshot registers cannot hold the
        # pending values (the documented buffer-spill extension).
        bottom_nodes = sorted(mfg.nodes_by_level[bottom])
        buffer_children: Set[int] = set()
        non_direct = [
            c for c in mfg.children if not wrapped_bottom and not child_is_direct(c)
        ]
        if wrapped_bottom:
            buffer_children = {c.uid for c in mfg.children}
        if mfg.reads_primary_inputs or wrapped_bottom or not non_direct:
            bottom_cols = list(range(len(bottom_nodes)))
        else:
            arrivals = sorted(
                child_item[c.uid].finish_cycle + 1 for c in non_direct
            )
            try:
                bottom_cols = alloc.allocate(
                    bottom_lpv,
                    len(bottom_nodes),
                    arrivals[0],
                    item.issue_cycle,
                    arrivals,
                )
            except ScheduleError:
                buffer_children = {c.uid for c in non_direct}
                buffer_spills += 1
                bottom_cols = list(range(len(bottom_nodes)))
        for node, col in zip(bottom_nodes, bottom_cols):
            cols[node] = col

        # ---- other levels: columns 0..w-1 in sorted-node order -----------
        for level in range(bottom + 1, mfg.top_level + 1):
            for col, node in enumerate(sorted(mfg.nodes_by_level[level])):
                cols[node] = col

        # ---- emit compute instructions -----------------------------------
        for level in mfg.levels():
            cycle = item.cycle_of_level[level]
            lpv = item.lpv_of_level[level]
            level_nodes = sorted(mfg.nodes_by_level[level])
            alloc.mark_compute(cycle, lpv, {cols[v] for v in level_nodes})
            vec = cell(cycle, lpv)
            internal_wrap = level > bottom and lpv == 0

            for node in level_nodes:
                col = cols[node]
                instr = vec.setdefault(col, _MutableInstr())
                if instr.valid:
                    raise ScheduleError(
                        f"column {col} at (cycle {cycle}, LPV {lpv}) "
                        f"already computes node {instr.node}"
                    )
                op = graph.op_of(node)
                instr.op = op
                instr.valid = True
                instr.node = node
                fanins = graph.fanins_of(node)
                for port, fanin in zip(_port_names(len(fanins)), fanins):
                    spec = _port_for_fanin(
                        graph,
                        schedule,
                        item,
                        mfg,
                        level,
                        cycle,
                        lpv,
                        col,
                        port,
                        fanin,
                        cols,
                        col_of,
                        producer,
                        child_item,
                        buffer_children,
                        child_is_direct,
                        internal_wrap,
                        input_reads,
                        circulation_reads,
                        note_buffer_write,
                        buffer_reads_by_key,
                        cell,
                    )
                    instr.set_port(port, spec)

        # ---- PO capture for root MFGs -------------------------------------
        if not mfg.parents:
            finish = item.finish_cycle
            top_lpv = item.lpv_of_level[mfg.top_level]
            for root in sorted(mfg.roots):
                note_buffer_write((uid, root), finish, top_lpv, cols[root])
            for po_name, po_node in graph.outputs:
                if po_node in mfg.roots:
                    po_buffer_keys.setdefault(po_name, (uid, po_node))

    # ---- freeze instruction vectors ---------------------------------------
    queues: Dict[int, Dict[int, List[LPEInstruction]]] = {}
    from .isa import NOP_INSTRUCTION

    for (lpv, address), per_col in cells_out.items():
        vec = [NOP_INSTRUCTION] * m
        for col, mutable in per_col.items():
            vec[col] = mutable.freeze()
        queues.setdefault(lpv, {})[address] = vec

    po_nodes = {name: nid for name, nid in graph.outputs}
    peak = _peak_buffer_words(
        buffer_write_cycle, buffer_reads_by_key, schedule.makespan
    )
    return Program(
        config=config,
        graph=graph,
        schedule=schedule,
        queues=queues,
        input_reads=input_reads,
        circulation_reads=circulation_reads,
        buffer_writes=buffer_writes,
        po_nodes=po_nodes,
        po_buffer_keys=po_buffer_keys,
        peak_buffer_words=peak,
        buffer_spills=buffer_spills,
    )


def _port_for_fanin(
    graph: LogicGraph,
    schedule: Schedule,
    item: ScheduledMFG,
    mfg: MFG,
    level: int,
    cycle: int,
    lpv: int,
    col: int,
    port: str,
    fanin: int,
    cols: Dict[int, int],
    col_of: Dict[int, Dict[int, int]],
    producer: Dict[int, MFG],
    child_item: Dict[int, ScheduledMFG],
    buffer_children: Set[int],
    child_is_direct,
    internal_wrap: bool,
    input_reads: Dict[int, Dict[Tuple[int, str], int]],
    circulation_reads: Dict[
        Tuple[int, int], Dict[Tuple[int, str], Tuple[int, int]]
    ],
    note_buffer_write,
    buffer_reads_by_key: Dict[Tuple[int, int], List[int]],
    cell,
) -> PortSpec:
    """Resolve one operand port of one compute instruction."""
    fanin_op = graph.op_of(fanin)

    # Constant fanins never travel through the datapath.
    if fanin_op in (cells.CONST0, cells.CONST1):
        return PortSpec(SRC_CONST, 1 if fanin_op == cells.CONST1 else 0)

    def read_from_buffer(
        key: Tuple[int, int], write_cycle: int, write_lpv: int, write_col: int
    ):
        note_buffer_write(key, write_cycle, write_lpv, write_col)
        circulation_reads.setdefault((cycle, lpv), {})[(col, port)] = key
        buffer_reads_by_key.setdefault(key, []).append(cycle)
        return PortSpec(SRC_INPUT, _slot(col, port))

    if level > mfg.bottom_level:
        # Within-MFG hop: previous level, previous LPV (or circulation when
        # the MFG itself wraps the pipeline at this level).
        src_col = cols[fanin]
        if internal_wrap:
            return read_from_buffer(
                (mfg.uid, fanin), cycle - 1, schedule.config.n - 1, src_col
            )
        return PortSpec(SRC_SWITCH, src_col)

    # Bottom level: external inputs.
    if mfg.reads_primary_inputs:
        input_reads.setdefault(cycle, {})[(col, port)] = fanin
        return PortSpec(SRC_INPUT, _slot(col, port))

    child = producer.get(fanin)
    if child is None:
        raise ScheduleError(
            f"no child MFG produces input node {fanin} of MFG {mfg.uid}"
        )
    c_item = child_item[child.uid]
    src_col = col_of[child.uid][fanin]

    if child.uid in buffer_children:
        # Circulation (wrapped hop) or snapshot-pressure spill: the child's
        # top-level results were parked in the output data buffer.
        return read_from_buffer(
            (child.uid, fanin), c_item.finish_cycle, c_item.top_lpv, src_col
        )

    if child_is_direct(child):
        # Most recent child: flows straight through the switch.
        return PortSpec(SRC_SWITCH, src_col)

    # Earlier child: latch on arrival, read from the snapshot register.
    arrival = c_item.finish_cycle + 1
    arrival_vec = cell(arrival, lpv)
    arrival_instr = arrival_vec.setdefault(col, _MutableInstr())
    arrival_instr.set_port(
        port, PortSpec(SRC_SWITCH, src_col, latch=True)
    )
    return PortSpec(SRC_SNAPSHOT)


def _slot(col: int, port: str) -> int:
    """Buffer slot index for a (column, port) pair at LPV 0."""
    return col * 2 + (0 if port == PORT_A else 1)


def _peak_buffer_words(
    writes: Dict[Tuple[int, int], int],
    reads: Dict[Tuple[int, int], List[int]],
    makespan: int,
) -> int:
    """Peak simultaneous live words in the output data buffer."""
    events: Dict[int, int] = {}
    for key, wcycle in writes.items():
        last_read = max(reads.get(key, [makespan]))
        events[wcycle] = events.get(wcycle, 0) + 1
        events[last_read + 1] = events.get(last_read + 1, 0) - 1
    live = 0
    peak = 0
    for cycle in sorted(events):
        live += events[cycle]
        peak = max(peak, live)
    return peak
