"""Instruction set of the logic processor.

"The operations assigned to each LPE are configured with the aid of an
instruction set" (Section IV).  Each macro-cycle, every LPE of an LPV
executes one :class:`LPEInstruction`, which selects where its two operand
ports read from, whether the routed values are latched into the LPE's two
snapshot registers, which Boolean operation the logic unit performs, and
whether the produced output is valid (invalid outputs model the paper's
"instruction that invalidates output", Fig. 6).

Operand sources:

* ``switch`` — the non-blocking multicast switch network delivers the
  output of column ``index`` of the *previous* LPV (produced one
  macro-cycle earlier),
* ``snapshot`` — the LPE's own snapshot register for that port,
* ``input`` — a word of the input data buffer (only meaningful at LPV 0;
  ``index`` selects the slot within the current buffer entry),
* ``const`` — constant 0/1 (``index`` is the value).

Instructions encode to 32-bit words (:func:`encode_instruction`), giving the
"customized instructions" of the paper a concrete binary format that the
tests round-trip.
"""

from __future__ import annotations

from dataclasses import dataclass
from functools import lru_cache
from typing import Optional

from ..netlist import cells

#: LPE opcode for "no computation" (output is invalidated).
NOP = "nop"

_OPCODES = {
    NOP: 0,
    cells.BUF: 1,
    cells.NOT: 2,
    cells.AND: 3,
    cells.OR: 4,
    cells.XOR: 5,
    cells.XNOR: 6,
    cells.NAND: 7,
    cells.NOR: 8,
}
_OPCODE_NAMES = {v: k for k, v in _OPCODES.items()}

SRC_SWITCH = "switch"
SRC_SNAPSHOT = "snapshot"
SRC_INPUT = "input"
SRC_CONST = "const"

_SRC_CODES = {SRC_SWITCH: 0, SRC_SNAPSHOT: 1, SRC_INPUT: 2, SRC_CONST: 3}
_SRC_NAMES = {v: k for k, v in _SRC_CODES.items()}

#: Maximum encodable port index (switch column / buffer slot).
MAX_PORT_INDEX = 255


@dataclass(frozen=True)
class PortSpec:
    """Operand-port configuration of one LPE input."""

    source: str
    index: int = 0
    latch: bool = False  # store the routed value into this port's snapshot

    def __post_init__(self) -> None:
        if self.source not in _SRC_CODES:
            raise ValueError(f"unknown port source {self.source!r}")
        if not 0 <= self.index <= MAX_PORT_INDEX:
            raise ValueError(f"port index {self.index} out of range")
        if self.source == SRC_CONST and self.index not in (0, 1):
            raise ValueError("const port index must be 0 or 1")


#: A port that reads nothing (constant 0, no latch) — used for unused ports.
IDLE_PORT = PortSpec(SRC_CONST, 0)


@dataclass(frozen=True)
class LPEInstruction:
    """One LPE's work for one macro-cycle."""

    op: str = NOP
    a: PortSpec = IDLE_PORT
    b: PortSpec = IDLE_PORT
    valid: bool = False  # does the logic unit drive a valid output?
    node: Optional[int] = None  # logic-graph node computed (trace only)

    def __post_init__(self) -> None:
        if self.op not in _OPCODES:
            raise ValueError(f"unknown LPE op {self.op!r}")
        if self.valid and self.op == NOP:
            raise ValueError("a NOP cannot produce a valid output")
        if not self.valid and self.op != NOP:
            raise ValueError(f"op {self.op!r} must produce a valid output")

    @property
    def is_pure_nop(self) -> bool:
        """True if the instruction neither computes nor latches."""
        return self.op == NOP and not self.a.latch and not self.b.latch


#: The canonical "do nothing, invalidate output" instruction.
NOP_INSTRUCTION = LPEInstruction()


def _encode_port(port: PortSpec) -> int:
    return (_SRC_CODES[port.source] << 9) | (int(port.latch) << 8) | port.index


@lru_cache(maxsize=4096)  # <= 2^11 encodable ports; PortSpec is frozen
def _decode_port(bits: int) -> PortSpec:
    return PortSpec(
        source=_SRC_NAMES[(bits >> 9) & 0x3],
        index=bits & 0xFF,
        latch=bool((bits >> 8) & 0x1),
    )


def encode_instruction(instr: LPEInstruction) -> int:
    """Pack an instruction into a 32-bit word.

    Layout (LSB first): op[4] | valid[1] | a[11] | b[11] | reserved[5].
    """
    word = _OPCODES[instr.op]
    word |= int(instr.valid) << 4
    word |= _encode_port(instr.a) << 5
    word |= _encode_port(instr.b) << 16
    return word


@lru_cache(maxsize=65536)  # instructions are frozen: share per word
def decode_instruction(word: int) -> LPEInstruction:
    """Inverse of :func:`encode_instruction` (drops the trace node).

    Decoded instructions are memoized per word — artifact deserialization
    (:mod:`repro.artifact`) decodes whole instruction queues, where the
    same words (NOPs above all) recur thousands of times.
    """
    if not 0 <= word < (1 << 32):
        raise ValueError("instruction word out of range")
    op = _OPCODE_NAMES[word & 0xF]
    valid = bool((word >> 4) & 0x1)
    a = _decode_port((word >> 5) & 0x7FF)
    b = _decode_port((word >> 16) & 0x7FF)
    return LPEInstruction(op=op, a=a, b=b, valid=valid)
