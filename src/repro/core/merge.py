"""Greedy MFG merging (paper Algorithm 3).

"The runtime of a BNN inference task is primarily affected by the total
number of MFGs.  Therefore, a greedy merging algorithm is proposed to merge
within a set of single-output MFGs that feeds into the same MFG and has the
same bottom level, generat[ing] one multiple-output MFG."

Two sibling MFGs are mergeable when:

* they share the same bottom level (condition (1) would otherwise break:
  inbound edges must enter only at the bottom-most level), and
* ``checkLevel`` passes: at every level, the union of their node sets has
  at most m nodes (shared nodes — condition (3) overlap — count once, which
  is exactly where merging wins twice: fewer MFGs *and* shared logic
  computed once).

Siblings automatically share their top level, because every child of an MFG
is rooted at one of its input nodes and those all sit at the parent's
``bottom_level - 1``.

The paper's Algorithm 3 walks the MFG DAG from the root; we do the same,
and additionally treat the root MFGs themselves as siblings under a virtual
super-parent so multi-output networks merge at the top as well.
"""

from __future__ import annotations

from collections import deque
from typing import Dict, List, Set

from .mfg import MFG, Partition, iter_mfg_dag_topological


def clone_partition(part: Partition) -> Partition:
    """Structure-preserving deep copy of a partition's MFG DAG.

    Every MFG is re-created (same uid, copied node/root/input sets) and the
    parent/child links are rebuilt between the clones, so mutations of the
    copy — such as the in-place splicing the merging pass performs — can
    never leak back into the original partition.
    """
    clones: Dict[int, MFG] = {}
    for mfg in part.mfgs:
        clones[mfg.uid] = MFG(
            uid=mfg.uid,
            bottom_level=mfg.bottom_level,
            top_level=mfg.top_level,
            nodes_by_level={
                level: set(nodes) for level, nodes in mfg.nodes_by_level.items()
            },
            roots=set(mfg.roots),
            input_nodes=set(mfg.input_nodes),
            reads_primary_inputs=mfg.reads_primary_inputs,
        )
    for mfg in part.mfgs:
        clone = clones[mfg.uid]
        clone.children = [clones[c.uid] for c in mfg.children]
        clone.parents = [clones[p.uid] for p in mfg.parents]
    return Partition(
        graph=part.graph,
        m=part.m,
        mfgs=[clones[mfg.uid] for mfg in part.mfgs],
        root_mfgs=[clones[mfg.uid] for mfg in part.root_mfgs],
    )


def check_level(a: MFG, b: MFG, m: int) -> bool:
    """The paper's checkLevel: per-level union widths must fit in an LPV."""
    if a.bottom_level != b.bottom_level or a.top_level != b.top_level:
        return False
    for level in a.levels():
        union = a.nodes_by_level[level] | b.nodes_by_level[level]
        if len(union) > m:
            return False
    return True


def merge_pair(a: MFG, b: MFG, uid: int) -> MFG:
    """Union two mergeable MFGs into a multi-output MFG (links unset)."""
    nodes_by_level = {
        level: set(a.nodes_by_level[level]) | set(b.nodes_by_level[level])
        for level in a.levels()
    }
    return MFG(
        uid=uid,
        bottom_level=a.bottom_level,
        top_level=a.top_level,
        nodes_by_level=nodes_by_level,
        roots=set(a.roots) | set(b.roots),
        input_nodes=set(a.input_nodes) | set(b.input_nodes),
        reads_primary_inputs=a.reads_primary_inputs or b.reads_primary_inputs,
    )


def _replace_links(old_pair: List[MFG], merged: MFG) -> None:
    """Splice ``merged`` into the MFG DAG in place of two siblings."""
    old_set = {mfg.uid for mfg in old_pair}
    children: List[MFG] = []
    parents: List[MFG] = []
    for mfg in old_pair:
        for child in mfg.children:
            if child.uid not in {c.uid for c in children}:
                children.append(child)
        for parent in mfg.parents:
            if parent.uid not in {p.uid for p in parents}:
                parents.append(parent)
    merged.children = children
    merged.parents = parents
    for child in children:
        child.parents = [p for p in child.parents if p.uid not in old_set]
        child.parents.append(merged)
    for parent in parents:
        kept = [c for c in parent.children if c.uid not in old_set]
        if merged not in kept:
            kept.append(merged)
        parent.children = kept


def _merge_sibling_group(siblings: List[MFG], m: int, next_uid: List[int]) -> List[MFG]:
    """Greedily merge a sibling list until no pair is mergeable.

    Siblings are bucketed by bottom level (merging across different bottom
    levels is illegal, Algorithm 3) and folded into accumulators first-fit:
    each MFG merges into the first accumulated MFG it fits, otherwise it
    starts a new accumulator.  This is the paper's greedy loop with an
    O(k^2)-not-O(k^3) implementation.
    """
    buckets: Dict[int, List[MFG]] = {}
    order: List[int] = []
    for mfg in siblings:
        if mfg.bottom_level not in buckets:
            order.append(mfg.bottom_level)
        buckets.setdefault(mfg.bottom_level, []).append(mfg)

    result: List[MFG] = []
    for bottom in order:
        accumulators: List[MFG] = []
        for mfg in buckets[bottom]:
            placed = False
            for i, acc in enumerate(accumulators):
                if check_level(acc, mfg, m):
                    merged = merge_pair(acc, mfg, uid=next_uid[0])
                    next_uid[0] += 1
                    _replace_links([acc, mfg], merged)
                    accumulators[i] = merged
                    placed = True
                    break
            if not placed:
                accumulators.append(mfg)
        result.extend(accumulators)
    return result


def merge_partition(part: Partition) -> Partition:
    """Algorithm 3 over the whole MFG DAG; returns a new Partition.

    The input partition is left untouched: merging operates on a
    :func:`clone_partition` copy, so ``part`` (including its parent/child
    links) stays valid for reporting and re-scheduling after the merge.
    """
    part = clone_partition(part)
    m = part.m
    next_uid = [max((g.uid for g in part.mfgs), default=-1) + 1]

    # Track which MFGs are still part of the DAG: a sibling merge through
    # one parent can retire an MFG that another parent already enqueued.
    alive: Set[int] = {g.uid for g in part.mfgs}

    def merge_group(group: List[MFG]) -> List[MFG]:
        before = {g.uid for g in group}
        merged_group = _merge_sibling_group(group, m, next_uid)
        after = {g.uid for g in merged_group}
        alive.difference_update(before - after)
        alive.update(after - before)
        return merged_group

    # Root MFGs are siblings under a virtual super-parent.
    root_mfgs = merge_group(list(part.root_mfgs))

    queue: deque = deque(root_mfgs)
    visited: Set[int] = {g.uid for g in root_mfgs}
    while queue:
        current = queue.popleft()
        if current.uid not in alive:
            continue  # retired by a merge through another parent
        current.children = merge_group(current.children)
        for child in current.children:
            if child.uid not in visited:
                visited.add(child.uid)
                queue.append(child)

    result = iter_mfg_dag_topological(root_mfgs)
    merged = Partition(graph=part.graph, m=m, mfgs=result, root_mfgs=root_mfgs)
    return merged


def merging_report(before: Partition, after: Partition) -> Dict[str, float]:
    """MFG-count and span statistics for the Fig. 7/8 experiments."""
    seq_before = before.total_macro_cycles_sequential()
    seq_after = after.total_macro_cycles_sequential()
    return {
        "mfgs_before": float(before.num_mfgs),
        "mfgs_after": float(after.num_mfgs),
        "mfg_reduction": (
            before.num_mfgs / after.num_mfgs if after.num_mfgs else 1.0
        ),
        "span_before": float(seq_before),
        "span_after": float(seq_after),
        "span_reduction": seq_before / seq_after if seq_after else 1.0,
    }


__all__ = [
    "check_level",
    "clone_partition",
    "merge_pair",
    "merge_partition",
    "merging_report",
    "iter_mfg_dag_topological",
]
