"""Boolean network partitioning into MFGs (paper Algorithms 1 and 2).

Algorithm 1 walks the Boolean network from the primary outputs toward the
primary inputs, extracting one MFG per root node with :func:`find_mfg`
(Algorithm 2), then recursing on each extracted MFG's input nodes until the
PIs are reached.

Algorithm 2 grows an MFG from a root by BFS toward the inputs.  Because the
graph is fully path-balanced, BFS visits whole levels at a time: the fanins
of the current level's nodes form the next level down.  Growth stops at the
first level whose node count *exceeds* m (the LPV width) — that level (the
"stop level") is excluded, becomes the MFG's input set, and its nodes become
the roots of child MFGs.

Deviation from the paper's pseudo-code (see DESIGN.md): Algorithm 2 as
printed stops at ``count >= m``, but conditions (2) and (4) of Section V-A
require levels of exactly m nodes to be feasible and stop levels to have
more than m nodes; we therefore stop strictly above m, which matches Fig. 3.

Faithful to Algorithm 1, child MFGs are *not* deduplicated across parents:
every input node of every extracted MFG roots its own child MFG, even when
two parents share an input node.  This is why MFG node sets may overlap
(condition (3)), why the MFG graph is a **tree** (each MFG has exactly one
parent), and why the merging procedure (Algorithm 3) pays off so heavily —
it is the only mechanism that recovers shared logic.
"""

from __future__ import annotations

from collections import deque
from typing import Dict, List, Set

from ..netlist import cells
from ..netlist.graph import LogicGraph
from ..synth.levelize import Levelization, is_levelized_strict, levelize
from .mfg import MFG, Partition


def find_mfg(
    graph: LogicGraph,
    levels: Levelization,
    root: int,
    m: int,
    uid: int,
) -> MFG:
    """Algorithm 2: grow the MFG rooted at ``root`` without exceeding m
    nodes per level.

    ``graph`` must be fully path-balanced (strict levelization), so every
    fanin of a level-l node sits at level l-1 and the BFS frontier *is* the
    next level down.
    """
    root_level = levels.level[root]
    if root_level < 1:
        raise ValueError(f"root {root} is a source node, not a gate")
    nodes_by_level: Dict[int, Set[int]] = {root_level: {root}}
    frontier: Set[int] = {root}
    level = root_level

    while True:
        fanins: Set[int] = set()
        for nid in frontier:
            fanins.update(graph.fanins_of(nid))
        if level == 1:
            # The frontier consumes sources (PIs / constants): this MFG
            # reads the input data buffer (paper: "MFGs with Lbottom = 0
            # receive the PI values ... from the input data buffer").
            return MFG(
                uid=uid,
                bottom_level=1,
                top_level=root_level,
                nodes_by_level=nodes_by_level,
                roots={root},
                input_nodes=fanins,
                reads_primary_inputs=True,
            )
        if len(fanins) > m:
            # Stop level found: it is excluded from the MFG (Fig. 3) and
            # its nodes root the child MFGs.
            return MFG(
                uid=uid,
                bottom_level=level,
                top_level=root_level,
                nodes_by_level=nodes_by_level,
                roots={root},
                input_nodes=fanins,
                reads_primary_inputs=False,
            )
        nodes_by_level[level - 1] = fanins
        frontier = fanins
        level -= 1


def partition(graph: LogicGraph, m: int, max_mfgs: int = 500_000) -> Partition:
    """Algorithm 1: cover the network with MFGs, one BFS wave at a time.

    ``graph`` must be fully path-balanced.  Returns a :class:`Partition`
    whose MFGs form a tree (children produce a parent's inputs); see the
    module docstring for why subtrees are duplicated rather than shared.

    ``max_mfgs`` guards against pathological duplication blow-up on
    reconvergence-heavy graphs.
    """
    if m < 1:
        raise ValueError("m (LPEs per LPV) must be positive")
    if not is_levelized_strict(graph):
        raise ValueError("partition() requires a fully path-balanced graph")
    levels = levelize(graph)

    all_mfgs: List[MFG] = []
    queue: deque = deque()

    def create(root: int) -> MFG:
        mfg = find_mfg(graph, levels, root, m, uid=len(all_mfgs))
        all_mfgs.append(mfg)
        if len(all_mfgs) > max_mfgs:
            raise RuntimeError(
                f"partitioning exceeded {max_mfgs} MFGs; the graph's "
                "reconvergence duplicates too many cones for this m"
            )
        queue.append(mfg)
        return mfg

    # One root MFG per distinct PO gate (Algorithm 1 is stated per-PO; we
    # run it for every output of the block).
    root_mfgs: List[MFG] = []
    seen_po_nodes: Set[int] = set()
    for _name, nid in graph.outputs:
        if graph.op_of(nid) in cells.SOURCE_OPS:
            continue  # constant/pass-through PO: nothing to compute
        if nid in seen_po_nodes:
            continue
        seen_po_nodes.add(nid)
        root_mfgs.append(create(nid))

    while queue:
        current = queue.popleft()
        if current.reads_primary_inputs:
            continue
        for input_node in sorted(current.input_nodes):
            child = create(input_node)
            current.children.append(child)
            child.parents.append(current)

    result = Partition(graph=graph, m=m, mfgs=all_mfgs, root_mfgs=root_mfgs)
    return result


def partition_summary(part: Partition) -> Dict[str, float]:
    """Headline statistics used by the experiment reports."""
    spans = [mfg.span for mfg in part.mfgs]
    widths = [mfg.max_width() for mfg in part.mfgs]
    return {
        "num_mfgs": float(len(part.mfgs)),
        "total_span": float(sum(spans)),
        "mean_span": float(sum(spans) / len(spans)) if spans else 0.0,
        "max_span": float(max(spans, default=0)),
        "mean_max_width": float(sum(widths) / len(widths)) if widths else 0.0,
        "pi_mfgs": float(sum(1 for g in part.mfgs if g.reads_primary_inputs)),
    }
