"""The paper's primary contribution: the FFCL-to-LPU compiler.

Partitioning (Algorithms 1/2), merging (Algorithm 3), scheduling
(Algorithm 4 + the pipelined time-space model), instruction-set definition,
code generation, and the end-to-end :func:`compile_ffcl` facade.
"""

from .codegen import PORT_A, PORT_B, Program, generate_program
from .compiler import CompileResult, compile_ffcl
from .config import LPUConfig, PAPER_CONFIG
from .isa import (
    IDLE_PORT,
    MAX_PORT_INDEX,
    NOP,
    NOP_INSTRUCTION,
    LPEInstruction,
    PortSpec,
    SRC_CONST,
    SRC_INPUT,
    SRC_SNAPSHOT,
    SRC_SWITCH,
    decode_instruction,
    encode_instruction,
)
from .hetero import (
    HeterogeneousLPU,
    MultiLPU,
    evaluate_heterogeneous,
    partition_heterogeneous,
    tapered_profile,
)
from .merge import (
    check_level,
    clone_partition,
    merge_pair,
    merge_partition,
    merging_report,
)
from .metrics import CompileMetrics
from .mfg import MFG, Partition, iter_mfg_dag_topological
from .partition import find_mfg, partition, partition_summary
from .schedule import (
    Schedule,
    ScheduledMFG,
    ScheduleError,
    build_schedule,
    schedule_summary,
)
from .fanout import (
    FanoutTables,
    adopt_fanout,
    build_fanout,
    clear_fanout_cache,
    fanout_cache_stats,
)
from .liveness import (
    FusedLevel,
    FusedProgram,
    adopt_fusion,
    clear_fusion_cache,
    fuse_trace,
    fusion_cache_stats,
)
from .trace import (
    TraceLevel,
    TraceLoweringError,
    TraceProgram,
    clear_lowering_cache,
    lower_program,
    lowering_cache_stats,
)

__all__ = [
    "PORT_A",
    "PORT_B",
    "Program",
    "generate_program",
    "CompileResult",
    "compile_ffcl",
    "LPUConfig",
    "PAPER_CONFIG",
    "IDLE_PORT",
    "MAX_PORT_INDEX",
    "NOP",
    "NOP_INSTRUCTION",
    "LPEInstruction",
    "PortSpec",
    "SRC_CONST",
    "SRC_INPUT",
    "SRC_SNAPSHOT",
    "SRC_SWITCH",
    "decode_instruction",
    "encode_instruction",
    "HeterogeneousLPU",
    "MultiLPU",
    "evaluate_heterogeneous",
    "partition_heterogeneous",
    "tapered_profile",
    "check_level",
    "clone_partition",
    "merge_pair",
    "merge_partition",
    "merging_report",
    "CompileMetrics",
    "MFG",
    "Partition",
    "iter_mfg_dag_topological",
    "find_mfg",
    "partition",
    "partition_summary",
    "Schedule",
    "ScheduledMFG",
    "ScheduleError",
    "build_schedule",
    "schedule_summary",
    "FanoutTables",
    "adopt_fanout",
    "build_fanout",
    "clear_fanout_cache",
    "fanout_cache_stats",
    "FusedLevel",
    "FusedProgram",
    "adopt_fusion",
    "clear_fusion_cache",
    "fuse_trace",
    "fusion_cache_stats",
    "TraceLevel",
    "TraceLoweringError",
    "TraceProgram",
    "clear_lowering_cache",
    "lower_program",
    "lowering_cache_stats",
]
