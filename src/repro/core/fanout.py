"""Fanout/cone analysis over fused register tables.

The delta engine (:mod:`repro.engine.delta`) recomputes only the cone of
gates reachable from the inputs that changed between consecutive stream
samples.  Skipping instructions is unsound over the *fused* register file
directly: liveness renaming reuses registers, so a value produced at one
level is clobbered by a later level once its last consumer has read it —
state persisted across runs would hand a skipped instruction's consumer
whatever value happened to reuse the register.

This module therefore derives **single-assignment delta tables** from a
:class:`~repro.core.liveness.FusedProgram`: every kept instruction gets a
unique persistent row (``num_pinned + gid``, gids numbered in level-sweep
order so each level's output rows form one contiguous ascending run), and
operand registers are renamed to the row of the value they carried at that
point of the sweep — reads are resolved *before* a level's writes are
applied, matching the fused gather-before-scatter semantics exactly.  Over
these tables, "skip a clean instruction" is trivially sound: its inputs'
rows are bit-identical to the previous run, so its recorded output row
still holds the right value.

On top of the flat instruction tables sit:

* a CSR **row -> consumer-instruction** table (``consumer_offsets`` /
  ``consumer_gids``) — the fanout structure that drives the dirty-frontier
  sweep: when a row's value changes, exactly its consumers are scheduled;
* a **dense view**: a :class:`FusedProgram` whose levels are the delta
  tables themselves.  Because every level's outputs are one contiguous
  ascending run and all reads come from strictly lower rows, the fused
  kernel generator (:func:`repro.engine.fused.generate_kernels`) compiles
  it as-is — the delta engine's worst-case fallback is literally the fused
  engine's kernel over the persistent table.  The dense view is **never**
  registered in the fusion cache (it would collide with the real fusion of
  the same trace); its kernels cache on the view itself, which lives here.

Like lowerings and fusions, fanout tables are memoized process-wide (weak
references keyed by the fused program's identity), so a pool of streaming
workers over one program shares one set of tables and one dense kernel.
"""

from __future__ import annotations

import threading
import weakref
from dataclasses import dataclass
from typing import Dict, List

import numpy as np

from ..netlist import cells
from .liveness import FusedLevel, FusedProgram
from .trace import _NUM_CONST_SLOTS

__all__ = [
    "FanoutTables",
    "adopt_fanout",
    "build_fanout",
    "clear_fanout_cache",
    "fanout_cache_stats",
]


@dataclass
class FanoutTables:
    """Single-assignment delta tables + consumer CSR of one fused program.

    Instruction ``gid`` (0-based, level-sweep order) reads rows
    ``a_row[gid]`` / ``b_row[gid]`` (``b_row`` is 0 for single-input ops)
    and writes row ``num_pinned + gid``.  Rows ``0``/``1`` hold the
    constants, rows ``2 .. 2+|PI|`` the primary inputs in ``pi_rows``
    order.  ``consumer_gids[consumer_offsets[r]:consumer_offsets[r+1]]``
    are the instructions reading row ``r``.
    """

    fused: FusedProgram
    num_rows: int
    num_pinned: int
    pi_rows: Dict[str, int]  # PI name -> pinned row
    output_rows: Dict[str, int]  # PO name -> row holding the final value
    a_row: np.ndarray  # intp, one entry per instruction (gid order)
    b_row: np.ndarray  # intp; 0 for single-input instructions
    op_code: np.ndarray  # int16 index into sorted(cells.ALL_OPS)
    level_start: np.ndarray  # int64, len num_levels+1 (gid ranges)
    consumer_offsets: np.ndarray  # int64, len num_rows+1
    consumer_gids: np.ndarray  # intp
    #: the delta tables repackaged as a FusedProgram: the dense-fallback
    #: kernel source.  Shares trace/segments/max_level_width with `fused`
    #: but is NOT the canonical fusion — never pass it to adopt_fusion.
    dense: FusedProgram

    @property
    def num_instructions(self) -> int:
        return len(self.a_row)

    @property
    def num_levels(self) -> int:
        return len(self.level_start) - 1

    def consumers_of(self, row: int) -> np.ndarray:
        """The instruction gids reading ``row`` (a CSR slice view)."""
        lo, hi = self.consumer_offsets[row], self.consumer_offsets[row + 1]
        return self.consumer_gids[lo:hi]


# ----------------------------------------------------------------------
# Fanout cache: the tables depend on the FusedProgram alone and are
# immutable, so every delta engine over one fusion shares one set of
# tables (and, transitively, one pair of dense kernels).  Weak references
# keyed by the fusion's id — the exact scheme of the fusion cache in
# repro.core.liveness, one cache level up.
_FANOUT_CACHE: Dict[int, "weakref.ref[FanoutTables]"] = {}
_FANOUT_LOCK = threading.Lock()
_FANOUT_HITS = 0
_FANOUT_MISSES = 0


def fanout_cache_stats() -> Dict[str, int]:
    """Hit/miss counters of the process-wide fanout cache."""
    with _FANOUT_LOCK:
        return {
            "hits": _FANOUT_HITS,
            "misses": _FANOUT_MISSES,
            "live_entries": len(_FANOUT_CACHE),
        }


def clear_fanout_cache() -> None:
    """Drop all cached fanout tables and reset the counters (for tests)."""
    global _FANOUT_HITS, _FANOUT_MISSES
    with _FANOUT_LOCK:
        _FANOUT_CACHE.clear()
        _FANOUT_HITS = 0
        _FANOUT_MISSES = 0


def build_fanout(fused: FusedProgram, *, cache: bool = True) -> FanoutTables:
    """The fanout/delta tables of ``fused``, memoized per fusion.

    With ``cache=True`` (the default) repeated builds over the *same*
    :class:`FusedProgram` object return one shared :class:`FanoutTables`;
    pass ``cache=False`` to force a fresh derivation.
    """
    global _FANOUT_HITS, _FANOUT_MISSES
    if not cache:
        return _build_uncached(fused)
    key = id(fused)
    with _FANOUT_LOCK:
        ref = _FANOUT_CACHE.get(key)
        cached = ref() if ref is not None else None
        if cached is not None and cached.fused is fused:
            _FANOUT_HITS += 1
            return cached
    tables = _build_uncached(fused)
    with _FANOUT_LOCK:
        _FANOUT_MISSES += 1
        dead = [k for k, r in _FANOUT_CACHE.items() if r() is None]
        for k in dead:
            del _FANOUT_CACHE[k]
        ref = _FANOUT_CACHE.get(key)
        racing = ref() if ref is not None else None
        if racing is not None and racing.fused is fused:
            return racing  # another thread derived first: share theirs
        _FANOUT_CACHE[key] = weakref.ref(tables)
    return tables


def adopt_fanout(tables: FanoutTables) -> FanoutTables:
    """Register externally-built tables (e.g. deserialized from an
    :mod:`repro.artifact` container) in the process-wide cache.

    Returns the canonical tables for ``tables.fused``: live cached tables
    over the *same* fusion object win, so every consumer keeps sharing
    one derivation and one pair of dense kernels.
    """
    with _FANOUT_LOCK:
        key = id(tables.fused)
        ref = _FANOUT_CACHE.get(key)
        cached = ref() if ref is not None else None
        if cached is not None and cached.fused is tables.fused:
            return cached
        dead = [k for k, r in _FANOUT_CACHE.items() if r() is None]
        for k in dead:
            del _FANOUT_CACHE[k]
        _FANOUT_CACHE[key] = weakref.ref(tables)
        return tables


# ----------------------------------------------------------------------
def _build_uncached(fused: FusedProgram) -> FanoutTables:
    """One forward sweep renaming fused registers onto persistent rows."""
    pi_names = list(fused.pi_regs)
    num_pinned = _NUM_CONST_SLOTS + len(pi_names)
    total = sum(level.num_instructions for level in fused.levels)
    num_rows = num_pinned + total

    pi_rows = {
        name: _NUM_CONST_SLOTS + i for i, name in enumerate(pi_names)
    }
    # row_of_reg[r]: the persistent row holding register r's current
    # value at this point of the level sweep.  Constants keep rows 0/1;
    # a register is re-pointed every time a level writes it.
    row_of_reg = np.zeros(max(fused.num_regs, _NUM_CONST_SLOTS), dtype=np.intp)
    row_of_reg[1] = 1
    for name, reg in fused.pi_regs.items():
        row_of_reg[reg] = pi_rows[name]

    op_table = sorted(cells.ALL_OPS)
    op_index = {op: i for i, op in enumerate(op_table)}

    a_parts: List[np.ndarray] = []
    b_parts: List[np.ndarray] = []
    op_parts: List[np.ndarray] = []
    two_parts: List[np.ndarray] = []
    level_start = np.zeros(len(fused.levels) + 1, dtype=np.int64)
    dense_levels: List[FusedLevel] = []
    base = 0
    for index, level in enumerate(fused.levels):
        k = level.num_instructions
        # Reads renamed BEFORE this level's writes re-point registers:
        # same-level register reuse keeps fused gather-before-scatter
        # semantics (a level never reads its own outputs).
        a_rows = np.ascontiguousarray(row_of_reg[level.a_index])
        b_rows = np.ascontiguousarray(row_of_reg[level.b_index])
        out_rows = np.arange(
            num_pinned + base, num_pinned + base + k, dtype=np.intp
        )
        row_of_reg[level.out_index] = out_rows
        ops = np.empty(k, dtype=np.int16)
        two = np.zeros(k, dtype=bool)
        for seg in level.segments:
            ops[seg.start:seg.end] = op_index[seg.op]
            two[seg.start:seg.end] = cells.arity(seg.op) == 2
        b_rows[~two] = 0  # single-input lanes read the pinned zero row
        for array in (a_rows, b_rows, out_rows):
            array.setflags(write=False)
        a_parts.append(a_rows)
        b_parts.append(b_rows)
        op_parts.append(ops)
        two_parts.append(two)
        dense_levels.append(
            FusedLevel(
                cycle=level.cycle,
                a_index=a_rows,
                b_index=b_rows,
                out_index=out_rows,
                segments=level.segments,
            )
        )
        base += k
        level_start[index + 1] = base

    if total:
        a_row = np.concatenate(a_parts)
        b_row = np.concatenate(b_parts)
        op_code = np.concatenate(op_parts)
        two_ary = np.concatenate(two_parts)
    else:
        a_row = np.empty(0, dtype=np.intp)
        b_row = np.empty(0, dtype=np.intp)
        op_code = np.empty(0, dtype=np.int16)
        two_ary = np.empty(0, dtype=bool)

    output_rows = {
        name: int(row_of_reg[reg])
        for name, reg in fused.output_regs.items()
    }

    # Consumer CSR: one edge per (operand row, reading instruction),
    # deduplicated (an instruction reading one row on both ports counts
    # once).  Constant rows keep their (never-dirtied) consumer lists —
    # harmless, and it keeps the table honest for diagnostics.
    gids = np.arange(total, dtype=np.intp)
    src = np.concatenate([a_row, b_row[two_ary]])
    dst = np.concatenate([gids, gids[two_ary]])
    if len(src):
        keys = np.unique(src.astype(np.int64) * total + dst)
        src = (keys // total).astype(np.intp)
        dst = (keys % total).astype(np.intp)
    consumer_offsets = np.zeros(num_rows + 1, dtype=np.int64)
    np.cumsum(
        np.bincount(src, minlength=num_rows), out=consumer_offsets[1:]
    )
    consumer_gids = np.ascontiguousarray(dst)
    for array in (a_row, b_row, op_code, level_start,
                  consumer_offsets, consumer_gids):
        array.setflags(write=False)

    dense = FusedProgram(
        trace=fused.trace,
        num_regs=num_rows,
        pi_regs=pi_rows,
        levels=dense_levels,
        output_regs=output_rows,
        max_level_width=fused.max_level_width,
    )
    return FanoutTables(
        fused=fused,
        num_rows=num_rows,
        num_pinned=num_pinned,
        pi_rows=pi_rows,
        output_rows=output_rows,
        a_row=a_row,
        b_row=b_row,
        op_code=op_code,
        level_start=level_start,
        consumer_offsets=consumer_offsets,
        consumer_gids=consumer_gids,
        dense=dense,
    )
