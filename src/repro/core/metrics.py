"""Compilation and execution metrics.

Collects the quantities the paper's evaluation section reports: MFG counts
before/after merging (Fig. 7b, 8b), computation time in cycles (Fig. 7a),
throughput in FPS (Tables II/III, Fig. 8a), inference latency (Fig. 9),
plus instruction-queue depth and buffer usage for the resource model.
"""

from __future__ import annotations

from dataclasses import asdict, dataclass
from typing import Dict, Optional


@dataclass
class CompileMetrics:
    """Everything measured while compiling and scheduling one FFCL block."""

    name: str
    # netlist shape
    num_inputs: int
    num_outputs: int
    gates_source: int
    gates_balanced: int
    buffers_inserted: int
    depth: int
    # partitioning / merging
    mfgs_before_merge: int
    mfgs_after_merge: int
    # schedule
    policy: str
    makespan_macro_cycles: int
    total_clock_cycles: int
    queue_depth: int
    circulations: int
    # derived performance
    latency_seconds: float
    fps: float
    # code generation (None when codegen was skipped)
    compute_instructions: Optional[int] = None
    queue_entries: Optional[int] = None
    peak_buffer_words: Optional[int] = None

    @property
    def mfg_reduction(self) -> float:
        """Merging gain: MFG count before / after (Fig. 8b's metric)."""
        if self.mfgs_after_merge == 0:
            return 1.0
        return self.mfgs_before_merge / self.mfgs_after_merge

    def as_dict(self) -> Dict[str, object]:
        data = asdict(self)
        data["mfg_reduction"] = self.mfg_reduction
        return data

    def __str__(self) -> str:
        return (
            f"{self.name}: {self.gates_balanced} gates (depth {self.depth}), "
            f"{self.mfgs_before_merge}->{self.mfgs_after_merge} MFGs, "
            f"{self.makespan_macro_cycles} macro-cycles "
            f"({self.total_clock_cycles} clocks), {self.fps:,.0f} FPS"
        )
