"""MFG scheduling onto the LPV pipeline (paper Algorithm 4 + Section V-B).

The LPU executes an MFG spanning logic levels ``[Lb .. Lt]`` on LPVs
``[Lb-1 .. Lt-1]`` (wrapping modulo n via the circulation mechanism when the
graph is deeper than the pipeline — the "depth issue" of Section V-C), one
level per macro-cycle.  The instruction queues are driven by a read-address
shift register: the address injected at LPV 0 at macro-cycle c reaches LPV k
at macro-cycle c + k.  Consequently an MFG issued at macro-cycle s with
bottom LPV b reads the *same* address ``s - b`` on every LPV it visits — the
paper's memLoc.  Two MFGs may share a memLoc exactly when their LPV sets are
disjoint, which is automatically true for an MFG and its *most recent
child* (issued back-to-back, occupying consecutive LPV ranges); that is the
instruction-queue compression Algorithm 4 describes.

The scheduler therefore only needs one rule: **no two MFGs may occupy the
same (macro-cycle, LPV) cell**, which is equivalent to "MFGs on the same
address diagonal must use disjoint LPVs".  Issue cycles are chosen earliest-
first in dependency (DFS post-) order, subject to:

* ``s(parent) >= f(child) + 1`` for every child (child results cross the
  switch into the parent's first LPV during the child's last macro-cycle),
* the occupancy rule above.

Two issue policies are provided:

* ``pipelined`` — the paper's mode: MFGs stream through the LPVs
  back-to-back, overlapping in time (Fig. 5),
* ``sequential`` — one MFG at a time (cost = sum of spans); this is the
  cost model the paper uses when relating run time to MFG count, and the
  baseline for our pipelining ablation.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Set, Tuple

from .config import LPUConfig
from .mfg import MFG, Partition, iter_mfg_dag_topological


class ScheduleError(RuntimeError):
    """Raised when a feasible schedule cannot be constructed."""


@dataclass
class ScheduledMFG:
    """Placement of one MFG in time and space."""

    mfg: MFG
    issue_cycle: int
    #: logic level -> LPV index (wrapped mod n).
    lpv_of_level: Dict[int, int]
    #: logic level -> macro-cycle at which that level executes.
    cycle_of_level: Dict[int, int]
    #: raw (unnormalized) instruction-queue addresses this MFG occupies.
    raw_addresses: List[int] = field(default_factory=list)
    #: normalized memLoc values (filled in by the Schedule constructor).
    mem_locs: List[int] = field(default_factory=list)

    @property
    def finish_cycle(self) -> int:
        """Macro-cycle of the MFG's last (top-level) computation."""
        return self.issue_cycle + self.mfg.span - 1

    @property
    def bottom_lpv(self) -> int:
        return self.lpv_of_level[self.mfg.bottom_level]

    @property
    def top_lpv(self) -> int:
        return self.lpv_of_level[self.mfg.top_level]


@dataclass
class Schedule:
    """A complete time-space schedule for one partition."""

    config: LPUConfig
    partition: Partition
    items: List[ScheduledMFG]
    policy: str
    #: number of LPV(n-1) -> LPV(0) wraps (depth-issue circulations).
    circulations: int

    def __post_init__(self) -> None:
        self.by_uid: Dict[int, ScheduledMFG] = {
            item.mfg.uid: item for item in self.items
        }
        all_addresses = [a for item in self.items for a in item.raw_addresses]
        base = min(all_addresses, default=0)
        for item in self.items:
            item.mem_locs = sorted(a - base for a in item.raw_addresses)
        self._base_address = base

    @property
    def makespan(self) -> int:
        """Total macro-cycles until the last MFG finishes (>= 1)."""
        return max((item.finish_cycle + 1 for item in self.items), default=1)

    @property
    def total_clock_cycles(self) -> int:
        """Clock cycles = macro-cycles x t_c (paper Section V-B)."""
        return self.makespan * self.config.t_c

    @property
    def queue_depth(self) -> int:
        """Instruction-queue entries needed (max normalized memLoc + 1)."""
        depth = 0
        for item in self.items:
            if item.mem_locs:
                depth = max(depth, item.mem_locs[-1] + 1)
        return depth

    @property
    def base_address(self) -> int:
        """Raw address of normalized memLoc 0 (the incrementor's offset)."""
        return self._base_address

    def address_of(self, cycle: int, lpv: int) -> int:
        """Normalized queue address read by ``lpv`` at ``cycle``."""
        return cycle - lpv - self._base_address

    def occupancy(self) -> Dict[Tuple[int, int], int]:
        """(macro-cycle, LPV) -> MFG uid, for visualization and testing."""
        grid: Dict[Tuple[int, int], int] = {}
        for item in self.items:
            for level in item.mfg.levels():
                key = (item.cycle_of_level[level], item.lpv_of_level[level])
                if key in grid:
                    raise ScheduleError(
                        f"MFGs {grid[key]} and {item.mfg.uid} collide at "
                        f"(cycle={key[0]}, lpv={key[1]})"
                    )
                grid[key] = item.mfg.uid
        return grid

    def check_invariants(self) -> None:
        """Validate occupancy, dependencies, and memLoc disjointness."""
        self.occupancy()  # raises on any (cycle, LPV) collision
        for item in self.items:
            for child in item.mfg.children:
                child_item = self.by_uid[child.uid]
                assert item.issue_cycle >= child_item.finish_cycle + 1, (
                    f"MFG {item.mfg.uid} issued before child "
                    f"{child.uid} finished"
                )
        # MFGs sharing a memLoc must use disjoint LPVs at that memLoc: each
        # instruction-queue entry (address, LPV) has exactly one owner.
        used: Dict[Tuple[int, int], int] = {}
        for item in self.items:
            for level in item.mfg.levels():
                cycle = item.cycle_of_level[level]
                lpv = item.lpv_of_level[level]
                key = (self.address_of(cycle, lpv), lpv)
                owner = used.get(key)
                assert owner is None or owner == item.mfg.uid, (
                    f"queue entry {key} claimed by MFGs "
                    f"{owner} and {item.mfg.uid}"
                )
                used[key] = item.mfg.uid


@dataclass(frozen=True)
class RuntimeSchedule:
    """The schedule surface an *executable* needs at run time.

    A full :class:`Schedule` carries the MFG DAG, per-MFG placements, and
    memLoc bookkeeping — compile-time artifacts.  Executing a compiled
    :class:`~repro.core.codegen.Program` only ever consumes the makespan,
    the read-address base, and the summary counters, so serialized
    executables (:mod:`repro.artifact`) carry this flat record instead of
    the DAG.  It is duck-type compatible with :class:`Schedule` everywhere
    the simulator, the trace lowering, and the serving layer look.
    """

    config: LPUConfig
    makespan: int
    base_address: int = 0
    policy: str = "pipelined"
    circulations: int = 0
    queue_depth: int = 0

    @property
    def total_clock_cycles(self) -> int:
        return self.makespan * self.config.t_c

    def address_of(self, cycle: int, lpv: int) -> int:
        """Normalized queue address read by ``lpv`` at ``cycle``."""
        return cycle - lpv - self.base_address

    @classmethod
    def from_schedule(cls, schedule: "Schedule") -> "RuntimeSchedule":
        """Flatten a full schedule to its runtime surface."""
        return cls(
            config=schedule.config,
            makespan=schedule.makespan,
            base_address=schedule.base_address,
            policy=schedule.policy,
            circulations=schedule.circulations,
            queue_depth=schedule.queue_depth,
        )


def _place(mfg: MFG, issue: int, n: int) -> ScheduledMFG:
    lpv_of_level = {}
    cycle_of_level = {}
    addresses: Set[int] = set()
    for i, level in enumerate(mfg.levels()):
        lpv = (level - 1) % n
        cycle = issue + i
        lpv_of_level[level] = lpv
        cycle_of_level[level] = cycle
        addresses.add(cycle - lpv)
    return ScheduledMFG(
        mfg=mfg,
        issue_cycle=issue,
        lpv_of_level=lpv_of_level,
        cycle_of_level=cycle_of_level,
        raw_addresses=sorted(addresses),
    )


def _cells_of(mfg: MFG, issue: int, n: int) -> List[Tuple[int, int]]:
    return [
        (issue + i, (level - 1) % n)
        for i, level in enumerate(mfg.levels())
    ]


def build_schedule(
    partition: Partition,
    config: LPUConfig,
    policy: str = "pipelined",
) -> Schedule:
    """Schedule every MFG of ``partition`` onto the LPU.

    ``policy`` is ``"pipelined"`` (earliest-issue with overlap, the paper's
    mode) or ``"sequential"`` (one MFG at a time).
    """
    if policy not in ("pipelined", "sequential"):
        raise ValueError(f"unknown scheduling policy {policy!r}")
    n = config.num_lpvs
    order = iter_mfg_dag_topological(partition.root_mfgs)
    if len(order) != len(partition.mfgs):
        # Partition.mfgs should already be exactly the reachable set.
        order_uids = {m.uid for m in order}
        extra = [m for m in partition.mfgs if m.uid not in order_uids]
        order.extend(extra)

    # Exact list scheduling over the (macro-cycle, LPV) occupancy grid:
    # place each MFG at the earliest issue cycle where its dependency bound
    # holds and none of its cells collide.  This reproduces the paper's
    # back-to-back wavefronts (Fig. 5) including for MFGs that wrap the
    # pipeline (span > n), which a per-LPV-frontier approximation would
    # needlessly serialize.
    occupied: Set[Tuple[int, int]] = set()
    items: Dict[int, ScheduledMFG] = {}
    next_sequential = 0
    circulations = 0

    for mfg in order:
        earliest = 0
        for child in mfg.children:
            earliest = max(earliest, items[child.uid].finish_cycle + 1)
        if policy == "sequential":
            issue = max(earliest, next_sequential)
        else:
            issue = earliest
            while any(
                cell in occupied for cell in _cells_of(mfg, issue, n)
            ):
                issue += 1
        for cell in _cells_of(mfg, issue, n):
            if cell in occupied:
                raise ScheduleError(f"occupancy collision at {cell}")
            occupied.add(cell)
        item = _place(mfg, issue, n)
        items[mfg.uid] = item
        next_sequential = max(next_sequential, item.finish_cycle + 1)
        # Count circulation events: consecutive levels wrapping n-1 -> 0
        # inside the MFG, plus child->parent hops that cross the wrap.
        for level in range(mfg.bottom_level, mfg.top_level):
            if (level - 1) % n == n - 1:
                circulations += 1
        if not mfg.reads_primary_inputs and (mfg.bottom_level - 1) % n == 0:
            if mfg.bottom_level > 1:
                circulations += 1

    schedule = Schedule(
        config=config,
        partition=partition,
        items=[items[m.uid] for m in order],
        policy=policy,
        circulations=circulations,
    )
    return schedule


def schedule_summary(schedule: Schedule) -> Dict[str, float]:
    """Headline numbers consumed by the metrics module and the benches."""
    cfg = schedule.config
    return {
        "num_mfgs": float(len(schedule.items)),
        "makespan_macro_cycles": float(schedule.makespan),
        "total_clock_cycles": float(schedule.total_clock_cycles),
        "queue_depth": float(schedule.queue_depth),
        "circulations": float(schedule.circulations),
        "latency_seconds": cfg.macro_cycles_to_seconds(schedule.makespan),
        "fps": cfg.fps(schedule.makespan),
    }
