"""Maximal feasible subgraphs (MFGs).

Section II defines an MFG as "a directed acyclic graph (where nodes are
Boolean operations and edges are data dependencies) greedily extracted from
an FFCL without exceeding the LPU's capacity when mapping to an LPU".

An :class:`MFG` holds per-level node sets of a fully path-balanced logic
graph, spanning levels ``bottom_level .. top_level``.  The defining
conditions (Section V-A):

1. external inputs enter only at the bottom-most level (input closure for
   every level above it),
2. at most m nodes per level,
3. node sets of different MFGs may overlap,
4. the inputs of a non-PI MFG's bottom level number more than m (otherwise
   the BFS would not have stopped there).

MFGs form their own DAG: ``children`` produce this MFG's inputs,
``parents`` consume its outputs.  That DAG is what the merging and
scheduling algorithms (Algorithms 3 and 4) operate on.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, FrozenSet, List, Set

from ..netlist.graph import LogicGraph


@dataclass
class MFG:
    """One maximal feasible subgraph of a balanced Boolean network."""

    uid: int
    bottom_level: int
    top_level: int
    #: level -> node ids of the balanced graph computed at that level.
    nodes_by_level: Dict[int, Set[int]]
    #: nodes whose values leave the MFG (stored to snapshot registers or to
    #: the output buffer): the roots it was grown from.
    roots: Set[int]
    #: external nodes feeding the bottom level (stop-level gate outputs, or
    #: PIs/constants when ``reads_primary_inputs``).
    input_nodes: Set[int]
    #: True when the bottom level consumes PIs from the input data buffer.
    reads_primary_inputs: bool
    children: List["MFG"] = field(default_factory=list)
    parents: List["MFG"] = field(default_factory=list)

    # ------------------------------------------------------------------
    # Shape queries
    # ------------------------------------------------------------------
    @property
    def span(self) -> int:
        """Number of logic levels = LPVs (macro-cycles) it occupies."""
        return self.top_level - self.bottom_level + 1

    @property
    def num_nodes(self) -> int:
        return sum(len(s) for s in self.nodes_by_level.values())

    def width(self, level: int) -> int:
        return len(self.nodes_by_level.get(level, ()))

    def max_width(self) -> int:
        return max(len(s) for s in self.nodes_by_level.values())

    def all_nodes(self) -> Set[int]:
        out: Set[int] = set()
        for s in self.nodes_by_level.values():
            out |= s
        return out

    def levels(self) -> range:
        return range(self.bottom_level, self.top_level + 1)

    # ------------------------------------------------------------------
    # Invariant checking (used pervasively by tests)
    # ------------------------------------------------------------------
    def check_invariants(self, graph: LogicGraph, m: int) -> None:
        """Raise AssertionError if any MFG condition is violated."""
        assert self.bottom_level >= 1, "gate levels start at 1"
        assert self.bottom_level <= self.top_level
        for level in self.levels():
            nodes = self.nodes_by_level.get(level, set())
            assert nodes, f"MFG {self.uid} has an empty level {level}"
            assert len(nodes) <= m, (
                f"MFG {self.uid} level {level} has {len(nodes)} > m={m} nodes"
            )
        # Condition 1: input closure above the bottom level.
        own = self.all_nodes()
        for level in range(self.bottom_level + 1, self.top_level + 1):
            for nid in self.nodes_by_level[level]:
                for fid in graph.fanins_of(nid):
                    assert fid in own, (
                        f"MFG {self.uid}: node {nid} at level {level} has "
                        f"external fanin {fid} above the bottom level"
                    )
        # Bottom-level fanins must be exactly the declared inputs.
        bottom_inputs: Set[int] = set()
        for nid in self.nodes_by_level[self.bottom_level]:
            bottom_inputs.update(graph.fanins_of(nid))
        assert bottom_inputs == self.input_nodes, (
            f"MFG {self.uid}: recorded inputs do not match bottom fanins"
        )
        # Condition 4: a non-PI MFG stopped because > m inputs were needed.
        if not self.reads_primary_inputs:
            assert len(self.input_nodes) > m, (
                f"MFG {self.uid}: stopped with only {len(self.input_nodes)} "
                f"<= m={m} inputs but does not read PIs"
            )

    def __repr__(self) -> str:
        return (
            f"MFG(uid={self.uid}, levels=[{self.bottom_level}.."
            f"{self.top_level}], nodes={self.num_nodes}, "
            f"roots={len(self.roots)}, pi={self.reads_primary_inputs})"
        )


@dataclass
class Partition:
    """Result of partitioning one balanced graph into MFGs."""

    graph: LogicGraph
    m: int
    mfgs: List[MFG]
    #: MFGs containing the primary outputs (consumed by no other MFG).
    root_mfgs: List[MFG]

    @property
    def num_mfgs(self) -> int:
        return len(self.mfgs)

    def total_macro_cycles_sequential(self) -> int:
        """Sum of spans: the non-pipelined cost (each MFG computed fully
        before the next starts) — the paper's per-MFG cost model."""
        return sum(mfg.span for mfg in self.mfgs)

    def coverage(self) -> FrozenSet[int]:
        """All graph nodes covered by some MFG."""
        out: Set[int] = set()
        for mfg in self.mfgs:
            out |= mfg.all_nodes()
        return frozenset(out)

    def check_invariants(self) -> None:
        for mfg in self.mfgs:
            mfg.check_invariants(self.graph, self.m)
        # Every gate of the balanced graph must be covered (POs' cones).
        from ..netlist import cells

        live = self.graph.transitive_fanin(self.graph.output_ids)
        gates = {
            nid
            for nid in live
            if self.graph.op_of(nid) in cells.LPE_OPS
        }
        covered = self.coverage()
        missing = gates - set(covered)
        assert not missing, f"{len(missing)} gates not covered by any MFG"
        # Parent/child links must be mutual.
        for mfg in self.mfgs:
            for child in mfg.children:
                assert mfg in child.parents
            for parent in mfg.parents:
                assert mfg in parent.children


def iter_mfg_dag_topological(root_mfgs: List[MFG]) -> List[MFG]:
    """MFGs in dependency order (children before parents), deduplicated."""
    order: List[MFG] = []
    seen: Set[int] = set()

    def visit(mfg: MFG) -> None:
        if mfg.uid in seen:
            return
        seen.add(mfg.uid)
        for child in mfg.children:
            visit(child)
        order.append(mfg)

    for root in root_mfgs:
        visit(root)
    return order
