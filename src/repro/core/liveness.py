"""Liveness analysis and register allocation over lowered trace programs.

A :class:`~repro.core.trace.TraceProgram` assigns every compute
instruction its own value-table slot, so the execution working set grows
with the *total* instruction count — exactly the memory-traffic problem
the paper's LPU avoids in hardware with small circulation buffers that
hold only the values still needed.  This module reproduces that idea in
software: a single linear-scan pass over the lowered levels computes each
slot's live range (defined at its level, dead after its last consuming
level) and renames slots into a compact **register file** whose size is
the *peak* number of simultaneously-live values.

The result is a :class:`FusedProgram`: the same per-level opcode segments
as the trace, but with operand and output indices expressed in register
rows.  Renamed levels are no longer contiguous writes — each level carries
an explicit ``out_index`` scatter — which is what lets a register freed by
one value's last read be reused by a value produced in the very same
level (operands are gathered before results are written back).  BUF
instructions (hardware word moves between LPVs) are copy-propagated away
entirely: the moved value simply keeps its register, with the shared
register staying live until the last read of any alias.

Allocation invariants, relied on by :class:`repro.engine.fused.FusedEngine`
and asserted by the tests:

* registers ``0`` and ``1`` hold the constants (pinned for the whole
  run), registers ``2 .. 2+|PI|`` the primary inputs — numbered like the
  trace slot layout so input binding stays one contiguous block write,
  but *reusable* once the last input read has happened (inputs are
  re-bound before every run),
* output registers of one level form one contiguous ascending run
  (run-fit allocation), so generated kernels write level results straight
  into the value table without a scatter pass; levels that exceed the
  fragmentation budget fall back to *run-composed* scattered registers —
  built from the longest maximal free runs and assigned in ascending
  order, so instructions stay sorted by output register and the kernel
  still covers most of the level with contiguous slice writes,
* a register is reused only after the level containing its old value's
  last read has gathered its operands,
* primary-output registers are never reused,
* allocation is deterministic: the same trace always fuses to the same
  tables (earliest free run wins, ties broken low), which keeps
  serialized artifacts byte-stable across processes.

Like lowerings, fusions are memoized process-wide (weak references keyed
by the trace's identity), so a pool of serving workers over one program
shares one set of renamed tables and one generated kernel.
"""

from __future__ import annotations

import bisect
import heapq
import threading
import weakref
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Tuple

import numpy as np

from ..netlist import cells
from .trace import OpSegment, TraceProgram, _NUM_CONST_SLOTS

__all__ = [
    "FusedLevel",
    "FusedProgram",
    "adopt_fusion",
    "clear_fusion_cache",
    "fuse_trace",
    "fusion_cache_stats",
]


@dataclass(frozen=True)
class FusedLevel:
    """One macro-cycle level with operands renamed to register rows."""

    cycle: int
    a_index: np.ndarray  # register rows feeding port a (intp, len k)
    b_index: np.ndarray  # register rows feeding port b (intp, len k;
    # rows of single-input segments are forced to register 0 so the
    # whole-level gather stays in bounds without extending any lifetime)
    out_index: np.ndarray  # register rows written by this level (intp)
    segments: Tuple[OpSegment, ...]

    @property
    def num_instructions(self) -> int:
        return len(self.a_index)


@dataclass
class FusedProgram:
    """A trace program renamed onto a compact reusable register file."""

    trace: TraceProgram
    num_regs: int
    pi_regs: Dict[str, int]  # PI name -> register row (pinned)
    levels: List[FusedLevel]
    output_regs: Dict[str, int]  # PO name -> register row (never reused)
    #: widest renamed level (rows of the shared gather/scratch buffers).
    max_level_width: int
    #: per-program generated run kernels — a (vector, rowwise) pair,
    #: compiled lazily by the fused engine and shared by every engine
    #: over this fusion (never serialized; see repro.engine.fused).
    kernel: Optional[Tuple[Callable, Callable]] = field(
        default=None, compare=False
    )
    #: lazily-populated per-program caches of the native/profiling
    #: consumers, keyed by consumer name — the packed instruction stream
    #: (repro.engine.native), timed profiling kernels, device-resident
    #: tables.  Shared process-wide through the fusion cache exactly like
    #: ``kernel``; never serialized.
    native_cache: Dict[str, object] = field(
        default_factory=dict, compare=False
    )

    def run_length_stats(self) -> Dict[str, float]:
        """Contiguity of the level output runs — the fast-path coverage
        metric of the generated kernels (a fully contiguous level writes
        segment results straight into the value table; a fragmented one
        pays per-run slice copies)."""
        total = len(self.levels)
        contiguous = 0
        max_runs: List[int] = []
        runs_per_level: List[int] = []
        for level in self.levels:
            out = level.out_index
            k = len(out)
            if k == 0:  # pragma: no cover - empty levels are dropped
                continue
            breaks = np.flatnonzero(np.diff(out) != 1)
            runs_per_level.append(len(breaks) + 1)
            if len(breaks) == 0:
                contiguous += 1
                max_runs.append(k)
            else:
                bounds = np.concatenate(([-1], breaks, [k - 1]))
                max_runs.append(int(np.max(np.diff(bounds))))
        return {
            "levels": total,
            "contiguous_levels": contiguous,
            "contiguous_fraction": (
                contiguous / total if total else 1.0
            ),
            "mean_runs_per_level": (
                float(np.mean(runs_per_level)) if runs_per_level else 0.0
            ),
            "mean_max_run": (
                float(np.mean(max_runs)) if max_runs else 0.0
            ),
        }

    @property
    def program(self):
        return self.trace.program

    @property
    def num_levels(self) -> int:
        return len(self.levels)

    @property
    def num_slots(self) -> int:
        """Value-table rows the un-renamed trace would allocate."""
        return self.trace.num_slots


# ----------------------------------------------------------------------
# Fusion cache: a FusedProgram depends on the TraceProgram alone and its
# tables are immutable, so every engine fusing the same trace object can
# share one renaming (and, transitively, one generated kernel).  Weak
# references keyed by the trace's id, with an identity check against id
# reuse — the exact scheme of the lowering cache in repro.core.trace.
_FUSE_CACHE: Dict[int, "weakref.ref[FusedProgram]"] = {}
_FUSE_LOCK = threading.Lock()
_FUSE_HITS = 0
_FUSE_MISSES = 0


def fusion_cache_stats() -> Dict[str, int]:
    """Hit/miss counters of the process-wide fusion cache."""
    with _FUSE_LOCK:
        return {
            "hits": _FUSE_HITS,
            "misses": _FUSE_MISSES,
            "live_entries": len(_FUSE_CACHE),
        }


def clear_fusion_cache() -> None:
    """Drop all cached fusions and reset the counters (for tests)."""
    global _FUSE_HITS, _FUSE_MISSES
    with _FUSE_LOCK:
        _FUSE_CACHE.clear()
        _FUSE_HITS = 0
        _FUSE_MISSES = 0


def fuse_trace(
    trace: TraceProgram,
    *,
    cache: bool = True,
    frag_budget: Optional[int] = None,
) -> FusedProgram:
    """Rename ``trace`` onto a compact register file, memoized per trace.

    With ``cache=True`` (the default) repeated fusions of the *same*
    :class:`TraceProgram` object return one shared :class:`FusedProgram`;
    pass ``cache=False`` to force a fresh allocation.  ``frag_budget``
    overrides the fragmentation allowance over the tightest file size
    (default ``max(8, compact_size // 2)``); overriding implies
    ``cache=False`` — a non-default allocation must not shadow the
    canonical fusion in the process-wide cache.
    """
    global _FUSE_HITS, _FUSE_MISSES
    if frag_budget is not None:
        return _fuse_uncached(trace, frag_budget=frag_budget)
    if not cache:
        return _fuse_uncached(trace)
    key = id(trace)
    with _FUSE_LOCK:
        ref = _FUSE_CACHE.get(key)
        cached = ref() if ref is not None else None
        if cached is not None and cached.trace is trace:
            _FUSE_HITS += 1
            return cached
    fused = _fuse_uncached(trace)
    with _FUSE_LOCK:
        _FUSE_MISSES += 1
        dead = [k for k, r in _FUSE_CACHE.items() if r() is None]
        for k in dead:
            del _FUSE_CACHE[k]
        ref = _FUSE_CACHE.get(key)
        racing = ref() if ref is not None else None
        if racing is not None and racing.trace is trace:
            return racing  # another thread fused first: share theirs
        _FUSE_CACHE[key] = weakref.ref(fused)
    return fused


def adopt_fusion(fused: FusedProgram) -> FusedProgram:
    """Register an externally-built fusion (e.g. deserialized from an
    :mod:`repro.artifact` container) in the process-wide cache.

    Returns the canonical fusion for ``fused.trace``: a live cached
    fusion of the *same* trace object wins, so every consumer keeps
    sharing one set of tables and one generated kernel.
    """
    with _FUSE_LOCK:
        key = id(fused.trace)
        ref = _FUSE_CACHE.get(key)
        cached = ref() if ref is not None else None
        if cached is not None and cached.trace is fused.trace:
            return cached
        # Sweep here too: artifact-only processes adopt without ever
        # taking the fuse_trace miss path, and churning workloads would
        # otherwise accumulate dead entries forever.
        dead = [k for k, r in _FUSE_CACHE.items() if r() is None]
        for k in dead:
            del _FUSE_CACHE[k]
        _FUSE_CACHE[key] = weakref.ref(fused)
        return fused


# ----------------------------------------------------------------------
def _level_ops(level) -> List[str]:
    """The opcode of every instruction of one lowered level, in order."""
    ops = [""] * level.num_instructions
    for seg in level.segments:
        for i in range(seg.start, seg.end):
            ops[i] = seg.op
    return ops


def _free_runs(free_list: List[int]) -> List[Tuple[int, int]]:
    """Maximal contiguous runs of a sorted free list, as (length, start)."""
    runs: List[Tuple[int, int]] = []
    prev = -2
    for v in free_list:
        if v == prev + 1:
            length, start = runs[-1]
            runs[-1] = (length + 1, start)
        else:
            runs.append((1, v))
        prev = v
    return runs


def _fuse_uncached(
    trace: TraceProgram, frag_budget: Optional[int] = None
) -> FusedProgram:
    """One linear-scan register allocation over the lowered levels.

    BUF instructions are *copy-propagated away*: a BUF's output slot
    aliases its input's register (hardware BUFs move words between LPVs;
    in a software register file the move is free), so BUFs occupy no
    register, execute no kernel statement, and the shared register stays
    live until the last read of *any* alias.  All other instructions keep
    their opcode-sorted segment structure with operands renamed through
    the alias roots.
    """
    levels = trace.levels
    num_levels = len(levels)
    num_pinned = _NUM_CONST_SLOTS + len(trace.pi_slots)
    ops_per_level = [_level_ops(level) for level in levels]

    # Alias roots: BUF chains collapse onto the real producer (or a
    # pinned constant/PI slot).  Levels only read earlier slots, so one
    # forward pass resolves every chain.
    root = np.arange(trace.num_slots, dtype=np.intp)
    for level, ops in zip(levels, ops_per_level):
        for i, op in enumerate(ops):
            if op == cells.BUF:
                root[level.out_start + i] = root[level.a_index[i]]

    # Last level reading each *root* (-1: never read).  BUF reads do not
    # count (they are eliminated); port b only counts for two-input ops.
    last_read = np.full(trace.num_slots, -1, dtype=np.int64)
    for index, (level, ops) in enumerate(zip(levels, ops_per_level)):
        for i, op in enumerate(ops):
            if op == cells.BUF:
                continue
            last_read[root[level.a_index[i]]] = index
            if cells.arity(op) == 2:
                last_read[root[level.b_index[i]]] = index

    protected = {int(root[slot]) for slot in trace.output_slots.values()}

    # free_at[L]: register-owning slots whose register returns to the
    # pool before level L allocates its outputs.  A root last read at
    # level L frees *at* L (operands are gathered before results are
    # written); a never-read root frees one level after its definition
    # (two outputs of one level must occupy distinct registers).
    # Primary-input registers free after their last read too — inputs are
    # re-bound before every run, so once consumed their rows are ordinary
    # reusable registers (only the two constants stay pinned: they feed
    # single-input gather lanes throughout).
    free_at: List[List[int]] = [[] for _ in range(num_levels + 1)]
    for slot in range(_NUM_CONST_SLOTS, num_pinned):
        if slot in protected:
            continue
        read = int(last_read[slot])
        free_at[max(read, 0)].append(slot)
    for index, (level, ops) in enumerate(zip(levels, ops_per_level)):
        for i, op in enumerate(ops):
            if op == cells.BUF:
                continue
            slot = level.out_start + i  # non-BUF slots are their own root
            if slot in protected:
                continue
            read = int(last_read[slot])
            free_at[read if read >= 0 else index + 1].append(slot)

    kept_per_level = [
        [i for i, op in enumerate(ops) if op != cells.BUF]
        for ops in ops_per_level
    ]

    # Pass 1 — per-register simulation: the tightest achievable file
    # size under this free schedule (lowest free register always wins).
    # It anchors the fragmentation budget of the real allocation below.
    sim_reg: Dict[int, int] = {}
    sim_free: List[int] = []
    sim_next = num_pinned
    for index, (level, kept) in enumerate(zip(levels, kept_per_level)):
        for slot in free_at[index]:
            heapq.heappush(
                sim_free,
                slot if slot < num_pinned else sim_reg[slot],
            )
        for i in kept:
            if sim_free:
                sim_reg[level.out_start + i] = heapq.heappop(sim_free)
            else:
                sim_reg[level.out_start + i] = sim_next
                sim_next += 1
    compact_size = sim_next

    # Pass 2 — bounded run-fit: every level *prefers* one contiguous
    # register run for its outputs (generated kernels then compute
    # segment ufuncs straight into the value table, no scatter pass).
    # Runs come best-fit from the free list, else from the free suffix
    # extended with fresh registers — but only while the file stays
    # within the fragmentation budget over the tightest size; beyond it
    # the level falls back to run-composed scattered registers (the
    # longest maximal free runs, assigned ascending, so the kernel still
    # writes most of the level with contiguous slice copies), keeping
    # the working set O(peak live values) no matter how fragmented the
    # frees.
    if frag_budget is None:
        frag_budget = max(8, compact_size // 2)
    cap = compact_size + max(0, int(frag_budget))
    reg_of = np.full(trace.num_slots, -1, dtype=np.intp)
    reg_of[:num_pinned] = np.arange(num_pinned)
    free_list: List[int] = []  # sorted free registers below next_reg
    next_reg = num_pinned

    def alloc_run(k: int) -> Optional[int]:
        nonlocal next_reg
        # Maximal free runs, best-fit: tightest adequate run wins (ties
        # broken low), leaving large holes intact for wider levels.
        runs = _free_runs(free_list)
        best = min(
            ((length, s) for length, s in runs if length >= k),
            default=None,
        )
        if best is not None:
            lo = best[1]
            i = bisect.bisect_left(free_list, lo)
            del free_list[i:i + k]
            return lo
        # No interior run: free suffix adjacent to next_reg plus fresh
        # registers, if that stays within the fragmentation budget.
        lo = next_reg
        i = len(free_list) - 1
        while i >= 0 and free_list[i] == lo - 1:
            lo -= 1
            i -= 1
        if max(next_reg, lo + k) > cap:
            return None
        del free_list[i + 1:]
        next_reg = max(next_reg, lo + k)
        return lo

    def alloc_scattered(k: int) -> List[int]:
        nonlocal next_reg
        # Compose the level from the longest maximal free runs (ties
        # broken low) instead of the k lowest singles: the same register
        # count, but the outputs land in few long sub-runs the kernel
        # can write with contiguous slice copies.  Chosen registers are
        # assigned in ascending order, so instructions end up sorted by
        # output register within the level.
        if len(free_list) <= k:
            regs = list(free_list)
            free_list.clear()
        else:
            runs = sorted(_free_runs(free_list), key=lambda r: (-r[0], r[1]))
            regs = []
            for length, start in runs:
                take = min(length, k - len(regs))
                regs.extend(range(start, start + take))
                if len(regs) == k:
                    break
            chosen = set(regs)
            free_list[:] = [v for v in free_list if v not in chosen]
        while len(regs) < k:
            regs.append(next_reg)
            next_reg += 1
        regs.sort()
        return regs

    fused_levels: List[FusedLevel] = []
    max_width = 0
    for index, (level, ops) in enumerate(zip(levels, ops_per_level)):
        for slot in free_at[index]:
            bisect.insort(free_list, int(reg_of[slot]))
        kept = kept_per_level[index]
        if not kept:
            continue  # all-copy level: nothing left to execute
        k = len(kept)
        lo = alloc_run(k)
        if lo is not None:
            out_regs = list(range(lo, lo + k))
        else:
            out_regs = alloc_scattered(k)
        a_index = np.empty(k, dtype=np.intp)
        b_index = np.zeros(k, dtype=np.intp)
        out_index = np.asarray(out_regs, dtype=np.intp)
        segments: List[OpSegment] = []
        for new_i, i in enumerate(kept):
            op = ops[i]
            a_index[new_i] = reg_of[root[level.a_index[i]]]
            if cells.arity(op) == 2:
                b_index[new_i] = reg_of[root[level.b_index[i]]]
            reg_of[level.out_start + i] = out_regs[new_i]
            if segments and segments[-1].op == op:
                segments[-1] = OpSegment(op, segments[-1].start, new_i + 1)
            else:
                segments.append(OpSegment(op, new_i, new_i + 1))
        for array in (a_index, b_index, out_index):
            array.setflags(write=False)
        max_width = max(max_width, k)
        fused_levels.append(
            FusedLevel(
                cycle=level.cycle,
                a_index=a_index,
                b_index=b_index,
                out_index=out_index,
                segments=tuple(segments),
            )
        )

    output_regs = {
        name: int(reg_of[root[slot]])
        for name, slot in trace.output_slots.items()
    }
    return FusedProgram(
        trace=trace,
        num_regs=next_reg,
        pi_regs=dict(trace.pi_slots),
        levels=fused_levels,
        output_regs=output_regs,
        max_level_width=max_width,
    )
