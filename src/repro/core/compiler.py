"""End-to-end FFCL compiler (Fig. 1: pre-processing -> compiler -> hardware).

:func:`compile_ffcl` chains every stage of the paper's flow:

1. pre-process the netlist (logic optimization, cell mapping, levelization,
   full path balancing — :mod:`repro.synth.pipeline`),
2. partition the balanced DAG into MFGs (Algorithms 1/2),
3. merge sibling MFGs (Algorithm 3, on by default; the Fig. 7/8 experiments
   toggle it),
4. schedule MFGs onto the LPV pipeline (Algorithm 4 semantics),
5. generate the instruction queues, buffer layouts, and circulation traffic
   (optional — metric-only sweeps skip it).

The result carries every intermediate artifact plus a
:class:`~repro.core.metrics.CompileMetrics` record.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import FrozenSet, Optional

from ..netlist.graph import LogicGraph
from ..synth.pipeline import PreprocessResult, preprocess
from .codegen import Program, generate_program
from .config import LPUConfig, PAPER_CONFIG
from .merge import merge_partition
from .metrics import CompileMetrics
from .mfg import Partition
from .partition import partition
from .schedule import Schedule, build_schedule


@dataclass
class CompileResult:
    """All artifacts of one compilation.

    Note: when merging is enabled, ``partition_unmerged`` keeps its MFG list
    (counts and spans stay valid for reporting) but its parent/child links
    are consumed by the in-place merging pass; re-run
    :func:`repro.core.partition.partition` for a pristine unmerged DAG.
    """

    source: LogicGraph
    config: LPUConfig
    preprocess: PreprocessResult
    partition_unmerged: Partition
    partition: Partition
    schedule: Schedule
    program: Optional[Program]
    metrics: CompileMetrics

    @property
    def balanced(self) -> LogicGraph:
        return self.preprocess.graph


def compile_ffcl(
    graph: LogicGraph,
    config: LPUConfig = PAPER_CONFIG,
    *,
    merge: bool = True,
    policy: str = "pipelined",
    optimize: bool = True,
    generate_code: bool = True,
    basis: Optional[FrozenSet[str]] = None,
    max_mfgs: int = 500_000,
) -> CompileResult:
    """Compile an FFCL block for the LPU.

    Args:
        graph: the FFCL netlist (e.g. from :func:`repro.netlist.parse_verilog`
            or the NullaNet pipeline).
        config: LPU architecture parameters.
        merge: apply the MFG merging procedure (Algorithm 3).
        policy: ``"pipelined"`` (paper) or ``"sequential"`` scheduling.
        optimize: run logic simplification during pre-processing.
        generate_code: emit instruction queues/buffers; disable for
            metric-only parameter sweeps on large workloads.
        basis: optional restricted LPE op set to tech-map onto.
        max_mfgs: safety bound on partition size.
    """
    pre = preprocess(graph, basis=basis, optimize=optimize)
    part_unmerged = partition(pre.graph, config.m, max_mfgs=max_mfgs)
    part = merge_partition(part_unmerged) if merge else part_unmerged
    schedule = build_schedule(part, config, policy=policy)
    program = (
        generate_program(schedule, pre.graph, config) if generate_code else None
    )

    metrics = CompileMetrics(
        name=graph.name,
        num_inputs=graph.num_inputs,
        num_outputs=graph.num_outputs,
        gates_source=graph.num_gates,
        gates_balanced=pre.graph.num_gates,
        buffers_inserted=pre.report.balance.buffers_inserted,
        depth=pre.levels.max_level,
        mfgs_before_merge=part_unmerged.num_mfgs,
        mfgs_after_merge=part.num_mfgs,
        policy=policy,
        makespan_macro_cycles=schedule.makespan,
        total_clock_cycles=schedule.total_clock_cycles,
        queue_depth=schedule.queue_depth,
        circulations=schedule.circulations,
        latency_seconds=config.macro_cycles_to_seconds(schedule.makespan),
        fps=config.fps(schedule.makespan),
        compute_instructions=(
            program.num_compute_instructions if program else None
        ),
        queue_entries=program.num_queue_entries if program else None,
        peak_buffer_words=program.peak_buffer_words if program else None,
    )
    return CompileResult(
        source=graph,
        config=config,
        preprocess=pre,
        partition_unmerged=part_unmerged,
        partition=part,
        schedule=schedule,
        program=program,
        metrics=metrics,
    )
