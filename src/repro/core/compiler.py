"""End-to-end FFCL compiler (Fig. 1: pre-processing -> compiler -> hardware).

:func:`compile_ffcl` is the classic one-call entry point of the flow:

1. pre-process the netlist (logic optimization, cell mapping, levelization,
   full path balancing — :mod:`repro.synth.pipeline`),
2. partition the balanced DAG into MFGs (Algorithms 1/2),
3. merge sibling MFGs (Algorithm 3, on by default; the Fig. 7/8 experiments
   toggle it),
4. schedule MFGs onto the LPV pipeline (Algorithm 4 semantics),
5. generate the instruction queues, buffer layouts, and circulation traffic
   (optional — metric-only sweeps skip it).

Since the pass-manager refactor this function is a thin facade over
:mod:`repro.compiler`: the keyword arguments are translated into a pass
pipeline (:func:`repro.compiler.pipeline_from_options`) and run through a
:class:`~repro.compiler.manager.PassManager`, with results bit-identical
to the pre-refactor monolithic chain.  Callers that want named pipelines,
custom pass lists, per-pass instrumentation, or pass-level caching can
pass ``pipeline=`` / ``pass_cache=`` here or drop down to
:func:`repro.compiler.compile_with_pipeline` / ``PassManager`` directly.

The result carries every intermediate artifact plus a
:class:`~repro.core.metrics.CompileMetrics` record and the per-pass
instrumentation records.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import FrozenSet, List, Optional

from ..netlist.graph import LogicGraph
from ..synth.pipeline import PreprocessResult
from .codegen import Program
from .config import LPUConfig, PAPER_CONFIG
from .metrics import CompileMetrics
from .mfg import Partition
from .schedule import Schedule


@dataclass
class CompileResult:
    """All artifacts of one compilation.

    ``partition_unmerged`` is pristine even when merging is enabled: the
    merge pass operates on a cloned MFG DAG
    (:func:`repro.core.merge.clone_partition`), so the unmerged
    parent/child links survive for reporting and re-scheduling.
    """

    source: LogicGraph
    config: LPUConfig
    preprocess: PreprocessResult
    partition_unmerged: Partition
    partition: Partition
    schedule: Schedule
    program: Optional[Program]
    metrics: CompileMetrics
    #: per-pass instrumentation (wall time, cache hits, artifact sizes);
    #: a list of :class:`repro.compiler.PassRecord`.
    pass_records: List[object] = field(default_factory=list)
    #: pre-packaged executable (set when the pipeline ran the ``package``
    #: pass; :meth:`to_artifact` fills it lazily otherwise).
    artifact: Optional[object] = None

    @property
    def balanced(self) -> LogicGraph:
        return self.preprocess.graph

    def to_artifact(
        self,
        *,
        lower: bool = True,
        fanout: bool = False,
        probe_words: int = 0,
        probe_seed: int = 0,
    ):
        """Package this compile as a serializable
        :class:`~repro.artifact.format.ExecutableArtifact` (memoized).

        ``lower=False`` skips embedding the trace-engine tables (smaller
        artifact; the trace engine then lowers on first use).
        ``fanout=True`` additionally embeds the delta engine's
        fanout/cone tables for zero-analysis streaming boots.
        ``probe_words>0`` embeds that many words of probe vectors —
        known stimulus/response pairs replayable with ``repro inspect
        --verify`` (or at store-upload time) to prove the packaged
        executable still computes its function.
        """
        if self.artifact is None or (
            fanout and self.artifact.fanout is None
        ) or (probe_words > 0 and self.artifact.probes is None):
            from ..artifact.format import ExecutableArtifact

            self.artifact = ExecutableArtifact.from_compile(
                self,
                lower=lower,
                fanout=fanout,
                probe_words=probe_words,
                probe_seed=probe_seed,
            )
        return self.artifact


def compile_ffcl(
    graph: LogicGraph,
    config: LPUConfig = PAPER_CONFIG,
    *,
    merge: bool = True,
    policy: str = "pipelined",
    optimize: bool = True,
    generate_code: bool = True,
    basis: Optional[FrozenSet[str]] = None,
    max_mfgs: int = 500_000,
    pipeline: Optional[object] = None,
    codegen_workers: Optional[int] = None,
    pass_cache: Optional[object] = None,
) -> CompileResult:
    """Compile an FFCL block for the LPU.

    Args:
        graph: the FFCL netlist (e.g. from :func:`repro.netlist.parse_verilog`
            or the NullaNet pipeline).
        config: LPU architecture parameters.
        merge: apply the MFG merging procedure (Algorithm 3).
        policy: ``"pipelined"`` (paper) or ``"sequential"`` scheduling.
        optimize: run logic simplification during pre-processing.
        generate_code: emit instruction queues/buffers; disable for
            metric-only parameter sweeps on large workloads.
        basis: optional restricted LPE op set to tech-map onto.
        max_mfgs: safety bound on partition size.
        pipeline: optional pipeline spec (a name like ``"paper"``, a
            comma-separated pass list, or a sequence of pass names)
            overriding the pass list the other keywords imply.
        codegen_workers: emit-phase thread-pool width of the codegen pass
            (``None`` = host CPU count; the program is bit-identical for
            every value).
        pass_cache: optional :class:`repro.compiler.PassCache` memoizing
            per-pass results across compiles.
    """
    from ..compiler.manager import PassManager, state_to_result
    from ..compiler.pipelines import pipeline_from_options
    from ..compiler.state import CompileOptions

    if pipeline is None:
        pipeline = pipeline_from_options(
            optimize=optimize, merge=merge, generate_code=generate_code
        )
    options = CompileOptions(
        policy=policy,
        optimize=optimize,
        basis=basis,
        max_mfgs=max_mfgs,
        codegen_workers=codegen_workers,
    )
    state = PassManager(pipeline, cache=pass_cache).run(graph, config, options)
    return state_to_result(state)
