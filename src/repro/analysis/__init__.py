"""Reporting helpers shared by the benchmark harness."""

from .gantt import render_gantt, utilization
from .series import crossover_point, geometric_mean, render_series
from .tables import format_number, render_ratio, render_table

__all__ = [
    "render_gantt",
    "utilization",
    "crossover_point",
    "geometric_mean",
    "render_series",
    "format_number",
    "render_ratio",
    "render_table",
]
