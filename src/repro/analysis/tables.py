"""ASCII table rendering for the experiment harness.

Every bench regenerates its paper table/figure as text via these helpers,
so `pytest benchmarks/ --benchmark-only` prints the same rows/series the
paper reports (EXPERIMENTS.md records paper-vs-measured for each).
"""

from __future__ import annotations

from typing import Iterable, List, Optional, Sequence, Union

Cell = Union[str, int, float, None]


def format_number(value: Cell, precision: int = 2) -> str:
    """Human-friendly numeric formatting (K/M suffixes like the paper)."""
    if value is None:
        return "-"
    if isinstance(value, str):
        return value
    v = float(value)
    if v == 0:
        return "0"
    for magnitude, suffix in ((1e9, "G"), (1e6, "M"), (1e3, "K")):
        if abs(v) >= magnitude:
            return f"{v / magnitude:.{precision}f}{suffix}"
    if abs(v) >= 1:
        return f"{v:.{precision}f}".rstrip("0").rstrip(".")
    return f"{v:.4f}"


def render_table(
    title: str,
    headers: Sequence[str],
    rows: Iterable[Sequence[Cell]],
    precision: int = 2,
) -> str:
    """Render an aligned ASCII table with a title rule."""
    text_rows: List[List[str]] = []
    for row in rows:
        text_rows.append(
            [
                cell if isinstance(cell, str) else format_number(cell, precision)
                for cell in row
            ]
        )
    widths = [len(h) for h in headers]
    for row in text_rows:
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))

    def fmt_row(cells: Sequence[str]) -> str:
        return " | ".join(c.ljust(widths[i]) for i, c in enumerate(cells))

    rule = "-+-".join("-" * w for w in widths)
    lines = [f"== {title} ==", fmt_row(list(headers)), rule]
    lines.extend(fmt_row(row) for row in text_rows)
    return "\n".join(lines)


def render_ratio(label: str, ours: float, reference: Optional[float]) -> str:
    """One-line ours-vs-paper comparison."""
    if reference is None or reference == 0:
        return f"{label}: ours {format_number(ours)} (no paper reference)"
    ratio = ours / reference
    return (
        f"{label}: ours {format_number(ours)} vs paper "
        f"{format_number(reference)} ({ratio:.2f}x of reported)"
    )
