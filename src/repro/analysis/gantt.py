"""Time-space diagram rendering for LPU schedules (the paper's Fig. 5).

Renders a schedule's occupancy grid — rows are LPVs, columns are
macro-cycles, letters are MFGs — exactly the view the paper uses to explain
the MFG-by-MFG computing paradigm and memLoc sharing.
"""

from __future__ import annotations

from typing import Dict, Tuple

from ..core.schedule import Schedule

_GLYPHS = "ABCDEFGHIJKLMNOPQRSTUVWXYZabcdefghijklmnopqrstuvwxyz0123456789"


def render_gantt(
    schedule: Schedule,
    max_cycles: int = 60,
    max_lpvs: int = 32,
) -> str:
    """ASCII Fig. 5: one glyph per MFG, '.' for idle (cycle, LPV) cells."""
    grid: Dict[Tuple[int, int], int] = schedule.occupancy()
    uid_glyph: Dict[int, str] = {}
    cycles = min(schedule.makespan, max_cycles)
    lines = [
        "cycle |" + "".join(str(c % 10) for c in range(cycles))
    ]
    for lpv in range(min(schedule.config.n, max_lpvs)):
        row = []
        for cycle in range(cycles):
            uid = grid.get((cycle, lpv))
            if uid is None:
                row.append(".")
            else:
                if uid not in uid_glyph:
                    uid_glyph[uid] = _GLYPHS[len(uid_glyph) % len(_GLYPHS)]
                row.append(uid_glyph[uid])
        lines.append(f"LPV{lpv:>2} |{''.join(row)}")
    if schedule.makespan > max_cycles:
        lines.append(f"... ({schedule.makespan - max_cycles} more cycles)")
    legend = ", ".join(
        f"{glyph}=MFG{uid}" for uid, glyph in list(uid_glyph.items())[:12]
    )
    if legend:
        lines.append(f"legend: {legend}" + (" ..." if len(uid_glyph) > 12 else ""))
    return "\n".join(lines)


def utilization(schedule: Schedule) -> float:
    """Fraction of (cycle, LPV) cells doing useful MFG work."""
    total_cells = schedule.makespan * schedule.config.n
    if total_cells == 0:
        return 0.0
    return len(schedule.occupancy()) / total_cells
