"""ASCII series/bar-chart rendering for figure-style benches (Figs 7-9)."""

from __future__ import annotations

from typing import Dict, Sequence, Tuple

from .tables import format_number


def render_series(
    title: str,
    x_label: str,
    xs: Sequence,
    series: Dict[str, Sequence[float]],
    width: int = 40,
) -> str:
    """Render one or more named series as horizontal bar rows.

    Bars are scaled to the global maximum so relative magnitudes — the
    thing the paper's figures communicate — survive the ASCII rendering.
    """
    peak = max(
        (v for values in series.values() for v in values if v is not None),
        default=1.0,
    )
    if peak <= 0:
        peak = 1.0
    label_width = max(
        [len(str(x)) for x in xs] + [len(x_label)]
    )
    name_width = max(len(name) for name in series)
    lines = [f"== {title} =="]
    for i, x in enumerate(xs):
        for name, values in series.items():
            v = values[i]
            bar = "#" * max(1, int(round(width * v / peak))) if v else ""
            lines.append(
                f"{str(x).rjust(label_width)} {name.ljust(name_width)} "
                f"|{bar.ljust(width)}| {format_number(v)}"
            )
    return "\n".join(lines)


def geometric_mean(values: Sequence[float]) -> float:
    """Geometric mean (the right average for speedup ratios)."""
    filtered = [v for v in values if v > 0]
    if not filtered:
        return 0.0
    product = 1.0
    for v in filtered:
        product *= v
    return product ** (1.0 / len(filtered))


def crossover_point(
    xs: Sequence[float],
    ours: Sequence[float],
    reference: float,
) -> Tuple[float, bool]:
    """First x where ``ours`` crosses below ``reference`` (for the Fig. 9
    "effective LPV threshold": smallest LPV count beating NullaDSP).

    Returns (x, found).  ``ours`` is assumed monotone non-increasing
    (inference time vs LPV count).
    """
    for x, v in zip(xs, ours):
        if v <= reference:
            return float(x), True
    return float(xs[-1]), False
