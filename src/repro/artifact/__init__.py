"""Ahead-of-time executable artifacts: compile once, deploy anywhere.

The paper's premise is that FFCL compilation happens *offline* and the
LPU only ever consumes finished instruction streams.  This package makes
that separation real for the reproduction: a compiled workload becomes a
versioned, content-addressed, zero-pickle binary artifact that survives
process exit, crosses process boundaries, and boots an execution engine
with no compilation and no lowering.

* :class:`ExecutableArtifact` — the executable format: the compiled
  :class:`~repro.core.codegen.Program` (ISA-encoded instruction queues +
  buffer traffic + runtime schedule), optional lowered trace tables,
  and identity/provenance metadata (format version, producer, workload
  fingerprint, compile-pipeline id, metrics, self-verifying content
  fingerprint).  ``.lpa`` on disk.
* :class:`StoreBackend` — the pluggable content-addressed blob-store
  protocol every cache tier talks to, with three implementations:
  :class:`DirectoryBackend` (= :class:`ArtifactStore`, the on-disk
  store), :class:`MemoryStoreBackend` (in-process, for tests and
  store-only fabric nodes), and :class:`HTTPStoreBackend` (a remote
  store served by a fabric node, so a fleet of serve workers shares one
  warm compile store).  Any backend plugs into
  :class:`~repro.serve.cache.ProgramCache` and
  :class:`~repro.compiler.cache.PassCache` as the disk tier, making
  warm serve restarts compile nothing.
* :mod:`~repro.artifact.codec` — the binary container encoding (JSON
  header + raw ``.npy`` tables, deterministic bytes, no pickle).

Compile-once / serve-many::

    from repro.artifact import ExecutableArtifact

    artifact = compile_ffcl(graph).to_artifact()
    artifact.save("block.lpa")

    # ... later, in any process:
    session = ExecutableArtifact.load("block.lpa").session()
    result = session.run(stimulus)

or from the CLI: ``repro compile block.v -o block.lpa``, then
``repro simulate --artifact block.lpa`` / ``repro inspect block.lpa``.
"""

from .backends import HTTPStoreBackend, MemoryStoreBackend
from .codec import ArtifactDecodeError
from .format import (
    ARTIFACT_SUFFIX,
    BUNDLE_FORMAT_VERSION,
    FORMAT_MAGIC,
    FORMAT_VERSION,
    SINGLE_PROGRAM_VERSION,
    ArtifactError,
    ExecutableArtifact,
    ProbeSet,
    load_artifact,
    load_artifact_bytes,
    peek_header,
    reader_versions,
    register_reader,
)
from .bundle import ArtifactBundle, StageLink, bundle_model
from .store import (
    ArtifactStore,
    DirectoryBackend,
    StoreBackend,
    StoreEntry,
    StoreStats,
    store_key,
)

__all__ = [
    "ARTIFACT_SUFFIX",
    "BUNDLE_FORMAT_VERSION",
    "FORMAT_MAGIC",
    "FORMAT_VERSION",
    "SINGLE_PROGRAM_VERSION",
    "ArtifactBundle",
    "ArtifactDecodeError",
    "ArtifactError",
    "ArtifactStore",
    "DirectoryBackend",
    "ExecutableArtifact",
    "HTTPStoreBackend",
    "MemoryStoreBackend",
    "ProbeSet",
    "StageLink",
    "StoreBackend",
    "StoreEntry",
    "StoreStats",
    "bundle_model",
    "load_artifact",
    "load_artifact_bytes",
    "peek_header",
    "reader_versions",
    "register_reader",
    "store_key",
]
