"""The versioned executable format: :class:`ExecutableArtifact`.

An artifact is the durable, deployable form of one compiled workload —
the paper's separation of offline FFCL compilation from the LPU that only
ever consumes finished instruction streams, made concrete:

* the executable :class:`~repro.core.codegen.Program` (instruction
  queues in the 32-bit ISA encoding, buffer traffic tables, the runtime
  schedule surface, the logic graph interface),
* optionally the lowered :class:`~repro.core.trace.TraceProgram` tables
  (so the trace engine starts without re-lowering) plus the
  liveness-renamed :class:`~repro.core.liveness.FusedProgram` register
  tables (so the fused serving default starts without re-renaming),
* identity and provenance metadata: the format version, the producing
  ``repro`` version, the workload's content fingerprint
  (:func:`repro.compiler.graph_fingerprint`), the compile-pipeline
  identity, compile metrics, and a self-verifying content fingerprint of
  the artifact bytes themselves.

Artifacts serialize to a zero-pickle binary container
(:mod:`repro.artifact.codec`) conventionally stored with the ``.lpa``
("LPU artifact") suffix, round-trip deterministically (re-encoding a
decoded artifact yields identical bytes and an identical fingerprint),
and execute bit-identically to the in-memory compile on both engines.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

import numpy as np

from ..core.codegen import Program
from ..core.fanout import FanoutTables, adopt_fanout, build_fanout
from ..core.liveness import FusedProgram, adopt_fusion, fuse_trace
from ..core.trace import TraceProgram, adopt_lowering, lower_program
from .codec import (
    ArtifactDecodeError,
    content_fingerprint,
    decode_fanout,
    decode_fused,
    decode_probes,
    decode_program,
    decode_trace,
    encode_fanout,
    encode_fused,
    encode_probes,
    encode_program,
    encode_trace,
    pack_container,
    unpack_container,
)

__all__ = [
    "ARTIFACT_SUFFIX",
    "BUNDLE_FORMAT_VERSION",
    "FORMAT_MAGIC",
    "FORMAT_VERSION",
    "SINGLE_PROGRAM_VERSION",
    "ArtifactError",
    "ExecutableArtifact",
    "ProbeSet",
    "load_artifact",
    "load_artifact_bytes",
    "peek_header",
    "reader_versions",
    "register_reader",
]

#: container identification + compatibility gate.
FORMAT_MAGIC = "repro-lpa"
#: the single-program section layout every ``.lpa`` written since PR 4
#: uses; single-program artifacts keep stamping (and round-tripping)
#: this version so their bytes stay identical across format bumps.
SINGLE_PROGRAM_VERSION = 1
#: the multi-program bundle layout (a manifest of member programs, each
#: encoded as its own embedded v1 container).
BUNDLE_FORMAT_VERSION = 2
#: newest format generation this build understands (reads *and* writes).
FORMAT_VERSION = BUNDLE_FORMAT_VERSION
#: conventional file suffix ("LPU artifact").
ARTIFACT_SUFFIX = ".lpa"


class ArtifactError(RuntimeError):
    """The bytes are not a loadable artifact (corrupt, wrong format, or an
    incompatible format version)."""


# ----------------------------------------------------------------------
# Version negotiation: the reader registry
# ----------------------------------------------------------------------
#: format version -> reader(data: bytes) -> decoded artifact object.
#: Version 1 (single program) registers below; version 2 (bundle)
#: registers from :mod:`repro.artifact.bundle` at import.
_READERS: Dict[int, object] = {}


def register_reader(version: int, reader=None):
    """Register ``reader`` for ``version`` (usable as a decorator)."""

    def _register(fn):
        _READERS[int(version)] = fn
        return fn

    if reader is not None:
        return _register(reader)
    return _register


def reader_versions() -> Tuple[int, ...]:
    """Format versions this build can load, sorted ascending."""
    return tuple(sorted(_READERS))


def _version_error(version) -> ArtifactError:
    known = "{" + ", ".join(str(v) for v in reader_versions()) + "}"
    return ArtifactError(
        f"artifact format v{version} not supported, "
        f"reader registry has {known}"
    )


def peek_header(data: bytes) -> Dict[str, object]:
    """The container header alone — magic-checked, but *not* version-
    gated and *not* fingerprint-verified — so tooling (``repro inspect``)
    can still print identity and provenance of an artifact whose format
    version this build cannot decode."""
    try:
        header, _arrays = unpack_container(data)
    except ArtifactDecodeError as exc:
        raise ArtifactError(str(exc)) from exc
    if header.get("magic") != FORMAT_MAGIC:
        raise ArtifactError("not a repro executable artifact (bad magic)")
    return header


def load_artifact_bytes(data: bytes):
    """Decode any supported ``.lpa`` container, negotiating the format
    version through the reader registry.

    Returns an :class:`ExecutableArtifact` (format v1) or an
    :class:`~repro.artifact.bundle.ArtifactBundle` (format v2); an
    unknown version raises :class:`ArtifactError` naming the versions
    this build reads."""
    header = peek_header(data)
    version = header.get("format_version")
    reader = _READERS.get(version)
    if reader is None:
        raise _version_error(version)
    return reader(data)


def load_artifact(path: str):
    """:func:`load_artifact_bytes` over a file."""
    with open(path, "rb") as handle:
        return load_artifact_bytes(handle.read())


@dataclass(frozen=True)
class ProbeSet:
    """Packed probe vectors embedded in an artifact at package time.

    A handful of random 64-sample words per primary input, paired with
    the functional reference's expected outputs, captured while the
    source netlist was still in hand.  A deployed artifact can then
    prove end-to-end correctness on any box — ``repro inspect --verify``
    replays the probes through a freshly booted engine and compares
    bit-for-bit — with no source netlist and no compiler present.
    An optional format-v1-compatible section, like the fanout tables.
    """

    #: PI names in stimulus-row order (row ``i`` of :attr:`inputs`).
    input_names: Tuple[str, ...]
    #: PO names in expected-row order (row ``i`` of :attr:`outputs`).
    output_names: Tuple[str, ...]
    #: ``(len(input_names), words)`` uint64 stimulus words.
    inputs: np.ndarray
    #: ``(len(output_names), words)`` uint64 expected output words.
    outputs: np.ndarray
    #: stimulus seed, for provenance.
    seed: int = 0

    @property
    def words(self) -> int:
        """Packed words per signal (64 independent samples each)."""
        return int(self.inputs.shape[1])

    @property
    def samples(self) -> int:
        return self.words * 64

    def stimulus(self) -> Dict[str, np.ndarray]:
        """The probe inputs as an engine-ready ``{pi: word array}``."""
        return {
            name: self.inputs[i]
            for i, name in enumerate(self.input_names)
        }

    def expected(self) -> Dict[str, np.ndarray]:
        """The reference outputs as ``{po: word array}``."""
        return {
            name: self.outputs[i]
            for i, name in enumerate(self.output_names)
        }

    @classmethod
    def generate(cls, graph, *, words: int = 2, seed: int = 0) -> "ProbeSet":
        """Sample random stimulus and capture the functional reference's
        response (engine-free: pure graph evaluation)."""
        from ..lpu.functional import evaluate_graph, random_stimulus

        if words < 1:
            raise ValueError("probe sets need at least one packed word")
        stimulus = random_stimulus(graph, array_size=words, seed=seed)
        expected = evaluate_graph(graph, stimulus)
        input_names = tuple(
            graph.input_name(nid) for nid in graph.inputs
        )
        output_names = tuple(name for name, _ in graph.outputs)
        inputs = (
            np.stack([stimulus[name] for name in input_names])
            if input_names
            else np.zeros((0, words), dtype=np.uint64)
        ).astype(np.uint64)
        outputs = (
            np.stack([expected[name] for name in output_names])
            if output_names
            else np.zeros((0, words), dtype=np.uint64)
        ).astype(np.uint64)
        for array in (inputs, outputs):
            array.setflags(write=False)
        return cls(
            input_names=input_names,
            output_names=output_names,
            inputs=inputs,
            outputs=outputs,
            seed=seed,
        )

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"ProbeSet(pis={len(self.input_names)}, "
            f"pos={len(self.output_names)}, words={self.words})"
        )


@dataclass
class ExecutableArtifact:
    """One compiled workload in its serializable executable form."""

    program: Program
    #: lowered trace tables (None when packaged without them; the trace
    #: engine then lowers on first use).
    trace: Optional[TraceProgram] = None
    #: liveness-renamed register tables (None when packaged without
    #: them; the fused engine then renames on first use).  Embedded
    #: whenever the trace tables are, so a deployed artifact boots the
    #: fused serving default with zero lowering *and* zero renaming.
    fused: Optional[FusedProgram] = None
    #: fanout/delta tables for the delta streaming engine (an *optional*
    #: format-v1-compatible section, like the fused tables: readers that
    #: predate it ignore the extra header key and arrays).  Opt-in via
    #: ``from_program(..., fanout=True)``; the delta engine derives them
    #: on the fly when absent.
    fanout: Optional[FanoutTables] = None
    #: embedded input/output probe vectors (an optional v1-compatible
    #: section): a few packed stimulus words plus the functional
    #: reference's expected outputs, so ``repro inspect --verify`` can
    #: prove end-to-end correctness with no source netlist present.
    probes: Optional[ProbeSet] = None
    #: content fingerprint of the *source* logic graph (the workload
    #: identity every cache layer keys on).
    workload_fingerprint: str = ""
    #: canonical '+'-joined pass list that produced the program ("" when
    #: packaged from a bare Program).
    pipeline: str = ""
    #: ``repro`` version that produced the artifact.
    producer: str = ""
    #: compile metrics snapshot (JSON-able), when packaged from a compile.
    metrics: Optional[Dict[str, object]] = None
    #: self-verifying content fingerprint of the encoded artifact
    #: (computed on first encode / verified on load).
    fingerprint: str = field(default="", compare=False)

    def __post_init__(self) -> None:
        # Cached ((trace-embedded?, fused-embedded?), container bytes):
        # packaging then storing/shipping must not pay the full encode
        # more than once.  Keyed on table presence so trace_program() /
        # fused_program() materialization later invalidates it.
        self._encoded: Optional[tuple] = None

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------
    @classmethod
    def from_program(
        cls,
        program: Program,
        *,
        trace: Optional[TraceProgram] = None,
        fused: Optional[FusedProgram] = None,
        lower: bool = True,
        fanout: bool = False,
        probe_words: int = 0,
        probe_seed: int = 0,
        pipeline: str = "",
        metrics: Optional[Dict[str, object]] = None,
        workload_fingerprint: Optional[str] = None,
    ) -> "ExecutableArtifact":
        """Package a compiled program (lowering the trace tables unless
        ``lower=False`` or prebuilt ``trace`` tables are supplied; the
        liveness-renamed fused tables ride along whenever trace tables
        are embedded).  ``fanout=True`` additionally embeds the delta
        engine's fanout/cone tables, so streaming deployments boot with
        zero cone analysis; the section is optional and ignored by
        readers that predate it.  ``probe_words=N`` embeds ``N`` packed
        stimulus words per primary input plus the functional reference's
        expected outputs (another optional section), enabling
        ``repro inspect --verify`` on boxes without the source netlist.

        ``workload_fingerprint`` is the *source* graph's content
        fingerprint when known (the identity every cache layer keys on);
        it defaults to the compiled graph's fingerprint, which differs
        from the source once pre-processing has rewritten the netlist.
        """
        from .. import __version__
        from ..compiler.cache import graph_fingerprint

        if trace is None and lower:
            trace = lower_program(program)
        if trace is not None and trace.program is not program:
            raise ValueError(
                "the supplied trace tables lower a different program"
            )
        if fused is not None and fused.trace is not trace:
            raise ValueError(
                "the supplied fused tables rename a different lowering"
            )
        if fused is None and trace is not None:
            fused = fuse_trace(trace)
        if fanout and fused is None:
            raise ValueError(
                "fanout tables require the fused tables to be embedded "
                "(they are derived from, and decoded against, them)"
            )
        artifact = cls(
            program=program,
            trace=trace,
            fused=fused,
            fanout=build_fanout(fused) if fanout else None,
            probes=(
                ProbeSet.generate(
                    program.graph, words=probe_words, seed=probe_seed
                )
                if probe_words
                else None
            ),
            workload_fingerprint=(
                workload_fingerprint
                if workload_fingerprint is not None
                else graph_fingerprint(program.graph)
            ),
            pipeline=pipeline,
            producer=f"repro {__version__}",
            metrics=dict(metrics) if metrics is not None else None,
        )
        artifact.to_bytes()  # compute the fingerprint, warm the cache
        return artifact

    @classmethod
    def from_compile(
        cls,
        result,
        *,
        trace: Optional[TraceProgram] = None,
        lower: bool = True,
        fanout: bool = False,
        probe_words: int = 0,
        probe_seed: int = 0,
    ) -> "ExecutableArtifact":
        """Package a :class:`~repro.core.compiler.CompileResult`."""
        from ..compiler.cache import graph_fingerprint

        if result.program is None:
            raise ValueError(
                "the compile produced no program (no 'codegen' pass); "
                "only executable compiles can be packaged"
            )
        pipeline = "+".join(
            record.name for record in result.pass_records
        )
        return cls.from_program(
            result.program,
            trace=trace,
            lower=lower,
            fanout=fanout,
            probe_words=probe_words,
            probe_seed=probe_seed,
            pipeline=pipeline,
            metrics=result.metrics.as_dict() if result.metrics else None,
            workload_fingerprint=graph_fingerprint(result.source),
        )

    # ------------------------------------------------------------------
    # Serialization
    # ------------------------------------------------------------------
    def _encode(self):
        header, arrays = encode_program(self.program)
        header["magic"] = FORMAT_MAGIC
        header["format_version"] = SINGLE_PROGRAM_VERSION
        header["producer"] = self.producer
        header["workload_fingerprint"] = self.workload_fingerprint
        header["pipeline"] = self.pipeline
        header["metrics"] = self.metrics
        if self.trace is not None:
            trace_header, trace_arrays = encode_trace(self.trace)
            header["trace"] = trace_header
            arrays.update(trace_arrays)
        else:
            header["trace"] = None
        if self.fused is not None:
            fused_header, fused_arrays = encode_fused(self.fused)
            header["fused"] = fused_header
            arrays.update(fused_arrays)
        else:
            header["fused"] = None
        if self.fanout is not None and self.fused is not None:
            fanout_header, fanout_arrays = encode_fanout(self.fanout)
            header["fanout"] = fanout_header
            arrays.update(fanout_arrays)
        else:
            header["fanout"] = None
        if self.probes is not None:
            probe_header, probe_arrays = encode_probes(self.probes)
            header["probes"] = probe_header
            arrays.update(probe_arrays)
        else:
            header["probes"] = None
        return header, arrays

    def _refresh_fingerprint(self) -> str:
        header, arrays = self._encode()
        self.fingerprint = content_fingerprint(header, arrays)
        return self.fingerprint

    def to_bytes(self) -> bytes:
        """Serialize to the deterministic zero-pickle container bytes
        (memoized: repeated calls encode once)."""
        cached = self._encoded
        embedded = (self.trace is not None, self.fused is not None,
                    self.fanout is not None, self.probes is not None)
        if cached is not None and cached[0] == embedded:
            return cached[1]
        header, arrays = self._encode()
        self.fingerprint = content_fingerprint(header, arrays)
        header["fingerprint"] = self.fingerprint
        data = pack_container(header, arrays)
        self._encoded = (embedded, data)
        return data

    @classmethod
    def from_bytes(cls, data: bytes) -> "ExecutableArtifact":
        """Deserialize, verifying the format version and the fingerprint."""
        try:
            header, arrays = unpack_container(data)
        except ArtifactDecodeError as exc:
            raise ArtifactError(str(exc)) from exc
        if header.get("magic") != FORMAT_MAGIC:
            raise ArtifactError(
                "not a repro executable artifact (bad magic)"
            )
        version = header.get("format_version")
        if version != SINGLE_PROGRAM_VERSION:
            if version in _READERS:
                raise ArtifactError(
                    f"artifact is a format v{version} container, not a "
                    f"single-program artifact; load it through "
                    f"repro.artifact.load_artifact()"
                )
            raise _version_error(version)
        expected = header.get("fingerprint")
        actual = content_fingerprint(header, arrays)
        if expected != actual:
            raise ArtifactError(
                "artifact fingerprint mismatch: the container is corrupt "
                f"(header says {expected!r}, content hashes to {actual!r})"
            )
        try:
            program = decode_program(header, arrays)
            trace = None
            fused = None
            if header.get("trace") is not None:
                trace = decode_trace(dict(header["trace"]), arrays, program)
            if trace is not None and header.get("fused") is not None:
                fused = decode_fused(dict(header["fused"]), arrays, trace)
        except (ArtifactDecodeError, KeyError, ValueError) as exc:
            raise ArtifactError(f"undecodable artifact: {exc}") from exc
        if trace is not None:
            # Future lower_program() calls on this program now hit the
            # process-wide cache instead of re-replaying the schedule.
            canonical = adopt_lowering(trace)
            if fused is not None and canonical is trace:
                fused = adopt_fusion(fused)
            trace = canonical
        fanout = None
        if fused is not None and header.get("fanout") is not None:
            # Decoded against the *final* (possibly cache-canonical)
            # fused object, so the tables' identity check holds for
            # every engine booted from this artifact.
            try:
                fanout = adopt_fanout(
                    decode_fanout(dict(header["fanout"]), arrays, fused)
                )
            except (ArtifactDecodeError, KeyError, ValueError) as exc:
                raise ArtifactError(
                    f"undecodable artifact: {exc}"
                ) from exc
        probes = None
        if header.get("probes") is not None:
            try:
                probes = decode_probes(dict(header["probes"]), arrays)
            except (ArtifactDecodeError, KeyError, ValueError) as exc:
                raise ArtifactError(
                    f"undecodable artifact: {exc}"
                ) from exc
        return cls(
            program=program,
            trace=trace,
            fused=fused,
            fanout=fanout,
            probes=probes,
            workload_fingerprint=str(header.get("workload_fingerprint", "")),
            pipeline=str(header.get("pipeline", "")),
            producer=str(header.get("producer", "")),
            metrics=header.get("metrics"),
            fingerprint=str(expected),
        )

    def save(self, path: str) -> str:
        """Write the artifact atomically; returns the path written."""
        from .store import _atomic_write

        _atomic_write(path, self.to_bytes())
        return path

    @classmethod
    def load(cls, path: str) -> "ExecutableArtifact":
        with open(path, "rb") as handle:
            return cls.from_bytes(handle.read())

    @classmethod
    def from_bundle(cls, bundle, stage=0) -> "ExecutableArtifact":
        """Extract one member program of a v2
        :class:`~repro.artifact.bundle.ArtifactBundle` as a standalone
        single-program artifact (``stage`` is an index or stage name)."""
        return bundle.member(stage)

    # ------------------------------------------------------------------
    # Execution
    # ------------------------------------------------------------------
    def trace_program(self) -> TraceProgram:
        """The lowered tables, lowering (and caching) on first use."""
        if self.trace is None:
            self.trace = lower_program(self.program)
        return self.trace

    def fused_program(self) -> FusedProgram:
        """The liveness-renamed tables, renaming (and caching) on first
        use; embedded tables bound to a superseded lowering are replaced
        by the canonical fusion of :meth:`trace_program`."""
        if self.fused is not None and self.fused.trace is self.trace:
            return adopt_fusion(self.fused)
        self.fused = fuse_trace(self.trace_program())
        return self.fused

    def fanout_tables(self) -> FanoutTables:
        """The delta engine's fanout/cone tables, deriving (and caching)
        on first use; embedded tables bound to a superseded fusion are
        replaced by a fresh derivation over :meth:`fused_program`."""
        fused = self.fused_program()
        if self.fanout is not None and self.fanout.fused is fused:
            self.fanout = adopt_fanout(self.fanout)
            return self.fanout
        self.fanout = build_fanout(fused)
        return self.fanout

    def session(
        self, *, engine: Optional[str] = None, engine_options=None
    ):
        """A ready-to-run :class:`~repro.engine.session.Session` —
        no compile, and no lowering when trace tables are embedded.
        ``engine_options`` are engine constructor keywords
        (see :func:`repro.engine.create_engine`)."""
        from ..engine.session import DEFAULT_ENGINE, Session

        return Session(
            self,
            engine=engine if engine is not None else DEFAULT_ENGINE,
            engine_options=engine_options,
        )

    def verify_probes(
        self, *, engine: Optional[str] = None
    ) -> Dict[str, object]:
        """Replay the embedded probe vectors through a fresh engine and
        compare bit-for-bit against the packaged reference outputs.

        Returns a JSON-able report (``passed``, the engine used, the
        probe shape, and any mismatching output names).  Raises
        :class:`ArtifactError` when the artifact carries no probes —
        callers that want a fallback should check :attr:`probes` first.
        """
        if self.probes is None:
            raise ArtifactError(
                "artifact carries no probe vectors; package with "
                "probe_words > 0 (CLI: repro compile --probe-words N)"
            )
        session = self.session(engine=engine)
        result = session.run(self.probes.stimulus())
        expected = self.probes.expected()
        mismatches = [
            name
            for name in self.probes.output_names
            if not np.array_equal(
                np.asarray(result.outputs[name], dtype=np.uint64),
                expected[name],
            )
        ]
        return {
            "passed": not mismatches,
            "engine": session.engine_name,
            "probe_words": self.probes.words,
            "probe_samples": self.probes.samples,
            "outputs_checked": len(self.probes.output_names),
            "mismatches": mismatches,
        }

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    @property
    def graph(self):
        return self.program.graph

    @property
    def config(self):
        return self.program.config

    def summary(self) -> Dict[str, object]:
        """JSON-able description (the ``repro inspect`` payload)."""
        program = self.program
        graph = program.graph
        schedule = program.schedule
        trace = self.trace
        pass_names: List[str] = (
            self.pipeline.split("+") if self.pipeline else []
        )
        return {
            "format_version": SINGLE_PROGRAM_VERSION,
            "producer": self.producer,
            "fingerprint": self.fingerprint or self._refresh_fingerprint(),
            "workload_fingerprint": self.workload_fingerprint,
            "pipeline": self.pipeline,
            "pass_names": pass_names,
            "graph": {
                "name": graph.name,
                "inputs": graph.num_inputs,
                "outputs": graph.num_outputs,
                "gates": graph.num_gates,
            },
            "config": program.config.describe(),
            "schedule": {
                "makespan_macro_cycles": schedule.makespan,
                "total_clock_cycles": schedule.total_clock_cycles,
                "queue_depth": schedule.queue_depth,
                "circulations": schedule.circulations,
                "policy": schedule.policy,
            },
            "program": {
                "compute_instructions": program.num_compute_instructions,
                "queue_entries": program.num_queue_entries,
                "peak_buffer_words": program.peak_buffer_words,
                "buffer_spills": program.buffer_spills,
            },
            "trace": None
            if trace is None
            else {
                "levels": trace.num_levels,
                "slots": trace.num_slots,
                "compute_instructions": trace.compute_instructions,
            },
            "fused": None
            if self.fused is None
            else {
                "levels": self.fused.num_levels,
                "registers": self.fused.num_regs,
                "max_level_width": self.fused.max_level_width,
            },
            "fanout": None
            if self.fanout is None
            else {
                "rows": self.fanout.num_rows,
                "instructions": self.fanout.num_instructions,
                "consumer_edges": len(self.fanout.consumer_gids),
            },
            "probes": None
            if self.probes is None
            else {
                "words": self.probes.words,
                "samples": self.probes.samples,
                "seed": self.probes.seed,
            },
            "metrics": self.metrics,
        }

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"ExecutableArtifact(graph={self.program.graph.name!r}, "
            f"pipeline={self.pipeline!r}, "
            f"trace={'yes' if self.trace is not None else 'no'})"
        )


# The format-v1 reader: the single-program artifact itself.
register_reader(SINGLE_PROGRAM_VERSION, ExecutableArtifact.from_bytes)
