"""Store backends beyond the local directory: in-memory and HTTP.

Two more :class:`~repro.artifact.store.StoreBackend` implementations:

* :class:`MemoryStoreBackend` — an in-process dict-backed store.  The
  test double for every store-wired code path, and the storage tier of a
  store-only fabric node that keeps its blobs in RAM.
* :class:`HTTPStoreBackend` — a client for the ``/v1/store`` endpoints a
  :class:`~repro.serve.fabric.FabricNode` serves.  This is the fleet
  story: one node (or a dedicated store node) owns the warm compile
  store, and every other serve worker's
  :class:`~repro.serve.cache.ProgramCache` resolves artifacts over the
  wire instead of compiling — one compile feeds the whole fleet.

The HTTP backend is deliberately forgiving: a store outage degrades to
cache misses (the caller compiles locally) instead of taking serving
down with it.  Transport failures are counted in ``transport_errors``
and surfaced once as a warning.
"""

from __future__ import annotations

import http.client
import threading
import warnings
from typing import List, Optional, Tuple
from urllib.parse import quote, urlsplit

from .format import ARTIFACT_SUFFIX, ArtifactError, ExecutableArtifact
from .store import StoreBackend, StoreStats

__all__ = ["HTTPStoreBackend", "MemoryStoreBackend"]


class MemoryStoreBackend(StoreBackend):
    """An in-process, thread-safe, dict-backed blob store.

    ``injector`` (a :class:`~repro.serve.faults.FaultInjector`) lets a
    chaos test corrupt chosen reads — the blob *at rest* stays intact,
    only the bytes handed back are flipped, exactly like a bad wire.
    """

    def __init__(self, *, injector=None) -> None:
        self.stats = StoreStats()
        self._blobs: dict = {}
        self._lock = threading.RLock()
        self._injector = injector

    def get_bytes(
        self, key: str, suffix: str = ARTIFACT_SUFFIX
    ) -> Optional[bytes]:
        with self._lock:
            data = self._blobs.get((key, suffix))
            if data is None:
                self.stats.misses += 1
                return None
            self.stats.hits += 1
            self.stats.bytes_read += len(data)
        if self._injector is not None:
            corrupted = self._injector.corrupt(data)
            if corrupted is not None:
                data = corrupted
        return data

    def put_bytes(
        self, key: str, data: bytes, suffix: str = ARTIFACT_SUFFIX
    ) -> str:
        with self._lock:
            self._blobs[(key, suffix)] = bytes(data)
            self.stats.writes += 1
            self.stats.bytes_written += len(data)
        return f"memory://{key}{suffix}"

    def delete(self, key: str, suffix: str = ARTIFACT_SUFFIX) -> bool:
        with self._lock:
            return self._blobs.pop((key, suffix), None) is not None

    def keys(self, suffix: str = ARTIFACT_SUFFIX) -> List[str]:
        with self._lock:
            return sorted(k for k, s in self._blobs if s == suffix)

    def total_bytes(self) -> int:
        with self._lock:
            return sum(len(data) for data in self._blobs.values())

    def clear(self) -> None:
        with self._lock:
            self._blobs.clear()

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"MemoryStoreBackend(entries={len(self._blobs)})"


class HTTPStoreBackend(StoreBackend):
    """A remote blob store spoken over the fabric ``/v1/store`` protocol.

    Args:
        base_url: the store root, e.g. ``http://10.0.0.5:8080/v1/store``
            (a bare ``http://host:port`` is normalized to ``/v1/store``).
        timeout: per-request socket timeout in seconds.
        injector: optional :class:`~repro.serve.faults.FaultInjector`
            corrupting chosen fetches (chaos testing the corrupt-blob
            recovery path below).

    Protocol (implemented by :class:`repro.serve.fabric.FabricNode`):

    * ``GET    {base}/{key}{suffix}`` → 200 blob bytes | 404
    * ``PUT    {base}/{key}{suffix}`` ← blob bytes → 204
    * ``DELETE {base}/{key}{suffix}`` → 204 | 404
    * ``GET    {base}?suffix=.lpa``   → 200 ``{"keys": [...]}``

    One persistent keep-alive connection is shared behind a lock (store
    traffic is boot-time and compile-time, not per-request); a dropped
    connection is re-dialed once per operation.  Network failures count
    as misses on the read path and are swallowed (warned once, counted
    in ``transport_errors``) on the write path, so a store outage never
    takes serving down with it.

    Corrupt fetches recover instead of poisoning: when a fetched
    ``.lpa`` fails to decode, the connection is torn down (the usual
    culprit is a half-read body or wire damage, not bad bytes at rest)
    and the blob re-fetched exactly once.  Still corrupt → the *peer's*
    copy is bad: the key goes into a local quarantine set — subsequent
    ``get()`` calls miss fast without re-downloading — and, crucially,
    the peer's blob is **never deleted**: this client has no authority
    to destroy a fleet-shared artifact on the evidence of its own two
    reads.  ``corrupt_fetches`` counts every bad decode.
    """

    def __init__(
        self, base_url: str, *, timeout: float = 10.0, injector=None
    ) -> None:
        parts = urlsplit(base_url)
        if parts.scheme != "http":
            raise ValueError(
                f"HTTPStoreBackend speaks plain http, got {base_url!r}"
            )
        if parts.hostname is None:
            raise ValueError(f"no host in store url {base_url!r}")
        self.host = parts.hostname
        self.port = parts.port if parts.port is not None else 80
        self.base_path = parts.path.rstrip("/") or "/v1/store"
        self.timeout = timeout
        self.stats = StoreStats()
        self.transport_errors = 0
        self.corrupt_fetches = 0
        self._warned = False
        self._conn: Optional[http.client.HTTPConnection] = None
        self._lock = threading.RLock()
        self._injector = injector
        self._quarantined: set = set()

    # ------------------------------------------------------------------
    def _blob_path(self, key: str, suffix: str) -> str:
        return f"{self.base_path}/{quote(key, safe='')}{suffix}"

    def _request(
        self, method: str, path: str, body: Optional[bytes] = None
    ) -> Tuple[int, bytes]:
        """One round trip on the shared connection (re-dialed once)."""
        with self._lock:
            for attempt in (0, 1):
                if self._conn is None:
                    self._conn = http.client.HTTPConnection(
                        self.host, self.port, timeout=self.timeout
                    )
                try:
                    self._conn.request(
                        method,
                        path,
                        body=body,
                        headers={"Content-Type": "application/octet-stream"}
                        if body is not None
                        else {},
                    )
                    response = self._conn.getresponse()
                    data = response.read()
                    return response.status, data
                except (http.client.HTTPException, OSError):
                    # A stale keep-alive connection is expected after the
                    # server idles us out; one fresh dial per op is not.
                    try:
                        self._conn.close()
                    except Exception:  # pragma: no cover - best effort
                        pass
                    self._conn = None
                    if attempt:
                        raise
        raise OSError("unreachable")  # pragma: no cover - loop returns

    def _transport_failure(self, op: str) -> None:
        self.transport_errors += 1
        if not self._warned:
            self._warned = True
            warnings.warn(
                f"artifact store at http://{self.host}:{self.port}"
                f"{self.base_path} is unreachable ({op}); continuing "
                "without the remote tier",
                RuntimeWarning,
                stacklevel=3,
            )

    # ------------------------------------------------------------------
    def get_bytes(
        self, key: str, suffix: str = ARTIFACT_SUFFIX
    ) -> Optional[bytes]:
        try:
            status, data = self._request(
                "GET", self._blob_path(key, suffix)
            )
        except (http.client.HTTPException, OSError):
            self._transport_failure("get")
            self.stats.misses += 1
            return None
        if status != 200:
            self.stats.misses += 1
            return None
        self.stats.hits += 1
        self.stats.bytes_read += len(data)
        if self._injector is not None:
            corrupted = self._injector.corrupt(data)
            if corrupted is not None:
                data = corrupted
        return data

    # -- executable tier: corrupt-fetch recovery ------------------------
    def get(self, key: str) -> Optional[ExecutableArtifact]:
        """Load one executable; corrupt fetches are retried once on a
        fresh connection, then the key is quarantined locally (see the
        class docstring — the remote blob is never deleted)."""
        if key in self._quarantined:
            self.stats.misses += 1
            return None
        for fresh_dial in (False, True):
            if fresh_dial:
                # Wire damage or a stale half-read body, not
                # necessarily bad bytes at rest: refetch once clean.
                self.close()
            data = self.get_bytes(key)
            if data is None:
                return None
            try:
                return ExecutableArtifact.from_bytes(data)
            except ArtifactError:
                self.stats.corrupt += 1
                self.corrupt_fetches += 1
        # Two independent reads both corrupt: the peer's copy is bad.
        self._quarantined.add(key)
        return None

    def _discard_corrupt(self, key: str) -> None:
        # Never DELETE a fleet-shared blob from the client side; just
        # stop asking for it.
        self._quarantined.add(key)

    def put_bytes(
        self, key: str, data: bytes, suffix: str = ARTIFACT_SUFFIX
    ) -> str:
        path = self._blob_path(key, suffix)
        try:
            status, _ = self._request("PUT", path, body=bytes(data))
        except (http.client.HTTPException, OSError):
            self._transport_failure("put")
            return f"http://{self.host}:{self.port}{path}"
        if status in (200, 201, 204):
            self.stats.writes += 1
            self.stats.bytes_written += len(data)
        else:
            self._transport_failure(f"put -> {status}")
        return f"http://{self.host}:{self.port}{path}"

    def delete(self, key: str, suffix: str = ARTIFACT_SUFFIX) -> bool:
        try:
            status, _ = self._request(
                "DELETE", self._blob_path(key, suffix)
            )
        except (http.client.HTTPException, OSError):
            self._transport_failure("delete")
            return False
        return status in (200, 204)

    def keys(self, suffix: str = ARTIFACT_SUFFIX) -> List[str]:
        import json

        try:
            status, data = self._request(
                "GET", f"{self.base_path}?suffix={quote(suffix)}"
            )
        except (http.client.HTTPException, OSError):
            self._transport_failure("list")
            return []
        if status != 200:
            return []
        try:
            keys = json.loads(data.decode("utf-8")).get("keys", [])
        except (ValueError, AttributeError):
            return []
        return sorted(str(key) for key in keys)

    def close(self) -> None:
        with self._lock:
            if self._conn is not None:
                try:
                    self._conn.close()
                except Exception:  # pragma: no cover - best effort
                    pass
                self._conn = None

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"HTTPStoreBackend(http://{self.host}:{self.port}"
            f"{self.base_path})"
        )
