"""The on-disk artifact store: content-addressed executable caching.

An :class:`ArtifactStore` is a directory of immutable blobs keyed by hex
content fingerprints — the disk tier behind
:class:`~repro.serve.cache.ProgramCache` (whole executables, ``.lpa``)
and :class:`~repro.compiler.cache.PassCache` (per-pass snapshots).  A
warm store survives process exit, so a cold serve restart resolves its
workloads entirely from disk and performs zero compile passes.

Writes are atomic (temp file + ``os.replace``), reads are verified
(corrupt or truncated blobs count as misses and are quarantined out of
the way rather than crashing the caller), and keys are namespaced by the
caller (``prog-…``, ``pass-…``) so the one store serves every tier.
"""

from __future__ import annotations

import os
import re
import secrets
import threading
from dataclasses import dataclass, field
from typing import Dict, List, Optional

from .format import ARTIFACT_SUFFIX, ArtifactError, ExecutableArtifact

__all__ = ["ArtifactStore", "StoreStats", "store_key"]

_KEY_RE = re.compile(r"^[A-Za-z0-9][A-Za-z0-9._-]{0,200}$")


def _atomic_write(path: str, data: bytes) -> None:
    """Write ``data`` to ``path`` via a unique temp file + rename.

    The temp name carries pid, thread id, and random bits: concurrent
    writers of one key (the program cache explicitly allows racing
    misses) must never share a temp path, or one writer's rename could
    publish another's half-written file.
    """
    tmp = (
        f"{path}.tmp.{os.getpid()}.{threading.get_ident()}."
        f"{secrets.token_hex(4)}"
    )
    try:
        with open(tmp, "wb") as handle:
            handle.write(data)
        os.replace(tmp, path)
    except BaseException:
        try:
            os.unlink(tmp)
        except OSError:
            pass
        raise


def store_key(*parts: object) -> str:
    """Derive a stable hex store key from identity parts."""
    import hashlib

    digest = hashlib.sha256()
    for part in parts:
        digest.update(repr(part).encode("utf-8"))
        digest.update(b"\x1f")
    return digest.hexdigest()


@dataclass
class StoreStats:
    """Lookup/write counters of one :class:`ArtifactStore`."""

    hits: int = 0
    misses: int = 0
    writes: int = 0
    corrupt: int = 0
    bytes_written: int = 0
    bytes_read: int = 0

    def as_dict(self) -> Dict[str, int]:
        return dict(
            hits=self.hits,
            misses=self.misses,
            writes=self.writes,
            corrupt=self.corrupt,
            bytes_written=self.bytes_written,
            bytes_read=self.bytes_read,
        )


@dataclass
class ArtifactStore:
    """A directory of content-addressed artifact blobs.

    Args:
        root: store directory (created on first write).
    """

    root: str
    stats: StoreStats = field(default_factory=StoreStats)

    # ------------------------------------------------------------------
    def path_for(self, key: str, suffix: str = ARTIFACT_SUFFIX) -> str:
        """Blob path for ``key`` (two-level fan-out by key prefix)."""
        if not _KEY_RE.match(key):
            raise ValueError(f"invalid store key {key!r}")
        shard = key[-2:] if len(key) >= 2 else "00"
        return os.path.join(self.root, shard, key + suffix)

    # -- raw blob tier --------------------------------------------------
    def put_bytes(
        self, key: str, data: bytes, suffix: str = ARTIFACT_SUFFIX
    ) -> str:
        """Atomically write one blob; returns the blob path."""
        path = self.path_for(key, suffix)
        os.makedirs(os.path.dirname(path), exist_ok=True)
        _atomic_write(path, data)
        self.stats.writes += 1
        self.stats.bytes_written += len(data)
        return path

    def get_bytes(
        self, key: str, suffix: str = ARTIFACT_SUFFIX
    ) -> Optional[bytes]:
        """One blob's bytes, or None (counted as a miss) when absent."""
        path = self.path_for(key, suffix)
        try:
            with open(path, "rb") as handle:
                data = handle.read()
        except OSError:
            self.stats.misses += 1
            return None
        self.stats.hits += 1
        self.stats.bytes_read += len(data)
        return data

    def contains(self, key: str, suffix: str = ARTIFACT_SUFFIX) -> bool:
        return os.path.exists(self.path_for(key, suffix))

    # -- executable tier ------------------------------------------------
    def put(self, key: str, artifact: ExecutableArtifact) -> str:
        """Store one executable artifact under ``key``."""
        return self.put_bytes(key, artifact.to_bytes())

    def get(self, key: str) -> Optional[ExecutableArtifact]:
        """Load one executable, or None on a miss *or* a corrupt blob
        (quarantined aside so the slot can be rewritten cleanly)."""
        data = self.get_bytes(key)
        if data is None:
            return None
        try:
            return ExecutableArtifact.from_bytes(data)
        except ArtifactError:
            self.stats.corrupt += 1
            self._quarantine(self.path_for(key))
            return None

    def _quarantine(self, path: str) -> None:
        try:
            os.replace(path, path + ".corrupt")
        except OSError:  # pragma: no cover - best effort
            pass

    # ------------------------------------------------------------------
    def keys(self, suffix: str = ARTIFACT_SUFFIX) -> List[str]:
        """Keys of every stored blob with ``suffix``, sorted."""
        found: List[str] = []
        if not os.path.isdir(self.root):
            return found
        for shard in os.listdir(self.root):
            shard_dir = os.path.join(self.root, shard)
            if not os.path.isdir(shard_dir):
                continue
            for name in os.listdir(shard_dir):
                if name.endswith(suffix):
                    found.append(name[: -len(suffix)])
        return sorted(found)

    def __len__(self) -> int:
        return len(self.keys())

    def clear(self) -> None:
        """Delete every stored blob (the directories stay)."""
        if not os.path.isdir(self.root):
            return
        for shard in os.listdir(self.root):
            shard_dir = os.path.join(self.root, shard)
            if not os.path.isdir(shard_dir):
                continue
            for name in os.listdir(shard_dir):
                try:
                    os.unlink(os.path.join(shard_dir, name))
                except OSError:  # pragma: no cover - racing cleanup
                    pass

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"ArtifactStore(root={self.root!r}, entries={len(self)})"
