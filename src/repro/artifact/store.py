"""Content-addressed artifact storage: the backend protocol + disk store.

A :class:`StoreBackend` is the pluggable blob tier every cache layer
talks to: content-addressed bytes behind get/put/list/delete, plus a
concrete executable tier (:meth:`StoreBackend.get` /
:meth:`StoreBackend.put`) that decodes/encodes
:class:`~repro.artifact.format.ExecutableArtifact` blobs with corruption
handling.  :class:`ArtifactStore` (alias :data:`DirectoryBackend`) is the
on-disk implementation — the disk tier behind
:class:`~repro.serve.cache.ProgramCache` (whole executables, ``.lpa``)
and :class:`~repro.compiler.cache.PassCache` (per-pass snapshots).  A
warm store survives process exit, so a cold serve restart resolves its
workloads entirely from disk and performs zero compile passes.  The
sibling :mod:`repro.artifact.backends` module adds an in-process
:class:`~repro.artifact.backends.MemoryStoreBackend` and a fleet-facing
:class:`~repro.artifact.backends.HTTPStoreBackend`, so a fleet of serve
workers can share one warm compile store over the wire.

Directory-store writes are atomic (temp file + ``os.replace``), reads
are verified (corrupt or truncated blobs count as misses and are
quarantined out of the way rather than crashing the caller), and keys
are namespaced by the caller (``prog-…``, ``pass-…``) so the one store
serves every tier.
"""

from __future__ import annotations

import abc
import os
import re
import secrets
import threading
import time
from dataclasses import dataclass, field
from typing import Dict, List, Optional

from .format import ARTIFACT_SUFFIX, ArtifactError, ExecutableArtifact

__all__ = [
    "ArtifactStore",
    "DirectoryBackend",
    "StoreBackend",
    "StoreEntry",
    "StoreStats",
    "store_key",
]

_KEY_RE = re.compile(r"^[A-Za-z0-9][A-Za-z0-9._-]{0,200}$")

#: age after which an orphaned `_atomic_write` temp file (its writer
#: killed before the rename) is reclaimed by prune().
_TMP_GRACE_SECONDS = 3600.0


def _atomic_write(path: str, data: bytes) -> None:
    """Write ``data`` to ``path`` via a unique temp file + rename.

    The temp name carries pid, thread id, and random bits: concurrent
    writers of one key (the program cache explicitly allows racing
    misses) must never share a temp path, or one writer's rename could
    publish another's half-written file.
    """
    tmp = (
        f"{path}.tmp.{os.getpid()}.{threading.get_ident()}."
        f"{secrets.token_hex(4)}"
    )
    try:
        with open(tmp, "wb") as handle:
            handle.write(data)
        os.replace(tmp, path)
    except BaseException:
        try:
            os.unlink(tmp)
        except OSError:
            pass
        raise


def store_key(*parts: object) -> str:
    """Derive a stable hex store key from identity parts."""
    import hashlib

    digest = hashlib.sha256()
    for part in parts:
        digest.update(repr(part).encode("utf-8"))
        digest.update(b"\x1f")
    return digest.hexdigest()


@dataclass
class StoreStats:
    """Lookup/write counters of one :class:`ArtifactStore`."""

    hits: int = 0
    misses: int = 0
    writes: int = 0
    corrupt: int = 0
    bytes_written: int = 0
    bytes_read: int = 0
    evictions: int = 0
    bytes_evicted: int = 0

    def as_dict(self) -> Dict[str, int]:
        return dict(
            hits=self.hits,
            misses=self.misses,
            writes=self.writes,
            corrupt=self.corrupt,
            bytes_written=self.bytes_written,
            bytes_read=self.bytes_read,
            evictions=self.evictions,
            bytes_evicted=self.bytes_evicted,
        )


@dataclass(frozen=True)
class StoreEntry:
    """One stored blob: its key, kind, size, and last-touch time."""

    key: str
    suffix: str
    path: str
    size: int
    mtime: float

    def as_dict(self) -> Dict[str, object]:
        return dict(
            key=self.key,
            suffix=self.suffix,
            path=self.path,
            size=self.size,
            mtime=self.mtime,
        )


class StoreBackend(abc.ABC):
    """The pluggable content-addressed blob store behind every cache tier.

    A backend stores immutable bytes under caller-chosen keys (hex
    content fingerprints by convention) with a dotted ``suffix``
    namespacing the blob kind (``.lpa`` executables, ``.snap`` pass
    snapshots).  Implementations provide the four raw-bytes primitives —
    :meth:`get_bytes`, :meth:`put_bytes`, :meth:`delete`, :meth:`keys` —
    and inherit the executable tier (:meth:`get`/:meth:`put`, decoding
    and encoding :class:`ExecutableArtifact` blobs with corrupt blobs
    counted and discarded instead of crashing the caller).

    Every implementation keeps a :class:`StoreStats` in ``stats``.
    Backends must tolerate concurrent readers and writers of one key:
    the program cache explicitly allows racing misses.
    """

    stats: StoreStats

    # -- raw blob tier (implementations) --------------------------------
    @abc.abstractmethod
    def get_bytes(
        self, key: str, suffix: str = ARTIFACT_SUFFIX
    ) -> Optional[bytes]:
        """One blob's bytes, or None (counted as a miss) when absent."""

    @abc.abstractmethod
    def put_bytes(
        self, key: str, data: bytes, suffix: str = ARTIFACT_SUFFIX
    ) -> str:
        """Store one blob; returns a backend-specific locator string."""

    @abc.abstractmethod
    def delete(self, key: str, suffix: str = ARTIFACT_SUFFIX) -> bool:
        """Remove one blob; True when something was deleted."""

    @abc.abstractmethod
    def keys(self, suffix: str = ARTIFACT_SUFFIX) -> List[str]:
        """Keys of every stored blob with ``suffix``, sorted."""

    # -- shared surface --------------------------------------------------
    def contains(self, key: str, suffix: str = ARTIFACT_SUFFIX) -> bool:
        return key in self.keys(suffix)

    def __len__(self) -> int:
        return len(self.keys())

    # -- executable tier -------------------------------------------------
    def put(self, key: str, artifact: ExecutableArtifact) -> str:
        """Store one executable artifact under ``key``."""
        return self.put_bytes(key, artifact.to_bytes())

    def get(self, key: str) -> Optional[ExecutableArtifact]:
        """Load one executable, or None on a miss *or* a corrupt blob
        (discarded — quarantined by backends that support it — so the
        slot can be rewritten cleanly)."""
        data = self.get_bytes(key)
        if data is None:
            return None
        try:
            return ExecutableArtifact.from_bytes(data)
        except ArtifactError:
            self.stats.corrupt += 1
            self._discard_corrupt(key)
            return None

    def _discard_corrupt(self, key: str) -> None:
        """Drop a blob that failed decoding (backends may quarantine)."""
        try:
            self.delete(key)
        except Exception:  # pragma: no cover - best effort
            pass


@dataclass
class ArtifactStore(StoreBackend):
    """A directory of content-addressed artifact blobs.

    Args:
        root: store directory (created on first write).
        max_bytes: optional size budget.  When set, every write prunes
            least-recently-used blobs — LRU order is file mtime, which
            reads refresh on every hit — until the store fits the budget
            again, so a long-lived serve fleet's store stays bounded no
            matter how many workloads pass through it.
    """

    root: str
    stats: StoreStats = field(default_factory=StoreStats)
    max_bytes: Optional[int] = None
    #: lazily-maintained byte total so budgeted writes don't re-walk the
    #: store directory; prune() refreshes it exactly.
    _approx_bytes: Optional[int] = field(
        default=None, init=False, repr=False, compare=False
    )

    # ------------------------------------------------------------------
    def path_for(self, key: str, suffix: str = ARTIFACT_SUFFIX) -> str:
        """Blob path for ``key`` (two-level fan-out by key prefix)."""
        if not _KEY_RE.match(key):
            raise ValueError(f"invalid store key {key!r}")
        shard = key[-2:] if len(key) >= 2 else "00"
        return os.path.join(self.root, shard, key + suffix)

    # -- raw blob tier --------------------------------------------------
    def put_bytes(
        self, key: str, data: bytes, suffix: str = ARTIFACT_SUFFIX
    ) -> str:
        """Atomically write one blob; returns the blob path.  With a
        ``max_bytes`` budget, stale blobs are pruned afterwards."""
        path = self.path_for(key, suffix)
        os.makedirs(os.path.dirname(path), exist_ok=True)
        _atomic_write(path, data)
        self.stats.writes += 1
        self.stats.bytes_written += len(data)
        if self.max_bytes is not None:
            # Track the total incrementally (overwrites drift it upward,
            # i.e. conservatively) and only walk the store when the
            # budget looks exceeded; prune() re-measures exactly.
            if self._approx_bytes is None:
                self._approx_bytes = self.total_bytes()
            else:
                self._approx_bytes += len(data)
            if self._approx_bytes > self.max_bytes:
                self.prune(keep=path)
        return path

    def get_bytes(
        self, key: str, suffix: str = ARTIFACT_SUFFIX
    ) -> Optional[bytes]:
        """One blob's bytes, or None (counted as a miss) when absent."""
        path = self.path_for(key, suffix)
        try:
            with open(path, "rb") as handle:
                data = handle.read()
        except OSError:
            self.stats.misses += 1
            return None
        self.stats.hits += 1
        self.stats.bytes_read += len(data)
        try:
            # Touch on read: eviction orders by mtime, so a hit must
            # refresh it or the policy degrades to least-recently-written
            # and evicts hot read-only blobs first.
            os.utime(path)
        except OSError:  # pragma: no cover - racing eviction
            pass
        return data

    def contains(self, key: str, suffix: str = ARTIFACT_SUFFIX) -> bool:
        return os.path.exists(self.path_for(key, suffix))

    def delete(self, key: str, suffix: str = ARTIFACT_SUFFIX) -> bool:
        """Remove one blob; True when something was deleted."""
        try:
            os.unlink(self.path_for(key, suffix))
        except OSError:
            return False
        return True

    # -- executable tier ------------------------------------------------
    def _discard_corrupt(self, key: str) -> None:
        # Quarantine instead of deleting: the bad bytes stay on disk for
        # post-mortems while the slot itself can be rewritten cleanly.
        self._quarantine(self.path_for(key))

    def _quarantine(self, path: str) -> None:
        try:
            os.replace(path, path + ".corrupt")
        except OSError:  # pragma: no cover - best effort
            pass

    # -- size accounting & eviction -------------------------------------
    def entries(self) -> List[StoreEntry]:
        """Every stored blob (all suffixes, including quarantined ones),
        oldest mtime first.  In-flight ``_atomic_write`` temp files are
        NOT entries: concurrent writers of one key are explicitly
        allowed, and pruning a temp file out from under its writer would
        crash the writer's rename."""
        found: List[StoreEntry] = []
        if not os.path.isdir(self.root):
            return found
        for shard in sorted(os.listdir(self.root)):
            shard_dir = os.path.join(self.root, shard)
            if not os.path.isdir(shard_dir):
                continue
            for name in sorted(os.listdir(shard_dir)):
                if ".tmp." in name:
                    continue  # another writer's in-flight temp file
                path = os.path.join(shard_dir, name)
                try:
                    stat = os.stat(path)
                except OSError:  # racing eviction/cleanup
                    continue
                # Keys may themselves contain dots; the suffix is the
                # final dotted component (".lpa", ".snap", ".corrupt").
                stem, dot, ext = name.rpartition(".")
                found.append(
                    StoreEntry(
                        key=stem if dot else name,
                        suffix=dot + ext if dot else "",
                        path=path,
                        size=int(stat.st_size),
                        mtime=stat.st_mtime,
                    )
                )
        found.sort(key=lambda entry: (entry.mtime, entry.path))
        return found

    def total_bytes(self) -> int:
        """Bytes currently occupied by every stored blob."""
        return sum(entry.size for entry in self.entries())

    def prune(
        self,
        max_bytes: Optional[int] = None,
        *,
        keep: Optional[str] = None,
    ) -> List[StoreEntry]:
        """Evict least-recently-touched blobs until the store fits
        ``max_bytes`` (the store's own budget when omitted); returns the
        evicted entries.  A budget of ``0`` empties the store.

        ``keep`` names one blob path exempt from eviction — the write
        path passes the blob it just published, so a single artifact
        larger than the whole budget evicts everything *else* but never
        its own fresh bytes (the store then simply sits over budget).
        """
        budget = max_bytes if max_bytes is not None else self.max_bytes
        if budget is None:
            return []
        self._sweep_stale_tmp()
        entries = self.entries()
        total = sum(entry.size for entry in entries)
        evicted: List[StoreEntry] = []
        for entry in entries:  # oldest first
            if total <= budget:
                break
            if entry.path == keep:
                continue
            try:
                os.unlink(entry.path)
            except OSError:  # pragma: no cover - racing cleanup
                continue
            total -= entry.size
            evicted.append(entry)
            self.stats.evictions += 1
            self.stats.bytes_evicted += entry.size
        self._approx_bytes = total
        return evicted

    def _sweep_stale_tmp(self) -> None:
        """Delete `_atomic_write` temp files whose writer died long ago
        (SIGKILL/power loss before the rename): entries() hides live
        temp files from eviction, so without this sweep orphans would
        occupy untracked bytes forever."""
        if not os.path.isdir(self.root):
            return
        cutoff = time.time() - _TMP_GRACE_SECONDS
        for shard in os.listdir(self.root):
            shard_dir = os.path.join(self.root, shard)
            if not os.path.isdir(shard_dir):
                continue
            for name in os.listdir(shard_dir):
                if ".tmp." not in name:
                    continue
                path = os.path.join(shard_dir, name)
                try:
                    if os.stat(path).st_mtime < cutoff:
                        os.unlink(path)
                except OSError:  # pragma: no cover - racing writer
                    continue

    # ------------------------------------------------------------------
    def keys(self, suffix: str = ARTIFACT_SUFFIX) -> List[str]:
        """Keys of every stored blob with ``suffix``, sorted."""
        found: List[str] = []
        if not os.path.isdir(self.root):
            return found
        for shard in os.listdir(self.root):
            shard_dir = os.path.join(self.root, shard)
            if not os.path.isdir(shard_dir):
                continue
            for name in os.listdir(shard_dir):
                if name.endswith(suffix):
                    found.append(name[: -len(suffix)])
        return sorted(found)

    def __len__(self) -> int:
        return len(self.keys())

    def clear(self) -> None:
        """Delete every stored blob (the directories stay)."""
        self._approx_bytes = None
        if not os.path.isdir(self.root):
            return
        for shard in os.listdir(self.root):
            shard_dir = os.path.join(self.root, shard)
            if not os.path.isdir(shard_dir):
                continue
            for name in os.listdir(shard_dir):
                try:
                    os.unlink(os.path.join(shard_dir, name))
                except OSError:  # pragma: no cover - racing cleanup
                    pass

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"ArtifactStore(root={self.root!r}, entries={len(self)})"


#: The stable backend-protocol name of the on-disk store: construct a
#: ``DirectoryBackend(root)`` wherever a :class:`StoreBackend` is wanted
#: and the blobs should live on the local filesystem.
DirectoryBackend = ArtifactStore
