"""Format v2: multi-program ``.lpa`` bundles with a dataflow manifest.

The paper evaluates whole models (VGG16, LeNet-5, MLP-Mixer) but a
single :class:`~repro.artifact.format.ExecutableArtifact` carries one
FFCL block.  An :class:`ArtifactBundle` packages *all* partitions of a
model into one deployable container:

* N member programs, each encoded as its own complete format-v1
  single-program container (the existing per-program encoder, verbatim —
  so member bytes round-trip bit-identically and optional fused/fanout/
  probe sections ride along per member),
* a dataflow manifest: the linear stage order plus per-stage PO→PI
  wiring in the same name-map form :func:`repro.netlist.compose.
  compose_serial` takes — stage ``i`` PIs are either wired from stage
  ``i-1`` POs or fed externally from the request,
* optional bundle-level probe vectors captured against the *composed*
  functional reference, so ``repro inspect --verify`` replays the whole
  chain end-to-end on any box.

The container itself is the same deterministic zero-pickle ZIP as v1
(JSON header + ``.npy`` arrays; member containers are embedded as uint8
arrays), stamped ``format_version: 2`` and dispatched through the
reader registry in :mod:`repro.artifact.format`.

Build one with :func:`bundle_model` (compiles every stage through the
shared pass manager) or :meth:`ArtifactBundle.from_members` (packages
already-compiled artifacts); execute it with
:class:`repro.pipeline.PipelineExecutor` or serve it directly —
``repro serve --artifact model.lpa``.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple, Union

import numpy as np

from .codec import (
    ArtifactDecodeError,
    content_fingerprint,
    decode_probes,
    encode_probes,
    pack_container,
    unpack_container,
)
from .format import (
    BUNDLE_FORMAT_VERSION,
    FORMAT_MAGIC,
    ArtifactError,
    ExecutableArtifact,
    ProbeSet,
    _version_error,
    reader_versions,
    register_reader,
)

__all__ = ["ArtifactBundle", "StageLink", "bundle_model"]


@dataclass(frozen=True)
class StageLink:
    """One stage's entry in the dataflow manifest."""

    #: stage display name (the member graph's name).
    name: str
    #: ``(pi, po)`` pairs wiring this stage's PIs from the *previous*
    #: stage's POs, sorted by PI name (empty for stage 0).
    wiring: Tuple[Tuple[str, str], ...]
    #: PIs fed externally from the request, in graph PI order.
    external: Tuple[str, ...]


def _stage_pis(graph) -> List[str]:
    return [graph.input_name(nid) for nid in graph.inputs]


def _stage_pos(graph) -> List[str]:
    return [name for name, _ in graph.outputs]


def _derive_links(
    members: Sequence[ExecutableArtifact],
    wirings: Optional[Sequence[Optional[Dict[str, str]]]],
) -> Tuple[StageLink, ...]:
    """Resolve the per-stage wiring maps into a validated manifest.

    ``wirings[i-1]`` (when given) maps stage ``i`` PI names to stage
    ``i-1`` PO names; ``None`` entries (and an omitted ``wirings``) use
    the :func:`~repro.netlist.compose.compose_serial` identity-by-name
    default.  Unwired PIs become external bundle inputs.
    """
    if wirings is not None and len(wirings) != len(members) - 1:
        raise ArtifactError(
            f"wirings must have one entry per stage transition: got "
            f"{len(wirings)} for {len(members)} stages"
        )
    links: List[StageLink] = []
    prev_pos: set = set()
    for i, member in enumerate(members):
        graph = member.graph
        pi_names = _stage_pis(graph)
        if i == 0:
            links.append(
                StageLink(
                    name=graph.name, wiring=(), external=tuple(pi_names)
                )
            )
            prev_pos = set(_stage_pos(graph))
            continue
        given = wirings[i - 1] if wirings is not None else None
        if given is None:
            wmap = {pi: pi for pi in pi_names if pi in prev_pos}
        else:
            wmap = {str(pi): str(po) for pi, po in given.items()}
            unknown = sorted(set(wmap) - set(pi_names))
            if unknown:
                raise ArtifactError(
                    f"stage {i} ({graph.name!r}) wiring names unknown "
                    f"PIs {unknown}"
                )
            dangling = sorted(
                {po for po in wmap.values() if po not in prev_pos}
            )
            if dangling:
                raise ArtifactError(
                    f"stage {i} ({graph.name!r}) wiring references "
                    f"previous-stage POs that do not exist: {dangling}"
                )
            shadow = sorted(
                pi for pi in pi_names
                if pi not in wmap and pi in prev_pos
            )
            if shadow:
                raise ArtifactError(
                    f"stage {i} ({graph.name!r}) leaves PIs {shadow} "
                    f"external although the previous stage drives POs "
                    f"of the same name; wire or rename them"
                )
        links.append(
            StageLink(
                name=graph.name,
                wiring=tuple(sorted(wmap.items())),
                external=tuple(
                    pi for pi in pi_names if pi not in wmap
                ),
            )
        )
        prev_pos = set(_stage_pos(graph))
    return tuple(links)


def _ordered_external_inputs(links: Sequence[StageLink]) -> Tuple[str, ...]:
    """External PI names across all stages, first occurrence first.
    A name appearing in several stages is one request signal (the
    ``merge_parallel`` shared-input convention)."""
    seen: Dict[str, None] = {}
    for link in links:
        for name in link.external:
            seen.setdefault(name, None)
    return tuple(seen)


@dataclass
class ArtifactBundle:
    """N compiled programs plus their dataflow manifest, in one ``.lpa``."""

    members: Tuple[ExecutableArtifact, ...]
    links: Tuple[StageLink, ...]
    name: str = "bundle"
    #: bundle-level probe vectors against the *composed* reference
    #: (replayed end-to-end through the chain by ``inspect --verify``).
    probes: Optional[ProbeSet] = None
    producer: str = ""
    fingerprint: str = field(default="", compare=False)

    def __post_init__(self) -> None:
        if not self.members:
            raise ArtifactError("a bundle needs at least one member program")
        if len(self.members) != len(self.links):
            raise ArtifactError(
                "manifest/member mismatch: "
                f"{len(self.links)} links for {len(self.members)} programs"
            )
        self._encoded: Optional[bytes] = None
        self._reference: Optional[object] = None

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------
    @classmethod
    def from_members(
        cls,
        members: Sequence[ExecutableArtifact],
        *,
        wirings: Optional[Sequence[Optional[Dict[str, str]]]] = None,
        name: str = "bundle",
        probe_words: int = 0,
        probe_seed: int = 0,
    ) -> "ArtifactBundle":
        """Package already-compiled member artifacts into a bundle.

        ``wirings`` has one optional ``{pi: po}`` map per stage
        transition (``compose_serial`` semantics; ``None`` = identity
        by name).  ``probe_words=N`` embeds N packed stimulus words plus
        the composed functional reference's expected outputs.
        """
        from .. import __version__

        members = tuple(members)
        links = _derive_links(members, wirings)
        bundle = cls(
            members=members,
            links=links,
            name=name,
            producer=f"repro {__version__}",
        )
        if probe_words:
            bundle.probes = ProbeSet.generate(
                bundle.reference_graph(), words=probe_words, seed=probe_seed
            )
        bundle.to_bytes()  # compute the fingerprint, warm the cache
        return bundle

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    @property
    def num_stages(self) -> int:
        return len(self.members)

    def __len__(self) -> int:
        return len(self.members)

    @property
    def external_inputs(self) -> Tuple[str, ...]:
        """Request-fed PI names across all stages (dedup, stable order)."""
        return _ordered_external_inputs(self.links)

    @property
    def outputs(self) -> Tuple[str, ...]:
        """The bundle's PO names: the final stage's outputs."""
        return tuple(_stage_pos(self.members[-1].graph))

    def member(
        self, key: Union[int, str] = 0
    ) -> ExecutableArtifact:
        """One member program, by stage index or stage name."""
        if isinstance(key, str):
            for link, member in zip(self.links, self.members):
                if link.name == key:
                    return member
            raise KeyError(
                f"no stage named {key!r} "
                f"(stages: {[link.name for link in self.links]})"
            )
        return self.members[key]

    def reference_graph(self):
        """The whole-model functional reference: every stage graph
        stitched through :func:`~repro.netlist.compose.compose_serial`
        with exactly the manifest's wiring (cached)."""
        if self._reference is None:
            from ..netlist.compose import compose_serial

            graph = self.members[0].graph
            for member, link in zip(self.members[1:], self.links[1:]):
                graph = compose_serial(
                    graph, member.graph, wiring=dict(link.wiring)
                )
            self._reference = graph
        return self._reference

    def summary(self) -> Dict[str, object]:
        """JSON-able description (the ``repro inspect`` payload)."""
        stages = []
        for member, link in zip(self.members, self.links):
            member_summary = member.summary()
            stages.append(
                {
                    "name": link.name,
                    "fingerprint": member.fingerprint,
                    "workload_fingerprint": member.workload_fingerprint,
                    "pipeline": member.pipeline,
                    "graph": member_summary["graph"],
                    "program": member_summary["program"],
                    "trace": member_summary["trace"],
                    "fused": member_summary["fused"],
                    "wired": {pi: po for pi, po in link.wiring},
                    "external": list(link.external),
                }
            )
        return {
            "format_version": BUNDLE_FORMAT_VERSION,
            "kind": "bundle",
            "name": self.name,
            "producer": self.producer,
            "fingerprint": self.fingerprint or self._refresh_fingerprint(),
            "stages": stages,
            "external_inputs": list(self.external_inputs),
            "outputs": list(self.outputs),
            "probes": None
            if self.probes is None
            else {
                "words": self.probes.words,
                "samples": self.probes.samples,
                "seed": self.probes.seed,
            },
        }

    # ------------------------------------------------------------------
    # Serialization
    # ------------------------------------------------------------------
    def _encode(self):
        arrays: Dict[str, np.ndarray] = {}
        stage_entries = []
        for i, (member, link) in enumerate(zip(self.members, self.links)):
            data = member.to_bytes()
            key = f"stage_{i:03d}"
            arrays[key] = np.frombuffer(data, dtype=np.uint8)
            stage_entries.append(
                {
                    "name": link.name,
                    "array": key,
                    "bytes": len(data),
                    "fingerprint": member.fingerprint,
                    "workload_fingerprint": member.workload_fingerprint,
                    "pipeline": member.pipeline,
                    "wiring": {pi: po for pi, po in link.wiring},
                    "external": list(link.external),
                }
            )
        header = {
            "magic": FORMAT_MAGIC,
            "format_version": BUNDLE_FORMAT_VERSION,
            "kind": "bundle",
            "name": self.name,
            "producer": self.producer,
            "bundle": {
                "stages": stage_entries,
                "external_inputs": list(self.external_inputs),
                "outputs": list(self.outputs),
            },
        }
        if self.probes is not None:
            probe_header, probe_arrays = encode_probes(self.probes)
            header["probes"] = probe_header
            arrays.update(probe_arrays)
        else:
            header["probes"] = None
        return header, arrays

    def _refresh_fingerprint(self) -> str:
        header, arrays = self._encode()
        self.fingerprint = content_fingerprint(header, arrays)
        return self.fingerprint

    def to_bytes(self) -> bytes:
        """Deterministic container bytes (memoized)."""
        if self._encoded is not None:
            return self._encoded
        header, arrays = self._encode()
        self.fingerprint = content_fingerprint(header, arrays)
        header["fingerprint"] = self.fingerprint
        self._encoded = pack_container(header, arrays)
        return self._encoded

    @classmethod
    def from_bytes(cls, data: bytes) -> "ArtifactBundle":
        """Deserialize, verifying version, fingerprint, and manifest."""
        try:
            header, arrays = unpack_container(data)
        except ArtifactDecodeError as exc:
            raise ArtifactError(str(exc)) from exc
        if header.get("magic") != FORMAT_MAGIC:
            raise ArtifactError(
                "not a repro executable artifact (bad magic)"
            )
        version = header.get("format_version")
        if version != BUNDLE_FORMAT_VERSION:
            if version in reader_versions():
                raise ArtifactError(
                    f"artifact is a format v{version} container, not a "
                    f"bundle; load it through repro.artifact.load_artifact()"
                )
            raise _version_error(version)
        expected = header.get("fingerprint")
        actual = content_fingerprint(header, arrays)
        if expected != actual:
            raise ArtifactError(
                "artifact fingerprint mismatch: the container is corrupt "
                f"(header says {expected!r}, content hashes to {actual!r})"
            )
        try:
            manifest = header["bundle"]
            members = []
            links = []
            for entry in manifest["stages"]:
                member = ExecutableArtifact.from_bytes(
                    arrays[entry["array"]].tobytes()
                )
                members.append(member)
                links.append(
                    StageLink(
                        name=str(entry["name"]),
                        wiring=tuple(
                            sorted(
                                (str(pi), str(po))
                                for pi, po in entry["wiring"].items()
                            )
                        ),
                        external=tuple(
                            str(name) for name in entry["external"]
                        ),
                    )
                )
            probes = None
            if header.get("probes") is not None:
                probes = decode_probes(dict(header["probes"]), arrays)
        except (ArtifactDecodeError, KeyError, ValueError, TypeError) as exc:
            raise ArtifactError(f"undecodable bundle: {exc}") from exc
        bundle = cls(
            members=tuple(members),
            links=tuple(links),
            name=str(header.get("name", "bundle")),
            probes=probes,
            producer=str(header.get("producer", "")),
            fingerprint=str(expected),
        )
        # Re-derive the wiring against the decoded graphs: a manifest
        # that names signals its members do not have is corrupt even
        # when the fingerprint holds (it was packaged wrong).
        _derive_links(
            bundle.members,
            [dict(link.wiring) for link in bundle.links[1:]],
        )
        return bundle

    def save(self, path: str) -> str:
        """Write the bundle atomically; returns the path written."""
        from .store import _atomic_write

        _atomic_write(path, self.to_bytes())
        return path

    @classmethod
    def load(cls, path: str) -> "ArtifactBundle":
        with open(path, "rb") as handle:
            return cls.from_bytes(handle.read())

    # ------------------------------------------------------------------
    # Execution
    # ------------------------------------------------------------------
    def executor(
        self,
        *,
        engine: Optional[str] = None,
        engine_options=None,
        depth: int = 4,
    ):
        """A ready-to-stream :class:`repro.pipeline.PipelineExecutor`
        over this bundle (one engine per stage, bounded inter-stage
        queues of ``depth`` batches)."""
        from ..pipeline import PipelineExecutor

        return PipelineExecutor(
            self, engine=engine, engine_options=engine_options, depth=depth
        )

    def verify_probes(
        self, *, engine: Optional[str] = None
    ) -> Dict[str, object]:
        """Replay the embedded probe vectors end-to-end through the
        stage chain and compare bit-for-bit against the composed
        functional reference's outputs."""
        if self.probes is None:
            raise ArtifactError(
                "bundle carries no probe vectors; package with "
                "probe_words > 0 (CLI: repro compile --bundle "
                "--probe-words N)"
            )
        executor = self.executor(engine=engine)
        try:
            result = executor.run(self.probes.stimulus())
            engine_name = executor.engine_name
        finally:
            executor.close()
        expected = self.probes.expected()
        mismatches = [
            name
            for name in self.probes.output_names
            if not np.array_equal(
                np.asarray(result.outputs[name], dtype=np.uint64),
                expected[name],
            )
        ]
        return {
            "passed": not mismatches,
            "engine": engine_name,
            "stages": self.num_stages,
            "probe_words": self.probes.words,
            "probe_samples": self.probes.samples,
            "outputs_checked": len(self.probes.output_names),
            "mismatches": mismatches,
        }

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"ArtifactBundle(name={self.name!r}, "
            f"stages={[link.name for link in self.links]})"
        )


def bundle_model(
    stages,
    config=None,
    *,
    wirings: Optional[Sequence[Optional[Dict[str, str]]]] = None,
    name: str = "model",
    pass_cache=None,
    probe_words: int = 2,
    probe_seed: int = 0,
    lower: bool = True,
    fanout: bool = False,
    **compile_kwargs,
) -> ArtifactBundle:
    """Compile every stage graph and package the bundle in one call.

    All stages compile through the existing pass manager sharing one
    :class:`~repro.compiler.cache.PassCache` (``pass_cache``, created
    fresh when omitted), so identical sub-blocks across layers reuse
    pass results.  ``compile_kwargs`` forward to
    :func:`repro.core.compile_ffcl` (``pipeline=``, ``merge=``, ...).
    """
    from ..compiler.cache import PassCache
    from ..core.compiler import compile_ffcl
    from ..core.config import PAPER_CONFIG

    graphs = list(stages)
    if not graphs:
        raise ArtifactError("bundle_model needs at least one stage graph")
    cache = pass_cache if pass_cache is not None else PassCache()
    members = []
    for graph in graphs:
        result = compile_ffcl(
            graph,
            config if config is not None else PAPER_CONFIG,
            pass_cache=cache,
            **compile_kwargs,
        )
        members.append(
            ExecutableArtifact.from_compile(
                result, lower=lower, fanout=fanout
            )
        )
    return ArtifactBundle.from_members(
        members,
        wirings=wirings,
        name=name,
        probe_words=probe_words,
        probe_seed=probe_seed,
    )


# The format-v2 reader: the bundle container.
register_reader(BUNDLE_FORMAT_VERSION, ArtifactBundle.from_bytes)
