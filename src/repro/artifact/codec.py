"""Zero-pickle binary encoding of executable artifacts.

Everything an :class:`~repro.artifact.format.ExecutableArtifact` persists
is flattened into exactly two kinds of data — a JSON header for metadata
and raw ``.npy`` arrays for the bulk tables — and packed into one ZIP
container.  Nothing is ever pickled: instructions serialize through the
32-bit ISA words of :mod:`repro.core.isa` (the paper's "customized
instructions" binary format), graphs and trace tables through dense numpy
columns, and every remaining scalar through JSON.  Deserializing an
artifact therefore never executes code, and the bytes are deterministic:
encoding the same executable twice — or re-encoding a decoded one —
produces identical bytes, which is what makes content fingerprints stable.

Layout of the container::

    header.json          # metadata, interface maps, scalar statistics
    arrays/<name>.npy    # numpy tables (npy format v1, allow_pickle=False)

The module also provides the *snapshot* codec used by the
:class:`~repro.compiler.cache.PassCache` disk tier: a restricted
serializer for per-pass state snapshots whose values are scalars,
:class:`~repro.netlist.graph.LogicGraph` instances,
:class:`~repro.synth.levelize.Levelization` tables, or flat report
dataclasses.  Snapshots containing anything else (MFG partitions,
schedules, programs) are simply not disk-cached — the program-level
artifact covers those.
"""

from __future__ import annotations

import hashlib
import io
import json
import zipfile
import zlib
from dataclasses import fields, is_dataclass
from typing import Dict, List, Optional, Tuple

import numpy as np

from ..core.codegen import Program
from ..core.config import LPUConfig
from ..core.fanout import FanoutTables
from ..core.isa import LPEInstruction, decode_instruction, encode_instruction
from ..core.liveness import FusedLevel, FusedProgram
from ..core.schedule import RuntimeSchedule
from ..core.trace import OpSegment, TraceLevel, TraceProgram, _NUM_CONST_SLOTS
from ..netlist import cells
from ..netlist.graph import LogicGraph

__all__ = [
    "ArtifactDecodeError",
    "decode_fanout",
    "decode_fused",
    "decode_graph",
    "decode_probes",
    "decode_program",
    "decode_snapshot",
    "decode_trace",
    "encode_fanout",
    "encode_fused",
    "encode_graph",
    "encode_probes",
    "encode_program",
    "encode_snapshot",
    "encode_trace",
    "pack_container",
    "unpack_container",
]


class ArtifactDecodeError(RuntimeError):
    """The byte stream is not a valid artifact container."""


#: fixed ZIP member timestamp: containers must be byte-deterministic.
_ZIP_EPOCH = (1980, 1, 1, 0, 0, 0)
_HEADER_NAME = "header.json"
_ARRAY_PREFIX = "arrays/"

#: node-id / index sentinel for "absent" (no fanin, no trace node).
_NONE = -1


def _dump_json(data: Dict[str, object]) -> bytes:
    """Canonical JSON bytes (sorted keys, no whitespace jitter)."""
    return json.dumps(
        data, sort_keys=True, separators=(",", ":"), ensure_ascii=True
    ).encode("utf-8")


def _array_bytes(array: np.ndarray) -> bytes:
    """The exact ``.npy`` byte stream of one array (pickle forbidden)."""
    buffer = io.BytesIO()
    np.lib.format.write_array(buffer, np.ascontiguousarray(array),
                              allow_pickle=False)
    return buffer.getvalue()


def pack_container(
    header: Dict[str, object], arrays: Dict[str, np.ndarray]
) -> bytes:
    """Pack header + arrays into deterministic ZIP bytes."""
    buffer = io.BytesIO()
    with zipfile.ZipFile(buffer, "w", zipfile.ZIP_DEFLATED) as archive:
        members = [(_HEADER_NAME, _dump_json(header))]
        members += [
            (_ARRAY_PREFIX + name + ".npy", _array_bytes(arrays[name]))
            for name in sorted(arrays)
        ]
        for name, data in members:
            info = zipfile.ZipInfo(name, date_time=_ZIP_EPOCH)
            info.compress_type = zipfile.ZIP_DEFLATED
            info.external_attr = 0o644 << 16
            archive.writestr(info, data)
    return buffer.getvalue()


def unpack_container(
    data: bytes,
) -> Tuple[Dict[str, object], Dict[str, np.ndarray]]:
    """Inverse of :func:`pack_container`."""
    try:
        with zipfile.ZipFile(io.BytesIO(data), "r") as archive:
            names = archive.namelist()
            if _HEADER_NAME not in names:
                raise ArtifactDecodeError("container has no header.json")
            header = json.loads(archive.read(_HEADER_NAME).decode("utf-8"))
            arrays: Dict[str, np.ndarray] = {}
            for name in names:
                if not name.startswith(_ARRAY_PREFIX):
                    continue
                key = name[len(_ARRAY_PREFIX):-len(".npy")]
                arrays[key] = np.lib.format.read_array(
                    io.BytesIO(archive.read(name)), allow_pickle=False
                )
    except ArtifactDecodeError:
        raise
    except (zipfile.BadZipFile, zlib.error, ValueError, KeyError, OSError) as exc:
        raise ArtifactDecodeError(f"corrupt artifact container: {exc}") from exc
    if not isinstance(header, dict):
        raise ArtifactDecodeError("artifact header is not a JSON object")
    return header, arrays


def content_fingerprint(
    header: Dict[str, object], arrays: Dict[str, np.ndarray]
) -> str:
    """SHA-256 over the canonical (uncompressed) content of a container.

    Computed over the header JSON with any ``"fingerprint"`` field removed
    plus every array's name, dtype, shape, and raw bytes — so the digest
    is independent of ZIP compression details and self-verifying on load.
    """
    stripped = {k: v for k, v in header.items() if k != "fingerprint"}
    digest = hashlib.sha256()
    digest.update(_dump_json(stripped))
    for name in sorted(arrays):
        array = np.ascontiguousarray(arrays[name])
        digest.update(name.encode("utf-8"))
        digest.update(str(array.dtype).encode("utf-8"))
        digest.update(repr(array.shape).encode("utf-8"))
        digest.update(array.tobytes())
    return digest.hexdigest()


# ----------------------------------------------------------------------
# Logic graphs
# ----------------------------------------------------------------------
def encode_graph(
    graph: LogicGraph, prefix: str = "graph"
) -> Tuple[Dict[str, object], Dict[str, np.ndarray]]:
    """Encode a graph as (header fragment, arrays); node ids are exact."""
    op_table = sorted(cells.ALL_OPS)
    op_code = {op: i for i, op in enumerate(op_table)}
    node_ids = sorted(graph.nodes)
    ops = np.empty(len(node_ids), dtype=np.int16)
    fanin_a = np.full(len(node_ids), _NONE, dtype=np.int64)
    fanin_b = np.full(len(node_ids), _NONE, dtype=np.int64)
    gate_names: Dict[str, str] = {}
    for row, nid in enumerate(node_ids):
        node = graph.nodes[nid]
        ops[row] = op_code[node.op]
        if len(node.fanins) >= 1:
            fanin_a[row] = node.fanins[0]
        if len(node.fanins) == 2:
            fanin_b[row] = node.fanins[1]
        if node.name is not None and node.op != cells.INPUT:
            gate_names[str(nid)] = node.name
    header = {
        "name": graph.name,
        "next_id": graph._next_id,
        "ops": op_table,
        "inputs": [
            [graph.input_name(nid), nid] for nid in graph.inputs
        ],
        "outputs": [[name, nid] for name, nid in graph.outputs],
        "gate_names": gate_names,
    }
    arrays = {
        f"{prefix}_ids": np.asarray(node_ids, dtype=np.int64),
        f"{prefix}_ops": ops,
        f"{prefix}_fanin_a": fanin_a,
        f"{prefix}_fanin_b": fanin_b,
    }
    return header, arrays


def decode_graph(
    header: Dict[str, object],
    arrays: Dict[str, np.ndarray],
    prefix: str = "graph",
) -> LogicGraph:
    """Rebuild a graph with its exact node ids, names, and interface."""
    from ..netlist.graph import Node

    op_table = list(header["ops"])
    node_ids = arrays[f"{prefix}_ids"].tolist()
    ops = arrays[f"{prefix}_ops"].tolist()
    fanin_a = arrays[f"{prefix}_fanin_a"].tolist()
    fanin_b = arrays[f"{prefix}_fanin_b"].tolist()
    gate_names = {int(k): v for k, v in dict(header["gate_names"]).items()}
    input_names = {int(nid): name for name, nid in header["inputs"]}

    graph = LogicGraph(str(header["name"]))
    for row, nid in enumerate(node_ids):
        op = op_table[ops[row]]
        fanins: Tuple[int, ...] = ()
        if fanin_a[row] != _NONE:
            fanins = (fanin_a[row],)
            if fanin_b[row] != _NONE:
                fanins = (fanin_a[row], fanin_b[row])
        name = input_names.get(nid) if op == cells.INPUT else \
            gate_names.get(nid)
        # Nodes are installed directly (not through add_gate) so the
        # original — possibly non-dense — id assignment survives exactly.
        graph.nodes[nid] = Node(op, fanins, name)
    graph._next_id = int(header["next_id"])
    graph._inputs = [int(nid) for _, nid in header["inputs"]]
    graph._input_names = {name: int(nid) for name, nid in header["inputs"]}
    graph._outputs = [(name, int(nid)) for name, nid in header["outputs"]]
    graph.validate()
    return graph


# ----------------------------------------------------------------------
# Programs (instruction queues + buffer traffic + runtime schedule)
# ----------------------------------------------------------------------
def _schedule_header(schedule) -> Dict[str, object]:
    # Flatten full compile-time schedules to their runtime surface; an
    # already-flat RuntimeSchedule (a decoded program being re-encoded)
    # passes through unchanged.
    if not isinstance(schedule, RuntimeSchedule):
        schedule = RuntimeSchedule.from_schedule(schedule)
    return {
        "makespan": schedule.makespan,
        "base_address": schedule.base_address,
        "policy": schedule.policy,
        "circulations": schedule.circulations,
        "queue_depth": schedule.queue_depth,
    }


def encode_program(
    program: Program,
) -> Tuple[Dict[str, object], Dict[str, np.ndarray]]:
    """Encode a compiled program as (header fragment, arrays).

    Instructions serialize through :func:`repro.core.isa.encode_instruction`
    (one ``uint32`` word each) with the trace-only node annotations in a
    parallel ``int64`` column.  Queue entries and buffer-traffic rows are
    emitted in sorted order, so encoding is canonical: the same executable
    always produces the same bytes.
    """
    m = program.config.m
    entries = sorted(
        (lpv, address, vec)
        for lpv, per_lpv in program.queues.items()
        for address, vec in per_lpv.items()
    )
    queue_lpv = np.asarray([e[0] for e in entries], dtype=np.int64)
    queue_addr = np.asarray([e[1] for e in entries], dtype=np.int64)
    queue_words = np.zeros((len(entries), m), dtype=np.uint32)
    queue_nodes = np.full((len(entries), m), _NONE, dtype=np.int64)
    for row, (_lpv, _address, vec) in enumerate(entries):
        for col, instr in enumerate(vec):
            queue_words[row, col] = encode_instruction(instr)
            if instr.node is not None:
                queue_nodes[row, col] = instr.node

    port_code = {"a": 0, "b": 1}
    input_rows = sorted(
        (cycle, col, port_code[port], node)
        for cycle, entry in program.input_reads.items()
        for (col, port), node in entry.items()
    )
    circ_rows = sorted(
        (cycle, lpv, col, port_code[port], key[0], key[1])
        for (cycle, lpv), entry in program.circulation_reads.items()
        for (col, port), key in entry.items()
    )
    write_rows = sorted(
        (cycle, key[0], key[1], lpv, col)
        for cycle, writes in program.buffer_writes.items()
        for (key, lpv, col) in writes
    )
    config = program.config
    header = {
        "config": {
            "num_lpvs": config.num_lpvs,
            "lpes_per_lpv": config.lpes_per_lpv,
            "switch_stages": config.switch_stages,
            "frequency_hz": config.frequency_hz,
        },
        "schedule": _schedule_header(program.schedule),
        "po_nodes": {name: nid for name, nid in program.po_nodes.items()},
        "po_buffer_keys": {
            name: [key[0], key[1]]
            for name, key in program.po_buffer_keys.items()
        },
        "peak_buffer_words": int(program.peak_buffer_words),
        "buffer_spills": int(program.buffer_spills),
    }
    graph_header, arrays = encode_graph(program.graph)
    header["graph"] = graph_header
    arrays.update(
        {
            "queue_lpv": queue_lpv,
            "queue_addr": queue_addr,
            "queue_words": queue_words,
            "queue_nodes": queue_nodes,
            "input_reads": np.asarray(input_rows, dtype=np.int64).reshape(
                (len(input_rows), 4)
            ),
            "circulation_reads": np.asarray(
                circ_rows, dtype=np.int64
            ).reshape((len(circ_rows), 6)),
            "buffer_writes": np.asarray(
                write_rows, dtype=np.int64
            ).reshape((len(write_rows), 5)),
        }
    )
    return header, arrays


def decode_program(
    header: Dict[str, object], arrays: Dict[str, np.ndarray]
) -> Program:
    """Rebuild an executable :class:`Program` from its encoded form.

    The result carries a :class:`~repro.core.schedule.RuntimeSchedule` —
    the compile-time MFG DAG is not part of the executable format — and is
    bit-identical to the original under both execution engines (outputs
    and run statistics).
    """
    config = LPUConfig(
        num_lpvs=int(header["config"]["num_lpvs"]),
        lpes_per_lpv=int(header["config"]["lpes_per_lpv"]),
        switch_stages=int(header["config"]["switch_stages"]),
        frequency_hz=float(header["config"]["frequency_hz"]),
    )
    graph = decode_graph(dict(header["graph"]), arrays)
    sched = dict(header["schedule"])
    schedule = RuntimeSchedule(
        config=config,
        makespan=int(sched["makespan"]),
        base_address=int(sched["base_address"]),
        policy=str(sched["policy"]),
        circulations=int(sched["circulations"]),
        queue_depth=int(sched["queue_depth"]),
    )

    queues: Dict[int, Dict[int, List[LPEInstruction]]] = {}
    queue_lpv = arrays["queue_lpv"].tolist()
    queue_addr = arrays["queue_addr"].tolist()
    queue_words = arrays["queue_words"].tolist()
    queue_nodes = arrays["queue_nodes"].tolist()
    # Instructions are frozen, so identical (word, node) pairs — NOPs
    # above all — share one object; this memo is what makes decoding a
    # large program milliseconds instead of tens of milliseconds.
    memo: Dict[Tuple[int, int], LPEInstruction] = {}

    def instruction_of(word: int, node: int) -> LPEInstruction:
        got = memo.get((word, node))
        if got is None:
            got = decode_instruction(word)
            if node != _NONE:
                got = LPEInstruction(
                    op=got.op, a=got.a, b=got.b, valid=got.valid, node=node
                )
            memo[(word, node)] = got
        return got

    for row in range(len(queue_lpv)):
        words = queue_words[row]
        nodes = queue_nodes[row]
        vec = [
            instruction_of(words[col], nodes[col])
            for col in range(len(words))
        ]
        queues.setdefault(queue_lpv[row], {})[queue_addr[row]] = vec

    port_name = {0: "a", 1: "b"}
    input_reads: Dict[int, Dict[Tuple[int, str], int]] = {}
    for cycle, col, port, node in arrays["input_reads"].tolist():
        input_reads.setdefault(cycle, {})[(col, port_name[port])] = node
    circulation_reads: Dict[
        Tuple[int, int], Dict[Tuple[int, str], Tuple[int, int]]
    ] = {}
    for cycle, lpv, col, port, uid, node in arrays[
        "circulation_reads"
    ].tolist():
        circulation_reads.setdefault((cycle, lpv), {})[
            (col, port_name[port])
        ] = (uid, node)
    buffer_writes: Dict[int, List[Tuple[Tuple[int, int], int, int]]] = {}
    for cycle, uid, node, lpv, col in arrays["buffer_writes"].tolist():
        buffer_writes.setdefault(cycle, []).append(((uid, node), lpv, col))

    return Program(
        config=config,
        graph=graph,
        schedule=schedule,
        queues=queues,
        input_reads=input_reads,
        circulation_reads=circulation_reads,
        buffer_writes=buffer_writes,
        po_nodes={
            name: int(nid) for name, nid in dict(header["po_nodes"]).items()
        },
        po_buffer_keys={
            name: (int(key[0]), int(key[1]))
            for name, key in dict(header["po_buffer_keys"]).items()
        },
        peak_buffer_words=int(header["peak_buffer_words"]),
        buffer_spills=int(header["buffer_spills"]),
    )


# ----------------------------------------------------------------------
# Lowered trace tables
# ----------------------------------------------------------------------
def encode_trace(
    trace: TraceProgram,
) -> Tuple[Dict[str, object], Dict[str, np.ndarray]]:
    """Encode the lowered vectorizable tables of one program."""
    op_table = sorted(cells.ALL_OPS)
    op_code = {op: i for i, op in enumerate(op_table)}
    levels = trace.levels
    seg_rows = [
        (op_code[seg.op], seg.start, seg.end)
        for level in levels
        for seg in level.segments
    ]
    slot_rows = sorted(trace.slot_nodes.items())
    header = {
        "ops": op_table,
        "num_slots": trace.num_slots,
        "pi_slots": dict(trace.pi_slots),
        "output_slots": dict(trace.output_slots),
        "macro_cycles": trace.macro_cycles,
        "clock_cycles": trace.clock_cycles,
        "compute_instructions": trace.compute_instructions,
        "switch_routes": trace.switch_routes,
        "peak_buffer_words": trace.peak_buffer_words,
        "buffer_writes": trace.buffer_writes,
    }
    arrays = {
        "trace_level_cycle": np.asarray(
            [level.cycle for level in levels], dtype=np.int64
        ),
        "trace_level_out_start": np.asarray(
            [level.out_start for level in levels], dtype=np.int64
        ),
        "trace_level_size": np.asarray(
            [level.num_instructions for level in levels], dtype=np.int64
        ),
        "trace_level_segments": np.asarray(
            [len(level.segments) for level in levels], dtype=np.int64
        ),
        "trace_a_index": (
            np.concatenate([level.a_index for level in levels])
            if levels else np.empty(0, dtype=np.int64)
        ).astype(np.int64),
        "trace_b_index": (
            np.concatenate([level.b_index for level in levels])
            if levels else np.empty(0, dtype=np.int64)
        ).astype(np.int64),
        "trace_segments": np.asarray(seg_rows, dtype=np.int64).reshape(
            (len(seg_rows), 3)
        ),
        "trace_slot_nodes": np.asarray(slot_rows, dtype=np.int64).reshape(
            (len(slot_rows), 2)
        ),
    }
    return header, arrays


def decode_trace(
    header: Dict[str, object],
    arrays: Dict[str, np.ndarray],
    program: Program,
) -> TraceProgram:
    """Rebuild the :class:`TraceProgram` bound to ``program``."""
    op_table = list(header["ops"])
    level_cycle = arrays["trace_level_cycle"]
    level_out = arrays["trace_level_out_start"]
    level_size = arrays["trace_level_size"]
    level_segs = arrays["trace_level_segments"]
    a_index = arrays["trace_a_index"].astype(np.intp)
    b_index = arrays["trace_b_index"].astype(np.intp)
    seg_rows = arrays["trace_segments"]

    levels: List[TraceLevel] = []
    offset = 0
    seg_offset = 0
    for i in range(len(level_cycle)):
        size = int(level_size[i])
        a_part = a_index[offset:offset + size].copy()
        b_part = b_index[offset:offset + size].copy()
        a_part.setflags(write=False)
        b_part.setflags(write=False)
        count = int(level_segs[i])
        segments = tuple(
            OpSegment(
                op=op_table[int(seg_rows[j, 0])],
                start=int(seg_rows[j, 1]),
                end=int(seg_rows[j, 2]),
            )
            for j in range(seg_offset, seg_offset + count)
        )
        levels.append(
            TraceLevel(
                cycle=int(level_cycle[i]),
                out_start=int(level_out[i]),
                a_index=a_part,
                b_index=b_part,
                segments=segments,
            )
        )
        offset += size
        seg_offset += count

    return TraceProgram(
        program=program,
        num_slots=int(header["num_slots"]),
        # Rebuild in slot order (the JSON header sorts by name): fusing
        # a decoded trace then inherits PI registers in iteration order,
        # keeping the fused engine's contiguous-binding fast path.
        pi_slots={
            name: int(slot)
            for name, slot in sorted(
                dict(header["pi_slots"]).items(), key=lambda kv: kv[1]
            )
        },
        levels=levels,
        output_slots={
            name: int(slot)
            for name, slot in dict(header["output_slots"]).items()
        },
        macro_cycles=int(header["macro_cycles"]),
        clock_cycles=int(header["clock_cycles"]),
        compute_instructions=int(header["compute_instructions"]),
        switch_routes=int(header["switch_routes"]),
        peak_buffer_words=int(header["peak_buffer_words"]),
        buffer_writes=int(header["buffer_writes"]),
        slot_nodes={
            int(slot): int(node)
            for slot, node in arrays["trace_slot_nodes"].tolist()
        },
    )


# ----------------------------------------------------------------------
# Liveness-renamed (fused) tables
# ----------------------------------------------------------------------
def encode_fused(
    fused: FusedProgram,
) -> Tuple[Dict[str, object], Dict[str, np.ndarray]]:
    """Encode the register-renamed tables of one fused program."""
    op_table = sorted(cells.ALL_OPS)
    op_code = {op: i for i, op in enumerate(op_table)}
    levels = fused.levels
    seg_rows = [
        (op_code[seg.op], seg.start, seg.end)
        for level in levels
        for seg in level.segments
    ]
    header = {
        "ops": op_table,
        "num_regs": fused.num_regs,
        "max_level_width": fused.max_level_width,
        "pi_regs": dict(fused.pi_regs),
        "output_regs": dict(fused.output_regs),
    }

    def concat(name: str) -> np.ndarray:
        if not levels:
            return np.empty(0, dtype=np.int64)
        return np.concatenate(
            [getattr(level, name) for level in levels]
        ).astype(np.int64)

    arrays = {
        "fused_level_cycle": np.asarray(
            [level.cycle for level in levels], dtype=np.int64
        ),
        "fused_level_size": np.asarray(
            [level.num_instructions for level in levels], dtype=np.int64
        ),
        "fused_level_segments": np.asarray(
            [len(level.segments) for level in levels], dtype=np.int64
        ),
        "fused_a_index": concat("a_index"),
        "fused_b_index": concat("b_index"),
        "fused_out_index": concat("out_index"),
        "fused_segments": np.asarray(seg_rows, dtype=np.int64).reshape(
            (len(seg_rows), 3)
        ),
    }
    return header, arrays


def decode_fused(
    header: Dict[str, object],
    arrays: Dict[str, np.ndarray],
    trace: TraceProgram,
) -> FusedProgram:
    """Rebuild the :class:`FusedProgram` bound to ``trace``."""
    op_table = list(header["ops"])
    level_cycle = arrays["fused_level_cycle"]
    level_size = arrays["fused_level_size"]
    level_segs = arrays["fused_level_segments"]
    a_index = arrays["fused_a_index"].astype(np.intp)
    b_index = arrays["fused_b_index"].astype(np.intp)
    out_index = arrays["fused_out_index"].astype(np.intp)
    seg_rows = arrays["fused_segments"]

    levels: List[FusedLevel] = []
    offset = 0
    seg_offset = 0
    for i in range(len(level_cycle)):
        size = int(level_size[i])
        parts = []
        for table in (a_index, b_index, out_index):
            part = table[offset:offset + size].copy()
            part.setflags(write=False)
            parts.append(part)
        count = int(level_segs[i])
        segments = tuple(
            OpSegment(
                op=op_table[int(seg_rows[j, 0])],
                start=int(seg_rows[j, 1]),
                end=int(seg_rows[j, 2]),
            )
            for j in range(seg_offset, seg_offset + count)
        )
        levels.append(
            FusedLevel(
                cycle=int(level_cycle[i]),
                a_index=parts[0],
                b_index=parts[1],
                out_index=parts[2],
                segments=segments,
            )
        )
        offset += size
        seg_offset += count

    return FusedProgram(
        trace=trace,
        num_regs=int(header["num_regs"]),
        # The JSON header is serialized with sorted keys; rebuild in
        # register order so the engine's contiguous PI-binding fast path
        # (PI registers 2..2+|PI| in iteration order) survives a reload.
        pi_regs={
            name: int(reg)
            for name, reg in sorted(
                dict(header["pi_regs"]).items(), key=lambda kv: kv[1]
            )
        },
        levels=levels,
        output_regs={
            name: int(reg)
            for name, reg in dict(header["output_regs"]).items()
        },
        max_level_width=int(header["max_level_width"]),
    )


# ----------------------------------------------------------------------
# Fanout/delta tables (the delta engine's cone analysis)
# ----------------------------------------------------------------------
def encode_fanout(
    tables: FanoutTables,
) -> Tuple[Dict[str, object], Dict[str, np.ndarray]]:
    """Encode the single-assignment delta tables + consumer CSR."""
    op_table = sorted(cells.ALL_OPS)
    header = {
        "ops": op_table,
        "num_rows": tables.num_rows,
        "num_pinned": tables.num_pinned,
        "pi_rows": dict(tables.pi_rows),
        "output_rows": dict(tables.output_rows),
    }
    arrays = {
        "fanout_a_row": tables.a_row.astype(np.int64),
        "fanout_b_row": tables.b_row.astype(np.int64),
        "fanout_op_code": tables.op_code.astype(np.int64),
        "fanout_level_start": tables.level_start.astype(np.int64),
        "fanout_consumer_offsets":
            tables.consumer_offsets.astype(np.int64),
        "fanout_consumer_gids": tables.consumer_gids.astype(np.int64),
    }
    return header, arrays


def decode_fanout(
    header: Dict[str, object],
    arrays: Dict[str, np.ndarray],
    fused: FusedProgram,
) -> FanoutTables:
    """Rebuild the :class:`FanoutTables` bound to ``fused``.

    The dense-view levels are re-sliced from the flat embedded arrays —
    no cone re-analysis — reusing the fused levels' segment schedules and
    cycles, which the embedded tables were derived from in the producer.
    """
    a_row = arrays["fanout_a_row"].astype(np.intp)
    b_row = arrays["fanout_b_row"].astype(np.intp)
    op_code = arrays["fanout_op_code"].astype(np.int16)
    level_start = arrays["fanout_level_start"].astype(np.int64)
    consumer_offsets = arrays["fanout_consumer_offsets"].astype(np.int64)
    consumer_gids = arrays["fanout_consumer_gids"].astype(np.intp)
    num_rows = int(header["num_rows"])
    num_pinned = int(header["num_pinned"])

    if len(level_start) != len(fused.levels) + 1:
        raise ArtifactDecodeError(
            "fanout tables do not match the embedded fused program: "
            f"{len(level_start) - 1} levels vs {len(fused.levels)}"
        )
    if num_pinned != _NUM_CONST_SLOTS + len(fused.pi_regs):
        raise ArtifactDecodeError(
            "fanout tables do not match the embedded fused program: "
            "pinned-row count mismatch"
        )

    dense_levels: List[FusedLevel] = []
    for i, level in enumerate(fused.levels):
        s, e = int(level_start[i]), int(level_start[i + 1])
        if e - s != level.num_instructions:
            raise ArtifactDecodeError(
                "fanout tables do not match the embedded fused program: "
                f"level {i} width {e - s} vs {level.num_instructions}"
            )
        a_part = a_row[s:e].copy()
        b_part = b_row[s:e].copy()
        out_part = np.arange(
            num_pinned + s, num_pinned + e, dtype=np.intp
        )
        for part in (a_part, b_part, out_part):
            part.setflags(write=False)
        dense_levels.append(
            FusedLevel(
                cycle=level.cycle,
                a_index=a_part,
                b_index=b_part,
                out_index=out_part,
                segments=level.segments,
            )
        )

    # Sorted-key JSON scrambled the map order; rebuild in row order so
    # the dense view keeps the contiguous PI block the engine binds.
    pi_rows = {
        name: int(row)
        for name, row in sorted(
            dict(header["pi_rows"]).items(), key=lambda kv: kv[1]
        )
    }
    output_rows = {
        name: int(row)
        for name, row in dict(header["output_rows"]).items()
    }
    for array in (a_row, b_row, op_code, level_start,
                  consumer_offsets, consumer_gids):
        array.setflags(write=False)
    dense = FusedProgram(
        trace=fused.trace,
        num_regs=num_rows,
        pi_regs=pi_rows,
        levels=dense_levels,
        output_regs=output_rows,
        max_level_width=fused.max_level_width,
    )
    return FanoutTables(
        fused=fused,
        num_rows=num_rows,
        num_pinned=num_pinned,
        pi_rows=pi_rows,
        output_rows=output_rows,
        a_row=a_row,
        b_row=b_row,
        op_code=op_code,
        level_start=level_start,
        consumer_offsets=consumer_offsets,
        consumer_gids=consumer_gids,
        dense=dense,
    )


# ----------------------------------------------------------------------
# Probe-vector codec (an optional, format-v1-compatible section)
# ----------------------------------------------------------------------
def encode_probes(probes) -> Tuple[Dict[str, object], Dict[str, np.ndarray]]:
    """Encode an embedded :class:`~repro.artifact.format.ProbeSet`."""
    header = {
        "input_names": list(probes.input_names),
        "output_names": list(probes.output_names),
        "words": probes.words,
        "seed": probes.seed,
    }
    arrays = {
        "probe_inputs": probes.inputs.astype(np.uint64),
        "probe_outputs": probes.outputs.astype(np.uint64),
    }
    return header, arrays


def decode_probes(
    header: Dict[str, object], arrays: Dict[str, np.ndarray]
):
    """Rebuild the embedded probe vectors (read-only arrays)."""
    from .format import ProbeSet

    inputs = arrays["probe_inputs"].astype(np.uint64)
    outputs = arrays["probe_outputs"].astype(np.uint64)
    input_names = tuple(str(name) for name in header["input_names"])
    output_names = tuple(str(name) for name in header["output_names"])
    if inputs.ndim != 2 or outputs.ndim != 2:
        raise ArtifactDecodeError("probe vectors must be 2-D word stacks")
    if inputs.shape[0] != len(input_names):
        raise ArtifactDecodeError(
            "probe inputs do not match their name table: "
            f"{inputs.shape[0]} rows vs {len(input_names)} names"
        )
    if outputs.shape[0] != len(output_names):
        raise ArtifactDecodeError(
            "probe outputs do not match their name table: "
            f"{outputs.shape[0]} rows vs {len(output_names)} names"
        )
    for array in (inputs, outputs):
        array.setflags(write=False)
    return ProbeSet(
        input_names=input_names,
        output_names=output_names,
        inputs=inputs,
        outputs=outputs,
        seed=int(header.get("seed", 0)),
    )


# ----------------------------------------------------------------------
# Pass-snapshot codec (the PassCache disk tier)
# ----------------------------------------------------------------------
#: flat dataclasses a snapshot may carry (values: scalars or other
#: registered dataclasses).  Resolved lazily to avoid import cycles.
def _snapshot_dataclasses() -> Dict[str, type]:
    from ..core.metrics import CompileMetrics
    from ..synth.balance import BalanceReport
    from ..synth.pipeline import PreprocessReport

    return {
        "BalanceReport": BalanceReport,
        "PreprocessReport": PreprocessReport,
        "CompileMetrics": CompileMetrics,
    }


def _encode_value(
    value: object, slot: str, arrays: Dict[str, np.ndarray]
) -> Optional[Dict[str, object]]:
    """Spec for one snapshot value, or None when the type is unsupported."""
    from ..synth.levelize import Levelization
    from ..synth.pipeline import PreprocessResult

    if value is None or isinstance(value, (bool, int, float, str)):
        return {"kind": "scalar", "value": value}
    if isinstance(value, LogicGraph):
        graph_header, graph_arrays = encode_graph(value, prefix=slot)
        arrays.update(graph_arrays)
        return {"kind": "graph", "header": graph_header, "prefix": slot}
    if isinstance(value, Levelization):
        pairs = sorted(value.level.items())
        arrays[f"{slot}_nodes"] = np.asarray(
            [n for n, _ in pairs], dtype=np.int64
        )
        arrays[f"{slot}_levels"] = np.asarray(
            [lvl for _, lvl in pairs], dtype=np.int64
        )
        # by_level row order matters downstream; keep it verbatim.
        arrays[f"{slot}_by_level"] = np.asarray(
            [n for nodes in value.by_level for n in nodes], dtype=np.int64
        )
        arrays[f"{slot}_by_level_len"] = np.asarray(
            [len(nodes) for nodes in value.by_level], dtype=np.int64
        )
        return {
            "kind": "levelization",
            "prefix": slot,
            "max_level": value.max_level,
        }
    if isinstance(value, PreprocessResult):
        spec_graph = _encode_value(value.graph, f"{slot}_g", arrays)
        spec_levels = _encode_value(value.levels, f"{slot}_l", arrays)
        spec_report = _encode_value(value.report, f"{slot}_r", arrays)
        if None in (spec_graph, spec_levels, spec_report):
            return None
        return {
            "kind": "preprocess",
            "graph": spec_graph,
            "levels": spec_levels,
            "report": spec_report,
        }
    registry = _snapshot_dataclasses()
    if is_dataclass(value) and type(value).__name__ in registry:
        encoded: Dict[str, object] = {}
        for f in fields(value):
            spec = _encode_value(
                getattr(value, f.name), f"{slot}_{f.name}", arrays
            )
            if spec is None:
                return None
            encoded[f.name] = spec
        return {
            "kind": "dataclass",
            "class": type(value).__name__,
            "fields": encoded,
        }
    return None


def _decode_value(
    spec: Dict[str, object], arrays: Dict[str, np.ndarray]
) -> object:
    from ..synth.levelize import Levelization
    from ..synth.pipeline import PreprocessResult

    kind = spec["kind"]
    if kind == "scalar":
        return spec["value"]
    if kind == "graph":
        return decode_graph(
            dict(spec["header"]), arrays, prefix=str(spec["prefix"])
        )
    if kind == "levelization":
        prefix = str(spec["prefix"])
        nodes = arrays[f"{prefix}_nodes"].tolist()
        levels = arrays[f"{prefix}_levels"].tolist()
        flat = arrays[f"{prefix}_by_level"].tolist()
        lengths = arrays[f"{prefix}_by_level_len"].tolist()
        by_level: List[List[int]] = []
        offset = 0
        for length in lengths:
            by_level.append(flat[offset:offset + length])
            offset += length
        return Levelization(
            level=dict(zip(nodes, levels)),
            by_level=by_level,
            max_level=int(spec["max_level"]),
        )
    if kind == "preprocess":
        return PreprocessResult(
            graph=_decode_value(dict(spec["graph"]), arrays),
            levels=_decode_value(dict(spec["levels"]), arrays),
            report=_decode_value(dict(spec["report"]), arrays),
        )
    if kind == "dataclass":
        cls = _snapshot_dataclasses()[str(spec["class"])]
        return cls(
            **{
                name: _decode_value(dict(sub), arrays)
                for name, sub in dict(spec["fields"]).items()
            }
        )
    raise ArtifactDecodeError(f"unknown snapshot value kind {kind!r}")


def encode_snapshot(snapshot: Dict[str, object]) -> Optional[bytes]:
    """Encode one pass snapshot, or None if any field is not codable."""
    arrays: Dict[str, np.ndarray] = {}
    specs: Dict[str, object] = {}
    for i, (field_name, value) in enumerate(sorted(snapshot.items())):
        spec = _encode_value(value, f"f{i}", arrays)
        if spec is None:
            return None
        specs[field_name] = spec
    return pack_container({"kind": "pass-snapshot", "fields": specs}, arrays)


def decode_snapshot(data: bytes) -> Dict[str, object]:
    """Inverse of :func:`encode_snapshot`."""
    header, arrays = unpack_container(data)
    if header.get("kind") != "pass-snapshot":
        raise ArtifactDecodeError("not a pass-snapshot container")
    return {
        field_name: _decode_value(dict(spec), arrays)
        for field_name, spec in dict(header["fields"]).items()
    }
