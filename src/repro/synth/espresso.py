"""Heuristic two-level minimization (Espresso-style expand/irredundant/reduce).

For neuron fan-ins beyond Quine–McCluskey's reach, NullaNet-style flows use a
heuristic minimizer.  This is a faithful, compact re-implementation of the
Espresso loop operating on the explicit truth table (practical up to
:data:`repro.synth.truth_table.MAX_ENUM_VARS` inputs):

* **expand** each cube to a prime by greedily dropping literals while the
  cube stays inside ON ∪ DC,
* **irredundant** — remove cubes whose ON-minterms are covered by the rest,
* **reduce** each cube to the smallest cube covering its essential
  ON-minterms, enabling the next expand to escape local minima,
* iterate until the (cube count, literal count) cost stops improving.
"""

from __future__ import annotations

from typing import List, Sequence

import numpy as np

from .truth_table import Cube, TruthTable


def _cube_rows(cube: Cube, idx: np.ndarray) -> np.ndarray:
    return (idx & cube.mask) == cube.value


class _Context:
    """Precomputed table views shared by all passes."""

    def __init__(self, table: TruthTable) -> None:
        self.table = table
        self.idx = np.arange(table.size, dtype=np.int64)
        self.on = table.on_bits & table.care_bits
        self.off = ~table.on_bits & table.care_bits

    def is_implicant(self, cube: Cube) -> bool:
        """Cube fully inside ON ∪ DC?"""
        return not bool(np.any(_cube_rows(cube, self.idx) & self.off))

    def on_rows(self, cube: Cube) -> np.ndarray:
        return _cube_rows(cube, self.idx) & self.on


def expand_cube(cube: Cube, ctx: _Context, order: Sequence[int]) -> Cube:
    """Greedily drop literals from ``cube`` (in ``order``) while it remains
    an implicant of ON ∪ DC; the result is a prime implicant."""
    current = cube
    for var in order:
        if not (current.mask >> var) & 1:
            continue
        candidate = current.without_literal(var)
        if ctx.is_implicant(candidate):
            current = candidate
    return current


def _expand_all(cubes: List[Cube], ctx: _Context) -> List[Cube]:
    expanded: List[Cube] = []
    for cube in cubes:
        # Try dropping rarely-useful literals first: order variables by how
        # unbalanced the OFF-set is along them (cheap proxy for Espresso's
        # blocking-matrix heuristics).
        order = sorted(range(ctx.table.num_vars), key=lambda v: -((cube.mask >> v) & 1))
        prime = expand_cube(cube, ctx, order)
        if not any(other.contains_cube(prime) for other in expanded):
            expanded = [c for c in expanded if not prime.contains_cube(c)]
            expanded.append(prime)
    return expanded


def _irredundant(cubes: List[Cube], ctx: _Context) -> List[Cube]:
    """Drop cubes whose ON coverage is already provided by the others.

    Processes the least useful cubes first (fewest privately covered
    minterms) so the survivors form a small irredundant cover.
    """
    if not cubes:
        return []
    rows = [ctx.on_rows(c) for c in cubes]
    keep = list(range(len(cubes)))

    def private_count(i: int) -> int:
        others = np.zeros_like(rows[0])
        for j in keep:
            if j != i:
                others |= rows[j]
        return int(np.count_nonzero(rows[i] & ~others))

    changed = True
    while changed:
        changed = False
        for i in sorted(keep, key=private_count):
            if private_count(i) == 0 and len(keep) > 1:
                keep.remove(i)
                changed = True
                break
    return [cubes[i] for i in keep]


def _reduce_all(cubes: List[Cube], ctx: _Context) -> List[Cube]:
    """Shrink each cube to the smallest cube containing the ON-minterms only
    it covers, keeping the cover complete.

    Cubes are processed *sequentially against the current cover* (not a
    snapshot): reducing against stale coverage would let two cubes each
    drop a minterm the other was covering, losing completeness.
    """
    rows = [ctx.on_rows(c) for c in cubes]
    reduced = list(cubes)
    for i in range(len(cubes)):
        others = np.zeros_like(ctx.on)
        for j, r in enumerate(rows):
            if j != i:
                others |= r
        essential = rows[i] & ~others
        target = rows[i] if not np.any(essential) else essential
        minterms = ctx.idx[target]
        if minterms.size == 0:
            continue
        # Smallest enclosing cube: variables where all minterms agree stay
        # as literals; the rest become don't-cares within the cube.
        agree_one = np.bitwise_and.reduce(minterms)
        agree_zero = np.bitwise_and.reduce(~minterms) & ((1 << ctx.table.num_vars) - 1)
        mask = int(agree_one | agree_zero)
        value = int(agree_one)
        reduced[i] = Cube(mask, value)
        rows[i] = ctx.on_rows(reduced[i])
    return reduced


def _cost(cubes: Sequence[Cube]) -> tuple:
    return (len(cubes), sum(c.num_literals() for c in cubes))


def espresso_minimize(table: TruthTable, max_iterations: int = 8) -> List[Cube]:
    """Heuristically minimize ``table`` into an irredundant prime SOP cover."""
    full_mask = (1 << table.num_vars) - 1
    ctx = _Context(table)
    cubes: List[Cube] = [Cube(full_mask, m) for m in table.minterms()]
    if not cubes:
        return []
    if not np.any(ctx.off):
        # Tautology under the care set.
        return [Cube(0, 0)]

    cubes = _expand_all(cubes, ctx)
    cubes = _irredundant(cubes, ctx)
    best = cubes
    best_cost = _cost(cubes)
    for _ in range(max_iterations):
        cubes = _reduce_all(cubes, ctx)
        cubes = _expand_all(cubes, ctx)
        cubes = _irredundant(cubes, ctx)
        cost = _cost(cubes)
        if cost < best_cost:
            best, best_cost = cubes, cost
        else:
            break
    assert table.cover_is_complete(best), "espresso produced an incomplete cover"
    return best
