"""The paper's pre-processing stage as a single entry point.

Fig. 1, box 1 ("Pre-processing"): run logic minimization, map to the
standard cell library, and depth-levelize the netlist; Section IV adds full
path balancing (buffer insertion) before graphs reach the compiler.

:func:`preprocess` chains those passes and returns the strict, balanced
graph plus a report of what each pass did — the compiler
(:mod:`repro.core.compiler`) calls this first on every input netlist.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import FrozenSet, Optional

from ..netlist.graph import LogicGraph
from .balance import BalanceReport, balance
from .levelize import Levelization, is_levelized_strict, levelize
from .rebalance import balance_trees
from .simplify import simplify
from .techmap import map_to_basis


@dataclass
class PreprocessReport:
    """What pre-processing did to the netlist."""

    gates_in: int
    gates_after_simplify: int
    gates_after_mapping: int
    gates_out: int
    depth_in: int
    depth_out: int
    balance: BalanceReport

    def __str__(self) -> str:
        return (
            f"preprocess: {self.gates_in} -> {self.gates_after_simplify} "
            f"(simplify) -> {self.gates_after_mapping} (map) -> "
            f"{self.gates_out} gates (balance, "
            f"+{self.balance.buffers_inserted} BUF), "
            f"depth {self.depth_in} -> {self.depth_out}"
        )


@dataclass
class PreprocessResult:
    """Balanced netlist ready for partitioning, with its levelization."""

    graph: LogicGraph
    levels: Levelization
    report: PreprocessReport


def preprocess(
    graph: LogicGraph,
    basis: Optional[FrozenSet[str]] = None,
    optimize: bool = True,
) -> PreprocessResult:
    """Run the full pre-processing flow on ``graph``.

    Args:
        graph: input FFCL netlist (any mix of library ops).
        basis: optional restricted LPE op set to map onto; defaults to the
            full library.
        optimize: run logic simplification first (disable to study raw
            netlists, as the ablation benchmarks do).
    """
    gates_in = graph.num_gates
    depth_in = graph.depth()

    if optimize:
        # Tree rebalancing must run before structural hashing: CSE merges
        # shared chain segments, raising their fanout above one and locking
        # the chains in place.  A second rebalance+simplify round catches
        # chains that constant folding exposes.
        g = balance_trees(graph)
        g = simplify(g)
        g = balance_trees(g)
        g = simplify(g)
    else:
        g = graph.extract()
    gates_simplified = g.num_gates

    if basis is not None:
        # Mapping runs after simplification; a second simplify pass is not
        # applied because it could rewrite gates out of the target basis
        # (e.g. NOT(AND) -> NAND).
        g = map_to_basis(g, basis)
    gates_mapped = g.num_gates

    balanced, bal_report = balance(g)
    assert is_levelized_strict(balanced)
    lv = levelize(balanced)
    report = PreprocessReport(
        gates_in=gates_in,
        gates_after_simplify=gates_simplified,
        gates_after_mapping=gates_mapped,
        gates_out=balanced.num_gates,
        depth_in=depth_in,
        depth_out=lv.max_level,
        balance=bal_report,
    )
    return PreprocessResult(graph=balanced, levels=lv, report=report)
