"""The paper's pre-processing stage as a single entry point.

Fig. 1, box 1 ("Pre-processing"): run logic minimization, map to the
standard cell library, and depth-levelize the netlist; Section IV adds full
path balancing (buffer insertion) before graphs reach the compiler.

:func:`preprocess` runs those passes and returns the strict, balanced
graph plus a report of what each pass did — the compiler
(:mod:`repro.core.compiler`) runs the same passes first on every input
netlist.  Since the pass-manager refactor this function is a thin facade
over :mod:`repro.compiler`: the pre-processing prefix of the ``paper``
pipeline (``ingest``/``rebalance``/``simplify``/``techmap``/``balance``/
``levelize``) is run by a :class:`~repro.compiler.manager.PassManager`,
bit-identical to the pre-refactor monolithic chain.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import FrozenSet, Optional

from ..netlist.graph import LogicGraph
from .balance import BalanceReport
from .levelize import Levelization


@dataclass
class PreprocessReport:
    """What pre-processing did to the netlist."""

    gates_in: int
    gates_after_simplify: int
    gates_after_mapping: int
    gates_out: int
    depth_in: int
    depth_out: int
    balance: BalanceReport

    def __str__(self) -> str:
        return (
            f"preprocess: {self.gates_in} -> {self.gates_after_simplify} "
            f"(simplify) -> {self.gates_after_mapping} (map) -> "
            f"{self.gates_out} gates (balance, "
            f"+{self.balance.buffers_inserted} BUF), "
            f"depth {self.depth_in} -> {self.depth_out}"
        )


@dataclass
class PreprocessResult:
    """Balanced netlist ready for partitioning, with its levelization."""

    graph: LogicGraph
    levels: Levelization
    report: PreprocessReport


def preprocess(
    graph: LogicGraph,
    basis: Optional[FrozenSet[str]] = None,
    optimize: bool = True,
) -> PreprocessResult:
    """Run the full pre-processing flow on ``graph``.

    Args:
        graph: input FFCL netlist (any mix of library ops).
        basis: optional restricted LPE op set to map onto; defaults to the
            full library.
        optimize: run logic simplification first (disable to study raw
            netlists, as the ablation benchmarks do).

    Pass ordering notes (encoded in the standard pipelines):

    * tree rebalancing must run before structural hashing: CSE merges
      shared chain segments, raising their fanout above one and locking
      the chains in place; a second rebalance+simplify round catches
      chains that constant folding exposes,
    * mapping runs after simplification; a second simplify pass is not
      applied because it could rewrite gates out of the target basis
      (e.g. NOT(AND) -> NAND).
    """
    from ..compiler.manager import PassManager
    from ..compiler.state import CompileOptions

    passes = ["ingest"]
    if optimize:
        passes += ["rebalance", "simplify", "rebalance", "simplify"]
    passes += ["techmap", "balance", "levelize"]
    state = PassManager(passes).run(
        graph, options=CompileOptions(optimize=optimize, basis=basis)
    )
    assert state.preprocess is not None
    return state.preprocess
