"""Logic optimization: constant propagation, algebraic rewrites, CSE.

The paper's pre-processing step runs "standard logic optimization
techniques, primarily aimed at reducing the total gate count and depth of the
circuit" (Section III).  This module implements those as a single rebuild
pass over the DAG:

* constant folding (``AND(a, 0) -> 0``, ``XOR(a, 1) -> NOT a``, ...),
* idempotence / complement rules (``AND(a, a) -> a``, ``XOR(a, a) -> 0``),
* double-negation elimination (``NOT(NOT(a)) -> a``),
* inverter absorption (``NOT(AND) -> NAND`` and the reverse where it helps),
* BUF elimination,
* structural hashing (common-subexpression elimination for commutative ops),
* dead-node elimination (everything not in the POs' transitive fanin).

The pass is idempotent and function-preserving; both properties are enforced
by the test suite on random graphs.
"""

from __future__ import annotations

from typing import Dict, Optional, Tuple

from ..netlist import cells
from ..netlist.graph import LogicGraph

# Result of locally evaluating a node: either a reference to an existing new
# node id, or a constant.
_CONST0 = ("const", 0)
_CONST1 = ("const", 1)


def _fold_constants(op: str, vals: Tuple) -> Optional[Tuple]:
    """Apply constant/identity rules.  ``vals`` are ('const', b) or
    ('node', id) descriptors.  Returns a descriptor, ('not', id) meaning the
    complement of node id, or None when no rule applies."""
    if op in (cells.BUF, cells.NOT):
        (kind, payload) = vals[0]
        if kind == "const":
            bit = payload if op == cells.BUF else 1 - payload
            return ("const", bit)
        if op == cells.BUF:
            return vals[0]
        return ("not", payload)

    a, b = vals
    consts = [v for v in vals if v[0] == "const"]
    if len(consts) == 2:
        bit = cells.eval_op_bits(op, consts[0][1], consts[1][1])
        return ("const", bit)
    if len(consts) == 1:
        cval = consts[0][1]
        other = a if a[0] != "const" else b
        # One constant input: each op degenerates to const / pass / invert.
        if op == cells.AND:
            return other if cval else _CONST0
        if op == cells.OR:
            return _CONST1 if cval else other
        if op == cells.NAND:
            return ("not", other[1]) if cval else _CONST1
        if op == cells.NOR:
            return _CONST0 if cval else ("not", other[1])
        if op == cells.XOR:
            return ("not", other[1]) if cval else other
        if op == cells.XNOR:
            return other if cval else ("not", other[1])
    if a == b:
        if op in (cells.AND, cells.OR):
            return a
        if op == cells.XOR:
            return _CONST0
        if op == cells.XNOR:
            return _CONST1
        if op in (cells.NAND, cells.NOR):
            return ("not", a[1])
    return None


class _Rewriter:
    """Incremental graph rebuilder with structural hashing."""

    def __init__(self, name: str) -> None:
        self.graph = LogicGraph(name)
        # (op, fanins) -> node id, for CSE.
        self._hash: Dict[Tuple, int] = {}
        # node id -> node id computing its complement (if one exists).
        self._complement: Dict[int, int] = {}
        self._const_ids: Dict[int, int] = {}

    def add_input(self, name: str) -> int:
        return self.graph.add_input(name)

    def const_node(self, value: int) -> int:
        if value not in self._const_ids:
            self._const_ids[value] = self.graph.add_const(value)
        return self._const_ids[value]

    def gate(self, op: str, *fanins: int) -> int:
        key_fanins = tuple(sorted(fanins)) if op in cells.COMMUTATIVE_OPS else fanins
        key = (op, key_fanins)
        existing = self._hash.get(key)
        if existing is not None:
            return existing
        nid = self.graph.add_gate(op, *fanins)
        self._hash[key] = nid
        if op == cells.NOT:
            # Record the complement relation both ways so a later NOT of
            # either node reuses the existing one.
            self._complement[fanins[0]] = nid
            self._complement[nid] = fanins[0]
        return nid

    def complement_of(self, nid: int) -> Optional[int]:
        """Known complement of ``nid`` in the new graph, if any."""
        return self._complement.get(nid)

    def invert(self, nid: int) -> int:
        cached = self._complement.get(nid)
        if cached is not None:
            return cached
        op = self.graph.op_of(nid)
        comp_op = cells.COMPLEMENT_OP.get(op)
        if comp_op is not None and op in cells.MISO_OPS:
            # NOT(AND(a,b)) -> NAND(a,b): same gate count, one level less.
            inv = self.gate(comp_op, *self.graph.fanins_of(nid))
        else:
            inv = self.gate(cells.NOT, nid)
        self._complement[nid] = inv
        self._complement[inv] = nid
        return inv


def simplify(graph: LogicGraph) -> LogicGraph:
    """Return an optimized, function-equivalent copy of ``graph``."""
    rw = _Rewriter(graph.name)
    # old node id -> descriptor ('node', new id) or ('const', bit)
    desc: Dict[int, Tuple] = {}

    for nid in graph.topological_order():
        node = graph.nodes[nid]
        if node.op == cells.INPUT:
            assert node.name is not None
            desc[nid] = ("node", rw.add_input(node.name))
            continue
        if node.op == cells.CONST0:
            desc[nid] = _CONST0
            continue
        if node.op == cells.CONST1:
            desc[nid] = _CONST1
            continue

        vals = tuple(desc[f] for f in node.fanins)
        folded = _fold_constants(node.op, vals)
        if folded is not None:
            if folded[0] == "not":
                desc[nid] = ("node", rw.invert(folded[1]))
            else:
                desc[nid] = folded
            continue

        fanin_ids = [v[1] for v in vals]
        if node.op == cells.NOT:
            desc[nid] = ("node", rw.invert(fanin_ids[0]))
        elif (
            len(fanin_ids) == 2
            and rw.complement_of(fanin_ids[0]) == fanin_ids[1]
        ):
            # x op NOT(x): every two-input op degenerates to a constant.
            bit = {
                cells.AND: 0,
                cells.NOR: 0,
                cells.XNOR: 0,
                cells.OR: 1,
                cells.NAND: 1,
                cells.XOR: 1,
            }[node.op]
            desc[nid] = ("const", bit)
        else:
            desc[nid] = ("node", rw.gate(node.op, *fanin_ids))

    for name, nid in graph.outputs:
        kind, payload = desc[nid]
        if kind == "const":
            rw.graph.set_output(name, rw.const_node(payload))
        else:
            rw.graph.set_output(name, payload)
    return rw.graph.extract()


def sweep_dead_nodes(graph: LogicGraph) -> LogicGraph:
    """Remove logic not reachable from any PO (cheap subset of simplify)."""
    return graph.extract()
