"""Algebraic factoring: SOP cover -> multi-level two-input logic.

Two-level covers of wide neurons are shallow but enormous; the multi-level
netlists NullaNet feeds the paper's compiler come from factoring.  We
implement the classic *quick factor* recursion (literal division, as in
SIS/ABC): pick the most frequent literal L, split the cover into
``L * quotient + remainder``, recurse on both, and emit balanced two-input
AND/OR trees at the leaves.

The output graph uses only LPE-supported cells, shares NOT gates across the
whole expression, and is typically far deeper-but-narrower than the
two-level form — exactly the shape that stresses the paper's partitioner.
"""

from __future__ import annotations

from collections import Counter
from typing import List, Optional, Sequence, Tuple

from ..netlist import cells
from ..netlist.graph import LogicGraph
from .truth_table import Cube


def _literal_counts(cubes: Sequence[Cube]) -> Counter:
    counts: Counter = Counter()
    for cube in cubes:
        for var, pol in cube.literals():
            counts[(var, pol)] += 1
    return counts


def _divide_by_literal(
    cubes: Sequence[Cube], var: int, pol: int
) -> Tuple[List[Cube], List[Cube]]:
    """Split cover into (quotient, remainder) for literal (var, pol)."""
    bit = 1 << var
    want = bit if pol else 0
    quotient: List[Cube] = []
    remainder: List[Cube] = []
    for cube in cubes:
        if (cube.mask & bit) and (cube.value & bit) == want:
            quotient.append(cube.without_literal(var))
        else:
            remainder.append(cube)
    return quotient, remainder


class _Builder:
    """Emits factored logic into a LogicGraph with shared inverters."""

    def __init__(self, graph: LogicGraph, var_ids: Sequence[int]) -> None:
        self.graph = graph
        self.var_ids = list(var_ids)
        self._inverters: dict = {}

    def literal(self, var: int, pol: int) -> int:
        if pol:
            return self.var_ids[var]
        if var not in self._inverters:
            self._inverters[var] = self.graph.add_gate(
                cells.NOT, self.var_ids[var]
            )
        return self._inverters[var]

    def tree(self, op: str, operands: List[int]) -> int:
        layer = list(operands)
        while len(layer) > 1:
            nxt = []
            for i in range(0, len(layer) - 1, 2):
                nxt.append(self.graph.add_gate(op, layer[i], layer[i + 1]))
            if len(layer) % 2 == 1:
                nxt.append(layer[-1])
            layer = nxt
        return layer[0]

    def cube_node(self, cube: Cube) -> Optional[int]:
        lits = cube.literals()
        if not lits:
            return None  # constant-1 product
        return self.tree(cells.AND, [self.literal(v, p) for v, p in lits])


def _factor_node(cubes: List[Cube], builder: _Builder) -> Optional[int]:
    """Recursive quick factor; returns node id, or None for constant 1."""
    if not cubes:
        raise ValueError("cannot factor an empty cover here")
    if any(cube.mask == 0 for cube in cubes):
        return None  # cover contains the constant-1 cube
    if len(cubes) == 1:
        return builder.cube_node(cubes[0])

    counts = _literal_counts(cubes)
    (var, pol), count = counts.most_common(1)[0]
    if count <= 1:
        # No shared literal: fall back to a flat OR of cube ANDs.
        nodes = [builder.cube_node(c) for c in cubes]
        concrete = [n for n in nodes if n is not None]
        return builder.tree(cells.OR, concrete)

    quotient, remainder = _divide_by_literal(cubes, var, pol)
    lit_node = builder.literal(var, pol)
    q_node = _factor_node(quotient, builder)
    if q_node is None:
        product = lit_node
    else:
        product = builder.graph.add_gate(cells.AND, lit_node, q_node)
    if not remainder:
        return product
    r_node = _factor_node(remainder, builder)
    if r_node is None:
        return None  # remainder is constant 1, so the whole OR is 1
    return builder.graph.add_gate(cells.OR, product, r_node)


def factored_graph(
    cubes: Sequence[Cube],
    num_vars: int,
    input_names: Optional[Sequence[str]] = None,
    name: str = "factored",
    output_name: str = "y",
) -> LogicGraph:
    """Build a multi-level graph computing the SOP ``cubes`` via quick
    factoring.  Empty cover -> constant 0; a mask-0 cube -> constant 1."""
    if input_names is None:
        input_names = [f"x{i}" for i in range(num_vars)]
    if len(input_names) != num_vars:
        raise ValueError("need one name per variable")
    graph = LogicGraph(name)
    var_ids = [graph.add_input(n) for n in input_names]
    builder = _Builder(graph, var_ids)

    if not cubes:
        out = graph.add_const(0)
    else:
        node = _factor_node(list(cubes), builder)
        out = graph.add_const(1) if node is None else node
    graph.set_output(output_name, out)
    return graph


def factoring_gain(cubes: Sequence[Cube], num_vars: int) -> Tuple[int, int]:
    """(two-level gate count, factored gate count) for reporting."""
    from .truth_table import sop_to_graph

    flat = sop_to_graph(cubes, num_vars)
    fact = factored_graph(cubes, num_vars)
    return flat.num_gates, fact.num_gates
