"""Full path balancing (FPB) via BUFFER insertion.

Paper, Section II: "Full path balancing (FPB): Equalizing the logic depth of
all propagation paths from circuit inputs to circuit outputs.  It guarantees
all input-output paths have the same number of gates on them."  Section IV
adds that BUFFER nodes are inserted so "all paths between any two connected
nodes have the same topological length", which "guarantees no data
dependencies exist between two non-adjacent logic levels of gates,
simplifying the mapping of the logic graph onto our pipelined architecture".

Implementation: compute ASAP levels, then for every edge (u -> v) with
``level(v) - level(u) > 1`` insert a chain of BUF nodes; finally pad every
PO up to the global depth.  Buffer chains are shared per (source node,
target level) so a node fanning out to many later levels costs one chain,
not one chain per edge.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Tuple

from ..netlist import cells
from ..netlist.graph import LogicGraph
from .levelize import is_levelized_strict


@dataclass
class BalanceReport:
    """Bookkeeping from a balancing run (feeds the experiment reports)."""

    buffers_inserted: int
    depth: int
    gates_before: int
    gates_after: int

    @property
    def buffer_overhead(self) -> float:
        """Inserted buffers as a fraction of the original gate count."""
        if self.gates_before == 0:
            return 0.0
        return self.buffers_inserted / self.gates_before


def balance(graph: LogicGraph) -> Tuple[LogicGraph, BalanceReport]:
    """Fully path-balance ``graph``; returns (balanced graph, report).

    The result satisfies :func:`repro.synth.levelize.is_levelized_strict`:
    every gate's fanins are exactly one level below it and all POs sit at the
    final level.  POs that are sources (PI or constant pass-throughs) are
    lifted through buffers as well, so every PO is produced by a gate
    whenever the graph has any gate at all.
    """
    src = graph
    out = LogicGraph(src.name)
    level_src = src.levels()
    depth = max(
        (level_src[nid] for _, nid in src.outputs),
        default=0,
    )

    remap: Dict[int, int] = {}
    new_level: Dict[int, int] = {}
    # (new node id, target level) -> buffered copy at that level
    lift_cache: Dict[Tuple[int, int], int] = {}
    buffers = 0

    def lift(new_id: int, target_level: int) -> int:
        """Return a copy of ``new_id`` available at exactly ``target_level``
        by extending a shared BUF chain."""
        nonlocal buffers
        cur_level = new_level[new_id]
        if cur_level > target_level:
            raise ValueError("cannot lift a node to an earlier level")
        while cur_level < target_level:
            key = (new_id, cur_level + 1)
            cached = lift_cache.get(key)
            if cached is None:
                cached = out.add_gate(cells.BUF, new_id)
                new_level[cached] = cur_level + 1
                lift_cache[key] = cached
                buffers += 1
            new_id = cached
            cur_level += 1
        return new_id

    for nid in src.topological_order():
        node = src.nodes[nid]
        if node.op == cells.INPUT:
            assert node.name is not None
            new_id = out.add_input(node.name)
            remap[nid] = new_id
            new_level[new_id] = 0
        elif node.op in (cells.CONST0, cells.CONST1):
            new_id = out.add_const(1 if node.op == cells.CONST1 else 0)
            remap[nid] = new_id
            new_level[new_id] = 0
        else:
            lvl = level_src[nid]
            fanins = [lift(remap[f], lvl - 1) for f in node.fanins]
            new_id = out.add_gate(node.op, *fanins, name=node.name)
            remap[nid] = new_id
            new_level[new_id] = lvl

    for name, nid in src.outputs:
        out.set_output(name, lift(remap[nid], depth))

    report = BalanceReport(
        buffers_inserted=buffers,
        depth=depth,
        gates_before=src.num_gates,
        gates_after=out.num_gates,
    )
    assert is_levelized_strict(out), "balance() must produce a strict netlist"
    return out, report
