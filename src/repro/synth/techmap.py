"""Technology mapping onto a restricted LPE cell basis.

Section III: "the Boolean operations supported by the logic gates in the
cell library ... must be supported by the LPEs."  The default LPE supports
the full library, but the paper's future-work section contemplates
*heterogeneous* LPVs whose LPEs support different op subsets.  This pass
rewrites a graph so it uses only an allowed op set, choosing among a small
set of local decompositions by area cost:

* ``NAND -> NOT(AND)``, ``NOR -> NOT(OR)`` (and inverses),
* ``XOR -> (a OR b) AND NAND(a, b)`` or AND/OR/NOT expansion,
* ``XNOR -> NOT(XOR)`` or direct expansion,
* ``NOT -> NAND(a, a)`` when inverters themselves are disallowed.

The pass also verifies the target basis is functionally complete for the
graph at hand, raising :class:`UnmappableError` otherwise.
"""

from __future__ import annotations

from typing import Dict, FrozenSet, Iterable, Tuple

from ..netlist import cells
from ..netlist.graph import LogicGraph

#: Bases known to be functionally complete (can express any graph).
_COMPLETE_BASES = (
    frozenset({cells.NAND}),
    frozenset({cells.NOR}),
    frozenset({cells.AND, cells.NOT}),
    frozenset({cells.OR, cells.NOT}),
    frozenset({cells.AND, cells.XOR}),  # with const1 for inversion
)


class UnmappableError(ValueError):
    """The requested basis cannot express the graph."""


def basis_is_complete(allowed: FrozenSet[str]) -> bool:
    """Conservative completeness check for an op basis."""
    return any(base <= allowed for base in _COMPLETE_BASES)


class _Mapper:
    def __init__(self, graph: LogicGraph, allowed: FrozenSet[str]) -> None:
        self.out = LogicGraph(graph.name)
        self.allowed = allowed
        self._cache: Dict[Tuple, int] = {}

    def emit(self, op: str, *fanins: int) -> int:
        """Emit ``op`` using only allowed ops (recursively decomposing)."""
        key_fanins = tuple(sorted(fanins)) if op in cells.COMMUTATIVE_OPS else fanins
        key = (op, key_fanins)
        if key in self._cache:
            return self._cache[key]
        nid = self._emit_uncached(op, *fanins)
        self._cache[key] = nid
        return nid

    def _invert(self, nid: int) -> int:
        if cells.NOT in self.allowed:
            return self._raw(cells.NOT, nid)
        if cells.NAND in self.allowed:
            return self._raw(cells.NAND, nid, nid)
        if cells.NOR in self.allowed:
            return self._raw(cells.NOR, nid, nid)
        if cells.XOR in self.allowed:
            one = self.out.add_const(1)
            return self._raw(cells.XOR, nid, one)
        if cells.XNOR in self.allowed:
            zero = self.out.add_const(0)
            return self._raw(cells.XNOR, nid, zero)
        raise UnmappableError("basis cannot express inversion")

    def _raw(self, op: str, *fanins: int) -> int:
        key_fanins = tuple(sorted(fanins)) if op in cells.COMMUTATIVE_OPS else fanins
        key = (op, key_fanins)
        if key not in self._cache:
            self._cache[key] = self.out.add_gate(op, *fanins)
        return self._cache[key]

    def _emit_uncached(self, op: str, *fanins: int) -> int:
        if op in self.allowed:
            return self._raw(op, *fanins)
        a = fanins[0]
        b = fanins[1] if len(fanins) > 1 else None
        if op == cells.BUF:
            # A disallowed BUF is simply a wire.
            return a
        if op == cells.NOT:
            return self._invert(a)
        assert b is not None
        if op == cells.NAND:
            return self._invert(self.emit(cells.AND, a, b))
        if op == cells.NOR:
            return self._invert(self.emit(cells.OR, a, b))
        if op == cells.AND:
            if cells.NAND in self.allowed:
                return self._invert(self._raw(cells.NAND, a, b))
            if cells.NOR in self.allowed:
                return self._raw(cells.NOR, self._invert(a), self._invert(b))
            if cells.OR in self.allowed:
                # De Morgan through OR: a & b = ~(~a | ~b)
                return self._invert(
                    self._raw(cells.OR, self._invert(a), self._invert(b))
                )
            raise UnmappableError(f"cannot express {op} in basis")
        if op == cells.OR:
            if cells.NOR in self.allowed:
                return self._invert(self._raw(cells.NOR, a, b))
            if cells.NAND in self.allowed:
                return self._raw(cells.NAND, self._invert(a), self._invert(b))
            if cells.AND in self.allowed:
                # De Morgan through AND: a | b = ~(~a & ~b)
                return self._invert(
                    self._raw(cells.AND, self._invert(a), self._invert(b))
                )
            raise UnmappableError(f"cannot express {op} in basis")
        if op == cells.XOR:
            if cells.XNOR in self.allowed:
                return self._invert(self._raw(cells.XNOR, a, b))
            # (a | b) & ~(a & b)
            left = self.emit(cells.OR, a, b)
            right = self._invert(self.emit(cells.AND, a, b))
            return self.emit(cells.AND, left, right)
        if op == cells.XNOR:
            if cells.XOR in self.allowed:
                return self._invert(self._raw(cells.XOR, a, b))
            return self._invert(self.emit(cells.XOR, a, b))
        raise UnmappableError(f"unknown op {op!r}")


def map_to_basis(graph: LogicGraph, allowed: Iterable[str]) -> LogicGraph:
    """Rewrite ``graph`` using only ops in ``allowed`` (plus sources).

    BUF is always implicitly allowed (the balancer needs it; an LPE executes
    it as a pass-through).  Raises :class:`UnmappableError` if the basis is
    not functionally complete for the operations present.
    """
    allowed_set = frozenset(allowed) | {cells.BUF}
    if not basis_is_complete(allowed_set):
        needed = {
            n.op for n in graph.nodes.values() if n.op in cells.MISO_OPS
        }
        if not needed <= allowed_set:
            raise UnmappableError(
                f"basis {sorted(allowed_set)} is not functionally complete"
            )
    mapper = _Mapper(graph, allowed_set)
    remap: Dict[int, int] = {}
    for nid in graph.topological_order():
        node = graph.nodes[nid]
        if node.op == cells.INPUT:
            assert node.name is not None
            remap[nid] = mapper.out.add_input(node.name)
        elif node.op in (cells.CONST0, cells.CONST1):
            remap[nid] = mapper.out.add_const(
                1 if node.op == cells.CONST1 else 0
            )
        else:
            remap[nid] = mapper.emit(node.op, *(remap[f] for f in node.fanins))
    for name, nid in graph.outputs:
        target = remap[nid]
        mapper.out.set_output(name, target)
    return mapper.out.extract()


def mapped_area(graph: LogicGraph) -> float:
    """Total cell area of the graph under the standard library."""
    return sum(
        cells.cell_for_op(node.op).area
        for node in graph.nodes.values()
        if node.op in cells.LPE_OPS
    )


def mapped_delay(graph: LogicGraph) -> float:
    """Critical-path delay under the standard library's cell delays."""
    delay: Dict[int, float] = {}
    for nid in graph.topological_order():
        node = graph.nodes[nid]
        if node.op in cells.SOURCE_OPS:
            delay[nid] = 0.0
        else:
            cell = cells.cell_for_op(node.op)
            delay[nid] = cell.delay + max(delay[f] for f in node.fanins)
    if not graph.outputs:
        return 0.0
    return max(delay[nid] for _, nid in graph.outputs)
