"""Exact two-level minimization (Quine–McCluskey with Petrick's method).

Used by the NullaNet substrate for small neuron fan-ins, where exact
minimization is affordable, and by the test suite as the golden reference
the heuristic Espresso-style minimizer is checked against.

Don't-cares participate in implicant merging but do not need to be covered —
this is precisely how NullaNet exploits never-observed input patterns.
"""

from __future__ import annotations

from typing import Dict, FrozenSet, List, Sequence, Set, Tuple

from .truth_table import Cube, TruthTable

#: Exact minimization is exponential; past this many inputs callers should
#: use :func:`repro.synth.espresso.espresso_minimize`.
MAX_QM_VARS = 12


def prime_implicants(table: TruthTable) -> List[Cube]:
    """All prime implicants of ON ∪ DC via iterative pairwise merging."""
    n = table.num_vars
    full_mask = (1 << n) - 1
    current: Set[Tuple[int, int]] = {
        (full_mask, m) for m in table.minterms() + table.dc_minterms()
    }
    primes: Set[Tuple[int, int]] = set()

    while current:
        merged_from: Set[Tuple[int, int]] = set()
        next_level: Set[Tuple[int, int]] = set()
        by_mask: Dict[int, List[Tuple[int, int]]] = {}
        for cube in current:
            by_mask.setdefault(cube[0], []).append(cube)
        for mask, cubes in by_mask.items():
            by_value: Set[int] = {value for _, value in cubes}
            for value in by_value:
                bit = 1
                while bit <= mask:
                    if (mask & bit) and (value & bit) == 0:
                        partner = value | bit
                        if partner in by_value:
                            next_level.add((mask & ~bit, value))
                            merged_from.add((mask, value))
                            merged_from.add((mask, partner))
                    bit <<= 1
        primes |= current - merged_from
        current = next_level
    return [Cube(mask, value) for mask, value in sorted(primes)]


def _coverage(
    primes: Sequence[Cube], minterms: Sequence[int]
) -> Dict[int, FrozenSet[int]]:
    """minterm -> indices of primes covering it."""
    cover: Dict[int, FrozenSet[int]] = {}
    for m in minterms:
        cover[m] = frozenset(
            i for i, p in enumerate(primes) if p.contains_minterm(m)
        )
    return cover


def _petrick(
    cover: Dict[int, FrozenSet[int]], primes: Sequence[Cube]
) -> List[int]:
    """Exact minimum cover by Petrick's method (product of sums expansion).

    Kept in product-set form with absorption to bound the blow-up; only
    invoked for small residual covering problems.
    """
    products: Set[FrozenSet[int]] = {frozenset()}
    for _m, choices in sorted(cover.items()):
        new_products: Set[FrozenSet[int]] = set()
        for product in products:
            if product & choices:
                new_products.add(product)
                continue
            for c in choices:
                new_products.add(product | {c})
        # absorption: drop supersets
        minimal: Set[FrozenSet[int]] = set()
        for p in sorted(new_products, key=len):
            if not any(q <= p for q in minimal):
                minimal.add(p)
        products = minimal
    def cost(sol: FrozenSet[int]) -> Tuple[int, int]:
        return (len(sol), sum(primes[i].num_literals() for i in sol))
    best = min(products, key=cost)
    return sorted(best)


def _greedy_cover(
    cover: Dict[int, FrozenSet[int]], primes: Sequence[Cube]
) -> List[int]:
    """Greedy set cover fallback for large residual problems."""
    uncovered = set(cover)
    chosen: List[int] = []
    while uncovered:
        # Pick the prime covering the most uncovered minterms; break ties
        # toward fewer literals (bigger cube).
        gain: Dict[int, int] = {}
        for m in uncovered:
            for i in cover[m]:
                gain[i] = gain.get(i, 0) + 1
        best = max(gain, key=lambda i: (gain[i], -primes[i].num_literals()))
        chosen.append(best)
        uncovered = {m for m in uncovered if best not in cover[m]}
    return sorted(chosen)


def minimize(table: TruthTable, exact_cover_limit: int = 24) -> List[Cube]:
    """Minimum (or near-minimum) SOP cover of ``table``.

    Steps: generate primes, select essential primes, then cover the residual
    minterms exactly (Petrick) when the problem is small, greedily otherwise.
    """
    if table.num_vars > MAX_QM_VARS:
        raise ValueError(
            f"Quine-McCluskey limited to {MAX_QM_VARS} vars; "
            "use espresso_minimize for larger tables"
        )
    on = table.minterms()
    if not on:
        return []
    primes = prime_implicants(table)
    cover = _coverage(primes, on)

    essential: Set[int] = set()
    for m, choices in cover.items():
        if len(choices) == 1:
            essential.add(next(iter(choices)))
    chosen = set(essential)
    residual = {
        m: choices for m, choices in cover.items() if not (choices & chosen)
    }
    if residual:
        if len(residual) <= exact_cover_limit:
            chosen.update(_petrick(residual, primes))
        else:
            chosen.update(_greedy_cover(residual, primes))
    result = [primes[i] for i in sorted(chosen)]
    assert table.cover_is_complete(result), "QM produced an incomplete cover"
    return result


def sop_cost(cubes: Sequence[Cube]) -> Tuple[int, int]:
    """(cube count, total literal count) — the standard two-level cost."""
    return (len(cubes), sum(c.num_literals() for c in cubes))
