"""Netlist levelization (the paper's Section III pre-processing step).

"Because a gate that is at a specific logic level in a target circuit has no
connections to any other gates at the same logic level, operations of all
gates at the same logic level can be executed simultaneously."  Levelization
assigns every node its ASAP logic level and groups nodes by level; the
partitioner, scheduler, and code generator all consume this view.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List

from ..netlist import cells
from ..netlist.graph import LogicGraph


@dataclass
class Levelization:
    """Level assignment of a logic graph.

    Attributes:
        level: node id -> logic level (sources at 0).
        by_level: level -> node ids at that level (gates only at levels >= 1;
            level 0 holds PIs and constants).
        max_level: the largest level (depth of the graph).
    """

    level: Dict[int, int]
    by_level: List[List[int]]
    max_level: int

    def width(self, lvl: int) -> int:
        """Number of nodes at ``lvl``."""
        return len(self.by_level[lvl]) if 0 <= lvl <= self.max_level else 0

    def max_width(self) -> int:
        """Widest gate level (levels >= 1)."""
        if self.max_level == 0:
            return 0
        return max(len(nodes) for nodes in self.by_level[1:])


def levelize(graph: LogicGraph) -> Levelization:
    """Compute the ASAP levelization of ``graph``."""
    level = graph.levels()
    max_level = max(level.values(), default=0)
    by_level: List[List[int]] = [[] for _ in range(max_level + 1)]
    for nid in graph.topological_order():
        by_level[level[nid]].append(nid)
    return Levelization(level=level, by_level=by_level, max_level=max_level)


def is_levelized_strict(graph: LogicGraph) -> bool:
    """True if every gate's fanins sit exactly one level below it and every
    PO sits at the maximum level — the property full path balancing
    establishes, which the paper requires before partitioning ("full path
    balancing guarantees no data dependencies exist between two non-adjacent
    logic levels")."""
    lv = graph.levels()
    for nid, node in graph.nodes.items():
        if node.op in cells.SOURCE_OPS:
            continue
        for fid in node.fanins:
            if lv[fid] != lv[nid] - 1:
                return False
    if graph.outputs:
        depth = max(lv[nid] for _, nid in graph.outputs)
        for _, nid in graph.outputs:
            if lv[nid] != depth:
                return False
    return True
