"""Logic synthesis substrate: optimization, mapping, levelization, balancing,
and two-level/multi-level minimization.

These are the passes the paper's pre-processing stage (Fig. 1, box 1)
relies on, plus the truth-table minimization machinery the NullaNet
substrate uses to turn neurons into FFCL blocks.
"""

from .balance import BalanceReport, balance
from .espresso import espresso_minimize
from .factoring import factored_graph, factoring_gain
from .levelize import Levelization, is_levelized_strict, levelize
from .pipeline import PreprocessReport, PreprocessResult, preprocess
from .quine_mccluskey import MAX_QM_VARS, minimize, prime_implicants, sop_cost
from .simplify import simplify, sweep_dead_nodes
from .techmap import (
    UnmappableError,
    basis_is_complete,
    map_to_basis,
    mapped_area,
    mapped_delay,
)
from .truth_table import (
    MAX_ENUM_VARS,
    Cube,
    TruthTable,
    graph_from_truth_table,
    sop_to_graph,
)

__all__ = [
    "BalanceReport",
    "balance",
    "espresso_minimize",
    "factored_graph",
    "factoring_gain",
    "Levelization",
    "is_levelized_strict",
    "levelize",
    "PreprocessReport",
    "PreprocessResult",
    "preprocess",
    "MAX_QM_VARS",
    "minimize",
    "prime_implicants",
    "sop_cost",
    "simplify",
    "sweep_dead_nodes",
    "UnmappableError",
    "basis_is_complete",
    "map_to_basis",
    "mapped_area",
    "mapped_delay",
    "MAX_ENUM_VARS",
    "Cube",
    "TruthTable",
    "graph_from_truth_table",
    "sop_to_graph",
]
